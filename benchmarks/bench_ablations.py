"""Ablations of TCUDB's design decisions (DESIGN.md section)."""

from repro.bench import (
    run_ablation_density_switch,
    run_ablation_fused_agg,
    run_ablation_fusion,
    run_ablation_precision,
    run_ablation_transform_location,
)
from repro.datasets.microbench import QUERY_Q3, microbench_catalog
from repro.engine.base import ExecutionMode
from repro.engine.tcudb import TCUDBEngine


def test_ablation_fused_agg(print_series, benchmark, bench_profile,
                            verifier):
    result = run_ablation_fused_agg(profile=bench_profile, verifier=verifier)
    print_series(result)
    for config in result.configs():
        assert result.find(config, "join + group-by").normalized > 1.0
    catalog = microbench_catalog(8192, 32, seed=41)
    engine = TCUDBEngine(catalog, mode=ExecutionMode.ANALYTIC)
    benchmark(lambda: engine.execute(QUERY_Q3))


def test_ablation_density_switch(print_series, benchmark, bench_profile,
                                 verifier):
    result = run_ablation_density_switch(profile=bench_profile,
                                         verifier=verifier)
    print_series(result)
    for config in result.configs():
        chosen = result.find(config, "optimizer").seconds
        dense = result.find(config, "forced dense").seconds
        sparse = result.find(config, "forced sparse").seconds
        # Figure 6 switches on a *density threshold*, not on a full cost
        # comparison of both kernels, so mid-density points may leave a
        # little performance on the table; the heuristic must stay within
        # 1.5x of the best variant and be exact at the extremes.
        assert chosen <= min(dense, sparse) * 1.5, config
    extremes = (result.configs()[0], result.configs()[-1])
    for config in extremes:
        chosen = result.find(config, "optimizer").seconds
        dense = result.find(config, "forced dense").seconds
        sparse = result.find(config, "forced sparse").seconds
        assert chosen <= min(dense, sparse) * 1.05, config
    benchmark(lambda: run_ablation_density_switch(distincts=[32]))


def test_ablation_precision(print_series, benchmark, bench_profile,
                            verifier):
    result = run_ablation_precision(profile=bench_profile, verifier=verifier)
    print_series(result)
    for config in result.configs():
        assert (result.find(config, "int4").seconds
                <= result.find(config, "fp16").seconds)
    benchmark(lambda: run_ablation_precision(sizes=[4096]))


def test_ablation_transform_location(print_series, benchmark, bench_profile,
                                     verifier):
    result = run_ablation_transform_location(profile=bench_profile,
                                             verifier=verifier)
    print_series(result)
    for config in result.configs():
        assert (result.find(config, "gpu-allowed").seconds
                <= result.find(config, "cpu-only").seconds)
    benchmark(lambda: run_ablation_transform_location(sizes=[4096]))


def test_ablation_fusion(print_series, benchmark, bench_profile, verifier):
    result = run_ablation_fusion(profile=bench_profile, verifier=verifier)
    print_series(result)
    for config in result.configs():
        on = result.find(config, "fusion=on")
        off = result.find(config, "fusion=off")
        # Fusion must never increase simulated cost, and both variants
        # must stay on the TCU path (the comparison pins the strategy).
        assert on.seconds <= off.seconds, config
        assert on.executed_by == "TCU" and off.executed_by == "TCU", config
        assert on.host_seconds is not None and off.host_seconds is not None
    benchmark(lambda: run_ablation_fusion(rows=4000))

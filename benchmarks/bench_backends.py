"""Tensor execution backend speedups (docs/architecture.md § Tensor
backends)."""

from repro.bench import run_backends
from repro.bench.harness import geomean
from repro.datasets.ssb import ssb_catalog
from repro.engine.tcudb import TCUDBEngine, TCUDBOptions


def test_backend_speedup(print_series, benchmark, bench_profile, verifier):
    result = run_backends(profile=bench_profile, verifier=verifier)
    print_series(result)
    # The sim anchor of each shape is exactly 1.0 by construction.
    for point in result.points:
        if point.engine == "TCUDB-sim":
            assert point.seconds == 1.0
    # The invariants the experiment checks on every run must hold: zero
    # backend-vs-sim row divergences beyond the fp16 tolerance,
    # backend-invariant simulated seconds.
    invariants = [n for n in result.notes if "divergences" in n]
    assert invariants and "divergences (rel=0.002): 0" in invariants[0]
    assert "backend-invariant: True" in invariants[0]
    # The fast backend exists to shed host overhead: it must beat the
    # simulator on wall-clock geomean across the query shapes (this is a
    # pure single-thread BLAS/allocation win, so no cpu_count gate).
    fast_speedups = [p.seconds for p in result.points
                     if p.engine == "TCUDB-fast"]
    assert fast_speedups
    assert geomean(fast_speedups) >= 1.0, (
        f"fast backend slower than sim on geomean: {fast_speedups}"
    )
    catalog = ssb_catalog(scale_factor=1,
                          rows_per_sf=bench_profile.backends_rows,
                          seed=47)
    engine = TCUDBEngine(catalog, options=TCUDBOptions(backend="fast"))
    from repro.bench.exp_backends import GRID_SQL

    benchmark(lambda: engine.execute(GRID_SQL))

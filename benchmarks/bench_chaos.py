"""Chaos serving: injected fault rate vs resilience
(docs/operations.md § Chaos testing)."""

from repro.bench import run_chaos
from repro.common.faults import FaultPlan, FaultRule, SITE_SHARD_EXECUTE, inject
from repro.datasets.ssb import ssb_catalog
from repro.serve import QueryServer


def test_chaos_resilience(print_series, benchmark, bench_profile, verifier):
    result = run_chaos(profile=bench_profile, verifier=verifier)
    print_series(result)
    # The acceptance bar: every injected fault class is recoverable, so
    # success rate AND oracle-exact availability hold 1.0 at every swept
    # fault rate under the default retry budget.
    for rate in bench_profile.chaos_fault_rates:
        config = f"fault_rate={rate}"
        assert result.find(config, "success-rate").seconds == 1.0
        assert result.find(config, "availability").seconds == 1.0
    # The zero-rate anchor must not pay any resilience overhead worth
    # noting; faulted rates may (that IS the measurement).
    ledger = [n for n in result.notes if "recovery ledger" in n]
    assert ledger, "experiment must report the server recovery ledger"
    assert "failed=0" in ledger[0]

    catalog = ssb_catalog(scale_factor=1,
                          rows_per_sf=bench_profile.chaos_rows, seed=47)
    server = QueryServer(
        catalog, engine="tcudb", shards=bench_profile.chaos_shards,
        max_concurrent=2,
        engine_kwargs={"fact": "lineorder",
                       "partition_key": "lo_orderkey"},
    )
    try:
        session = server.session()
        from repro.bench.exp_concurrency import JOIN_AGG_SQL

        session.execute(JOIN_AGG_SQL)  # warm the program cache
        plan = FaultPlan(
            [FaultRule(site=SITE_SHARD_EXECUTE, kind="transient",
                       every=3)],
            seed=1306,
        )
        with inject(plan):
            benchmark(lambda: session.execute(JOIN_AGG_SQL))
    finally:
        server.close()

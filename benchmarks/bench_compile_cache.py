"""Compile-once serving: program-cache amortization on a repeated
parameterized workload (docs/serving.md § Prepared statements & the
program cache)."""

from repro.bench import run_compile_cache
from repro.bench.exp_compile_cache import STATEMENTS
from repro.datasets.ssb import ssb_catalog
from repro.engine.cache import ProgramCache
from repro.engine.tcudb import TCUDBEngine


def test_compile_cache_amortization(print_series, benchmark, bench_profile,
                                    verifier):
    result = run_compile_cache(profile=bench_profile, verifier=verifier)
    print_series(result)
    cold = result.find("repeated-workload", "TCUDB-cold")
    warm = result.find("repeated-workload", "TCUDB-warm")
    # The cold anchor is 1.0 by construction; the warm point's value is
    # the cold/warm host-seconds ratio.
    assert cold.seconds == 1.0
    assert cold.host_seconds is not None and warm.host_seconds is not None
    # The acceptance gate: amortized compilation must make the warm
    # workload strictly faster than cold on the host.
    assert warm.host_seconds < cold.host_seconds
    assert warm.seconds > 1.0
    # The invariants the experiment checks every run: identical rows and
    # identical simulated device time warm-vs-cold.
    notes = "\n".join(result.notes)
    assert "divergences: 0" in notes
    assert "identical warm/cold: True" in notes
    # Hit-rate accounting: one miss per template, everything else hits.
    assert "hit_rate=" in notes

    catalog = ssb_catalog(
        scale_factor=1, rows_per_sf=bench_profile.compile_cache_rows,
        seed=47)
    engine = TCUDBEngine(catalog, program_cache=ProgramCache())
    template, schedule = STATEMENTS[0]
    prepared = engine.prepare(template)
    engine.execute_prepared(prepared, schedule[0])  # compile once
    benchmark(lambda: engine.execute_prepared(prepared, schedule[0]))

"""Morsel-parallel worker scaling (docs/architecture.md § Parallel
morsels & serving)."""

import os

from repro.bench import run_concurrency
from repro.datasets.ssb import ssb_catalog
from repro.engine.tcudb import TCUDBEngine, TCUDBOptions


def test_concurrency_scaling(print_series, benchmark, bench_profile,
                             verifier):
    result = run_concurrency(profile=bench_profile, verifier=verifier)
    print_series(result)
    # The workers=1 anchor of each series is exactly 1.0 by construction.
    for engine in result.engines():
        assert result.find("workers=1", engine).seconds == 1.0
    # The invariants the experiment checks on every run must hold: zero
    # parallel-vs-sequential row divergences, worker-invariant simulated
    # seconds.
    invariants = [n for n in result.notes if "divergences" in n]
    assert invariants and "divergences: 0" in invariants[0]
    assert "worker-invariant: True" in invariants[0]
    # Speedup > 1.0 is a *host* property (needs cpu_count > workers), so
    # it is asserted only where the hardware can deliver it.
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        best = max(p.seconds for p in result.points
                   if p.config != "workers=1")
        assert best > 1.0, "multi-core host but no parallel speedup"
    catalog = ssb_catalog(scale_factor=1,
                          rows_per_sf=bench_profile.concurrency_rows,
                          seed=31)
    engine = TCUDBEngine(catalog, options=TCUDBOptions(
        chunk_rows=bench_profile.concurrency_chunk_rows, workers=2))
    from repro.bench.exp_concurrency import JOIN_AGG_SQL

    benchmark(lambda: engine.execute(JOIN_AGG_SQL))

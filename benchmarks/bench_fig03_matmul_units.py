"""Figure 3: GEMM latency on CUDA cores vs Tensor Core Units."""

from repro.bench import run_fig3
from repro.hardware.gpu import GPUDevice


def test_fig3_series(print_series, benchmark, bench_profile, verifier):
    result = run_fig3(profile=bench_profile, verifier=verifier)
    print_series(result)
    for dim in result.configs():
        assert (result.find(dim, "TCUs").seconds
                < result.find(dim, "CUDA cores").seconds)
    device = GPUDevice()
    benchmark(lambda: device.tcu.matmul_seconds(4096, 4096, 4096))

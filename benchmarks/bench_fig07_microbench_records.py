"""Figure 7(a-c): Q1/Q3/Q4 vs record count (K=32 distinct)."""

import pytest

from repro.bench import run_fig7
from repro.datasets.microbench import QUERY_Q1, microbench_catalog
from repro.engine.base import ExecutionMode
from repro.engine.tcudb import TCUDBEngine


@pytest.mark.parametrize("query", ["q1", "q3", "q4"])
def test_fig7_series(print_series, benchmark, bench_profile, verifier, query):
    result = run_fig7(query, profile=bench_profile, verifier=verifier)
    print_series(result)
    for config in result.configs():
        assert (result.find(config, "TCUDB").normalized
                < result.find(config, "YDB").normalized)
    catalog = microbench_catalog(8192, 32, seed=7)
    engine = TCUDBEngine(catalog, mode=ExecutionMode.ANALYTIC)
    benchmark(lambda: engine.execute(QUERY_Q1))

"""Figure 8(a-c): Q1/Q3/Q4 vs number of distinct join values (n=4096)."""

import pytest

from repro.bench import run_fig8
from repro.datasets.microbench import QUERY_Q3, microbench_catalog
from repro.engine.base import ExecutionMode
from repro.engine.ydb import YDBEngine


@pytest.mark.parametrize("query", ["q1", "q3", "q4"])
def test_fig8_series(print_series, benchmark, bench_profile, verifier, query):
    result = run_fig8(query, profile=bench_profile, verifier=verifier)
    print_series(result)
    if query == "q1":
        if bench_profile.name == "paper":
            # The dense TCU join's matrices grow with the key domain; by
            # k=4096 it sits at/near the YDB crossover (paper Section 5.2).
            low = result.find("4096,32", "TCUDB").normalized
            high = result.find("4096,4096", "TCUDB").normalized
            assert high > 3 * low
        else:
            # The cost still rises monotonically with the key domain.
            configs = result.configs()
            assert (result.find(configs[-1], "TCUDB").normalized
                    > result.find(configs[0], "TCUDB").normalized)
    else:
        # Q3/Q4 use the compact grouped construction, so TCUDB stays
        # ahead of YDB across the whole sweep (see EXPERIMENTS.md for
        # the divergence from the paper's tuple-rows series).
        for config in result.configs():
            assert (result.find(config, "TCUDB").normalized
                    < result.find(config, "YDB").normalized)
    catalog = microbench_catalog(4096, 1024, seed=8)
    engine = YDBEngine(catalog, mode=ExecutionMode.ANALYTIC)
    benchmark(lambda: engine.execute(QUERY_Q3))

"""Figure 9(a-d): Star Schema Benchmark at scale factors 1, 2, 4, 8."""

import pytest

from repro.bench import run_fig9
from repro.datasets.ssb import ssb_catalog
from repro.engine.base import ExecutionMode
from repro.engine.tcudb import TCUDBEngine
from repro.workloads.ssb_queries import SSB_QUERIES


@pytest.mark.parametrize("scale_factor", [1, 2, 4, 8])
def test_fig9_series(print_series, benchmark, bench_profile, verifier,
                     scale_factor):
    if scale_factor not in bench_profile.ssb_scale_factors:
        pytest.skip(f"sf{scale_factor} not in profile "
                    f"{bench_profile.name!r}")
    result = run_fig9(scale_factor=scale_factor, profile=bench_profile,
                      verifier=verifier)
    print_series(result)
    for query_id in ("Q1.1", "Q2.1", "Q4.1"):
        assert result.find(query_id, "TCUDB").normalized < 1.0
    catalog = ssb_catalog(scale_factor=1,
                          rows_per_sf=bench_profile.ssb_rows_per_sf, seed=9)
    engine = TCUDBEngine(catalog, mode=ExecutionMode.ANALYTIC)
    benchmark(lambda: engine.execute(SSB_QUERIES["Q2.1"]))


def test_fig9_full_13_query_suite(print_series, benchmark, bench_profile,
                                  verifier):
    """All 13 queries at SF 1 (the figures plot the flight heads)."""
    result = run_fig9(scale_factor=1, queries=tuple(sorted(SSB_QUERIES)),
                      profile=bench_profile, verifier=verifier)
    result.experiment_id = "fig9_sf1_full13"
    print_series(result)
    assert len(result.configs()) == 13
    catalog = ssb_catalog(scale_factor=1,
                          rows_per_sf=bench_profile.ssb_rows_per_sf, seed=9)
    engine = TCUDBEngine(catalog, mode=ExecutionMode.ANALYTIC)
    benchmark(lambda: engine.execute(SSB_QUERIES["Q3.1"]))

"""Figure 10: the matrix-multiplication query (Figure 5) at scale."""

from repro.bench import run_fig10
from repro.datasets.matmul import MATMUL_QUERY, matmul_catalog
from repro.engine.base import ExecutionMode
from repro.engine.tcudb import TCUDBEngine


def test_fig10_series(print_series, benchmark, bench_profile, verifier):
    result = run_fig10(profile=bench_profile, verifier=verifier)
    print_series(result)
    if 32768 in bench_profile.fig10_projected_dims:
        assert result.find("32768", "TCUDB").note == "blocked"
    for dim in bench_profile.fig10_projected_dims:
        assert (result.find(str(dim), "TCUDB").normalized
                < result.find(str(dim), "YDB").normalized)
    catalog = matmul_catalog(256, seed=10)
    engine = TCUDBEngine(catalog, mode=ExecutionMode.ANALYTIC)
    benchmark(lambda: engine.execute(MATMUL_QUERY))

"""Figure 11(a-c): entity-matching blocking queries."""

import pytest

from repro.bench import run_fig11
from repro.datasets.em import beer_catalog
from repro.engine.base import ExecutionMode
from repro.engine.tcudb import TCUDBEngine
from repro.workloads.em_blocking import beer_blocking_query


@pytest.mark.parametrize("dataset", ["beer", "itunes", "itunes_scaled"])
def test_fig11_series(print_series, benchmark, bench_profile, verifier,
                      dataset):
    if dataset not in bench_profile.em_datasets:
        pytest.skip(f"{dataset!r} not in profile {bench_profile.name!r}")
    result = run_fig11(dataset, profile=bench_profile, verifier=verifier)
    print_series(result)
    for point in result.points:
        if point.engine == "TCUDB":
            assert point.normalized < 1.0, point.config
    catalog = beer_catalog(seed=11)
    engine = TCUDBEngine(catalog, mode=ExecutionMode.ANALYTIC)
    benchmark(lambda: engine.execute(beer_blocking_query("abv")))

"""Figure 12(a-c): PageRank queries PR Q1/Q2/Q3 across graph sizes."""

import pytest

from repro.bench import run_fig12
from repro.bench.exp_casestudies import _pagerank_catalog
from repro.engine.base import ExecutionMode
from repro.engine.tcudb import TCUDBEngine
from repro.workloads.pagerank import PR_Q1


@pytest.mark.parametrize("query", ["q1", "q2", "q3"])
def test_fig12_series(print_series, benchmark, bench_profile, verifier,
                      query):
    result = run_fig12(query, profile=bench_profile, verifier=verifier)
    print_series(result)
    for config in result.configs():
        assert (result.find(config, "TCUDB").seconds
                < result.find(config, "YDB").seconds)
    graph, catalog = _pagerank_catalog(2048, seed=12)
    engine = TCUDBEngine(catalog, mode=ExecutionMode.ANALYTIC)
    benchmark(lambda: engine.execute(PR_Q1))

"""Figure 13: PR Q3 core latency — MonetDB / YDB / MAGiQ / TCUDB."""

from repro.bench import run_fig13
from repro.datasets.graphs import reduced_road_graph
from repro.engine.magiq import MAGiQEngine


def test_fig13_series(print_series, benchmark, bench_profile, verifier):
    result = run_fig13(profile=bench_profile, verifier=verifier)
    print_series(result)
    if bench_profile.name == "paper":
        sizes = ("1024", "2048", "4096")
    else:
        sizes = tuple(str(s) for s in bench_profile.fig13_sizes[:2])
    for size in sizes:
        assert (result.find(size, "TCUDB").normalized
                <= result.find(size, "MAGiQ").normalized)
        assert (result.find(size, "MAGiQ").normalized
                < result.find(size, "MonetDB").normalized)
    graph = reduced_road_graph(4096, seed=13)
    engine = MAGiQEngine()
    engine.load_graph(graph.src, graph.dst, graph.n_nodes)
    benchmark(engine.pr_q3_core_seconds)

"""Figure 14: RTX 3090 over RTX 2080 microbenchmark speedups."""

from repro.bench import run_fig14
from repro.datasets.microbench import QUERY_Q1, microbench_catalog
from repro.engine.base import ExecutionMode
from repro.engine.tcudb import TCUDBEngine
from repro.hardware.gpu import GPUDevice
from repro.hardware.profiles import RTX_2080


def test_fig14_series(print_series, benchmark, bench_profile, verifier):
    result = run_fig14(profile=bench_profile, verifier=verifier)
    print_series(result)
    for point in result.points:
        assert point.seconds > 1.0  # the newer GPU always wins
    catalog = microbench_catalog(8192, 32, seed=14)
    engine = TCUDBEngine(catalog, device=GPUDevice(RTX_2080),
                         mode=ExecutionMode.ANALYTIC)
    benchmark(lambda: engine.execute(QUERY_Q1))

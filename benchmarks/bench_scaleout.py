"""Data-parallel shard scaling (docs/architecture.md § Sharded
data-parallel execution)."""

from repro.bench import run_scaleout
from repro.datasets.ssb import ssb_catalog
from repro.engine.tcudb import DistributedEngine, TCUDBOptions


def test_scaleout_sharding(print_series, benchmark, bench_profile,
                           verifier):
    result = run_scaleout(profile=bench_profile, verifier=verifier)
    print_series(result)
    # The shards=1 anchor of each series is exactly 1.0 by construction.
    for engine in result.engines():
        assert result.find("shards=1", engine).seconds == 1.0
    # The invariants the experiment checks on every run must hold: no
    # sharded run may diverge from the anchor beyond TCU tolerance, the
    # ascending-shard merge must be repeat-run deterministic, and every
    # distributed point must carry the allreduce cost in its listing.
    invariants = [n for n in result.notes if "divergences" in n]
    assert invariants and "divergences (rel=0.002): 0" in invariants[0]
    assert "determinism violations: 0" in invariants[0]
    assert "allreduce ledger term: 0" in invariants[0]
    catalog = ssb_catalog(scale_factor=1,
                          rows_per_sf=bench_profile.scaleout_rows,
                          seed=47)
    engine = DistributedEngine(
        catalog, shards=2, fact="lineorder", partition_key="lo_orderkey",
        options=TCUDBOptions(chunk_rows=bench_profile.scaleout_chunk_rows),
    )
    from repro.bench.exp_scaleout import JOIN_AGG_SQL

    benchmark(lambda: engine.execute(JOIN_AGG_SQL))

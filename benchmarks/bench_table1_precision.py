"""Table 1: MAPE of fp16 matmul queries across value ranges and dims."""

import numpy as np

from repro.bench import run_table1
from repro.hardware.gpu import GPUDevice


def test_table1_series(print_series, benchmark):
    result = run_table1(dims=[2048, 4096, 8192, 16384, 32768], sample=96)
    print_series(result)
    for dim in (2048, 8192, 32768):
        assert result.find(f"0/1 dim={dim}", "TCUDB fp16").seconds == 0.0
        assert result.find(f"+-2^31 dim={dim}", "TCUDB fp16").seconds < 0.1
    device = GPUDevice()
    rng = np.random.default_rng(0)
    a = rng.integers(-(2**15), 2**15, (96, 4096)).astype(float)
    b = rng.integers(-(2**15), 2**15, (4096, 96)).astype(float)
    benchmark(lambda: device.tcu.matmul(a, b))

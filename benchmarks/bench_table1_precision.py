"""Table 1: MAPE of fp16 matmul queries across value ranges and dims."""

import numpy as np

from repro.bench import run_table1
from repro.hardware.gpu import GPUDevice


def test_table1_series(print_series, benchmark, bench_profile, verifier):
    result = run_table1(profile=bench_profile, verifier=verifier)
    print_series(result)
    for dim in bench_profile.table1_dims:
        assert result.find(f"0/1 dim={dim}", "TCUDB fp16").seconds == 0.0
        assert result.find(f"+-2^31 dim={dim}", "TCUDB fp16").seconds < 0.1
    device = GPUDevice()
    rng = np.random.default_rng(0)
    a = rng.integers(-(2**15), 2**15, (96, 4096)).astype(float)
    b = rng.integers(-(2**15), 2**15, (4096, 96)).astype(float)
    benchmark(lambda: device.tcu.matmul(a, b))

"""Tables 2, 3 and 4: dataset-shape fidelity."""

from repro.bench import run_table4, run_tables23
from repro.datasets.em import beer_catalog
from repro.datasets.graphs import reduced_road_graph


def test_tables23_series(print_series, benchmark, bench_profile, verifier):
    result = run_tables23(profile=bench_profile, verifier=verifier)
    print_series(result)
    for point in result.points:
        assert point.seconds == point.paper_value  # distincts exact
    benchmark(lambda: beer_catalog(seed=23))


def test_table4_series(print_series, benchmark, bench_profile, verifier):
    result = run_table4(profile=bench_profile, verifier=verifier)
    print_series(result)
    for point in result.points:
        if point.paper_value:
            assert point.seconds > 0.5 * point.paper_value
            assert point.seconds < 2.0 * point.paper_value
    benchmark(lambda: reduced_road_graph(1024, seed=4))

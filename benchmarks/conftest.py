"""Benchmark-suite helpers.

Every module regenerates one table/figure of the paper: it runs the
experiment once (printing the ours-vs-paper series and its verification
summary) and lets pytest-benchmark measure a representative engine
invocation.  Run with ``pytest benchmarks/ --benchmark-only -s`` to see
the series tables.

The suite runs through the scale-profile machinery (docs/benchmarking.md):
``--bench-profile smoke|paper|stress`` (or the ``BENCH_PROFILE`` env var)
sizes every experiment, and profiles with verification enabled (smoke)
replay each benchmarked query against the Reference oracle — any
mismatch fails the module's test.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import ExperimentResult, geometric_mean_ratio
from repro.bench.scale import PROFILES, ScaleProfile, get_profile
from repro.bench.verify import OracleVerifier

_PRINTED: set[str] = set()


def pytest_addoption(parser):
    parser.addoption(
        "--bench-profile", default=None, choices=sorted(PROFILES),
        help="scale profile for the benchmark suite "
             "(default: $BENCH_PROFILE or 'paper')",
    )


@pytest.fixture(scope="session")
def bench_profile(request) -> ScaleProfile:
    name = (request.config.getoption("--bench-profile")
            or os.environ.get("BENCH_PROFILE")
            or "paper")
    return get_profile(name)


@pytest.fixture(scope="session")
def verifier(bench_profile) -> OracleVerifier:
    """Session-wide oracle verifier (a no-op recorder unless the active
    profile enables verification, e.g. ``--bench-profile smoke``)."""
    return OracleVerifier(
        enabled=bench_profile.verify,
        policy=getattr(bench_profile, "verify_policy", "full") or "full",
        sample_rows=getattr(bench_profile, "verify_sample_rows", 2048),
        strata=getattr(bench_profile, "verify_strata", 1),
    )


def assert_verified(result: ExperimentResult) -> None:
    """No benchmarked point may disagree with the Reference oracle."""
    bad = result.mismatches()
    assert not bad, "oracle mismatches: " + "; ".join(
        f"{p.config}/{p.engine}: {p.verify_note}" for p in bad
    )


def report(result: ExperimentResult) -> None:
    """Print an experiment's series once per session and assert that no
    verified point mismatched the oracle."""
    if result.experiment_id not in _PRINTED:
        _PRINTED.add(result.experiment_id)
        print()
        print(result.to_text())
        ratio = geometric_mean_ratio(result)
        if ratio is not None:
            print(f"geometric-mean ours/paper ratio: {ratio:.2f}")
    assert_verified(result)


@pytest.fixture(scope="session")
def print_series():
    return report


try:  # pragma: no cover - exercised only without pytest-benchmark
    import pytest_benchmark  # noqa: F401
except ImportError:
    @pytest.fixture
    def benchmark():
        """Minimal stand-in when pytest-benchmark is not installed: run
        the callable once so the timed path still executes."""

        def run(fn, *args, **kwargs):
            return fn(*args, **kwargs)

        return run

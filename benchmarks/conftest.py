"""Benchmark-suite helpers.

Every module regenerates one table/figure of the paper: it runs the
experiment once (printing the ours-vs-paper series) and lets
pytest-benchmark measure a representative engine invocation.  Run with
``pytest benchmarks/ --benchmark-only -s`` to see the series tables.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentResult, geometric_mean_ratio

_PRINTED: set[str] = set()


def report(result: ExperimentResult) -> None:
    """Print an experiment's series once per session."""
    if result.experiment_id in _PRINTED:
        return
    _PRINTED.add(result.experiment_id)
    print()
    print(result.to_text())
    ratio = geometric_mean_ratio(result)
    if ratio is not None:
        print(f"geometric-mean ours/paper ratio: {ratio:.2f}")


@pytest.fixture(scope="session")
def print_series():
    return report

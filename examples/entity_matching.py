"""Entity-matching blocking with TCUDB (paper Section 5.4.2).

    python examples/entity_matching.py

Synthesizes the BeerAdvo-RateBeer-shaped dataset (paper Table 2
cardinalities), runs the blocking query on every attribute on TCUDB,
YDB and MonetDB, and reports candidate-pair counts and speedups.
"""

from __future__ import annotations

from repro.datasets import beer_catalog
from repro.engine.base import ExecutionMode
from repro.engine.monetdb import MonetDBEngine
from repro.engine.tcudb import TCUDBEngine
from repro.engine.ydb import YDBEngine
from repro.workloads import BEER_ATTRIBUTES, beer_blocking_query


def main() -> None:
    catalog = beer_catalog(seed=7)
    table_a = catalog.get("table_a")
    table_b = catalog.get("table_b")
    print(f"table_a: {table_a.num_rows} rows, "
          f"table_b: {table_b.num_rows} rows")
    print(f"{'attribute':<12} {'#distinct':>9} {'pairs':>10} "
          f"{'TCUDB':>10} {'YDB':>10} {'MonetDB':>10} {'speedup':>8}")
    engines = {
        "tcudb": TCUDBEngine(catalog, mode=ExecutionMode.ANALYTIC),
        "ydb": YDBEngine(catalog, mode=ExecutionMode.ANALYTIC),
        "monetdb": MonetDBEngine(catalog, mode=ExecutionMode.ANALYTIC),
    }
    for attribute in BEER_ATTRIBUTES:
        sql = beer_blocking_query(attribute)
        runs = {name: engine.execute(sql) for name, engine in engines.items()}
        distinct = table_a.stats(attribute).n_distinct
        speedup = runs["ydb"].seconds / runs["tcudb"].seconds
        print(
            f"{attribute:<12} {distinct:>9} {runs['tcudb'].n_rows:>10} "
            f"{runs['tcudb'].seconds * 1e3:>8.2f}ms "
            f"{runs['ydb'].seconds * 1e3:>8.2f}ms "
            f"{runs['monetdb'].seconds * 1e3:>8.2f}ms "
            f"{speedup:>7.1f}x"
        )
    print()
    print("Blocking on low-cardinality attributes produces the most "
          "candidate pairs,\nwhich is exactly where the dense TCU join "
          "shines (up to 288x in the paper).")


if __name__ == "__main__":
    main()

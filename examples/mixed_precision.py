"""Adaptive mixed precision in action (paper Sections 4.2.1-4.2.2, Table 1).

    python examples/mixed_precision.py

Runs the same aggregation query over datasets with widening value ranges
and shows (1) which precision the feasibility test picks, (2) the
end-to-end cost of each choice, and (3) the actual numeric error of the
fp16 path versus exact arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.engine.tcudb import TCUDBEngine
from repro.engine.ydb import YDBEngine
from repro.storage import Catalog, Table

QUERY = "SELECT SUM(A.Val * B.Val) FROM A, B WHERE A.ID = B.ID;"


def build_catalog(value_limit: int, rng) -> Catalog:
    n, distinct = 2048, 64
    catalog = Catalog()
    for name in ("a", "b"):
        catalog.register(Table.from_dict(name, {
            "id": rng.integers(0, distinct, n),
            "val": rng.integers(0, value_limit, n).astype(float),
        }))
    return catalog


def main() -> None:
    rng = np.random.default_rng(5)
    print(f"{'value range':<14} {'precision':>9} {'exact?':>7} "
          f"{'TCUDB':>10} {'rel. error':>12}")
    for limit in (2, 8, 128, 2048, 2**15, 2**31):
        catalog = build_catalog(limit, rng)
        tcu_run = TCUDBEngine(catalog).execute(QUERY)
        ydb_run = YDBEngine(catalog).execute(QUERY)
        tcu_value = tcu_run.require_table().rows()[0][0]
        exact_value = ydb_run.require_table().rows()[0][0]
        error = (abs(tcu_value - exact_value) / abs(exact_value)
                 if exact_value else 0.0)
        precision = tcu_run.extra.get("precision", "fallback")
        feasibility = tcu_run.extra["decision"].feasibility
        exact = feasibility.choice.exact if feasibility.choice else False
        print(f"[0, {limit:>10}) {precision:>9} {str(exact):>7} "
              f"{tcu_run.seconds * 1e6:>8.1f}us {error:>11.2e}")
    print()
    print("Narrow ranges run exactly on int4/int8; wide ranges use fp16 "
          "with power-of-two\nscaling and pick up the small rounding "
          "errors the paper's Table 1 quantifies.")


if __name__ == "__main__":
    main()

"""PageRank as SQL queries on TCUDB (paper Section 5.4.3).

    python examples/pagerank.py

Builds a reduced road-network graph (paper Table 4 methodology), runs the
full PageRank algorithm through the three SQL queries PR Q1/Q2/Q3 on
TCUDB, and validates the scores against a direct numpy reference and the
MAGiQ GraphBLAS engine.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import reduced_road_graph
from repro.engine.magiq import MAGiQEngine
from repro.engine.tcudb import TCUDBEngine
from repro.engine.ydb import YDBEngine
from repro.workloads import reference_pagerank, sql_pagerank


def main() -> None:
    graph = reduced_road_graph(2048, seed=3)
    print(f"graph: {graph.n_nodes} nodes, {graph.n_edges} directed edges "
          f"(ratio {graph.edge_node_ratio:.2f})")

    scores_tcu, breakdown_tcu, iters = sql_pagerank(
        lambda catalog: TCUDBEngine(catalog), graph, iterations=50
    )
    scores_ydb, breakdown_ydb, _ = sql_pagerank(
        lambda catalog: YDBEngine(catalog), graph, iterations=50
    )
    reference = reference_pagerank(graph, iterations=50)

    print(f"iterations until convergence: {iters}")
    print(f"TCUDB total simulated time: {breakdown_tcu.total * 1e3:.2f} ms")
    print(f"YDB   total simulated time: {breakdown_ydb.total * 1e3:.2f} ms")
    print(f"speedup: {breakdown_ydb.total / breakdown_tcu.total:.2f}x")
    print(f"max |TCUDB - reference|: "
          f"{np.abs(scores_tcu - reference).max():.2e}")

    magiq = MAGiQEngine()
    magiq.load_graph(graph.src, graph.dst, graph.n_nodes)
    output = magiq.pagerank(max_iterations=50)
    print(f"MAGiQ total simulated time: {output.breakdown.total * 1e3:.2f} ms")
    print(f"max |MAGiQ - reference|: "
          f"{np.abs(output.scores - reference).max():.2e}")

    top = np.argsort(scores_tcu)[-5:][::-1]
    print("top-5 nodes by PageRank:", ", ".join(
        f"{node} ({scores_tcu[node]:.5f})" for node in top
    ))


if __name__ == "__main__":
    main()

"""Quickstart: run SQL on TCUDB and compare against the GPU baseline.

    python examples/quickstart.py

Creates two small tables, runs the paper's Q1/Q3/Q4 sample queries on
both TCUDB and the YDB baseline, shows the optimizer's decision trace and
the generated CUDA program for the TCU plan.
"""

from __future__ import annotations

import numpy as np

from repro.engine.tcudb import TCUDBEngine
from repro.engine.ydb import YDBEngine
from repro.storage import Catalog, Table


def main() -> None:
    rng = np.random.default_rng(42)
    n, distinct = 4096, 32

    catalog = Catalog()
    catalog.register(Table.from_dict("a", {
        "id": rng.integers(0, distinct, n),
        "val": rng.integers(0, 100, n).astype(float),
    }))
    catalog.register(Table.from_dict("b", {
        "id": rng.integers(0, distinct, n),
        "val": rng.integers(0, 50, n).astype(float),
    }))

    tcudb = TCUDBEngine(catalog)
    ydb = YDBEngine(catalog)

    queries = {
        "Q1 (natural join)":
            "SELECT A.Val, B.Val FROM A, B WHERE A.ID = B.ID;",
        "Q3 (group-by aggregate over join)":
            "SELECT SUM(A.Val) AS s, B.Val FROM A, B WHERE A.ID = B.ID "
            "GROUP BY B.Val;",
        "Q4 (aggregate without group-by)":
            "SELECT SUM(A.Val * B.Val) FROM A, B WHERE A.ID = B.ID;",
    }

    for label, sql in queries.items():
        tcu_run = tcudb.execute(sql)
        ydb_run = ydb.execute(sql)
        speedup = ydb_run.seconds / tcu_run.seconds
        print(f"=== {label} ===")
        print(f"rows: {tcu_run.n_rows}   "
              f"TCUDB {tcu_run.seconds * 1e3:.3f} ms vs "
              f"YDB {ydb_run.seconds * 1e3:.3f} ms  "
              f"({speedup:.1f}x speedup)")
        print(f"plan: {tcu_run.extra.get('strategy')} @ "
              f"{tcu_run.extra.get('precision')}")
        print()

    # Inspect the last query's optimizer trace and generated CUDA code.
    run = tcudb.execute(queries["Q3 (group-by aggregate over join)"])
    print("--- optimizer trace (Figure 6 workflow) ---")
    print(run.plan_description)
    print()
    print("--- generated CUDA program ---")
    print(run.extra["generated_code"].source)
    print()
    print("--- result sample ---")
    print(run.require_table().pretty(limit=8))


if __name__ == "__main__":
    main()

"""Star Schema Benchmark analytics on TCUDB (paper Section 5.3).

    python examples/ssb_analytics.py

Generates SSB data, runs all 13 queries on TCUDB/YDB/MonetDB, prints
per-flight speedups and a sample result.
"""

from __future__ import annotations

from repro.datasets import ssb_catalog
from repro.engine.monetdb import MonetDBEngine
from repro.engine.tcudb import TCUDBEngine
from repro.engine.ydb import YDBEngine
from repro.workloads import SSB_QUERIES


def main() -> None:
    catalog = ssb_catalog(scale_factor=1, rows_per_sf=30_000, seed=11)
    print(f"lineorder rows: {catalog.get('lineorder').num_rows}")
    tcudb = TCUDBEngine(catalog)
    ydb = YDBEngine(catalog)
    monetdb = MonetDBEngine(catalog)

    print(f"{'query':<6} {'rows':>6} {'TCUDB':>10} {'YDB':>10} "
          f"{'MonetDB':>10} {'vs YDB':>8}  plan")
    for query_id in sorted(SSB_QUERIES):
        sql = SSB_QUERIES[query_id]
        tcu_run = tcudb.execute(sql)
        ydb_run = ydb.execute(sql)
        monet_run = monetdb.execute(sql)
        plan = tcu_run.extra.get("strategy", "?")
        if tcu_run.extra.get("fallback_reason"):
            plan = "fallback(cost)"
        print(
            f"{query_id:<6} {tcu_run.n_rows:>6} "
            f"{tcu_run.seconds * 1e3:>8.2f}ms "
            f"{ydb_run.seconds * 1e3:>8.2f}ms "
            f"{monet_run.seconds * 1e3:>8.2f}ms "
            f"{ydb_run.seconds / tcu_run.seconds:>7.2f}x  {plan}"
        )

    print()
    print("Q2.1 sample output (revenue by year and brand):")
    print(tcudb.execute(SSB_QUERIES["Q2.1"]).require_table().pretty(limit=6))


if __name__ == "__main__":
    main()

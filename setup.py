from setuptools import setup

setup(
    extras_require={
        # Optional tensor execution backend (src/repro/tensor/backend.py).
        # The library runs on numpy alone; TorchBackend is import-guarded
        # and its tests auto-skip, so CI never installs this extra.
        "torch": ["torch"],
    },
)

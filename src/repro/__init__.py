"""TCUDB reproduction: a tensor-processor-accelerated analytic query
engine (Hu, Li, Tseng — SIGMOD 2022) on a simulated GPU substrate.

Public entry points:

* :class:`repro.engine.tcudb.TCUDBEngine` — the TCU-accelerated engine.
* :class:`repro.engine.ydb.YDBEngine` — the GPU hash-join baseline.
* :class:`repro.engine.monetdb.MonetDBEngine` — the CPU baseline.
* :class:`repro.engine.magiq.MAGiQEngine` — the GraphBLAS graph engine.
* :mod:`repro.datasets` — generators for every workload in the paper.
* :mod:`repro.bench` — experiment runners for every table and figure.
"""

__version__ = "1.0.0"

"""Experiment harness: one runner per paper table/figure plus ablations,
scale profiles, per-point oracle verification and machine-readable
reports (see docs/benchmarking.md)."""

from repro.bench.exp_ablations import (
    run_ablation_density_switch,
    run_ablation_fused_agg,
    run_ablation_fusion,
    run_ablation_precision,
    run_ablation_transform_location,
)
from repro.bench.exp_casestudies import (
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_table1,
)
from repro.bench.exp_backends import run_backends
from repro.bench.exp_chaos import run_chaos
from repro.bench.exp_compile_cache import run_compile_cache
from repro.bench.exp_concurrency import run_concurrency
from repro.bench.exp_microbench import run_fig3, run_fig7, run_fig8, run_fig14
from repro.bench.exp_scaleout import run_scaleout
from repro.bench.exp_ssb import run_fig9
from repro.bench.exp_tables import run_table4, run_tables23
from repro.bench.harness import (
    ExperimentResult,
    SeriesPoint,
    geometric_mean_ratio,
)
from repro.bench.report import BenchReport
from repro.bench.scale import PROFILES, ScaleProfile, get_profile
from repro.bench.verify import OracleVerifier

__all__ = [
    "PROFILES",
    "BenchReport",
    "ExperimentResult",
    "OracleVerifier",
    "ScaleProfile",
    "SeriesPoint",
    "geometric_mean_ratio",
    "get_profile",
    "run_ablation_density_switch",
    "run_ablation_fused_agg",
    "run_ablation_fusion",
    "run_ablation_precision",
    "run_ablation_transform_location",
    "run_backends",
    "run_chaos",
    "run_compile_cache",
    "run_concurrency",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig3",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_scaleout",
    "run_table1",
    "run_table4",
    "run_tables23",
]

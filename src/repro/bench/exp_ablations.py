"""Ablation experiments for the design decisions DESIGN.md calls out.

1. Fused Join+GroupBy+Aggregation vs join-then-aggregate.
2. The density-threshold plan switch (dense GEMM vs TCU-SpMM vs fallback).
3. Adaptive mixed precision (int4/int8/fp16 end-to-end cost).
4. CPU vs GPU-assisted table->matrix transformation.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, annotate_tcu_point
from repro.bench.scale import ScaleProfile
from repro.bench.verify import OracleVerifier
from repro.datasets.microbench import (
    QUERY_Q1,
    QUERY_Q3,
    microbench_catalog,
)
from repro.engine.base import ExecutionMode
from repro.engine.tcudb import Strategy, TCUDBEngine, TCUDBOptions
from repro.hardware.gpu import GPUDevice
from repro.tensor.precision import Precision


def run_ablation_fused_agg(
    sizes: list[int] | None = None, n_distinct: int | None = None,
    seed: int = 41, *, profile: ScaleProfile | None = None,
    verifier: OracleVerifier | None = None,
) -> ExperimentResult:
    """Fused single-matmul Q3 vs 'TCU join, then GPU group-by'.

    The unfused variant pays the Q1 join (pairs materialized) plus the
    conventional group-by aggregation over the pairs — the structure
    YDB uses and TCUDB's Lemma-3.1 encoding eliminates.
    """
    sizes = sizes or list(profile.ablation_sizes if profile
                          else (4096, 8192, 16384, 32768))
    if n_distinct is None:
        n_distinct = profile.micro_distinct if profile else 32
    result = ExperimentResult(
        "ablation_fused_agg",
        "Q3: fused TCU Join+GroupBy+Agg vs TCU join + GPU aggregation",
    )
    for size in sizes:
        catalog = microbench_catalog(size, n_distinct, seed)
        device = GPUDevice()
        tcu = TCUDBEngine(catalog, device=device,
                          mode=ExecutionMode.ANALYTIC)
        fused = tcu.execute(QUERY_Q3)
        join_only = tcu.execute(QUERY_Q1)
        pairs = join_only.n_rows
        groupby_seconds = device.cuda.groupby_seconds(pairs, n_distinct)
        unfused_seconds = join_only.seconds + groupby_seconds
        config = f"{size},{n_distinct}"
        fused_point = result.add(config, "fused (1 matmul)", fused.seconds)
        annotate_tcu_point(fused_point, fused)
        unfused_point = result.add(config, "join + group-by",
                                   unfused_seconds)
        fused_point.normalized = 1.0
        unfused_point.normalized = unfused_seconds / fused.seconds
        if verifier is not None:
            verifier.verify_query(fused_point, "TCUDB", catalog, QUERY_Q3,
                                  device=device)
            # The unfused time composes the measured Q1 join with a
            # modeled group-by; verifying the Q1 replay covers the
            # measured half of the composition.
            verifier.verify_query(unfused_point, "TCUDB", catalog,
                                  QUERY_Q1, device=device)
    result.notes.append("normalized column = slowdown of the unfused plan")
    return result


def run_ablation_density_switch(
    distincts: list[int] | None = None, n_records: int | None = None,
    seed: int = 42, *, profile: ScaleProfile | None = None,
    verifier: OracleVerifier | None = None,
) -> ExperimentResult:
    """Dense vs sparse vs optimizer-chosen plan across matrix densities."""
    distincts = distincts or list(profile.ablation_distincts if profile
                                  else (32, 256, 1024, 4096, 16384))
    if n_records is None:
        n_records = profile.fig8_records if profile else 4096
    result = ExperimentResult(
        "ablation_density_switch",
        "Q1 plan choice across input densities (1/#distinct)",
    )
    for k in distincts:
        catalog = microbench_catalog(n_records, k, seed)
        device = GPUDevice()
        variants = {
            "forced dense": TCUDBOptions(force_strategy=Strategy.DENSE),
            "forced sparse": TCUDBOptions(force_strategy=Strategy.SPARSE),
            "optimizer": TCUDBOptions(),
        }
        for label, options in variants.items():
            engine = TCUDBEngine(catalog, device=device,
                                 mode=ExecutionMode.ANALYTIC, options=options)
            run = engine.execute(QUERY_Q1)
            note = run.extra.get("strategy", "")
            if run.extra.get("fallback_reason"):
                note = "fallback"
            point = result.add(f"{n_records},{k}", label, run.seconds,
                               note=note)
            annotate_tcu_point(point, run)
            point.normalized = run.seconds
            if verifier is not None:
                verifier.verify_query(point, "TCUDB", catalog, QUERY_Q1,
                                      device=device, options=options)
    result.notes.append(
        "normalized column = simulated seconds; the optimizer should track "
        "the cheaper variant on both sides of the density threshold"
    )
    return result


def run_ablation_precision(
    sizes: list[int] | None = None, n_distinct: int = 256, seed: int = 43,
    *, profile: ScaleProfile | None = None,
    verifier: OracleVerifier | None = None,
) -> ExperimentResult:
    """End-to-end cost of forcing each TCU precision on an exact
    (indicator) workload: compact types move less data and multiply
    faster, at zero accuracy cost for 0/1 matrices."""
    sizes = sizes or list(profile.ablation_sizes if profile
                          else (4096, 16384))
    result = ExperimentResult(
        "ablation_precision", "Q1 end-to-end cost by forced precision"
    )
    for size in sizes:
        catalog = microbench_catalog(size, n_distinct, seed)
        device = GPUDevice()
        for precision in (Precision.INT4, Precision.INT8, Precision.FP16):
            options = TCUDBOptions(force_strategy=Strategy.DENSE,
                                   force_precision=precision)
            engine = TCUDBEngine(catalog, device=device,
                                 mode=ExecutionMode.ANALYTIC, options=options)
            run = engine.execute(QUERY_Q1)
            point = result.add(f"{size},{n_distinct}", precision.value,
                               run.seconds)
            annotate_tcu_point(point, run)
            point.normalized = run.seconds
            if verifier is not None:
                verifier.verify_query(point, "TCUDB", catalog, QUERY_Q1,
                                      device=device, options=options)
    result.notes.append("normalized column = simulated seconds")
    return result


def run_ablation_transform_location(
    sizes: list[int] | None = None, n_distinct: int | None = None,
    seed: int = 44, *, profile: ScaleProfile | None = None,
    verifier: OracleVerifier | None = None,
) -> ExperimentResult:
    """GPU-assisted vs forced-CPU table->matrix transformation
    (Equations 1 vs 2)."""
    sizes = sizes or list(profile.ablation_sizes if profile
                          else (4096, 32768))
    if n_distinct is None:
        n_distinct = profile.micro_distinct if profile else 32
    result = ExperimentResult(
        "ablation_transform_location",
        "Q3 transformation location: optimizer (GPU allowed) vs CPU-only",
    )
    for size in sizes:
        catalog = microbench_catalog(size, n_distinct, seed)
        device = GPUDevice()
        for label, options in (
            ("gpu-allowed", TCUDBOptions()),
            ("cpu-only", TCUDBOptions(force_cpu_transform=True)),
        ):
            engine = TCUDBEngine(catalog, device=device,
                                 mode=ExecutionMode.ANALYTIC, options=options)
            run = engine.execute(QUERY_Q3)
            point = result.add(f"{size},{n_distinct}", label, run.seconds,
                               breakdown=run.breakdown)
            annotate_tcu_point(point, run)
            point.normalized = run.seconds
            if verifier is not None:
                verifier.verify_query(point, "TCUDB", catalog, QUERY_Q3,
                                      device=device, options=options)
    result.notes.append("normalized column = simulated seconds")
    return result

"""Ablation experiments for the design decisions DESIGN.md calls out.

1. Fused Join+GroupBy+Aggregation vs join-then-aggregate.
2. The density-threshold plan switch (dense GEMM vs TCU-SpMM vs fallback).
3. Adaptive mixed precision (int4/int8/fp16 end-to-end cost).
4. CPU vs GPU-assisted table->matrix transformation.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    annotate_tcu_point,
    geomean,
    timed_execute,
)
from repro.bench.scale import ScaleProfile
from repro.bench.verify import OracleVerifier
from repro.datasets.microbench import (
    QUERY_Q1,
    QUERY_Q3,
    microbench_catalog,
)
from repro.datasets.ssb import ssb_catalog
from repro.engine.base import ExecutionMode
from repro.engine.tcudb import Strategy, TCUDBEngine, TCUDBOptions
from repro.hardware.gpu import GPUDevice
from repro.tensor.precision import Precision

# Multi-aggregate SSB-style star reports: the JOIN_AGG shapes whose
# per-aggregate GEMM fan-out the fusion pass collapses into one
# BatchedGemm (shared indicator structure + stacked matmul).
FUSION_QUERIES = {
    "flight1_report": """
        SELECT d_year,
               SUM(lo_extendedprice * lo_discount) AS revenue,
               SUM(lo_quantity) AS qty, SUM(lo_revenue) AS rev,
               SUM(lo_supplycost) AS cost, COUNT(*) AS orders,
               AVG(lo_discount) AS avg_disc,
               AVG(lo_extendedprice) AS avg_price,
               AVG(lo_quantity) AS avg_qty
        FROM lineorder, ddate
        WHERE lo_orderdate = d_datekey
        GROUP BY d_year;""",
    "profit_report": """
        SELECT d_year, c_nation,
               SUM(lo_revenue - lo_supplycost) AS profit,
               COUNT(*) AS orders, AVG(lo_revenue) AS avg_rev,
               SUM(lo_quantity) AS qty, AVG(lo_supplycost) AS avg_cost
        FROM lineorder, customer, ddate
        WHERE lo_custkey = c_custkey AND lo_orderdate = d_datekey
        GROUP BY d_year, c_nation;""",
    "supplier_report": """
        SELECT s_nation, SUM(lo_revenue) AS rev,
               SUM(lo_supplycost) AS cost,
               AVG(lo_quantity) AS q, COUNT(*) AS n,
               SUM(lo_extendedprice * lo_discount) AS disc_rev,
               AVG(lo_extendedprice) AS avg_price,
               SUM(lo_quantity * lo_supplycost) AS qcost
        FROM lineorder, supplier, ddate
        WHERE lo_suppkey = s_suppkey AND lo_orderdate = d_datekey
        GROUP BY s_nation;""",
}


def run_ablation_fusion(
    rows: int | None = None, seed: int = 45, *,
    profile: ScaleProfile | None = None,
    verifier: OracleVerifier | None = None,
) -> ExperimentResult:
    """TensorProgram fusion on vs off over multi-aggregate SSB stars.

    Both variants run in REAL mode with the dense strategy pinned, so
    the measurement isolates the fusion pass: fusion=off executes the
    per-aggregate operator fan-out (every grid rebuilds both operand
    matrices and re-derives feasibility ranges), fusion=on executes the
    rewritten program (shared indicator structure, one stacked GEMM,
    ``n_agg`` MMA passes).  Each point records simulated seconds *and*
    measured host wall-clock (``host_seconds``) — the simulated ledger
    shows the modeled one-fill-vs-n-rebuilds gap, the host clock shows
    the real interpreter-level speedup.  Left to its own devices the
    optimizer would reject the unfused plans outright (the per-aggregate
    rebuild cost loses to the conventional plan), which is the
    cost-model view of the same story.
    """
    if rows is None:
        rows = profile.fusion_rows if profile else 20_000
    reps = profile.fusion_reps if profile else 3
    result = ExperimentResult(
        "ablation_fusion",
        "TensorProgram fusion: BatchedGemm + epilogues vs unfused "
        "per-aggregate operator DAG (REAL mode, multi-aggregate stars)",
    )
    catalog = ssb_catalog(scale_factor=1, rows_per_sf=rows, seed=seed)
    device = GPUDevice()
    speedups = []
    for query_id, sql in FUSION_QUERIES.items():
        variants = {
            "fusion=on": TCUDBOptions(force_strategy=Strategy.DENSE),
            "fusion=off": TCUDBOptions(force_strategy=Strategy.DENSE,
                                       fusion=False),
        }
        points = {}
        for label, options in variants.items():
            engine = TCUDBEngine(catalog, device=device,
                                 mode=ExecutionMode.REAL, options=options)
            run, host_seconds = timed_execute(engine, sql, repeats=reps)
            point = result.add(query_id, label, run.seconds,
                               breakdown=run.breakdown)
            annotate_tcu_point(point, run)
            point.host_seconds = host_seconds
            points[label] = point
            if verifier is not None:
                verifier.verify_query(point, "TCUDB", catalog, sql,
                                      device=device, options=options)
        on, off = points["fusion=on"], points["fusion=off"]
        on.normalized = 1.0
        off.normalized = off.seconds / on.seconds
        speedups.append(off.host_seconds / on.host_seconds)
    host_geomean = geomean(speedups)
    result.notes.append(
        f"rows_per_sf={rows}; normalized column = simulated slowdown of "
        "the unfused program; host wall-clock geomean speedup "
        f"(fusion on vs off) = {host_geomean:.2f}x"
    )
    return result


def run_ablation_fused_agg(
    sizes: list[int] | None = None, n_distinct: int | None = None,
    seed: int = 41, *, profile: ScaleProfile | None = None,
    verifier: OracleVerifier | None = None,
) -> ExperimentResult:
    """Fused single-matmul Q3 vs 'TCU join, then GPU group-by'.

    The unfused variant pays the Q1 join (pairs materialized) plus the
    conventional group-by aggregation over the pairs — the structure
    YDB uses and TCUDB's Lemma-3.1 encoding eliminates.
    """
    sizes = sizes or list(profile.ablation_sizes if profile
                          else (4096, 8192, 16384, 32768))
    if n_distinct is None:
        n_distinct = profile.micro_distinct if profile else 32
    result = ExperimentResult(
        "ablation_fused_agg",
        "Q3: fused TCU Join+GroupBy+Agg vs TCU join + GPU aggregation",
    )
    for size in sizes:
        catalog = microbench_catalog(size, n_distinct, seed)
        device = GPUDevice()
        tcu = TCUDBEngine(catalog, device=device,
                          mode=ExecutionMode.ANALYTIC)
        fused = tcu.execute(QUERY_Q3)
        join_only = tcu.execute(QUERY_Q1)
        pairs = join_only.n_rows
        groupby_seconds = device.cuda.groupby_seconds(pairs, n_distinct)
        unfused_seconds = join_only.seconds + groupby_seconds
        config = f"{size},{n_distinct}"
        fused_point = result.add(config, "fused (1 matmul)", fused.seconds)
        annotate_tcu_point(fused_point, fused)
        unfused_point = result.add(config, "join + group-by",
                                   unfused_seconds)
        fused_point.normalized = 1.0
        unfused_point.normalized = unfused_seconds / fused.seconds
        if verifier is not None:
            verifier.verify_query(fused_point, "TCUDB", catalog, QUERY_Q3,
                                  device=device)
            # The unfused time composes the measured Q1 join with a
            # modeled group-by; verifying the Q1 replay covers the
            # measured half of the composition.
            verifier.verify_query(unfused_point, "TCUDB", catalog,
                                  QUERY_Q1, device=device)
    result.notes.append("normalized column = slowdown of the unfused plan")
    return result


def run_ablation_density_switch(
    distincts: list[int] | None = None, n_records: int | None = None,
    seed: int = 42, *, profile: ScaleProfile | None = None,
    verifier: OracleVerifier | None = None,
) -> ExperimentResult:
    """Dense vs sparse vs optimizer-chosen plan across matrix densities."""
    distincts = distincts or list(profile.ablation_distincts if profile
                                  else (32, 256, 1024, 4096, 16384))
    if n_records is None:
        n_records = profile.fig8_records if profile else 4096
    result = ExperimentResult(
        "ablation_density_switch",
        "Q1 plan choice across input densities (1/#distinct)",
    )
    for k in distincts:
        catalog = microbench_catalog(n_records, k, seed)
        device = GPUDevice()
        variants = {
            "forced dense": TCUDBOptions(force_strategy=Strategy.DENSE),
            "forced sparse": TCUDBOptions(force_strategy=Strategy.SPARSE),
            "optimizer": TCUDBOptions(),
        }
        for label, options in variants.items():
            engine = TCUDBEngine(catalog, device=device,
                                 mode=ExecutionMode.ANALYTIC, options=options)
            run = engine.execute(QUERY_Q1)
            note = run.extra.get("strategy", "")
            if run.extra.get("fallback_reason"):
                note = "fallback"
            point = result.add(f"{n_records},{k}", label, run.seconds,
                               note=note)
            annotate_tcu_point(point, run)
            point.normalized = run.seconds
            if verifier is not None:
                verifier.verify_query(point, "TCUDB", catalog, QUERY_Q1,
                                      device=device, options=options)
    result.notes.append(
        "normalized column = simulated seconds; the optimizer should track "
        "the cheaper variant on both sides of the density threshold"
    )
    return result


def run_ablation_precision(
    sizes: list[int] | None = None, n_distinct: int = 256, seed: int = 43,
    *, profile: ScaleProfile | None = None,
    verifier: OracleVerifier | None = None,
) -> ExperimentResult:
    """End-to-end cost of forcing each TCU precision on an exact
    (indicator) workload: compact types move less data and multiply
    faster, at zero accuracy cost for 0/1 matrices."""
    sizes = sizes or list(profile.ablation_sizes if profile
                          else (4096, 16384))
    result = ExperimentResult(
        "ablation_precision", "Q1 end-to-end cost by forced precision"
    )
    for size in sizes:
        catalog = microbench_catalog(size, n_distinct, seed)
        device = GPUDevice()
        for precision in (Precision.INT4, Precision.INT8, Precision.FP16):
            options = TCUDBOptions(force_strategy=Strategy.DENSE,
                                   force_precision=precision)
            engine = TCUDBEngine(catalog, device=device,
                                 mode=ExecutionMode.ANALYTIC, options=options)
            run = engine.execute(QUERY_Q1)
            point = result.add(f"{size},{n_distinct}", precision.value,
                               run.seconds)
            annotate_tcu_point(point, run)
            point.normalized = run.seconds
            if verifier is not None:
                verifier.verify_query(point, "TCUDB", catalog, QUERY_Q1,
                                      device=device, options=options)
    result.notes.append("normalized column = simulated seconds")
    return result


def run_ablation_transform_location(
    sizes: list[int] | None = None, n_distinct: int | None = None,
    seed: int = 44, *, profile: ScaleProfile | None = None,
    verifier: OracleVerifier | None = None,
) -> ExperimentResult:
    """GPU-assisted vs forced-CPU table->matrix transformation
    (Equations 1 vs 2)."""
    sizes = sizes or list(profile.ablation_sizes if profile
                          else (4096, 32768))
    if n_distinct is None:
        n_distinct = profile.micro_distinct if profile else 32
    result = ExperimentResult(
        "ablation_transform_location",
        "Q3 transformation location: optimizer (GPU allowed) vs CPU-only",
    )
    for size in sizes:
        catalog = microbench_catalog(size, n_distinct, seed)
        device = GPUDevice()
        for label, options in (
            ("gpu-allowed", TCUDBOptions()),
            ("cpu-only", TCUDBOptions(force_cpu_transform=True)),
        ):
            engine = TCUDBEngine(catalog, device=device,
                                 mode=ExecutionMode.ANALYTIC, options=options)
            run = engine.execute(QUERY_Q3)
            point = result.add(f"{size},{n_distinct}", label, run.seconds,
                               breakdown=run.breakdown)
            annotate_tcu_point(point, run)
            point.normalized = run.seconds
            if verifier is not None:
                verifier.verify_query(point, "TCUDB", catalog, QUERY_Q3,
                                      device=device, options=options)
    result.notes.append("normalized column = simulated seconds")
    return result

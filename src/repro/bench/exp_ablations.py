"""Ablation experiments for the design decisions DESIGN.md calls out.

1. Fused Join+GroupBy+Aggregation vs join-then-aggregate.
2. The density-threshold plan switch (dense GEMM vs TCU-SpMM vs fallback).
3. Adaptive mixed precision (int4/int8/fp16 end-to-end cost).
4. CPU vs GPU-assisted table->matrix transformation.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.datasets.microbench import (
    QUERY_Q1,
    QUERY_Q3,
    microbench_catalog,
)
from repro.engine.base import ExecutionMode
from repro.engine.tcudb import Strategy, TCUDBEngine, TCUDBOptions
from repro.engine.ydb import YDBEngine
from repro.hardware.gpu import GPUDevice
from repro.tensor.precision import Precision


def run_ablation_fused_agg(
    sizes: list[int] | None = None, n_distinct: int = 32, seed: int = 41
) -> ExperimentResult:
    """Fused single-matmul Q3 vs 'TCU join, then GPU group-by'.

    The unfused variant pays the Q1 join (pairs materialized) plus the
    conventional group-by aggregation over the pairs — the structure
    YDB uses and TCUDB's Lemma-3.1 encoding eliminates.
    """
    sizes = sizes or [4096, 8192, 16384, 32768]
    result = ExperimentResult(
        "ablation_fused_agg",
        "Q3: fused TCU Join+GroupBy+Agg vs TCU join + GPU aggregation",
    )
    for size in sizes:
        catalog = microbench_catalog(size, n_distinct, seed)
        device = GPUDevice()
        tcu = TCUDBEngine(catalog, device=device,
                          mode=ExecutionMode.ANALYTIC)
        fused = tcu.execute(QUERY_Q3)
        join_only = tcu.execute(QUERY_Q1)
        pairs = join_only.n_rows
        groupby_seconds = device.cuda.groupby_seconds(pairs, n_distinct)
        unfused_seconds = join_only.seconds + groupby_seconds
        config = f"{size},{n_distinct}"
        result.add(config, "fused (1 matmul)", fused.seconds)
        result.add(config, "join + group-by", unfused_seconds)
        result.find(config, "fused (1 matmul)").normalized = 1.0
        result.find(config, "join + group-by").normalized = (
            unfused_seconds / fused.seconds
        )
    result.notes.append("normalized column = slowdown of the unfused plan")
    return result


def run_ablation_density_switch(
    distincts: list[int] | None = None, n_records: int = 4096, seed: int = 42
) -> ExperimentResult:
    """Dense vs sparse vs optimizer-chosen plan across matrix densities."""
    distincts = distincts or [32, 256, 1024, 4096, 16384]
    result = ExperimentResult(
        "ablation_density_switch",
        "Q1 plan choice across input densities (1/#distinct)",
    )
    for k in distincts:
        catalog = microbench_catalog(n_records, k, seed)
        device = GPUDevice()
        variants = {
            "forced dense": TCUDBOptions(force_strategy=Strategy.DENSE),
            "forced sparse": TCUDBOptions(force_strategy=Strategy.SPARSE),
            "optimizer": TCUDBOptions(),
        }
        for label, options in variants.items():
            engine = TCUDBEngine(catalog, device=device,
                                 mode=ExecutionMode.ANALYTIC, options=options)
            run = engine.execute(QUERY_Q1)
            note = run.extra.get("strategy", "")
            if run.extra.get("fallback_reason"):
                note = "fallback"
            point = result.add(f"{n_records},{k}", label, run.seconds,
                               note=note)
            point.normalized = run.seconds
    result.notes.append(
        "normalized column = simulated seconds; the optimizer should track "
        "the cheaper variant on both sides of the density threshold"
    )
    return result


def run_ablation_precision(
    sizes: list[int] | None = None, n_distinct: int = 256, seed: int = 43
) -> ExperimentResult:
    """End-to-end cost of forcing each TCU precision on an exact
    (indicator) workload: compact types move less data and multiply
    faster, at zero accuracy cost for 0/1 matrices."""
    sizes = sizes or [4096, 16384]
    result = ExperimentResult(
        "ablation_precision", "Q1 end-to-end cost by forced precision"
    )
    for size in sizes:
        catalog = microbench_catalog(size, n_distinct, seed)
        device = GPUDevice()
        for precision in (Precision.INT4, Precision.INT8, Precision.FP16):
            options = TCUDBOptions(force_strategy=Strategy.DENSE,
                                   force_precision=precision)
            engine = TCUDBEngine(catalog, device=device,
                                 mode=ExecutionMode.ANALYTIC, options=options)
            run = engine.execute(QUERY_Q1)
            point = result.add(f"{size},{n_distinct}", precision.value,
                               run.seconds)
            point.normalized = run.seconds
    result.notes.append("normalized column = simulated seconds")
    return result


def run_ablation_transform_location(
    sizes: list[int] | None = None, n_distinct: int = 32, seed: int = 44
) -> ExperimentResult:
    """GPU-assisted vs forced-CPU table->matrix transformation
    (Equations 1 vs 2)."""
    sizes = sizes or [4096, 32768]
    result = ExperimentResult(
        "ablation_transform_location",
        "Q3 transformation location: optimizer (GPU allowed) vs CPU-only",
    )
    for size in sizes:
        catalog = microbench_catalog(size, n_distinct, seed)
        device = GPUDevice()
        for label, options in (
            ("gpu-allowed", TCUDBOptions()),
            ("cpu-only", TCUDBOptions(force_cpu_transform=True)),
        ):
            engine = TCUDBEngine(catalog, device=device,
                                 mode=ExecutionMode.ANALYTIC, options=options)
            run = engine.execute(QUERY_Q3)
            point = result.add(f"{size},{n_distinct}", label, run.seconds,
                               breakdown=run.breakdown)
            point.normalized = run.seconds
    result.notes.append("normalized column = simulated seconds")
    return result

"""Execution-backend experiment: host speedup of fast/torch over sim.

Runs the same SSB query shapes once per available *tensor execution
backend* (:mod:`repro.tensor.backend`) and records, per shape, the host
wall-clock speedup over the ``sim`` backend:

* **sim**  — the NumPy simulator the cost model is calibrated against
  (fp16 operands round-trip through binary16, fp32/fp64 accumulate);
* **fast** — the optimized BLAS path (contiguous float32 sgemm fills,
  preallocated grid accumulation buffers, single-pass bincount
  epilogues);
* **torch** — the PyTorch path, benchmarked only when torch is
  importable (``TorchBackend.available()``).

The experiment's ``unit`` is ``"ratio"``: each point's value is
``host_seconds(sim) / host_seconds(backend)`` for the same query shape,
so ``> 1.0`` means the backend beat the simulator on this host.  The
raw measurement rides along in ``point.host_seconds``.

Two invariants are checked on every run and recorded in the notes:

* **tolerance-identical results** — every backend's rows must match the
  sim run's rows within the TCU differential tolerance (``TCU_REL``,
  covering the fp16-scaled paths where fast's fp32 accumulation is
  *tighter* than sim's binary16 round-trip);
* **backend-invariant simulated time** — simulated ``seconds`` come
  only from the cost-model plan estimates, so they must not change with
  the execution backend.

Honesty over aspiration: the speedup is a *host* property — it measures
how much interpreter/BLAS overhead the fast path sheds, not anything
about real TCU hardware.  The margin shrinks as the fact table grows
(the sgemm itself starts to dominate the per-call fill overhead), so
the profile knobs keep the row count in the overhead-sensitive regime.
The CPU count and the active-by-default backend policy are recorded in
the notes; the regression gate never fails on these machine-dependent
ratios (``host_measured`` experiments are excluded from value-drift
warnings).
"""

from __future__ import annotations

import os

from repro.bench.harness import (
    ExperimentResult,
    annotate_tcu_point,
    timed_execute,
)
from repro.bench.scale import ScaleProfile
from repro.bench.verify import TCU_REL, OracleVerifier, result_rows, rows_match
from repro.datasets.ssb import ssb_catalog
from repro.engine.base import ExecutionMode
from repro.engine.tcudb import TCUDBEngine, TCUDBOptions
from repro.hardware.gpu import GPUDevice
from repro.tensor.backend import TorchBackend, backend_policy

# Three shapes spanning the TCU pipeline: a grouped star grid (dense
# grid-accumulate, where operand-fill overhead dominates), a chained
# join+aggregate (fold-chain gathers feeding one grid), and a
# multi-aggregate join (the batched-GEMM stacked operand path).
GRID_SQL = """
    SELECT d_year, p_brand1, SUM(lo_revenue) AS rev
    FROM lineorder, ddate, part
    WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey
    GROUP BY d_year, p_brand1;"""
JOIN_AGG_SQL = """
    SELECT d_year, SUM(lo_revenue) AS rev, COUNT(*) AS orders
    FROM lineorder, ddate
    WHERE lo_orderdate = d_datekey
    GROUP BY d_year;"""
MULTI_AGG_SQL = """
    SELECT s_region, SUM(lo_revenue) AS rev, SUM(lo_supplycost) AS cost,
           COUNT(*) AS orders
    FROM lineorder, supplier
    WHERE lo_suppkey = s_suppkey
    GROUP BY s_region;"""

SHAPES = (
    ("star_grid", GRID_SQL),
    ("join_agg", JOIN_AGG_SQL),
    ("multi_agg", MULTI_AGG_SQL),
)


def run_backends(
    rows: int | None = None, seed: int = 47, *,
    profile: ScaleProfile | None = None,
    verifier: OracleVerifier | None = None,
) -> ExperimentResult:
    """Host wall-clock speedup of the fast/torch backends over sim."""
    if rows is None:
        rows = profile.backends_rows if profile else 12_000
    reps = profile.backends_reps if profile else 3
    result = ExperimentResult(
        "backend_speedup",
        "Tensor execution backends: host wall-clock speedup of the "
        "optimized fast (and torch, when installed) backend over the "
        "NumPy simulator, per SSB query shape",
        unit="ratio",
        host_measured=True,
    )
    catalog = ssb_catalog(scale_factor=1, rows_per_sf=rows, seed=seed)
    device = GPUDevice()
    backends = ["sim", "fast"]
    if TorchBackend.available():
        backends.append("torch")

    def engine_for(backend: str) -> TCUDBEngine:
        options = TCUDBOptions(backend=backend)
        return TCUDBEngine(catalog, device=device, mode=ExecutionMode.REAL,
                           options=options)

    divergences = 0
    simulated_invariant = True
    for shape, sql in SHAPES:
        sim_host = None
        sim_rows = None
        sim_seconds = None
        for backend in backends:
            run, host_seconds = timed_execute(engine_for(backend), sql,
                                              repeats=reps)
            if sim_host is None:  # the sim anchor
                sim_host = host_seconds
                sim_rows = result_rows(run)
                sim_seconds = run.seconds
            if rows_match(result_rows(run), sim_rows,
                          rel=TCU_REL) is not None:
                divergences += 1
            if run.seconds != sim_seconds:
                simulated_invariant = False
            speedup = sim_host / host_seconds
            point = result.add(shape, f"TCUDB-{backend}", speedup)
            point.host_seconds = host_seconds
            point.normalized = speedup
            annotate_tcu_point(point, run)
            if verifier is not None:
                verifier.verify_query(
                    point, "TCUDB", catalog, sql, device=device,
                    options=TCUDBOptions(backend=backend),
                )
        result.notes.append(
            f"{shape}: host seconds "
            + ", ".join(
                f"{p.engine.split('-', 1)[1]}: {p.host_seconds:.4f}s"
                for p in result.points if p.config == shape
            )
        )
    result.notes.append(
        f"rows_per_sf={rows}, repeats={reps}; value = host speedup over "
        f"the sim backend (> 1.0 means the backend won)"
    )
    result.notes.append(
        f"backend-vs-sim row divergences (rel={TCU_REL}): {divergences}; "
        f"simulated seconds backend-invariant: {simulated_invariant}"
    )
    result.notes.append(
        f"host cpu_count={os.cpu_count()}; default backend policy "
        f"resolves to {backend_policy(None)!r}; torch "
        + ("benchmarked" if "torch" in backends else
           "not installed — skipped")
    )
    return result

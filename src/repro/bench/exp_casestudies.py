"""Case-study experiments: Figures 10-13 and Table 1."""

from __future__ import annotations

import numpy as np

from repro.bench.harness import (
    ExperimentResult,
    annotate_tcu_point,
    timed_execute,
)
from repro.bench.scale import ScaleProfile
from repro.bench.verify import OracleVerifier
from repro.datasets.em import beer_catalog, itunes_catalog
from repro.datasets.graphs import graph_catalog, reduced_road_graph
from repro.datasets.matmul import MATMUL_QUERY, matmul_catalog
from repro.engine.base import ExecutionMode
from repro.engine.magiq import MAGiQEngine
from repro.engine.monetdb import MonetDBEngine
from repro.engine.tcudb import TCUDBEngine
from repro.engine.tcudb.cost import OperatorGeometry
from repro.engine.tcudb.feasibility import run_feasibility_test
from repro.engine.tcudb.optimizer import TCUOptimizer
from repro.engine.ydb import YDBEngine
from repro.hardware.calibration import run_calibration
from repro.hardware.gpu import GPUDevice
from repro.hardware.profiles import I7_7700K
from repro.storage.table import Table
from repro.tensor.precision import ValueRange
from repro.workloads.em_blocking import (
    BEER_ATTRIBUTES,
    ITUNES_ATTRIBUTES,
    beer_blocking_query,
    itunes_blocking_query,
)
from repro.workloads.matmul_query import mape
from repro.workloads.pagerank import PR_Q1, PR_Q2, PR_Q3

# -- Figure 10: the matmul query ------------------------------------------- #

PAPER_FIG10 = {
    "YDB": {4096: 1.00, 8192: 3.97, 16384: 10.73, 32768: 66.32},
    "TCUDB": {4096: 0.13, 8192: 0.53, 16384: 2.02, 32768: 8.37},
}


def project_matmul_ydb(device: GPUDevice, dim: int) -> float:
    """Cost-model projection of YDB on Figure 5's query at paper scale.

    Mirrors the executor's charges: column loads, the fused
    probe-accumulate join (dim**3 pairs) and the group-by over the
    dim**2 result grid.
    """
    records = dim * dim
    pairs = records * dim
    seconds = device.h2d_seconds(2 * records * 3 * 8.0)
    seconds += device.cuda.accumulate_join_seconds(2 * records, pairs)
    seconds += device.cuda.groupby_seconds(records, records)
    seconds += device.d2h_seconds(records * 3 * 8.0, overlap=True)
    return seconds


def project_matmul_tcudb(device: GPUDevice, dim: int) -> float:
    """Optimizer-driven projection of TCUDB on the same configuration."""
    records = dim * dim
    geometry = OperatorGeometry(
        g1=dim, g2=dim, k=dim,
        nnz_left=records, nnz_right=records,
        n_tuples=2 * records,
        raw_bytes=2 * records * 3 * 8.0,
        result_rows=records,
        n_matmuls=2,
        needs_nonzero=True,
        fill_scale=4.0,
    )
    host = I7_7700K
    optimizer = TCUOptimizer(device, host, run_calibration(device, host))
    feasibility = run_feasibility_test(
        ValueRange(0.0, 1.0), ValueRange(0.0, 1.0), dim
    )
    decision = optimizer.decide(geometry, feasibility, pairs=records * dim,
                                grouped=True)
    assert decision.plan is not None
    return decision.plan.total


def run_fig10(
    engine_dims: list[int] | None = None,
    projected_dims: list[int] | None = None,
    seed: int = 10,
    *,
    profile: ScaleProfile | None = None,
    verifier: OracleVerifier | None = None,
) -> ExperimentResult:
    """Figure 10: matmul query, engine-measured small dims plus
    cost-model projections at the paper's dims (4096**2..32768**2 records
    cannot be materialized in a Python process; EXPERIMENTS.md documents
    the projection methodology and its validation at overlapping dims)."""
    engine_dims = engine_dims or list(
        profile.fig10_engine_dims if profile else (256, 512, 1024))
    projected_dims = projected_dims or list(
        profile.fig10_projected_dims if profile else (4096, 8192, 16384,
                                                      32768))
    device = GPUDevice()
    result = ExperimentResult(
        "fig10", "Matrix-multiplication query (normalized to YDB @ 4096)"
    )
    measured: dict[str, dict[int, float]] = {"YDB": {}, "TCUDB": {}}
    for dim in engine_dims:
        catalog = matmul_catalog(dim, seed)
        engines = {
            "YDB": YDBEngine(catalog, device=device,
                             mode=ExecutionMode.ANALYTIC),
            "TCUDB": TCUDBEngine(catalog, device=device,
                                 mode=ExecutionMode.ANALYTIC),
        }
        for name, engine in engines.items():
            run, host_seconds = timed_execute(engine, MATMUL_QUERY)
            measured[name][dim] = run.seconds
            point = result.add(f"{dim} (engine)", name, run.seconds)
            point.host_seconds = host_seconds
            if name == "TCUDB":
                annotate_tcu_point(point, run)
            if verifier is not None:
                verifier.verify_query(point, name, catalog, MATMUL_QUERY,
                                      device=device)
    # The projections reuse the executor's own cost charges; validate them
    # against the engine-measured runs at the largest overlapping dim.
    probe_dim = engine_dims[-1]
    projectors = {"YDB": project_matmul_ydb, "TCUDB": project_matmul_tcudb}
    model_ok: dict[str, tuple[bool, str]] = {}
    for name, projector in projectors.items():
        projected = projector(device, probe_dim)
        ratio = projected / measured[name][probe_dim]
        model_ok[name] = (
            1 / 3 < ratio < 3,
            f"model/engine = {ratio:.2f} @ dim {probe_dim}",
        )
    for dim in projected_dims:
        ydb_point = result.add(
            str(dim), "YDB", project_matmul_ydb(device, dim),
            paper_value=PAPER_FIG10["YDB"].get(dim))
        tcu_point = result.add(
            str(dim), "TCUDB", project_matmul_tcudb(device, dim),
            paper_value=PAPER_FIG10["TCUDB"].get(dim),
            note="blocked" if dim >= 32768 else "")
        if verifier is not None:
            for point, name in ((ydb_point, "YDB"), (tcu_point, "TCUDB")):
                ok, note = model_ok[name]
                verifier.verify_check(point, ok, "model", note)
    result.normalize(str(projected_dims[0]), "YDB")
    result.notes.append(
        "engine rows are measured end-to-end on materialized tables; "
        "paper-dim rows are cost-model projections (validated against "
        "engine runs at the overlapping small dims)"
    )
    return result


# -- Table 1: precision ------------------------------------------------------ #

PAPER_TABLE1 = {
    "0/1": {2048: 0.0, 4096: 0.0, 8192: 0.0, 16384: 0.0, 32768: 0.0},
    "+-2^7": {2048: 0.0, 4096: 0.0, 8192: 0.00076, 16384: 0.00076,
              32768: 0.00076},
    "+-2^15": {2048: 0.00114, 4096: 0.00450, 8192: 0.00908, 16384: 0.00908,
               32768: 0.00908},
    "+-2^31": {2048: 0.00122, 4096: 0.00451, 8192: 0.00909, 16384: 0.00909,
               32768: 0.00909},
}

TABLE1_RANGES = {
    "0/1": (0, 2),
    "+-2^7": (-(2**7), 2**7),
    "+-2^15": (-(2**15), 2**15),
    "+-2^31": (-(2**31), 2**31),
}


def run_table1(
    dims: list[int] | None = None,
    sample: int | None = None,
    seed: int = 1,
    *,
    profile: ScaleProfile | None = None,
    verifier: OracleVerifier | None = None,
) -> ExperimentResult:
    """Table 1: MAPE of fp16 TCU matmul vs float64 over value ranges.

    The error depends on the reduction length (the full dim is used); the
    output is sampled over ``sample x sample`` cells to bound runtime.
    """
    dims = dims or list(profile.table1_dims if profile
                        else (2048, 4096, 8192, 16384, 32768))
    if sample is None:
        sample = profile.table1_sample if profile else 128
    device = GPUDevice()
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        "table1", "MAPE (%) of fp16 matmul queries by value range",
        unit="percent",
    )
    for label, (lo, hi) in TABLE1_RANGES.items():
        for dim in dims:
            a = rng.integers(lo, hi, size=(sample, dim)).astype(np.float64)
            b = rng.integers(lo, hi, size=(dim, sample)).astype(np.float64)
            product = device.tcu.matmul(a, b)
            error = mape(product, a @ b) * 100.0
            point = result.add(
                f"{label} dim={dim}", "TCUDB fp16", error,
                paper_value=PAPER_TABLE1[label].get(dim),
            )
            point.normalized = error  # already a percentage
            if verifier is not None:
                # The point *is* an accuracy measurement; check the
                # paper's invariants: 0/1 indicators are exact, every
                # other range stays well under 0.1% MAPE.
                if label == "0/1":
                    ok = error == 0.0
                    note = f"indicator MAPE {error:.2e}% (must be 0)"
                else:
                    ok = np.isfinite(error) and 0.0 <= error < 0.1
                    note = f"MAPE {error:.4f}% (bound 0.1%)"
                verifier.verify_check(point, bool(ok), "numeric", note)
    result.notes.append(
        f"errors measured on a {sample}x{sample} sampled output block with "
        "the full reduction length; values are percentages"
    )
    return result


# -- Figure 11: entity-matching blocking -------------------------------------- #

PAPER_FIG11 = {
    "beer": {"abv": (3.06, 1.00, 0.03), "style": (2.37, 1.00, 0.40),
             "factory": (3.08, 1.00, 0.60), "beer_name": (2.49, 1.00, 0.75)},
    "itunes": {"price": (2.81, 1.00, 0.003), "genre": (7.71, 1.00, 0.26),
               "time": (2.34, 1.00, 0.06), "artist": (3.46, 1.00, 0.08),
               "copyright": (1.16, 1.00, 0.30), "album": (1.49, 1.00, 0.42)},
    "itunes_scaled": {"price": (2.46, 1.00, 0.005), "genre": (1.67, 1.00, 0.14),
                      "time": (2.20, 1.00, 0.096), "artist": (1.33, 1.00, 0.13),
                      "copyright": (1.09, 1.00, 0.13),
                      "album": (1.72, 1.00, 0.15)},
}


def run_fig11(dataset: str, seed: int = 11, *,
              profile: ScaleProfile | None = None,
              verifier: OracleVerifier | None = None) -> ExperimentResult:
    """Figure 11: EM blocking queries per attribute, normalized to YDB."""
    if dataset == "beer":
        catalog = beer_catalog(seed)
        attributes = BEER_ATTRIBUTES
        query_for = beer_blocking_query
    elif dataset in ("itunes", "itunes_scaled"):
        catalog = itunes_catalog(seed, scaled=dataset == "itunes_scaled")
        attributes = ITUNES_ATTRIBUTES
        query_for = itunes_blocking_query
    else:
        raise KeyError(f"unknown EM dataset {dataset!r}")
    device = GPUDevice()
    engines = {
        "MonetDB": MonetDBEngine(catalog, mode=ExecutionMode.ANALYTIC),
        "YDB": YDBEngine(catalog, device=device, mode=ExecutionMode.ANALYTIC),
        "TCUDB": TCUDBEngine(catalog, device=device,
                             mode=ExecutionMode.ANALYTIC),
    }
    result = ExperimentResult(
        f"fig11_{dataset}",
        f"EM blocking on {dataset} (normalized to YDB per attribute)",
    )
    paper = PAPER_FIG11[dataset]
    for attribute in attributes:
        sql = query_for(attribute)
        runs = {}
        host_seconds = {}
        for name, engine in engines.items():
            runs[name], host_seconds[name] = timed_execute(engine, sql)
        baseline = runs["YDB"].seconds
        refs = paper.get(attribute)
        for i, name in enumerate(("MonetDB", "YDB", "TCUDB")):
            run = runs[name]
            note = ""
            if name == "TCUDB":
                note = run.extra.get("strategy", "")
                if run.extra.get("fallback_reason"):
                    note = "fallback"
            point = result.add(
                attribute, name, run.seconds,
                paper_value=refs[i] if refs else None,
                breakdown=run.breakdown, note=note,
            )
            point.host_seconds = host_seconds[name]
            if name == "TCUDB":
                annotate_tcu_point(point, run)
            point.normalized = run.seconds / baseline
            if verifier is not None:
                verifier.verify_query(point, name, catalog, sql,
                                      device=device)
    return result


# -- Figures 12 & 13: PageRank ------------------------------------------------- #

PAPER_FIG12 = {
    "q1": {"YDB": {1024: 1.00, 2048: 1.34, 3072: 1.98, 4096: 3.23, 8192: 5.26},
           "TCUDB": {1024: 0.23, 2048: 0.41, 3072: 0.44, 4096: 0.48,
                     8192: 0.68}},
    "q2": {"YDB": {1024: 1.00, 2048: 1.34, 3072: 1.74, 4096: 2.12, 8192: 4.17},
           "TCUDB": {1024: 0.24, 2048: 0.48, 3072: 1.25, 4096: 1.36,
                     8192: 1.96}},
    "q3": {"YDB": {1024: 1.00, 2048: 1.44, 3072: 1.95, 4096: 2.41, 8192: 4.70},
           "TCUDB": {1024: 0.24, 2048: 0.53, 3072: 0.85, 4096: 0.94,
                     8192: 1.45}},
}

PAPER_FIG13 = {
    "MonetDB": {1024: 1.00, 2048: 1.10, 4096: 1.39, 8192: 3.24, 16384: 3.41,
                32768: 6.60},
    "YDB": {1024: 0.49, 2048: 0.71, 4096: 1.18, 8192: 2.31},
    "MAGiQ": {1024: 0.25, 2048: 0.38, 4096: 0.69, 8192: 1.15, 16384: 2.21,
              32768: 4.33},
    "TCUDB": {1024: 0.12, 2048: 0.26, 4096: 0.46, 8192: 0.71, 16384: 1.47,
              32768: 1.58},
}

PR_QUERIES = {"q1": PR_Q1, "q2": PR_Q2, "q3": PR_Q3}


def _pagerank_catalog(n_nodes: int, seed: int):
    """Graph catalog with OUTDEGREE and PAGERANK side tables prebuilt."""
    graph = reduced_road_graph(n_nodes, seed)
    catalog = graph_catalog(graph)
    degrees = np.bincount(graph.src, minlength=graph.n_nodes)
    with_edges = np.nonzero(degrees)[0]
    catalog.register(Table.from_dict("outdegree", {
        "id": with_edges,
        "degree": degrees[with_edges].astype(float),
    }))
    catalog.register(Table.from_dict("pagerank", {
        "id": with_edges,
        "rank": np.full(with_edges.size, 1.0 / max(graph.n_nodes, 1)),
    }))
    return graph, catalog


def run_fig12(query: str, sizes: list[int] | None = None,
              seed: int = 12, *, profile: ScaleProfile | None = None,
              verifier: OracleVerifier | None = None) -> ExperimentResult:
    """Figure 12: PR Q1/Q2/Q3 on YDB vs TCUDB across graph sizes."""
    sizes = sizes or list(profile.fig12_sizes if profile
                          else (1024, 2048, 3072, 4096, 8192))
    sql = PR_QUERIES[query]
    result = ExperimentResult(
        f"fig12{'abc'[list(PR_QUERIES).index(query)]}",
        f"PageRank {query.upper()} (normalized to YDB @ 1K)",
    )
    paper = PAPER_FIG12[query]
    for size in sizes:
        graph, catalog = _pagerank_catalog(size, seed)
        device = GPUDevice()
        params = {"alpha": 0.85, "num_node": graph.n_nodes}
        engines = {
            "YDB": YDBEngine(catalog, device=device),
            "TCUDB": TCUDBEngine(catalog, device=device),
        }
        for name, engine in engines.items():
            run, host_seconds = timed_execute(engine, sql, params=params)
            note = ""
            if name == "TCUDB":
                note = run.extra.get("strategy", "")
                if run.extra.get("fallback_reason"):
                    note = "fallback"
            point = result.add(f"{size}", name, run.seconds,
                               paper_value=paper[name].get(size),
                               breakdown=run.breakdown, note=note)
            point.host_seconds = host_seconds
            if name == "TCUDB":
                annotate_tcu_point(point, run)
            if verifier is not None:
                verifier.verify_query(point, name, catalog, sql,
                                      params=params, device=device)
    result.normalize(str(sizes[0]), "YDB")
    return result


def _core_seconds(run, engine_name: str) -> float:
    """The 'core join and aggregation' latency Figure 13 reports."""
    stages = run.breakdown.stages
    if engine_name == "MonetDB":
        return stages.get("cpu_processing", run.seconds)
    if engine_name == "YDB":
        return sum(
            seconds for stage, seconds in stages.items()
            if stage in ("join", "groupby_aggregation", "aggregation")
        )
    # TCUDB: matrix fill + the fused TCU operator.
    return sum(
        seconds for stage, seconds in stages.items()
        if stage.startswith("tcu_") or stage == "fill_matrices"
    )


def _magiq_core_check(magiq: MAGiQEngine, graph) -> tuple[bool, str]:
    """Verify one PR Q3 core step of the GraphBLAS program against an
    independent NumPy computation of the same update."""
    n = graph.n_nodes
    degrees = np.bincount(graph.src, minlength=n).astype(float)
    ranks = np.full(n, 1.0 / n)
    contribution = magiq.grb.ewise_div(ranks, degrees).value
    spread = magiq.grb.vxm(contribution, magiq.adjacency).value
    updated = magiq.grb.apply_scalar(spread, 0.85, 0.15 / n).value
    safe = np.where(degrees > 0, ranks / np.maximum(degrees, 1.0), 0.0)
    expected = np.zeros(n)
    np.add.at(expected, graph.dst, safe[graph.src])
    expected = 0.85 * expected + 0.15 / n
    error = float(np.max(np.abs(updated - expected)))
    return error < 1e-9, f"graphblas vs numpy max abs err {error:.2e}"


def run_fig13(sizes: list[int] | None = None, seed: int = 13,
              ydb_max_nodes: int = 8192, *,
              profile: ScaleProfile | None = None,
              verifier: OracleVerifier | None = None) -> ExperimentResult:
    """Figure 13: PR Q3 core latency on MonetDB/YDB/MAGiQ/TCUDB."""
    sizes = sizes or list(profile.fig13_sizes if profile
                          else (1024, 2048, 4096, 8192, 16384, 32768))
    result = ExperimentResult(
        "fig13", "PageRank Q3 core join+aggregation (normalized to "
                 "MonetDB @ 1K)",
    )
    for size in sizes:
        graph, catalog = _pagerank_catalog(size, seed)
        device = GPUDevice()
        params = {"alpha": 0.85, "num_node": graph.n_nodes}
        monet = MonetDBEngine(catalog, mode=ExecutionMode.ANALYTIC)
        run, host_seconds = timed_execute(monet, PR_Q3, params=params)
        point = result.add(str(size), "MonetDB",
                           _core_seconds(run, "MonetDB"),
                           paper_value=PAPER_FIG13["MonetDB"].get(size))
        point.host_seconds = host_seconds
        if verifier is not None:
            verifier.verify_query(point, "MonetDB", catalog, PR_Q3,
                                  params=params)
        if size <= ydb_max_nodes:
            # The released YDB only supports graphs up to 8,192 nodes
            # (Section 5.5); we reproduce the cap.
            ydb = YDBEngine(catalog, device=device,
                            mode=ExecutionMode.ANALYTIC)
            run, host_seconds = timed_execute(ydb, PR_Q3, params=params)
            point = result.add(str(size), "YDB", _core_seconds(run, "YDB"),
                               paper_value=PAPER_FIG13["YDB"].get(size))
            point.host_seconds = host_seconds
            if verifier is not None:
                verifier.verify_query(point, "YDB", catalog, PR_Q3,
                                      params=params, device=device)
        magiq = MAGiQEngine(device)
        magiq.load_graph(graph.src, graph.dst, graph.n_nodes)
        point = result.add(str(size), "MAGiQ", magiq.pr_q3_core_seconds(),
                           paper_value=PAPER_FIG13["MAGiQ"].get(size))
        if verifier is not None:
            # MAGiQ executes GraphBLAS, not SQL; verify its core update
            # numerically against an independent NumPy computation.
            ok, note = _magiq_core_check(magiq, graph)
            verifier.verify_check(point, ok, "numeric", note)
        tcu = TCUDBEngine(catalog, device=device, mode=ExecutionMode.ANALYTIC)
        run, host_seconds = timed_execute(tcu, PR_Q3, params=params)
        point = result.add(str(size), "TCUDB", _core_seconds(run, "TCUDB"),
                           paper_value=PAPER_FIG13["TCUDB"].get(size),
                           note=run.extra.get("strategy", ""))
        point.host_seconds = host_seconds
        annotate_tcu_point(point, run)
        if verifier is not None:
            verifier.verify_query(point, "TCUDB", catalog, PR_Q3,
                                  params=params, device=device)
    result.normalize(str(sizes[0]), "MonetDB")
    result.notes.append("YDB capped at 8,192 nodes as in the paper")
    return result

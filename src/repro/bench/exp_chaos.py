"""Chaos experiment: injected fault rates vs serving resilience.

Sweeps a deterministic :class:`~repro.common.faults.FaultPlan` over the
fault-tolerant serving stack — transient shard errors, corrupted grid
partials, and unavailable backends, each at a per-site probability
derived from the swept rate — and records, per rate:

* **success-rate** — fraction of submitted queries that returned a
  result at the default retry budget (the acceptance bar is 1.0: every
  injected fault class is recoverable, so retries + the degradation
  ladder must always converge);
* **availability** — fraction whose *rows* equal the Reference oracle's
  (a degraded answer must still be exact, not approximate);
* **p99-overhead** — p99 host latency divided by the fault-free p99 on
  the same warmed server (the price of retries/backoff/failover).

The fault plan is seeded, so a failing rate reproduces exactly.  The
latency ratios are host-measured (machine-dependent) and therefore
exempt from the regression gate's value-drift check; the correctness
columns are not machine-dependent at all.
"""

from __future__ import annotations

import time

from repro.bench.exp_concurrency import JOIN_AGG_SQL, SCAN_AGG_SQL
from repro.bench.harness import ExperimentResult
from repro.bench.scale import ScaleProfile
from repro.bench.verify import OracleVerifier, result_rows, rows_match
from repro.bench.verify import TCU_REL
from repro.common.faults import (
    SITE_GRID_ACCUMULATE,
    SITE_SESSION_RUN,
    SITE_SHARD_EXECUTE,
    FaultPlan,
    FaultRule,
    inject,
)
from repro.datasets.ssb import ssb_catalog
from repro.engine.reference import ReferenceEngine
from repro.serve.server import QueryServer

#: Chaos plan seed (pinned so bench failures replay exactly).
CHAOS_SEED = 1306


def _plan_for(rate: float, index: int) -> FaultPlan:
    """The deterministic fault mix for one swept rate: transient shard
    errors at the full rate, corrupt grid partials at half, backend
    unavailability (server-level) at a quarter — all recoverable."""
    return FaultPlan([
        FaultRule(site=SITE_SHARD_EXECUTE, kind="transient", p=rate),
        FaultRule(site=SITE_GRID_ACCUMULATE, kind="corrupt", p=rate / 2),
        FaultRule(site=SITE_SESSION_RUN, kind="unavailable", p=rate / 4),
    ], seed=CHAOS_SEED + index)


def _p99(latencies: list[float]) -> float:
    ordered = sorted(latencies)
    index = min(max(int(-(-0.99 * len(ordered) // 1)) - 1, 0),
                len(ordered) - 1)
    return ordered[index]


def run_chaos(
    rows: int | None = None, seed: int = 47, *,
    profile: ScaleProfile | None = None,
    verifier: OracleVerifier | None = None,
) -> ExperimentResult:
    """Fault-rate sweep: availability / success-rate / p99 overhead."""
    if rows is None:
        rows = profile.chaos_rows if profile else 12_000
    rates = list(profile.chaos_fault_rates if profile else (0.0, 0.1, 0.3))
    shards = profile.chaos_shards if profile else 2
    queries = profile.chaos_queries if profile else 6
    reps = profile.chaos_reps if profile else 2
    result = ExperimentResult(
        "chaos_resilience",
        "Injected fault rate vs serving resilience: success rate and "
        "oracle-exact availability must hold 1.0 while p99 latency "
        "absorbs the retry/failover overhead",
        unit="ratio",
        host_measured=True,
    )
    catalog = ssb_catalog(scale_factor=1, rows_per_sf=rows, seed=seed)
    oracle = ReferenceEngine(catalog)
    workload = [JOIN_AGG_SQL, SCAN_AGG_SQL] * queries
    expected = {sql: result_rows(oracle.execute(sql)) for sql in set(workload)}

    server = QueryServer(
        catalog, engine="tcudb", shards=shards, max_concurrent=2,
        engine_kwargs={"fact": "lineorder", "partition_key": "lo_orderkey"},
    )
    try:
        session = server.session()
        with inject(None):  # warm the program cache fault-free
            for sql in set(workload):
                session.execute(sql)

        def run_pass(plan: FaultPlan | None):
            latencies, succeeded, correct = [], 0, 0
            with inject(plan):
                for sql in workload:
                    best = None
                    run = None
                    for _ in range(reps):
                        started = time.perf_counter()
                        try:
                            run = session.execute(sql)
                        except Exception:
                            run = None
                            continue
                        elapsed = time.perf_counter() - started
                        best = elapsed if best is None else min(best, elapsed)
                    if run is None or best is None:
                        continue
                    succeeded += 1
                    latencies.append(best)
                    if rows_match(result_rows(run), expected[sql],
                                  rel=TCU_REL) is None:
                        correct += 1
            return latencies, succeeded, correct

        clean_latencies, _, _ = run_pass(None)
        clean_p99 = _p99(clean_latencies)

        for index, rate in enumerate(rates):
            plan = _plan_for(rate, index)
            latencies, succeeded, correct = run_pass(plan)
            total = len(workload)
            success_rate = succeeded / total
            availability = correct / total
            p99 = _p99(latencies) if latencies else float("inf")
            overhead = p99 / clean_p99 if clean_p99 > 0 else float("inf")

            config = f"fault_rate={rate}"
            p_success = result.add(config, "success-rate", success_rate)
            p_avail = result.add(config, "availability", availability)
            p_over = result.add(config, "p99-overhead", overhead)
            p_over.host_seconds = p99
            if verifier is not None:
                verifier.verify_check(
                    p_success, success_rate == 1.0, "oracle",
                    f"{succeeded}/{total} queries returned at the "
                    f"default retry budget",
                )
                verifier.verify_check(
                    p_avail, availability == 1.0, "oracle",
                    f"{correct}/{total} answers row-identical to the "
                    f"Reference oracle (degraded answers stay exact)",
                )
                # Replay the workload's join query through the same
                # sharded path, fault-free, against the oracle.
                verifier.verify_query(
                    p_over, f"tcudb-dist{shards}", catalog, JOIN_AGG_SQL,
                )
            result.notes.append(
                f"fault_rate={rate}: injected "
                + ", ".join(
                    f"{r['site']}:{r['kind']} x{r['fires']}"
                    for r in plan.stats()["rules"]
                )
            )
        stats = server.resilience_stats()["queries"]
        result.notes.append(
            f"server recovery ledger: retried={stats['retried']}, "
            f"degraded={stats['degraded']}, failed={stats['failed']}; "
            f"breaker={server.breaker.snapshot()['state']}"
        )
    finally:
        server.close()
    result.notes.append(
        f"rows_per_sf={rows}, shards={shards}, "
        f"queries_per_rate={len(workload)}, repeats={reps}, "
        f"plan_seed={CHAOS_SEED}; p99-overhead is faulty p99 / "
        f"fault-free p99 on the same warmed server (host-measured)"
    )
    return result

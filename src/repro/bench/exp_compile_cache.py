"""Compile-once amortization experiment: warm program cache vs cold
per-request compilation on a repeated parameterized workload.

The serving scenario the program cache targets: a small set of
statement *templates* executed over and over with different parameter
values (the classic dashboard/report shape).  Two configurations run
the identical workload — same statements, same parameter schedule, same
engine options:

* **cold** — every request is a fresh one-shot ``execute`` on an
  uncached engine: parse, bind, lower, fuse, then execute;
* **warm** — each template is ``prepare``d once and every request is an
  ``execute_prepared`` against a shared
  :class:`~repro.engine.cache.ProgramCache`: after the first request
  per template, only parameter substitution + execution remain.

The experiment's ``unit`` is ``"ratio"``: the warm point's value is
``cold_host_seconds / warm_host_seconds`` for the whole workload
(> 1.0 means the cache paid off), with the raw measurements in
``point.host_seconds``.  The cold anchor is 1.0 by construction.  The
cache hit rate of the warm run is recorded in the notes — for S
templates executed E times each it should be exactly ``(E-1)/E`` of
lookups (first touch per template compiles, the rest hit).

Honesty over aspiration: the ratio is a *host* interpreter property
(compile cost vs execute cost on this machine), so the experiment is
``host_measured`` and the regression gate skips value-drift warnings.
The simulated device ledger is identical warm and cold — the cache
removes host-side compilation, not device work — and that invariance is
checked on every run and recorded in the notes.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, annotate_tcu_point
from repro.bench.scale import ScaleProfile
from repro.bench.verify import OracleVerifier
from repro.datasets.ssb import ssb_catalog
from repro.engine.cache import ProgramCache
from repro.engine.tcudb import TCUDBEngine, TCUDBOptions
from repro.hardware.gpu import GPUDevice

#: Parameterized statement templates with per-execution value
#: schedules: (template, [params, params, ...]) — the workload cycles
#: through the schedule as executions repeat.
STATEMENTS: list[tuple[str, list[dict]]] = [
    (
        "select d.d_year, sum(lo.lo_revenue) "
        "from lineorder as lo, ddate as d "
        "where lo.lo_orderdate = d.d_datekey and d.d_year >= @year "
        "group by d.d_year order by d.d_year",
        [{"year": y} for y in (1992, 1994, 1996, 1998)],
    ),
    (
        "select d.d_year, sum(lo.lo_extendedprice * lo.lo_discount) "
        "from lineorder as lo, ddate as d "
        "where lo.lo_orderdate = d.d_datekey "
        "and lo.lo_discount between @lo and @hi and lo.lo_quantity < @q "
        "group by d.d_year",
        [{"lo": 1, "hi": 3, "q": 25}, {"lo": 2, "hi": 5, "q": 35},
         {"lo": 4, "hi": 6, "q": 45}],
    ),
    (
        "select c.c_nation, sum(lo.lo_revenue) "
        "from lineorder as lo, customer as c "
        "where lo.lo_custkey = c.c_custkey and c.c_region = @region "
        "group by c.c_nation order by c.c_nation",
        [{"region": r} for r in ("ASIA", "AMERICA", "EUROPE")],
    ),
    (
        "select d.d_year, count(*) from lineorder as lo, ddate as d "
        "where lo.lo_orderdate = d.d_datekey group by d.d_year "
        "having sum(lo.lo_revenue) > @floor order by d.d_year",
        [{"floor": f} for f in (1_000_000, 20_000_000)],
    ),
    (
        "select s.s_nation, sum(lo.lo_supplycost) "
        "from lineorder as lo, supplier as s "
        "where lo.lo_suppkey = s.s_suppkey and lo.lo_quantity > @q "
        "group by s.s_nation order by s.s_nation",
        [{"q": q} for q in (10, 25, 40)],
    ),
    (
        "select d.d_year, sum(lo.lo_revenue * @scale) "
        "from lineorder as lo, ddate as d "
        "where lo.lo_orderdate = d.d_datekey group by d.d_year "
        "order by d.d_year",
        [{"scale": s} for s in (1, 2, 3)],
    ),
]


def _workload(statements: int, executions: int):
    """The (template, params) request sequence, round-robin over value
    schedules — deterministic, identical for warm and cold."""
    chosen = STATEMENTS[:statements]
    requests = []
    for template, schedule in chosen:
        for i in range(executions):
            requests.append((template, schedule[i % len(schedule)]))
    return chosen, requests


def run_compile_cache(
    rows: int | None = None, seed: int = 47, *,
    profile: ScaleProfile | None = None,
    verifier: OracleVerifier | None = None,
) -> ExperimentResult:
    """Warm-vs-cold host seconds for a repeated parameterized workload."""
    import time

    if rows is None:
        rows = profile.compile_cache_rows if profile else 12_000
    statements = (profile.compile_cache_statements if profile else 4)
    statements = min(statements, len(STATEMENTS))
    executions = profile.compile_cache_executions if profile else 6
    reps = profile.compile_cache_reps if profile else 3
    result = ExperimentResult(
        "compile_cache",
        "Compile-once serving: repeated parameterized workload, "
        "warm program cache vs cold per-request compilation",
        unit="ratio",
        host_measured=True,
    )
    catalog = ssb_catalog(scale_factor=1, rows_per_sf=rows, seed=seed)
    device = GPUDevice()
    chosen, requests = _workload(statements, executions)

    def build_engine(cache: ProgramCache | None) -> TCUDBEngine:
        return TCUDBEngine(catalog, device=device,
                           options=TCUDBOptions(),
                           program_cache=cache)

    def run_cold() -> tuple[float, float, object]:
        engine = build_engine(None)
        simulated = 0.0
        start = time.perf_counter()
        last = None
        for template, params in requests:
            last = engine.execute(template, params=params)
            simulated += last.seconds
        return time.perf_counter() - start, simulated, last

    def run_warm() -> tuple[float, float, object, dict]:
        cache = ProgramCache()
        engine = build_engine(cache)
        prepared = {template: engine.prepare(template)
                    for template, _ in chosen}
        simulated = 0.0
        start = time.perf_counter()
        last = None
        for template, params in requests:
            last = engine.execute_prepared(prepared[template], params)
            simulated += last.seconds
        return (time.perf_counter() - start, simulated, last,
                cache.stats())

    # Minimum over repeats (scheduling noise only ever adds time); the
    # row-identity and simulated-invariance checks run on every repeat.
    cold_host = warm_host = float("inf")
    cold_sim = warm_sim = None
    divergences = 0
    warm_stats: dict = {}
    last_cold = last_warm = None
    for _ in range(max(reps, 1)):
        host, sim, last_cold = run_cold()
        cold_host = min(cold_host, host)
        cold_sim = sim
        host, sim, last_warm, warm_stats = run_warm()
        warm_host = min(warm_host, host)
        warm_sim = sim
        if _rows_of(last_cold) != _rows_of(last_warm):
            divergences += 1
    cold_point = result.add("repeated-workload", "TCUDB-cold", 1.0)
    cold_point.host_seconds = cold_host
    cold_point.normalized = 1.0
    annotate_tcu_point(cold_point, last_cold)
    warm_point = result.add("repeated-workload", "TCUDB-warm",
                            cold_host / warm_host)
    warm_point.host_seconds = warm_host
    warm_point.normalized = cold_host / warm_host
    annotate_tcu_point(warm_point, last_warm)
    if verifier is not None:
        # Replay one binding of every template through the oracle; the
        # cold/cached programs were checked row-identical above, so one
        # verified replay per statement covers both series.
        for index, (template, schedule) in enumerate(chosen):
            point = cold_point if index == 0 else warm_point
            verifier.verify_query(
                point, "TCUDB", catalog, template, dict(schedule[0]),
                device=device, options=TCUDBOptions(),
            )
    hit_rate = warm_stats.get("hit_rate")
    result.notes.append(
        f"statements={len(chosen)}, executions_each={executions}, "
        f"requests={len(requests)}, rows_per_sf={rows}, repeats={reps}"
    )
    result.notes.append(
        "warm cache stats: "
        f"hits={warm_stats.get('hits')}, misses={warm_stats.get('misses')}, "
        f"hit_rate={hit_rate:.3f}" if hit_rate is not None
        else "warm cache stats: no lookups recorded"
    )
    result.notes.append(
        f"host seconds: cold={cold_host:.4f}, warm={warm_host:.4f} "
        f"(speedup {cold_host / warm_host:.2f}x); warm-vs-cold row "
        f"divergences: {divergences}"
    )
    result.notes.append(
        f"simulated device seconds identical warm/cold: "
        f"{cold_sim == warm_sim} (the cache removes host compile cost, "
        "not device work)"
    )
    return result


def _rows_of(run):
    return sorted(map(tuple, run.require_table().rows()))

"""Worker-scaling concurrency experiment for the morsel-parallel executors.

Runs the same query at increasing ``workers`` counts and records the
host wall-clock speedup over the sequential (``workers=1``) run for two
engine paths:

* **TCUDB** — the chunked join+aggregate pipeline (``_grid_accumulate``
  fans per-chunk GEMM partials across the pool, merging grids in chunk
  order);
* **Reference-streaming** — the morsel-driven streaming executor
  (parallel chunk scan/filter with submission-order merge).

The experiment's ``unit`` is ``"ratio"``: each point's value is
``host_seconds(workers=1) / host_seconds(workers=N)`` for the same
engine, so ``> 1.0`` means parallel execution beat sequential on this
host.  The raw measurement rides along in ``point.host_seconds``.

Two invariants are checked on every run and recorded in the notes:

* **bit-identical results** — every parallel run's rows must equal the
  sequential run's rows exactly (the mergeable-partial contract);
* **worker-invariant simulated time** — the simulated ledger models the
  device, not the host interpreter, so ``seconds`` must not change with
  the worker count.

Honesty over aspiration: the speedup is a *host* property.  On a
single-CPU container (``os.cpu_count() == 1``, the common CI shape)
thread-parallel NumPy work cannot beat sequential execution — pool
handoff is pure overhead when there is only one core to run on — so the
curve tops out at or below 1.0 there.  The CPU count is recorded in the
notes so a report is interpretable on its own; the regression gate never
fails on these machine-dependent ratios (``host_measured`` experiments
are excluded from value-drift warnings).
"""

from __future__ import annotations

import os

from repro.bench.harness import (
    ExperimentResult,
    annotate_tcu_point,
    timed_execute,
)
from repro.bench.scale import ScaleProfile
from repro.bench.verify import OracleVerifier
from repro.datasets.ssb import ssb_catalog
from repro.engine.base import ExecutionMode
from repro.engine.reference import ReferenceEngine
from repro.engine.tcudb import TCUDBEngine, TCUDBOptions
from repro.hardware.gpu import GPUDevice

# One join+aggregate (drives the TCU grid-accumulate chunk loop) and one
# filter+aggregate (drives the streaming scan/filter morsels with chunk
# pruning in play).
JOIN_AGG_SQL = """
    SELECT d_year, SUM(lo_revenue) AS rev, COUNT(*) AS orders
    FROM lineorder, ddate
    WHERE lo_orderdate = d_datekey
    GROUP BY d_year;"""
SCAN_AGG_SQL = """
    SELECT SUM(lo_extendedprice * lo_discount) AS revenue
    FROM lineorder
    WHERE lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25;"""


def _rows_of(run):
    return sorted(map(tuple, run.require_table().rows()))


def run_concurrency(
    rows: int | None = None, seed: int = 31, *,
    profile: ScaleProfile | None = None,
    verifier: OracleVerifier | None = None,
) -> ExperimentResult:
    """Host wall-clock speedup of morsel-parallel execution vs workers=1."""
    if rows is None:
        rows = profile.concurrency_rows if profile else 20_000
    worker_counts = list(profile.concurrency_workers if profile
                         else (1, 2, 4))
    chunk_rows = profile.concurrency_chunk_rows if profile else 2048
    reps = profile.concurrency_reps if profile else 3
    result = ExperimentResult(
        "concurrency_scaling",
        "Morsel-parallel worker scaling: host wall-clock speedup over "
        "the sequential executor (same query, same chunks)",
        unit="ratio",
        host_measured=True,
    )
    catalog = ssb_catalog(scale_factor=1, rows_per_sf=rows, seed=seed)
    device = GPUDevice()

    def tcudb_engine(workers: int) -> TCUDBEngine:
        options = TCUDBOptions(chunk_rows=chunk_rows, workers=workers)
        return TCUDBEngine(catalog, device=device, mode=ExecutionMode.REAL,
                           options=options)

    def reference_engine(workers: int) -> ReferenceEngine:
        return ReferenceEngine(catalog, streaming=True,
                               chunk_rows=chunk_rows, workers=workers)

    series = (
        ("TCUDB", tcudb_engine, JOIN_AGG_SQL),
        ("Reference-streaming", reference_engine, SCAN_AGG_SQL),
    )
    divergences = 0
    simulated_invariant = True
    for engine_name, build, sql in series:
        sequential_host = None
        sequential_rows = None
        sequential_sim = None
        for workers in worker_counts:
            engine = build(workers)
            run, host_seconds = timed_execute(engine, sql, repeats=reps)
            if sequential_host is None:  # the workers=1 anchor
                sequential_host = host_seconds
                sequential_rows = _rows_of(run)
                sequential_sim = run.seconds
            if _rows_of(run) != sequential_rows:
                divergences += 1
            if run.seconds != sequential_sim:
                simulated_invariant = False
            speedup = sequential_host / host_seconds
            point = result.add(f"workers={workers}", engine_name, speedup)
            point.host_seconds = host_seconds
            point.normalized = speedup
            if engine_name == "TCUDB":
                annotate_tcu_point(point, run)
            if verifier is not None:
                if engine_name == "TCUDB":
                    verifier.verify_query(
                        point, "TCUDB", catalog, sql, device=device,
                        options=TCUDBOptions(chunk_rows=chunk_rows,
                                             workers=workers),
                    )
                else:
                    verifier.verify_query(point, "Reference", catalog, sql)
        result.notes.append(
            f"{engine_name}: host seconds "
            + ", ".join(
                f"workers={p.config.split('=')[1]}: {p.host_seconds:.4f}s"
                for p in result.points if p.engine == engine_name
            )
        )
    result.notes.append(
        f"rows_per_sf={rows}, chunk_rows={chunk_rows}, repeats={reps}; "
        f"value = host speedup over workers=1 (> 1.0 means parallel won)"
    )
    result.notes.append(
        f"parallel-vs-sequential row divergences: {divergences} "
        f"(bit-identity contract); simulated seconds worker-invariant: "
        f"{simulated_invariant}"
    )
    result.notes.append(
        f"host cpu_count={os.cpu_count()}; on single-core hosts thread "
        "parallelism cannot exceed 1.0x (pool handoff is pure overhead) — "
        "read the curve against the recorded CPU count"
    )
    return result

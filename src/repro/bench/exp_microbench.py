"""Microbenchmark experiments: Figures 3, 7, 8 and 14."""

from __future__ import annotations

import numpy as np

from repro.bench.harness import (
    ExperimentResult,
    annotate_tcu_point,
    timed_execute,
)
from repro.bench.scale import ScaleProfile
from repro.bench.verify import OracleVerifier, skip
from repro.datasets.microbench import (
    QUERY_Q1,
    QUERY_Q3,
    QUERY_Q4,
    microbench_catalog,
)
from repro.engine.base import ExecutionMode
from repro.engine.monetdb import MonetDBEngine
from repro.engine.tcudb import Strategy, TCUDBEngine, TCUDBOptions
from repro.engine.ydb import YDBEngine
from repro.hardware.gpu import GPUDevice
from repro.hardware.profiles import RTX_2080, RTX_3090
from repro.tensor.precision import Precision

QUERIES = {"q1": QUERY_Q1, "q3": QUERY_Q3, "q4": QUERY_Q4}

# Paper values (normalized execution time per figure).
PAPER_FIG3 = {
    "CUDA cores": {1024: 1.00, 2048: 3.64, 4096: 27.1, 8192: 181.3,
                   16384: 1545.2},
    "TCUs": {1024: 0.21, 2048: 1.21, 4096: 8.02, 8192: 55.5, 16384: 547.6},
}

PAPER_FIG7 = {
    "q1": {
        "MonetDB": {4096: 4.90, 8192: 22.05, 16384: 65.88, 32768: 258.41},
        "YDB": {4096: 1.00, 8192: 3.08, 16384: 12.86, 32768: 52.68},
        "TCUDB": {4096: 0.05, 8192: 0.12, 16384: 0.41, 32768: 1.73},
    },
    "q3": {
        "MonetDB": {4096: 0.14, 8192: 23.15, 16384: 88.18, 32768: 354.41},
        "YDB": {4096: 1.00, 8192: 3.60, 16384: 14.57, 32768: 58.55},
        "TCUDB": {4096: 0.04, 8192: 0.09, 16384: 0.32, 32768: 1.37},
    },
    "q4": {
        "MonetDB": {4096: 5.63, 8192: 22.47, 16384: 76.89, 32768: 303.24},
        "YDB": {4096: 1.00, 8192: 3.00, 16384: 13.01, 32768: 52.87},
        "TCUDB": {4096: 0.08, 8192: 0.19, 16384: 0.71, 32768: 2.78},
    },
}

PAPER_FIG8 = {
    "q1": {
        "MonetDB": {32: 4.90, 64: 3.29, 128: 2.42, 256: 1.96, 512: 1.46,
                    1024: 0.71, 2048: 0.50, 4096: 0.41},
        "YDB": {32: 1.00, 64: 0.90, 128: 0.62, 256: 0.61, 512: 0.60,
                1024: 0.54, 2048: 0.53, 4096: 0.53},
        "TCUDB": {32: 0.05, 64: 0.06, 128: 0.08, 256: 0.11, 512: 0.15,
                  1024: 0.21, 2048: 0.34, 4096: 0.60},
    },
    "q3": {
        "MonetDB": {32: 6.07, 64: 3.92, 128: 2.41, 256: 2.06, 512: 1.59,
                    1024: 0.82, 2048: 0.56, 4096: 0.73},
        "YDB": {32: 1.00, 64: 0.66, 128: 0.53, 256: 0.50, 512: 0.46,
                1024: 0.45, 2048: 0.44, 4096: 0.44},
        "TCUDB": {32: 0.04, 64: 0.04, 128: 0.05, 256: 0.08, 512: 0.10,
                  1024: 0.14, 2048: 0.23, 4096: 0.41},
    },
    "q4": {
        "MonetDB": {32: 5.63, 64: 3.50, 128: 2.08, 256: 1.88, 512: 1.07,
                    1024: 0.74, 2048: 0.47, 4096: 0.38},
        "YDB": {32: 1.00, 64: 0.74, 128: 0.60, 256: 0.53, 512: 0.46,
                1024: 0.44, 2048: 0.42, 4096: 0.42},
        "TCUDB": {32: 0.08, 64: 0.08, 128: 0.10, 256: 0.13, 512: 0.16,
                  1024: 0.24, 2048: 0.38, 4096: 0.68},
    },
}

PAPER_FIG14 = {
    "q1": {"YDB": {4096: 1.10, 8192: 1.20, 16384: 1.14, 32768: 2.04},
           "TCUDB": {4096: 1.52, 8192: 1.93, 16384: 1.88, 32768: 1.75}},
    "q3": {"YDB": {4096: 1.08, 8192: 1.12, 16384: 1.05, 32768: 1.68},
           "TCUDB": {4096: 1.43, 8192: 1.90, 16384: 1.87, 32768: 1.75}},
    "q4": {"YDB": {4096: 1.04, 8192: 1.19, 16384: 1.06, 32768: 1.71},
           "TCUDB": {4096: 1.66, 8192: 2.32, 16384: 2.58, 32768: 2.42}},
}


def run_fig3(
    dims: list[int] | None = None,
    *,
    profile: ScaleProfile | None = None,
    verifier: OracleVerifier | None = None,
) -> ExperimentResult:
    """Figure 3: square GEMM on CUDA cores vs TCUs."""
    dims = dims or list(profile.fig3_dims if profile
                        else (1024, 2048, 4096, 8192, 16384))
    device = GPUDevice(RTX_3090)
    result = ExperimentResult(
        "fig3", "Matrix multiplication: CUDA cores vs TCUs (relative time)"
    )
    rng = np.random.default_rng(3)
    for dim in dims:
        cuda_point = result.add(
            str(dim), "CUDA cores",
            device.cuda.matmul_seconds(dim, dim, dim),
            paper_value=PAPER_FIG3["CUDA cores"].get(dim),
        )
        tcu_point = result.add(
            str(dim), "TCUs",
            device.tcu.matmul_seconds(dim, dim, dim),
            paper_value=PAPER_FIG3["TCUs"].get(dim),
        )
        if verifier is not None and verifier.enabled:
            # No SQL behind these points: check the numerics of the unit
            # being timed on a sampled block with the full reduction dim.
            sample = 16
            a = rng.random((sample, dim))
            b = rng.random((dim, sample))
            exact = a @ b
            cuda_err = float(np.max(np.abs(device.cuda.matmul(a, b) - exact)
                                    / np.abs(exact)))
            # CUDA cores compute in fp32 (fp32 accumulate), the TCUs in
            # fp16 with an fp32 accumulator; bound each at its precision.
            verifier.verify_check(
                cuda_point, cuda_err < 1e-4, "numeric",
                f"fp32 matmul rel err {cuda_err:.2e}",
            )
            tcu_err = float(np.max(np.abs(device.tcu.matmul(a, b) - exact)
                                   / np.abs(exact)))
            verifier.verify_check(
                tcu_point, tcu_err < 1e-2, "numeric",
                f"fp16 matmul rel err {tcu_err:.2e}",
            )
        elif verifier is not None:
            # Record why the points are unchecked, like the SQL paths do.
            skip(cuda_point, "unverified (profile)")
            skip(tcu_point, "unverified (profile)")
    result.normalize(str(dims[0]), "CUDA cores")
    return result


def _engines_for(catalog, device=None):
    device = device if device is not None else GPUDevice(RTX_3090)
    mode = ExecutionMode.ANALYTIC
    return {
        "MonetDB": MonetDBEngine(catalog, mode=mode),
        "YDB": YDBEngine(catalog, device=device, mode=mode),
        "TCUDB": TCUDBEngine(catalog, device=device, mode=mode),
    }


def run_fig7(query: str, sizes: list[int] | None = None,
             n_distinct: int | None = None, seed: int = 7, *,
             profile: ScaleProfile | None = None,
             verifier: OracleVerifier | None = None) -> ExperimentResult:
    """Figure 7: Q1/Q3/Q4 vs record count at 32 distinct values."""
    sizes = sizes or list(profile.micro_sizes if profile
                          else (4096, 8192, 16384, 32768))
    if n_distinct is None:
        n_distinct = profile.micro_distinct if profile else 32
    sql = QUERIES[query]
    result = ExperimentResult(
        f"fig7{'abc'[list(QUERIES).index(query)]}",
        f"Microbenchmark {query.upper()} vs #records (K={n_distinct})",
    )
    paper = PAPER_FIG7[query]
    for size in sizes:
        catalog = microbench_catalog(size, n_distinct, seed)
        engines = _engines_for(catalog)
        for name, engine in engines.items():
            run, host_seconds = timed_execute(engine, sql)
            point = result.add(
                f"{size},{n_distinct}", name, run.seconds,
                paper_value=paper[name].get(size),
                breakdown=run.breakdown,
            )
            point.host_seconds = host_seconds
            if name == "TCUDB":
                annotate_tcu_point(point, run)
            if verifier is not None:
                verifier.verify_query(point, name, catalog, sql,
                                      device=engines["YDB"].device)
    result.normalize(f"{sizes[0]},{n_distinct}", "YDB")
    return result


def run_fig8(query: str, distincts: list[int] | None = None,
             n_records: int | None = None, seed: int = 8, *,
             profile: ScaleProfile | None = None,
             verifier: OracleVerifier | None = None) -> ExperimentResult:
    """Figure 8: Q1/Q3/Q4 vs #distinct values at 4096 records."""
    distincts = distincts or list(profile.fig8_distincts if profile
                                  else (32, 64, 128, 256, 512, 1024, 2048,
                                        4096))
    if n_records is None:
        n_records = profile.fig8_records if profile else 4096
    sql = QUERIES[query]
    result = ExperimentResult(
        f"fig8{'abc'[list(QUERIES).index(query)]}",
        f"Microbenchmark {query.upper()} vs #distinct (n={n_records})",
    )
    paper = PAPER_FIG8[query]
    for k in distincts:
        catalog = microbench_catalog(n_records, k, seed)
        engines = _engines_for(catalog)
        # The paper's Figure 8 profiles the dense TCU join operator across
        # densities (the optimizer's sparse/hash switch is what the series
        # motivates); force the dense plan and note what the optimizer
        # would have chosen instead.
        device = engines["YDB"].device
        # fp16 matches the paper's measured operator; the adaptive
        # optimizer would pick int4 for indicator matrices (see the
        # precision ablation).
        forced = TCUDBOptions(force_strategy=Strategy.DENSE,
                              force_precision=Precision.FP16)
        engines["TCUDB"] = TCUDBEngine(
            catalog, device=device, mode=ExecutionMode.ANALYTIC,
            options=forced,
        )
        chooser = TCUDBEngine(catalog, device=device,
                              mode=ExecutionMode.ANALYTIC)
        for name, engine in engines.items():
            run, host_seconds = timed_execute(engine, sql)
            note = ""
            if name == "TCUDB":
                choice = chooser.execute(sql)
                chosen = choice.extra.get("strategy", "")
                if choice.extra.get("fallback_reason"):
                    chosen = "fallback"
                if chosen and chosen != "dense":
                    note = f"optimizer: {chosen}"
            point = result.add(
                f"{n_records},{k}", name, run.seconds,
                paper_value=paper[name].get(k),
                breakdown=run.breakdown, note=note,
            )
            point.host_seconds = host_seconds
            if name == "TCUDB":
                annotate_tcu_point(point, run)
            if verifier is not None:
                verifier.verify_query(
                    point, name, catalog, sql, device=device,
                    options=forced if name == "TCUDB" else None,
                )
    result.normalize(f"{n_records},{distincts[0]}", "YDB")
    return result


def run_fig14(sizes: list[int] | None = None, n_distinct: int | None = None,
              seed: int = 14, *, profile: ScaleProfile | None = None,
              verifier: OracleVerifier | None = None) -> ExperimentResult:
    """Figure 14: RTX 3090 over RTX 2080 speedup per query/engine."""
    sizes = sizes or list(profile.micro_sizes if profile
                          else (4096, 8192, 16384, 32768))
    if n_distinct is None:
        n_distinct = profile.micro_distinct if profile else 32
    result = ExperimentResult(
        "fig14", "Generation-over-generation speedup (RTX 3090 / RTX 2080)",
        unit="ratio",
    )
    for query, sql in QUERIES.items():
        for size in sizes:
            catalog = microbench_catalog(size, n_distinct, seed)
            times: dict[str, dict[str, float]] = {}
            host_times: dict[str, float] = {}
            for gpu_name, gpu in (("3090", RTX_3090), ("2080", RTX_2080)):
                device = GPUDevice(gpu)
                engines = _engines_for(catalog, device)
                times[gpu_name] = {}
                for name in ("YDB", "TCUDB"):
                    run, host_seconds = timed_execute(engines[name], sql)
                    times[gpu_name][name] = run.seconds
                    if gpu_name == "3090":
                        host_times[name] = host_seconds
            for name in ("YDB", "TCUDB"):
                speedup = times["2080"][name] / times["3090"][name]
                point = result.add(
                    f"{query.upper()} {size},{n_distinct}", name, speedup,
                    paper_value=PAPER_FIG14[query][name].get(size),
                )
                point.normalized = speedup  # already a ratio
                point.host_seconds = host_times[name]
                if verifier is not None:
                    # Results are device-independent; verifying the 3090
                    # replay covers both legs of the ratio.
                    verifier.verify_query(point, name, catalog, sql,
                                          device=GPUDevice(RTX_3090))
    return result

"""Shard-scaling experiment for the data-parallel distributed engine.

Runs the same queries at increasing shard counts and records the host
wall-clock speedup over the one-shard anchor (which routes through the
plain single-node engine, so the anchor *is* single-node execution):

* **TCUDB-dist / join+agg** — the grid-allreduce route: one
  TensorProgram compiled on the coordinator, its GEMM prefix executed
  per shard, shard grids summed into the union label space;
* **TCUDB-dist / scan+agg** — a filtered single-table aggregate that
  exercises the partial-rows merge when a shard's grid partial is not
  available.

The experiment's ``unit`` is ``"ratio"``: each point's value is
``host_seconds(shards=1) / host_seconds(shards=N)`` for the same query,
so ``> 1.0`` means sharded execution beat single-node on this host.
The raw measurement rides along in ``point.host_seconds``.

Invariants checked on every run and recorded in the notes:

* **deterministic merge** — every shard count runs each query twice and
  the two results must be bit-identical (the documented ascending-shard
  merge order);
* **anchored rows** — every sharded run's rows must match the one-shard
  anchor within the TCU differential tolerance (``TCU_REL``): the merge
  itself folds in float64 and is exact, but re-partitioning moves chunk
  boundaries, so the fp16 tensor-core round-off inside each shard's
  GEMM partials may differ from the single-node chunking at the last
  few bits;
* **ledger-visible merge cost** — every distributed point's program
  listing must carry the allreduce transfer/merge term.

Honesty over aspiration: like the concurrency experiment, the speedup
is a *host* property.  Shards execute through the same thread pool, so
on a single-CPU container the curve tops out at or below 1.0 (the
recorded CPU count makes the report interpretable on its own), and the
``host_measured`` flag keeps the regression gate from failing on these
machine-dependent ratios.
"""

from __future__ import annotations

import os

import numpy as np

from repro.bench.harness import (
    ExperimentResult,
    annotate_tcu_point,
    timed_execute,
)
from repro.bench.scale import ScaleProfile
from repro.bench.verify import TCU_REL, OracleVerifier, result_rows, rows_match
from repro.datasets.ssb import ssb_catalog
from repro.engine.base import ExecutionMode
from repro.engine.tcudb import DistributedEngine, TCUDBOptions
from repro.hardware.gpu import GPUDevice

#: One join+aggregate (drives the grid-allreduce merge) and one
#: filtered scan+aggregate (small per-shard selections exercise the
#: partial-rows merge path at higher shard counts).
JOIN_AGG_SQL = """
    SELECT d_year, SUM(lo_revenue) AS rev, COUNT(*) AS orders
    FROM lineorder, ddate
    WHERE lo_orderdate = d_datekey
    GROUP BY d_year;"""
SCAN_AGG_SQL = """
    SELECT SUM(lo_extendedprice * lo_discount) AS revenue
    FROM lineorder
    WHERE lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25;"""


def _bit_identical(a, b) -> bool:
    ta, tb = a.require_table(), b.require_table()
    if ta.column_names != tb.column_names:
        return False
    return all(
        np.array_equal(ta.column(name).data, tb.column(name).data)
        for name in ta.column_names
    )


def run_scaleout(
    rows: int | None = None, seed: int = 47, *,
    profile: ScaleProfile | None = None,
    verifier: OracleVerifier | None = None,
) -> ExperimentResult:
    """Host wall-clock speedup of sharded execution vs one shard."""
    if rows is None:
        rows = profile.scaleout_rows if profile else 20_000
    shard_counts = list(profile.scaleout_shards if profile else (1, 2, 4))
    chunk_rows = profile.scaleout_chunk_rows if profile else 2048
    reps = profile.scaleout_reps if profile else 3
    result = ExperimentResult(
        "scaleout_sharding",
        "Data-parallel shard scaling: host wall-clock speedup of the "
        "distributed allreduce merge over single-node execution "
        "(same query, hash-partitioned fact)",
        unit="ratio",
        host_measured=True,
    )
    catalog = ssb_catalog(scale_factor=1, rows_per_sf=rows, seed=seed)
    device = GPUDevice()

    def engine(shards: int) -> DistributedEngine:
        options = TCUDBOptions(chunk_rows=chunk_rows)
        return DistributedEngine(
            catalog, shards=shards, fact="lineorder",
            partition_key="lo_orderkey", device=device,
            mode=ExecutionMode.REAL, options=options,
        )

    series = (
        ("TCUDB-dist/join", JOIN_AGG_SQL),
        ("TCUDB-dist/scan", SCAN_AGG_SQL),
    )
    divergences = 0
    nondeterministic = 0
    unledgered = 0
    for engine_name, sql in series:
        anchor_host = None
        anchor_rows = None
        for shards in shard_counts:
            dist = engine(shards)
            run, host_seconds = timed_execute(dist, sql, repeats=reps)
            repeat = dist.execute(sql)
            if not _bit_identical(run, repeat):
                nondeterministic += 1
            if anchor_host is None:  # the shards=1 anchor
                anchor_host = host_seconds
                anchor_rows = result_rows(run)
            error = rows_match(result_rows(run), anchor_rows, rel=TCU_REL)
            if error is not None:
                divergences += 1
            info = run.extra.get("distributed")
            if shards > 1:
                listing = run.extra.get("program_listing") or ""
                if "allreduce merge" not in listing:
                    unledgered += 1
            speedup = anchor_host / host_seconds
            point = result.add(f"shards={shards}", engine_name, speedup)
            point.host_seconds = host_seconds
            point.normalized = speedup
            annotate_tcu_point(point, run)
            route = (info or {}).get("route", "single-node")
            point.note = f"route={route}"
            if verifier is not None:
                verifier.verify_query(
                    point, f"tcudb-dist{shards}", catalog, sql,
                    device=device,
                    options=TCUDBOptions(chunk_rows=chunk_rows),
                )
        result.notes.append(
            f"{engine_name}: host seconds "
            + ", ".join(
                f"{p.config}: {p.host_seconds:.4f}s"
                for p in result.points if p.engine == engine_name
            )
        )
    result.notes.append(
        f"rows_per_sf={rows}, chunk_rows={chunk_rows}, repeats={reps}, "
        f"hash partition on lineorder.lo_orderkey; value = host speedup "
        f"over shards=1 (> 1.0 means sharded won)"
    )
    result.notes.append(
        f"sharded-vs-anchor row divergences (rel={TCU_REL}): {divergences}; "
        f"repeat-run determinism violations: {nondeterministic}; "
        f"distributed points missing the allreduce ledger term: "
        f"{unledgered}"
    )
    result.notes.append(
        f"host cpu_count={os.cpu_count()}; shards share one thread pool, "
        "so single-core hosts cannot exceed 1.0x — read the curve "
        "against the recorded CPU count"
    )
    return result

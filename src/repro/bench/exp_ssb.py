"""Figure 9: Star Schema Benchmark at scale factors 1-8."""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    annotate_tcu_point,
    timed_execute,
)
from repro.bench.scale import ScaleProfile
from repro.bench.verify import OracleVerifier
from repro.datasets.ssb import ssb_catalog
from repro.engine.base import ExecutionMode
from repro.engine.monetdb import MonetDBEngine
from repro.engine.tcudb import TCUDBEngine
from repro.engine.ydb import YDBEngine
from repro.hardware.gpu import GPUDevice
from repro.workloads.ssb_queries import (
    FLIGHT_REPRESENTATIVES,
    SSB_QUERIES,
)

# Paper Figure 9: normalized to YDB per query, per scale factor.
PAPER_FIG9 = {
    1: {"Q1.1": (3.42, 1.00, 0.74), "Q2.1": (4.31, 1.00, 0.71),
        "Q3.1": (2.36, 1.00, 0.42), "Q4.1": (2.82, 1.00, 0.27)},
    2: {"Q1.1": (3.32, 1.00, 0.54), "Q2.1": (3.89, 1.00, 1.00),
        "Q3.1": (6.42, 1.00, 1.09), "Q4.1": (2.75, 1.00, 0.30)},
    4: {"Q1.1": (2.58, 1.00, 0.44), "Q2.1": (3.66, 1.00, 0.89),
        "Q3.1": (6.08, 1.00, 1.00), "Q4.1": (2.74, 1.00, 0.28)},
    8: {"Q1.1": (2.53, 1.00, 0.42), "Q2.1": (3.52, 1.00, 0.77),
        "Q3.1": (5.99, 1.00, 0.96), "Q4.1": (2.58, 1.00, 0.25)},
}


def run_fig9(
    scale_factor: int,
    queries: tuple[str, ...] = FLIGHT_REPRESENTATIVES,
    rows_per_sf: int | None = None,
    seed: int = 9,
    *,
    profile: ScaleProfile | None = None,
    verifier: OracleVerifier | None = None,
) -> ExperimentResult:
    """One panel of Figure 9 (one scale factor, the four flight heads).

    Pass ``queries=tuple(SSB_QUERIES)`` to run the full 13-query suite
    (all are supported, per Section 5.3).
    """
    if rows_per_sf is None:
        rows_per_sf = profile.ssb_rows_per_sf if profile else 20_000
    catalog = ssb_catalog(scale_factor=scale_factor, rows_per_sf=rows_per_sf,
                          seed=seed)
    device = GPUDevice()
    engines = {
        "MonetDB": MonetDBEngine(catalog, mode=ExecutionMode.ANALYTIC),
        "YDB": YDBEngine(catalog, device=device, mode=ExecutionMode.ANALYTIC),
        "TCUDB": TCUDBEngine(catalog, device=device,
                             mode=ExecutionMode.ANALYTIC),
    }
    result = ExperimentResult(
        f"fig9_sf{scale_factor}",
        f"SSB at scale factor {scale_factor} (normalized to YDB per query)",
    )
    paper = PAPER_FIG9.get(scale_factor, {})
    for query_id in queries:
        runs = {}
        host_seconds = {}
        for name, engine in engines.items():
            runs[name], host_seconds[name] = timed_execute(
                engine, SSB_QUERIES[query_id]
            )
        baseline = runs["YDB"].seconds
        refs = paper.get(query_id)
        for i, name in enumerate(("MonetDB", "YDB", "TCUDB")):
            run = runs[name]
            point = result.add(
                query_id, name, run.seconds,
                paper_value=refs[i] if refs else None,
                breakdown=run.breakdown,
            )
            point.host_seconds = host_seconds[name]
            if name == "TCUDB":
                annotate_tcu_point(point, run)
            point.normalized = run.seconds / baseline
            if verifier is not None:
                verifier.verify_query(point, name, catalog,
                                      SSB_QUERIES[query_id], device=device)
    result.notes.append(
        f"rows_per_sf={rows_per_sf} (full dbgen would be 6,000,000; "
        "relative results are row-count invariant in analytic mode)"
    )
    return result

"""Dataset-shape experiments: paper Tables 2, 3 and 4."""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentResult
from repro.bench.scale import ScaleProfile
from repro.bench.verify import OracleVerifier
from repro.datasets.em import (
    BEER_DISTINCTS,
    ITUNES_DISTINCTS,
    ITUNES_SCALED_DISTINCTS,
    beer_catalog,
    itunes_catalog,
)
from repro.datasets.graphs import PAPER_TABLE4, reduced_road_graph


def _measured_distincts(catalog, attributes) -> dict[str, int]:
    table_a = catalog.get("table_a")
    table_b = catalog.get("table_b")
    out = {}
    for attribute in attributes:
        union = np.union1d(
            table_a.column(attribute).values(),
            table_b.column(attribute).values(),
        )
        out[attribute] = int(union.size)
    return out


def run_tables23(seed: int = 23, *, profile: ScaleProfile | None = None,
                 verifier: OracleVerifier | None = None) -> ExperimentResult:
    """Tables 2-3: per-attribute distinct counts of the EM datasets."""
    result = ExperimentResult(
        "tables2_3", "EM dataset distinct-value counts (ours vs paper)",
        unit="count",
    )
    for dataset, catalog, targets in (
        ("beer", beer_catalog(seed), BEER_DISTINCTS),
        ("itunes", itunes_catalog(seed), ITUNES_DISTINCTS),
        ("itunes_scaled", itunes_catalog(seed, scaled=True),
         ITUNES_SCALED_DISTINCTS),
    ):
        measured = _measured_distincts(catalog, targets)
        for attribute, target in targets.items():
            point = result.add(
                f"{dataset}.{attribute}", "generator",
                float(measured[attribute]), paper_value=float(target),
            )
            point.normalized = float(measured[attribute])
            if verifier is not None:
                # Recount via a python set (independent of np.union1d).
                table_a = catalog.get("table_a")
                table_b = catalog.get("table_b")
                recount = len(
                    set(table_a.column(attribute).values().tolist())
                    | set(table_b.column(attribute).values().tolist())
                )
                verifier.verify_check(
                    point, recount == measured[attribute], "shape",
                    f"set recount {recount} vs union1d "
                    f"{measured[attribute]}",
                )
    return result


def run_table4(sizes: list[int] | None = None, seed: int = 4, *,
               profile: ScaleProfile | None = None,
               verifier: OracleVerifier | None = None) -> ExperimentResult:
    """Table 4: node/edge counts of the reduced road graphs."""
    sizes = sizes or sorted(PAPER_TABLE4)
    result = ExperimentResult(
        "table4", "Reduced road-network graphs: edges per node count",
        unit="count",
    )
    for size in sizes:
        graph = reduced_road_graph(size, seed)
        point = result.add(
            str(size), "generator", float(graph.n_edges),
            paper_value=float(PAPER_TABLE4.get(size, 0)) or None,
        )
        point.normalized = float(graph.n_edges)
        if verifier is not None:
            valid = (
                graph.src.size == graph.n_edges
                and graph.dst.size == graph.n_edges
                and (graph.src.size == 0
                     or (0 <= int(graph.src.min())
                         and int(graph.src.max()) < graph.n_nodes
                         and 0 <= int(graph.dst.min())
                         and int(graph.dst.max()) < graph.n_nodes))
            )
            verifier.verify_check(
                point, bool(valid), "shape",
                f"{graph.n_edges} edges over {graph.n_nodes} nodes",
            )
    result.notes.append(
        "paper values come from subsampling the SNAP Pennsylvania road "
        "network; ours from the synthetic road-network substitute"
    )
    return result

"""Experiment harness: runs engines over configurations and formats the
normalized series the paper's figures report.

Every experiment produces an :class:`ExperimentResult`: a list of
(configuration, engine) points with simulated seconds, the normalized
value (paper-style: divided by a designated baseline point), the stage
breakdown, and — where the paper publishes numbers — the reference value
for side-by-side comparison in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.timing import TimingBreakdown


@dataclass
class SeriesPoint:
    """One bar of a paper figure."""

    config: str  # x-axis label, e.g. "4096,32"
    engine: str  # series label, e.g. "TCUDB"
    seconds: float  # simulated seconds
    normalized: float | None = None  # seconds / baseline
    paper_value: float | None = None  # the published normalized number
    breakdown: dict[str, float] = field(default_factory=dict)
    note: str = ""
    # Oracle verification outcome (repro.bench.verify): True/False once
    # checked, None when the profile skipped verification.
    verified: bool | None = None
    verify_kind: str = ""  # "oracle" | "numeric" | "shape" | "model"
    verify_note: str = ""
    # TCU-path bookkeeping (repro.bench.harness.annotate_tcu_point):
    # why a TCUDB point left the TCU path, and how it was classified
    # ("pattern" | "cost" | "feasibility" | "mode"); empty when native.
    fallback_reason: str = ""
    fallback_kind: str = ""
    executed_by: str = ""  # "TCU" | "TCU-hybrid" | "YDB-fallback"
    # Measured host wall-clock of the engine call (interpreter-level),
    # alongside the machine-independent simulated ``seconds``.  The
    # regression gate keeps using simulated seconds; host_seconds makes
    # real interpreter-level speedups (e.g. the fusion pass) visible in
    # reports.  None when the experiment did not measure it.
    host_seconds: float | None = None

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "engine": self.engine,
            "seconds": self.seconds,
            "normalized": self.normalized,
            "paper_value": self.paper_value,
            "breakdown": dict(self.breakdown),
            "note": self.note,
            "verified": self.verified,
            "verify_kind": self.verify_kind,
            "verify_note": self.verify_note,
            "fallback_reason": self.fallback_reason,
            "fallback_kind": self.fallback_kind,
            "executed_by": self.executed_by,
            "host_seconds": self.host_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SeriesPoint":
        return cls(
            config=data["config"],
            engine=data["engine"],
            seconds=data["seconds"],
            normalized=data.get("normalized"),
            paper_value=data.get("paper_value"),
            breakdown=dict(data.get("breakdown") or {}),
            note=data.get("note", ""),
            verified=data.get("verified"),
            verify_kind=data.get("verify_kind", ""),
            verify_note=data.get("verify_note", ""),
            fallback_reason=data.get("fallback_reason", ""),
            fallback_kind=data.get("fallback_kind", ""),
            executed_by=data.get("executed_by", ""),
            host_seconds=data.get("host_seconds"),
        )


@dataclass
class ExperimentResult:
    """All points of one figure/table plus bookkeeping."""

    experiment_id: str  # e.g. "fig7a"
    title: str
    points: list[SeriesPoint] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    # What ``seconds`` measures: "seconds" (simulated time, eligible for
    # the perf-regression gate), "percent" (error rates), "count"
    # (dataset shapes) or "ratio" (speedup factors).
    unit: str = "seconds"
    # True when the point values derive from *host* wall-clock (e.g. the
    # concurrency worker-scaling ratios): machine-dependent, so the
    # regression gate skips value-drift warnings for this experiment.
    host_measured: bool = False

    def add(
        self,
        config: str,
        engine: str,
        seconds: float,
        paper_value: float | None = None,
        breakdown: TimingBreakdown | None = None,
        note: str = "",
    ) -> SeriesPoint:
        point = SeriesPoint(
            config=config, engine=engine, seconds=seconds,
            paper_value=paper_value,
            breakdown=breakdown.stages if breakdown else {},
            note=note,
        )
        self.points.append(point)
        return point

    def normalize(self, baseline_config: str, baseline_engine: str) -> None:
        """Divide every point by one baseline point (paper-style)."""
        baseline = self.find(baseline_config, baseline_engine)
        if baseline.seconds <= 0:
            raise ValueError("baseline time must be positive")
        for point in self.points:
            point.normalized = point.seconds / baseline.seconds

    def find(self, config: str, engine: str) -> SeriesPoint:
        for point in self.points:
            if point.config == config and point.engine == engine:
                return point
        raise KeyError(f"no point ({config!r}, {engine!r})")

    def engines(self) -> list[str]:
        seen: list[str] = []
        for point in self.points:
            if point.engine not in seen:
                seen.append(point.engine)
        return seen

    def configs(self) -> list[str]:
        seen: list[str] = []
        for point in self.points:
            if point.config not in seen:
                seen.append(point.config)
        return seen

    # -- TCU fallback bookkeeping ------------------------------------------ #

    def fallback_summary(self) -> dict:
        """Per-experiment TCU-path coverage: how many TCUDB points left
        the TCU path, the rate, and the reasons (``fallback_rate`` is
        None when the experiment ran no annotated TCUDB points)."""
        tcu_points = [p for p in self.points if p.executed_by]
        fallbacks = [p for p in tcu_points
                     if p.executed_by == "YDB-fallback"]
        reasons: dict[str, int] = {}
        for point in fallbacks:
            key = f"{point.fallback_kind or 'unknown'}: " \
                  f"{point.fallback_reason or 'unknown'}"
            reasons[key] = reasons.get(key, 0) + 1
        return {
            "tcu_points": len(tcu_points),
            "fallbacks": len(fallbacks),
            "hybrid": sum(1 for p in tcu_points
                          if p.executed_by == "TCU-hybrid"),
            "fallback_rate": (len(fallbacks) / len(tcu_points)
                              if tcu_points else None),
            "reasons": reasons,
        }

    # -- host-vs-simulated drift ------------------------------------------- #

    def host_drift_ratios(self) -> list[float]:
        """``host_seconds / seconds`` per measured time point — the one
        eligibility rule both the per-experiment and run-level drift
        summaries aggregate from."""
        if self.unit != "seconds":
            return []
        return [
            point.host_seconds / point.seconds
            for point in self.points
            if point.host_seconds and point.seconds > 0
        ]

    def host_drift_summary(self) -> dict:
        """Wall-clock vs simulated-time drift for this experiment.

        Geomean of ``host_seconds / seconds`` over time points that
        measured wall-clock.  The *trend* of this ratio across reports is
        what matters: a jump means an interpreter-level regression the
        simulated gate cannot see.  ``None`` when nothing was measured
        (or the experiment's unit is not seconds).
        """
        ratios = self.host_drift_ratios()
        return {
            "points": len(ratios),
            "host_over_sim_geomean": geomean(ratios),
        }

    # -- verification bookkeeping ------------------------------------------ #

    def verification_summary(self) -> dict[str, int]:
        """Counts of verified / mismatched / unchecked points."""
        summary = {"verified": 0, "mismatched": 0, "unchecked": 0}
        for point in self.points:
            if point.verified is True:
                summary["verified"] += 1
            elif point.verified is False:
                summary["mismatched"] += 1
            else:
                summary["unchecked"] += 1
        return summary

    def mismatches(self) -> list[SeriesPoint]:
        return [p for p in self.points if p.verified is False]

    # -- serialization ----------------------------------------------------- #

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "unit": self.unit,
            "host_measured": self.host_measured,
            "points": [point.to_dict() for point in self.points],
            "notes": list(self.notes),
            "fidelity_geomean": geometric_mean_ratio(self),
            "verification": self.verification_summary(),
            "fallback": self.fallback_summary(),
            "host_drift": self.host_drift_summary(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        return cls(
            experiment_id=data["experiment_id"],
            title=data.get("title", ""),
            points=[SeriesPoint.from_dict(p) for p in data.get("points", [])],
            notes=list(data.get("notes", [])),
            unit=data.get("unit", "seconds"),
            host_measured=bool(data.get("host_measured", False)),
        )

    # -- rendering --------------------------------------------------------- #

    def to_text(self) -> str:
        """Fixed-width table: rows = configs, columns = engines, cells =
        normalized (paper) or seconds."""
        engines = self.engines()
        configs = self.configs()
        headers = ["config"] + [
            f"{e} [ours|paper]" for e in engines
        ]
        rows: list[list[str]] = []
        for config in configs:
            row = [config]
            for engine in engines:
                try:
                    point = self.find(config, engine)
                except KeyError:
                    row.append("-")
                    continue
                if point.normalized is not None:
                    cell = f"{point.normalized:.3g}"
                else:
                    cell = f"{point.seconds * 1e3:.3g}ms"
                if point.paper_value is not None:
                    cell += f" | {point.paper_value:.3g}"
                if point.note:
                    cell += f" ({point.note})"
                if point.verified is False:
                    cell += " !MISMATCH"
                row.append(cell)
            rows.append(row)
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
            else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(
            " | ".join(c.ljust(w) for c, w in zip(row, widths))
            for row in rows
        )
        lines.extend(f"note: {n}" for n in self.notes)
        summary = self.verification_summary()
        if summary["verified"] or summary["mismatched"]:
            lines.append(
                "verification: {verified} ok, {mismatched} mismatched, "
                "{unchecked} unchecked".format(**summary)
            )
        return "\n".join(lines)


def geomean(values) -> float | None:
    """Geometric mean, or ``None`` for an empty input.  Non-positive
    values are clamped to 1e-12 so one zero cannot NaN a whole gate."""
    import math

    values = list(values)
    if not values:
        return None
    return math.exp(
        sum(math.log(max(v, 1e-12)) for v in values) / len(values)
    )


def geometric_mean_ratio(result: ExperimentResult) -> float | None:
    """Geometric mean of ours/paper across points that have both — the
    headline fidelity metric EXPERIMENTS.md reports per experiment."""
    return geomean(
        point.normalized / point.paper_value
        for point in result.points
        if point.normalized and point.paper_value
    )


def timed_execute(engine, sql: str, repeats: int = 1,
                  params: dict | None = None):
    """Run ``engine.execute(sql)`` and measure host wall-clock.

    Returns ``(result, host_seconds)`` with ``host_seconds`` the minimum
    over ``repeats`` runs (minimum, not mean: scheduling noise only ever
    adds time).  Attach via ``point.host_seconds``.
    """
    import time

    result = None
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        result = engine.execute(sql, params=params)
        best = min(best, time.perf_counter() - start)
    return result, best


def annotate_tcu_point(point: SeriesPoint, run) -> SeriesPoint:
    """Record how a TCUDB query executed on its series point.

    Feeds the per-experiment ``fallback_summary`` and the run-level
    ``fallback_rate`` in ``BENCH_<profile>_*.json``, so the bench gate
    can show the operator pipeline shrinking fallbacks over time.
    """
    extra = getattr(run, "extra", None) or {}
    reason = extra.get("fallback_reason") or ""
    point.fallback_reason = str(reason)
    point.fallback_kind = str(extra.get("fallback_kind") or "")
    point.executed_by = str(
        extra.get("executed_by") or ("YDB-fallback" if reason else "TCU")
    )
    if reason and not point.note:
        point.note = "fallback"
    elif point.executed_by == "TCU-hybrid" and not point.note:
        point.note = "hybrid"
    return point

"""Performance-regression gate: diff two BenchReport JSON files::

    python -m repro.bench.regress current.json baseline.json \\
        [--max-slowdown 0.10]

Points are matched by (experiment_id, config, engine).  The gate fails
(non-zero exit) when

* any current point carries ``verified: false`` (oracle mismatch),
* the geometric mean of current/baseline simulated seconds over matched
  time-unit points exceeds ``1 + max_slowdown``, or
* the current report has time-unit points but *none* of them matched the
  baseline (a stale baseline — e.g. after a profile resize or an
  experiment rename).  Without this the gate would silently stop gating;
  regenerate and commit a fresh ``BENCH_<profile>_*.json`` instead.

Non-time experiments (``unit`` of percent/count/ratio — Table 1 MAPE,
dataset shapes, Figure 14 speedups) are excluded from the slowdown
geomean but large value drifts are reported as warnings — except
``host_measured`` experiments (the concurrency worker-scaling curve),
whose values are host wall-clock ratios and legitimately vary between
machines and runs.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field

from repro.bench.harness import geomean
from repro.bench.report import BenchReport

EXIT_OK = 0
EXIT_MISMATCH = 1
EXIT_SLOWDOWN = 2
EXIT_STALE_BASELINE = 3

#: Single points may jitter; only name-and-shame offenders beyond this.
POINT_REPORT_THRESHOLD = 1.05


@dataclass
class PointDelta:
    """One matched point across the two reports."""

    experiment_id: str
    config: str
    engine: str
    current_seconds: float
    baseline_seconds: float
    unit: str = "seconds"

    @property
    def ratio(self) -> float:
        if self.baseline_seconds <= 0:
            return 1.0
        return self.current_seconds / self.baseline_seconds


@dataclass
class RegressionVerdict:
    """Outcome of comparing a current report against a baseline."""

    verdict: str  # "pass" | "slowdown" | "mismatch" | "stale-baseline"
    geomean_ratio: float | None
    max_slowdown: float
    deltas: list[PointDelta] = field(default_factory=list)
    mismatches: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def exit_status(self) -> int:
        if self.verdict == "mismatch":
            return EXIT_MISMATCH
        if self.verdict == "slowdown":
            return EXIT_SLOWDOWN
        if self.verdict == "stale-baseline":
            return EXIT_STALE_BASELINE
        return EXIT_OK

    def render(self) -> str:
        lines = [
            f"regression gate: {self.verdict.upper()} "
            f"({len(self.deltas)} matched time points, "
            f"tolerance {self.max_slowdown:.0%})"
        ]
        if self.geomean_ratio is not None:
            lines.append(
                f"geomean current/baseline: {self.geomean_ratio:.4f}"
            )
        offenders = sorted(
            (d for d in self.deltas if d.ratio > POINT_REPORT_THRESHOLD),
            key=lambda d: d.ratio, reverse=True,
        )
        for delta in offenders[:10]:
            lines.append(
                f"  slower: {delta.experiment_id} {delta.config} / "
                f"{delta.engine}: x{delta.ratio:.3f}"
            )
        lines.extend(f"  MISMATCH: {line}" for line in self.mismatches)
        lines.extend(f"  warning: {line}" for line in self.warnings)
        return "\n".join(lines)


def _as_report(report) -> BenchReport:
    if isinstance(report, BenchReport):
        return report
    return BenchReport.from_dict(report)


def compare_reports(
    current,
    baseline,
    max_slowdown: float = 0.10,
) -> RegressionVerdict:
    """Diff two reports (BenchReport instances or raw dicts)."""
    current = _as_report(current)
    baseline = _as_report(baseline)
    warnings: list[str] = []
    if current.schema_version != baseline.schema_version:
        # Refuse to compare across schema versions: field meanings may
        # have changed, so any ratio would be noise.  Fail closed.
        warnings.append(
            f"schema version differs: current "
            f"v{current.schema_version}, baseline "
            f"v{baseline.schema_version}; regenerate the baseline"
        )
        mismatches = current.mismatches()
        return RegressionVerdict(
            verdict="mismatch" if mismatches else "stale-baseline",
            geomean_ratio=None,
            max_slowdown=max_slowdown,
            mismatches=mismatches,
            warnings=warnings,
        )
    if current.profile != baseline.profile:
        warnings.append(
            f"profile mismatch: current={current.profile!r} "
            f"baseline={baseline.profile!r}; ratios are not comparable"
        )

    baseline_points: dict[tuple, tuple[float, str]] = {}
    for experiment in baseline.experiments:
        for point in experiment.points:
            key = (experiment.experiment_id, point.config, point.engine)
            baseline_points[key] = (point.seconds, experiment.unit)

    deltas: list[PointDelta] = []
    drift: list[str] = []
    matched = 0
    for experiment in current.experiments:
        for point in experiment.points:
            key = (experiment.experiment_id, point.config, point.engine)
            if key not in baseline_points:
                continue
            matched += 1
            base_seconds, base_unit = baseline_points[key]
            if base_unit != experiment.unit:
                warnings.append(
                    f"{experiment.experiment_id} {point.config} / "
                    f"{point.engine}: unit changed "
                    f"{base_unit!r} -> {experiment.unit!r}; point skipped"
                )
                continue
            delta = PointDelta(
                experiment_id=experiment.experiment_id,
                config=point.config,
                engine=point.engine,
                current_seconds=point.seconds,
                baseline_seconds=base_seconds,
                unit=experiment.unit,
            )
            if experiment.unit == "seconds" and base_seconds > 0:
                if point.seconds is None or point.seconds <= 0:
                    # A timed path that now reports nothing is broken,
                    # not infinitely fast; keep it out of the geomean
                    # (where log-clamping would read it as a speedup
                    # large enough to mask real slowdowns).
                    warnings.append(
                        f"{experiment.experiment_id} {point.config} / "
                        f"{point.engine}: non-positive current seconds "
                        f"({point.seconds!r}); excluded from geomean"
                    )
                    continue
                deltas.append(delta)
            elif experiment.host_measured:
                # Host-measured values (e.g. concurrency speedup ratios)
                # depend on the machine and its load; run-to-run drift is
                # expected and must not pollute the warning list.
                continue
            elif base_seconds > 0 and not (
                1 / (1 + max_slowdown) <= delta.ratio <= 1 + max_slowdown
            ):
                drift.append(
                    f"{experiment.experiment_id} {point.config} / "
                    f"{point.engine} [{experiment.unit}]: "
                    f"{base_seconds:.6g} -> {point.seconds:.6g}"
                )
    if matched == 0:
        warnings.append("no points matched between the two reports")
    warnings.extend(drift)

    current_has_time_points = any(
        experiment.unit == "seconds" and experiment.points
        for experiment in current.experiments
    )

    mismatches = current.mismatches()
    geomean_ratio = geomean(d.ratio for d in deltas)

    if mismatches:
        verdict = "mismatch"
    elif geomean_ratio is not None and geomean_ratio > 1 + max_slowdown:
        verdict = "slowdown"
    elif current_has_time_points and not deltas:
        # Fail closed: a baseline that gates nothing is no gate at all.
        warnings.append(
            "stale baseline: current report has time points but none "
            "matched; regenerate the committed BENCH_<profile>_*.json"
        )
        verdict = "stale-baseline"
    else:
        verdict = "pass"
    return RegressionVerdict(
        verdict=verdict,
        geomean_ratio=geomean_ratio,
        max_slowdown=max_slowdown,
        deltas=deltas,
        mismatches=mismatches,
        warnings=warnings,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.regress",
        description="Diff two benchmark reports and gate on regressions.",
    )
    parser.add_argument("current", help="freshly generated BENCH json")
    parser.add_argument("baseline", help="baseline BENCH json")
    parser.add_argument("--max-slowdown", type=float, default=0.10,
                        help="geomean slowdown tolerance (default 0.10)")
    args = parser.parse_args(argv)
    verdict = compare_reports(
        BenchReport.load(args.current),
        BenchReport.load(args.baseline),
        max_slowdown=args.max_slowdown,
    )
    print(verdict.render())
    return verdict.exit_status


if __name__ == "__main__":
    sys.exit(main())

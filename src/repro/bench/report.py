"""Machine-readable benchmark reports (``BENCH_<profile>_<date>.json``).

A :class:`BenchReport` bundles every experiment of one benchmark run —
per-point simulated seconds, normalized values, stage breakdowns,
verification status — plus the scale profile, an environment fingerprint
and the per-experiment fidelity geomeans, under a versioned schema that
``repro.bench.regress`` diffs to gate CI on performance regressions and
oracle mismatches.

Timestamps honor ``SOURCE_DATE_EPOCH`` (the reproducible-builds
convention) so regenerating a report does not dirty the tree.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone

from repro.bench.harness import ExperimentResult, geomean

#: Bump when the JSON layout changes incompatibly; ``regress`` refuses
#: to compare reports whose schema versions differ (verdict
#: ``stale-baseline``) and ``from_dict`` rejects versions newer than
#: this module supports.
SCHEMA_VERSION = 1


def report_datetime() -> datetime:
    """Now, unless ``SOURCE_DATE_EPOCH`` pins a reproducible instant."""
    epoch = os.environ.get("SOURCE_DATE_EPOCH")
    if epoch is not None:
        return datetime.fromtimestamp(int(epoch), tz=timezone.utc)
    return datetime.now(tz=timezone.utc)


def report_date() -> str:
    """ISO date for report headers and default filenames."""
    return report_datetime().date().isoformat()


def environment_fingerprint() -> dict:
    """Where a report was produced (for apples-to-apples regression
    diffs; simulated seconds are machine-independent, wall time is not)."""
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy.__version__,
        "numpy_blas": _blas_info(numpy),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "executable": os.path.basename(sys.executable),
        "pythonhashseed": os.environ.get("PYTHONHASHSEED"),
        "backend": _active_backend(),
    }


def _active_backend() -> str:
    """The tensor execution backend the environment policy resolves to
    (``REPRO_BACKEND`` or the ``sim`` default) — host wall-clock numbers
    are only comparable between reports produced by the same backend."""
    from repro.common.errors import ConfigError
    from repro.tensor.backend import backend_policy

    try:
        return backend_policy(None)
    except ConfigError as exc:  # malformed REPRO_BACKEND: record, not crash
        return f"invalid ({exc})"


def _blas_info(numpy) -> str | None:
    """NumPy's linked BLAS (``name version``), or None when the config
    introspection API is unavailable — the fast backend's speedups are a
    property of this library, so reports must say which one ran."""
    try:
        config = numpy.show_config(mode="dicts")
        blas = config["Build Dependencies"]["blas"]
        name = blas.get("name") or "unknown"
        version = blas.get("version")
        return f"{name} {version}" if version else name
    except Exception:
        return None


@dataclass
class BenchReport:
    """One benchmark run: every experiment plus run-level metadata."""

    profile: str
    experiments: list[ExperimentResult] = field(default_factory=list)
    generated_at: str = ""
    environment: dict = field(default_factory=dict)
    wall_seconds: float | None = None
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self):
        if not self.generated_at:
            self.generated_at = report_datetime().isoformat(
                timespec="seconds"
            )
        if not self.environment:
            self.environment = environment_fingerprint()

    # -- aggregation ---------------------------------------------------- #

    def points(self):
        for experiment in self.experiments:
            yield from experiment.points

    def verification_summary(self) -> dict[str, int]:
        summary = {"verified": 0, "mismatched": 0, "unchecked": 0}
        for experiment in self.experiments:
            for key, count in experiment.verification_summary().items():
                summary[key] += count
        return summary

    def mismatches(self) -> list[str]:
        out = []
        for experiment in self.experiments:
            out.extend(
                f"{experiment.experiment_id}: {p.config} / {p.engine}: "
                f"{p.verify_note or 'mismatch'}"
                for p in experiment.mismatches()
            )
        return out

    def fidelity_geomean(self) -> float | None:
        """Geomean of ours/paper over every comparable point of the run."""
        return geomean(
            point.normalized / point.paper_value
            for point in self.points()
            if point.normalized and point.paper_value
        )

    def fallback_summary(self) -> dict:
        """Run-level TCU-path coverage: how many annotated TCUDB points
        across all experiments left the TCU path, and why.

        ``fallback_rate`` is the headline number the bench gate watches
        shrink as the operator pipeline covers more query shapes; it is
        None when the run had no annotated TCUDB points.
        """
        summary = {"tcu_points": 0, "fallbacks": 0, "hybrid": 0,
                   "fallback_rate": None, "reasons": {}}
        for experiment in self.experiments:
            per = experiment.fallback_summary()
            summary["tcu_points"] += per["tcu_points"]
            summary["fallbacks"] += per["fallbacks"]
            summary["hybrid"] += per["hybrid"]
            for reason, count in per["reasons"].items():
                summary["reasons"][reason] = (
                    summary["reasons"].get(reason, 0) + count
                )
        if summary["tcu_points"]:
            summary["fallback_rate"] = (
                summary["fallbacks"] / summary["tcu_points"]
            )
        return summary

    def host_drift_summary(self) -> dict:
        """Run-level host-vs-simulated drift: geomean of
        ``host_seconds / seconds`` over every measured time point, plus
        the per-experiment breakdown (only experiments that measured
        wall-clock appear)."""
        ratios = []
        per_experiment: dict[str, float] = {}
        for experiment in self.experiments:
            experiment_ratios = experiment.host_drift_ratios()
            if not experiment_ratios:
                continue
            per_experiment[experiment.experiment_id] = geomean(
                experiment_ratios
            )
            ratios.extend(experiment_ratios)
        return {
            "points": len(ratios),
            "host_over_sim_geomean": geomean(ratios),
            "per_experiment": per_experiment,
        }

    def summary(self) -> dict:
        fallback = self.fallback_summary()
        drift = self.host_drift_summary()
        return {
            "experiments": len(self.experiments),
            "points": sum(1 for _ in self.points()),
            "fidelity_geomean": self.fidelity_geomean(),
            "fallback_rate": fallback["fallback_rate"],
            "tcu_points": fallback["tcu_points"],
            "tcu_fallbacks": fallback["fallbacks"],
            "tcu_hybrid": fallback["hybrid"],
            "host_drift_points": drift["points"],
            "host_drift_geomean": drift["host_over_sim_geomean"],
            **self.verification_summary(),
        }

    # -- serialization --------------------------------------------------- #

    def default_filename(self) -> str:
        return f"BENCH_{self.profile}_{self.generated_at[:10]}.json"

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "profile": self.profile,
            "generated_at": self.generated_at,
            "environment": dict(self.environment),
            "wall_seconds": self.wall_seconds,
            "summary": self.summary(),
            "fallback": self.fallback_summary(),
            "host_drift": self.host_drift_summary(),
            "experiments": [e.to_dict() for e in self.experiments],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    def write(self, path: str) -> str:
        with open(path, "w") as handle:
            handle.write(self.to_json())
        return path

    @classmethod
    def from_dict(cls, data: dict) -> "BenchReport":
        version = int(data.get("schema_version", 0))
        if version > SCHEMA_VERSION:
            raise ValueError(
                f"report schema v{version} is newer than supported "
                f"v{SCHEMA_VERSION}"
            )
        return cls(
            profile=data.get("profile", "unknown"),
            experiments=[
                ExperimentResult.from_dict(e)
                for e in data.get("experiments", [])
            ],
            generated_at=data.get("generated_at", ""),
            environment=dict(data.get("environment") or {}),
            wall_seconds=data.get("wall_seconds"),
            schema_version=version or SCHEMA_VERSION,
        )

    @classmethod
    def load(cls, path: str) -> "BenchReport":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


__all__ = [
    "SCHEMA_VERSION",
    "BenchReport",
    "environment_fingerprint",
    "report_date",
    "report_datetime",
]

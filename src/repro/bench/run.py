"""Single benchmark entry point::

    python -m repro.bench.run --profile smoke --json bench.json \\
        [--baseline prev.json] [--experiments fig7,fig9] [--no-verify]

Runs every experiment at the chosen :class:`ScaleProfile`, oracle-verifies
each point (full replay on smoke, sampled streaming replay on
paper/stress), writes a schema-versioned JSON report, and — when given a
baseline report — applies the regression gate from
``repro.bench.regress``.  Exit status: 0 clean, 1 oracle mismatch,
2 performance regression, 3 stale baseline (no comparable points),
4 ``--experiments`` filter matched nothing, 5 ``--require-verified``
found unchecked points.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Callable, Iterator

from repro.bench.exp_ablations import (
    run_ablation_density_switch,
    run_ablation_fused_agg,
    run_ablation_fusion,
    run_ablation_precision,
    run_ablation_transform_location,
)
from repro.bench.exp_casestudies import (
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_table1,
)
from repro.bench.exp_backends import run_backends
from repro.bench.exp_chaos import run_chaos
from repro.bench.exp_compile_cache import run_compile_cache
from repro.bench.exp_concurrency import run_concurrency
from repro.bench.exp_microbench import run_fig3, run_fig7, run_fig8, run_fig14
from repro.bench.exp_scaleout import run_scaleout
from repro.bench.exp_ssb import run_fig9
from repro.bench.exp_tables import run_table4, run_tables23
from repro.bench.harness import ExperimentResult, geometric_mean_ratio
from repro.bench.regress import EXIT_MISMATCH, compare_reports
from repro.bench.report import BenchReport
from repro.bench.scale import PROFILES, ScaleProfile, get_profile
from repro.bench.verify import OracleVerifier

ExperimentThunk = Callable[[], ExperimentResult]

#: A typo'd --experiments filter must not look like a clean run.
EXIT_EMPTY_FILTER = 4

#: ``--require-verified`` found unchecked (or mismatched) points.
EXIT_UNVERIFIED = 5


def iter_experiments(
    profile: ScaleProfile,
    verifier: OracleVerifier | None = None,
) -> Iterator[tuple[str, ExperimentThunk]]:
    """Every experiment of the suite, keyed for ``--experiments`` filters.

    This registry is the single source of truth for "the whole suite":
    both this runner and ``repro.bench.reporting`` (EXPERIMENTS.md) walk
    it, so a new ``exp_*`` runner only needs to be added here.
    """
    kwargs = {"profile": profile, "verifier": verifier}
    yield "fig3", lambda: run_fig3(**kwargs)
    for query in ("q1", "q3", "q4"):
        yield f"fig7:{query}", (
            lambda query=query: run_fig7(query, **kwargs))
    for query in ("q1", "q3", "q4"):
        yield f"fig8:{query}", (
            lambda query=query: run_fig8(query, **kwargs))
    for sf in profile.ssb_scale_factors:
        yield f"fig9:sf{sf}", (lambda sf=sf: run_fig9(sf, **kwargs))
    yield "fig10", lambda: run_fig10(**kwargs)
    yield "table1", lambda: run_table1(**kwargs)
    for dataset in profile.em_datasets:
        yield f"fig11:{dataset}", (
            lambda dataset=dataset: run_fig11(dataset, **kwargs))
    for query in ("q1", "q2", "q3"):
        yield f"fig12:{query}", (
            lambda query=query: run_fig12(query, **kwargs))
    yield "fig13", lambda: run_fig13(**kwargs)
    yield "fig14", lambda: run_fig14(**kwargs)
    yield "tables2_3", lambda: run_tables23(**kwargs)
    yield "table4", lambda: run_table4(**kwargs)
    yield "ablation:fused_agg", lambda: run_ablation_fused_agg(**kwargs)
    yield "ablation:density_switch", (
        lambda: run_ablation_density_switch(**kwargs))
    yield "ablation:precision", lambda: run_ablation_precision(**kwargs)
    yield "ablation:transform_location", (
        lambda: run_ablation_transform_location(**kwargs))
    yield "ablation:fusion", lambda: run_ablation_fusion(**kwargs)
    yield "concurrency", lambda: run_concurrency(**kwargs)
    yield "compile_cache", lambda: run_compile_cache(**kwargs)
    yield "scaleout", lambda: run_scaleout(**kwargs)
    yield "chaos", lambda: run_chaos(**kwargs)
    yield "backends", lambda: run_backends(**kwargs)


def run_suite(
    profile: ScaleProfile,
    verifier: OracleVerifier | None = None,
    only: list[str] | None = None,
    echo: Callable[[str], None] | None = None,
) -> BenchReport:
    """Run (a filtered subset of) the suite and collect a report."""
    start = time.perf_counter()
    experiments: list[ExperimentResult] = []
    for key, thunk in iter_experiments(profile, verifier):
        if only and not any(token in key for token in only):
            continue
        if echo:
            echo(f"[{profile.name}] running {key} ...")
        experiments.append(thunk())
    report = BenchReport(profile=profile.name, experiments=experiments)
    report.wall_seconds = round(time.perf_counter() - start, 3)
    return report


def _print_report(report: BenchReport, verbose: bool) -> None:
    if verbose:
        for experiment in report.experiments:
            print()
            print(experiment.to_text())
            ratio = geometric_mean_ratio(experiment)
            if ratio is not None:
                print(f"fidelity (geo-mean ours/paper): {ratio:.2f}")
    summary = report.summary()
    fidelity = summary["fidelity_geomean"]
    print()
    print(f"profile={report.profile} experiments={summary['experiments']} "
          f"points={summary['points']} wall={report.wall_seconds}s")
    print(f"verification: {summary['verified']} ok, "
          f"{summary['mismatched']} mismatched, "
          f"{summary['unchecked']} unchecked")
    if fidelity is not None:
        print(f"fidelity geomean (ours/paper): {fidelity:.3f}")
    fallback = report.fallback_summary()
    if fallback["tcu_points"]:
        print(
            f"tcu path: {fallback['tcu_points']} points, "
            f"{fallback['hybrid']} hybrid, "
            f"{fallback['fallbacks']} fallbacks "
            f"(fallback_rate {fallback['fallback_rate']:.3f})"
        )
        for reason, count in sorted(fallback["reasons"].items()):
            print(f"  fallback x{count}: {reason}")
    drift = report.host_drift_summary()
    if drift["points"]:
        print(
            f"host drift: wall-clock / simulated geomean "
            f"{drift['host_over_sim_geomean']:.2f}x over "
            f"{drift['points']} measured points"
        )
    for line in report.mismatches():
        print(f"MISMATCH: {line}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.run",
        description="Run the oracle-verified benchmark suite.",
    )
    parser.add_argument("--profile", default="smoke",
                        choices=sorted(PROFILES),
                        help="scale profile (default: smoke)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the BenchReport JSON here")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="prior report to gate regressions against")
    parser.add_argument("--max-slowdown", type=float, default=0.10,
                        help="geomean slowdown tolerance vs baseline "
                             "(default: 0.10 = 10%%)")
    parser.add_argument("--experiments", default=None,
                        help="comma-separated substring filter, e.g. "
                             "'fig7,fig9'")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip oracle verification even on profiles "
                             "that enable it")
    parser.add_argument("--verify", action="store_true",
                        help="force oracle verification on profiles that "
                             "disable it (may be very slow)")
    parser.add_argument("--require-verified", action="store_true",
                        help="exit non-zero unless every point reports "
                             "verified (the bench-paper-sample CI gate)")
    parser.add_argument("--quiet", action="store_true",
                        help="only print the run summary")
    args = parser.parse_args(argv)

    profile = get_profile(args.profile)
    verify = (profile.verify or args.verify) and not args.no_verify
    verifier = OracleVerifier(
        enabled=verify,
        policy=getattr(profile, "verify_policy", "full") or "full",
        sample_rows=getattr(profile, "verify_sample_rows", 2048),
        strata=getattr(profile, "verify_strata", 1),
    )
    only = ([token.strip() for token in args.experiments.split(",")
             if token.strip()] if args.experiments else None)
    if only:
        keys = [key for key, _ in iter_experiments(profile)]
        if not any(token in key for key in keys for token in only):
            print(
                f"error: --experiments {args.experiments!r} matched no "
                f"experiments; available keys: {', '.join(keys)}",
                file=sys.stderr,
            )
            return EXIT_EMPTY_FILTER
    echo = None if args.quiet else print
    report = run_suite(profile, verifier, only=only, echo=echo)

    if args.json:
        path = report.write(args.json)
        print(f"wrote {path}")
    _print_report(report, verbose=not args.quiet)

    status = 0
    if report.verification_summary()["mismatched"]:
        print("FAIL: oracle mismatches detected")
        status = EXIT_MISMATCH
    if args.require_verified:
        summary = report.verification_summary()
        if summary["unchecked"] or summary["mismatched"]:
            print(
                f"FAIL: --require-verified: {summary['unchecked']} "
                f"unchecked, {summary['mismatched']} mismatched points"
            )
            status = status or EXIT_UNVERIFIED
    if args.baseline:
        baseline = BenchReport.load(args.baseline)
        verdict = compare_reports(report, baseline,
                                  max_slowdown=args.max_slowdown)
        print()
        print(verdict.render())
        status = status or verdict.exit_status
    return status


if __name__ == "__main__":
    sys.exit(main())

"""Scale profiles: one knob that sizes every experiment.

The paper's figures sweep configurations that are far too large for a CI
runner (32K-record joins, 32K-node graphs, 32768-dim GEMMs).  A
:class:`ScaleProfile` bundles the per-experiment size parameters so the
whole suite can run at three calibrated scales:

* ``smoke``  — CI-sized inputs (< 2 minutes end-to-end) with *per-point
  oracle verification* enabled: every benchmarked query is replayed in
  REAL mode and compared against :class:`~repro.engine.reference.ReferenceEngine`.
* ``paper``  — the configurations EXPERIMENTS.md reports, matching the
  published figures.  Verified through *sampled streaming replay*
  (``verify_policy="stream"``): full REAL-mode replay would materialize
  billions of join pairs at these sizes, so every SQL point replays on a
  deterministically chunk-sampled catalog through the streaming oracle —
  engine and oracle see identical samples, keeping the check a true
  differential one.
* ``stress`` — larger-than-paper sweeps for the cost models (analytic
  mode keeps them cheap to *time*); verified the same sampled way.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class ScaleProfile:
    """Per-experiment size parameters for one benchmark scale."""

    name: str
    description: str
    #: replay every benchmarked query through the Reference oracle
    verify: bool
    #: how SQL points are replayed: "full" replays the exact benchmark
    #: catalogs; "stream" replays through the *streaming* oracle on
    #: deterministically chunk-sampled catalogs when a table exceeds
    #: ``verify_sample_rows`` (both the engine and the oracle see the
    #: same sample, so the comparison stays a true differential check) —
    #: what lets the paper/stress profiles report ``verified`` points
    #: instead of skipping.
    verify_policy: str = "full"
    #: per-table row budget for "stream" replay sampling
    verify_sample_rows: int = 2048
    #: disjoint stride-phased samples per "stream"-verified point; every
    #: stratum must match the oracle, and the worst cross-stratum cell
    #: deviation is recorded per point as a disagreement bound
    verify_strata: int = 1

    # Figure 3: square GEMM dims.
    fig3_dims: tuple[int, ...] = (1024, 2048, 4096, 8192, 16384)
    # Figures 7/14: microbenchmark record counts (at micro_distinct keys).
    micro_sizes: tuple[int, ...] = (4096, 8192, 16384, 32768)
    micro_distinct: int = 32
    # Figure 8: distinct-value sweep at micro_records records.
    fig8_distincts: tuple[int, ...] = (32, 64, 128, 256, 512, 1024, 2048,
                                       4096)
    fig8_records: int = 4096
    # Figure 9: SSB scale factors and generator rows per SF.
    ssb_scale_factors: tuple[int, ...] = (1, 2, 4, 8)
    ssb_rows_per_sf: int = 20_000
    # Figure 10: engine-measured dims and cost-model-projected dims.
    fig10_engine_dims: tuple[int, ...] = (256, 512, 1024)
    fig10_projected_dims: tuple[int, ...] = (4096, 8192, 16384, 32768)
    # Table 1: reduction dims and sampled output block edge.
    table1_dims: tuple[int, ...] = (2048, 4096, 8192, 16384, 32768)
    table1_sample: int = 96
    # Figure 11: which EM datasets run.
    em_datasets: tuple[str, ...] = ("beer", "itunes", "itunes_scaled")
    # Figure 12/13: graph node counts.
    fig12_sizes: tuple[int, ...] = (1024, 2048, 3072, 4096, 8192)
    fig13_sizes: tuple[int, ...] = (1024, 2048, 4096, 8192, 16384, 32768)
    # Ablations.
    ablation_sizes: tuple[int, ...] = (4096, 8192, 16384, 32768)
    ablation_distincts: tuple[int, ...] = (32, 256, 1024, 4096, 16384)
    # Fusion ablation: SSB generator rows and host-timing repeats for the
    # fusion=on vs fusion=off series (REAL mode; large enough that the
    # per-aggregate redundancy dominates the fixed query overhead).
    fusion_rows: int = 20_000
    fusion_reps: int = 3
    # Concurrency experiment: worker counts for the morsel-parallel
    # scaling curve, SSB generator rows, morsel size and host-timing
    # repeats (REAL mode; the value reported is a host speedup ratio).
    concurrency_workers: tuple[int, ...] = (1, 2, 4)
    concurrency_rows: int = 20_000
    concurrency_chunk_rows: int = 2048
    concurrency_reps: int = 3
    # Scale-out experiment: shard counts for the distributed speedup
    # curve, SSB generator rows, morsel size and host-timing repeats
    # (REAL mode; the value reported is a host speedup ratio over the
    # one-shard anchor).
    scaleout_shards: tuple[int, ...] = (1, 2, 4)
    scaleout_rows: int = 20_000
    scaleout_chunk_rows: int = 2048
    scaleout_reps: int = 3
    # Compile-once experiment: SSB generator rows, number of distinct
    # parameterized statements, executions per statement in the repeated
    # workload, and warm/cold host-timing repeats.
    compile_cache_rows: int = 12_000
    compile_cache_statements: int = 4
    compile_cache_executions: int = 6
    compile_cache_reps: int = 3
    # Backend experiment: SSB generator rows and host-timing repeats for
    # the sim-vs-fast (and torch, when installed) execution-backend
    # speedup series (REAL mode; the value reported is a host speedup
    # ratio over the sim-backend anchor, so the row count stays in the
    # regime where fill overhead — what the fast backend sheds — is a
    # visible fraction of the query).
    backends_rows: int = 12_000
    backends_reps: int = 3
    # Chaos experiment: injected fault rates (probability per shard
    # execution) swept against availability/success-rate/p99 overhead,
    # SSB generator rows, shard count, queries per point and host-timing
    # repeats (REAL mode; every point's answer oracle-verified).
    chaos_fault_rates: tuple[float, ...] = (0.0, 0.1, 0.3)
    chaos_rows: int = 12_000
    chaos_shards: int = 2
    chaos_queries: int = 6
    chaos_reps: int = 2

    def to_dict(self) -> dict:
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out


#: The published-figure configurations (EXPERIMENTS.md).
PAPER = ScaleProfile(
    name="paper",
    description="the configurations the paper's figures report",
    verify=True,
    verify_policy="stream",
    verify_strata=3,
)

#: CI-sized inputs; every point oracle-verified.
SMOKE = ScaleProfile(
    name="smoke",
    description="CI-sized inputs with per-point oracle verification",
    verify=True,
    fig3_dims=(256, 512),
    micro_sizes=(1024, 2048),
    micro_distinct=16,
    fig8_distincts=(16, 64, 256),
    fig8_records=1024,
    ssb_scale_factors=(1,),
    ssb_rows_per_sf=3_000,
    fig10_engine_dims=(64, 128),
    fig10_projected_dims=(4096, 8192),
    table1_dims=(1024, 2048),
    table1_sample=24,
    em_datasets=("beer",),
    fig12_sizes=(256, 512),
    fig13_sizes=(256, 1024),
    ablation_sizes=(1024, 2048),
    # extremes must sit clearly on either side of the density threshold
    ablation_distincts=(16, 16384),
    fusion_rows=20_000,
    fusion_reps=3,
    concurrency_workers=(1, 2, 4),
    concurrency_rows=8_000,
    concurrency_chunk_rows=1024,
    concurrency_reps=2,
    scaleout_shards=(1, 2, 4),
    scaleout_rows=8_000,
    scaleout_chunk_rows=1024,
    scaleout_reps=2,
    compile_cache_rows=5_000,
    compile_cache_statements=3,
    compile_cache_executions=4,
    compile_cache_reps=2,
    backends_rows=10_000,
    backends_reps=3,
    chaos_fault_rates=(0.0, 0.2),
    chaos_rows=6_000,
    chaos_shards=2,
    chaos_queries=4,
    chaos_reps=2,
)

#: Beyond-paper sweeps for the cost models (analytic-only).
STRESS = ScaleProfile(
    name="stress",
    description="beyond-paper sweeps exercising the cost models",
    verify=True,
    verify_policy="stream",
    verify_strata=3,
    fig3_dims=(4096, 8192, 16384, 32768),
    micro_sizes=(16384, 32768, 65536, 131072),
    fig8_distincts=(512, 2048, 8192, 32768),
    fig8_records=16384,
    ssb_scale_factors=(1, 4, 8, 16),
    ssb_rows_per_sf=40_000,
    fig10_engine_dims=(512, 1024),
    fig10_projected_dims=(8192, 16384, 32768, 65536),
    table1_dims=(8192, 32768),
    table1_sample=64,
    fig12_sizes=(4096, 8192, 16384),
    fig13_sizes=(8192, 16384, 32768, 65536),
    ablation_sizes=(16384, 65536),
    ablation_distincts=(64, 1024, 32768),
    fusion_rows=60_000,
    fusion_reps=3,
    concurrency_workers=(1, 2, 4, 8),
    concurrency_rows=40_000,
    concurrency_chunk_rows=2048,
    concurrency_reps=3,
    scaleout_shards=(1, 2, 4, 8),
    scaleout_rows=40_000,
    scaleout_chunk_rows=2048,
    scaleout_reps=3,
    compile_cache_rows=30_000,
    compile_cache_statements=6,
    compile_cache_executions=10,
    compile_cache_reps=3,
    backends_rows=30_000,
    backends_reps=3,
)

PROFILES: dict[str, ScaleProfile] = {
    profile.name: profile for profile in (SMOKE, PAPER, STRESS)
}


def get_profile(name: str) -> ScaleProfile:
    """Look up a profile by (case-insensitive) name."""
    try:
        return PROFILES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}"
        ) from None


__all__ = ["PAPER", "PROFILES", "SMOKE", "STRESS", "ScaleProfile",
           "get_profile"]

"""Per-point oracle verification for the benchmark subsystem.

TQP-style tensor runtimes can *corrupt results while improving timings*
(quantization, precision switches, wrong plan rewrites), which is exactly
the failure mode an unverified benchmark rewards.  Every benchmarked
query can therefore be replayed in REAL mode and compared against
:class:`~repro.engine.reference.ReferenceEngine` — the same fp-tolerant
row-multiset comparison the differential test suite uses
(``tests/differential_utils.py`` wraps these helpers with asserts).

Verification kinds recorded on each :class:`SeriesPoint`:

* ``oracle``  — SQL replayed through the engine (REAL mode) and the
  Reference oracle; row multisets compared within fp tolerance.
* ``numeric`` — tensor-unit numerics checked against a float64 product
  (used for the raw-GEMM and precision experiments with no SQL query).
* ``shape``   — generator output recounted independently (dataset-shape
  tables).
* ``model``   — a cost-model projection validated against an
  engine-measured run at an overlapping configuration.
"""

from __future__ import annotations

import numpy as np

from repro.engine.base import ExecutionMode
from repro.engine.monetdb import MonetDBEngine
from repro.engine.reference import ReferenceEngine
from repro.engine.tcudb import TCUDBEngine
from repro.engine.ydb import YDBEngine

#: fp16 round-off through the TCU path; everything else must be exact.
TCU_REL = 2e-3
EXACT_REL = 1e-9
ABS_TOL = 1e-6


def canonical_sorted(rows: list[tuple]) -> list[tuple]:
    """Rows sorted by exact cells first, rounded float cells last.

    Sorting exact cells (strings, ints, bools) before rounded float cells
    keeps fp16-tolerant aggregate values from destabilizing row pairing.
    """

    def key(row: tuple):
        exact: list[str] = []
        approx: list[str] = []
        for cell in row:
            if isinstance(cell, (bool, np.bool_)):
                exact.append(str(bool(cell)))
            elif isinstance(cell, (int, np.integer)):
                exact.append(f"{int(cell):+021d}")
            elif isinstance(cell, (float, np.floating)):
                approx.append(f"{float(cell):+.6e}")
            else:
                exact.append(str(cell))
        return (exact, approx)

    return sorted((tuple(row) for row in rows), key=key)


def _cells_match(got, expected, rel: float, abs_tol: float) -> bool:
    if isinstance(got, str) or isinstance(expected, str):
        return got == expected
    g = float(got)
    e = float(expected)
    return abs(g - e) <= max(abs_tol, rel * abs(e))


def rows_match(
    got_rows: list[tuple],
    expected_rows: list[tuple],
    rel: float = EXACT_REL,
    abs_tol: float = ABS_TOL,
) -> str | None:
    """Compare two *sorted* row multisets; ``None`` on match, else a
    human-readable description of the first difference."""
    if len(got_rows) != len(expected_rows):
        return f"row count {len(got_rows)} != {len(expected_rows)}"
    for index, (got, expected) in enumerate(zip(got_rows, expected_rows)):
        if len(got) != len(expected):
            return (f"row {index}: width {len(got)} != {len(expected)}")
        for g, e in zip(got, expected):
            if not _cells_match(g, e, rel, abs_tol):
                return f"row {index}: {g!r} != {e!r} (rel={rel})"
    return None


def result_rows(result) -> list[tuple]:
    """Canonically sorted rows of a QueryResult."""
    return canonical_sorted(result.require_table().rows())


# --------------------------------------------------------------------- #
# Point marking
# --------------------------------------------------------------------- #

def mark(point, ok: bool, kind: str, note: str = "") -> None:
    """Record a verification outcome on a series point."""
    point.verified = bool(ok)
    point.verify_kind = kind
    point.verify_note = note[:200]


def skip(point, note: str = "") -> None:
    """Record that a point was not verified (and why)."""
    point.verified = None
    point.verify_kind = ""
    point.verify_note = note[:200]


class OracleVerifier:
    """Replays benchmarked queries against the Reference oracle.

    One verifier is shared across a whole benchmark run so that the
    oracle executes each distinct (catalog, sql, params) once even when
    three engines are timed on it.  ``enabled=False`` turns every check
    into a recorded skip, which is how the ``paper``/``stress`` profiles
    (whose configurations are too large to materialize) run.
    """

    def __init__(self, enabled: bool = True, pair_limit: int = 20_000_000):
        self.enabled = enabled
        self.pair_limit = pair_limit
        self.checked = 0
        self.mismatches: list[str] = []
        self._oracle_cache: dict[tuple, list[tuple]] = {}
        # Hold catalog refs so id()-keyed cache entries cannot alias a
        # garbage-collected catalog's address.
        self._catalogs: dict[int, object] = {}

    # -- engine construction ------------------------------------------- #

    @staticmethod
    def _real_engine(name: str, catalog, device=None, options=None):
        key = name.lower()
        if key == "monetdb":
            return MonetDBEngine(catalog, mode=ExecutionMode.REAL)
        if key == "ydb":
            return YDBEngine(catalog, device=device,
                             mode=ExecutionMode.REAL)
        if key == "tcudb":
            return TCUDBEngine(catalog, device=device,
                               mode=ExecutionMode.REAL, options=options)
        if key == "reference":
            return ReferenceEngine(catalog)
        raise KeyError(f"no REAL-mode constructor for engine {name!r}")

    def _oracle_rows(self, catalog, sql: str, params: dict | None):
        params_key = tuple(sorted((params or {}).items()))
        key = (id(catalog), sql, params_key)
        if key not in self._oracle_cache:
            oracle = ReferenceEngine(catalog, pair_limit=self.pair_limit)
            self._oracle_cache[key] = result_rows(
                oracle.execute(sql, params=params)
            )
            self._catalogs.setdefault(id(catalog), catalog)
        return self._oracle_cache[key]

    # -- checks ---------------------------------------------------------- #

    def verify_query(
        self,
        point,
        engine_name: str,
        catalog,
        sql: str,
        params: dict | None = None,
        *,
        device=None,
        options=None,
        rel: float | None = None,
    ) -> None:
        """Replay ``sql`` on a fresh REAL-mode engine and compare row
        multisets against the oracle; record the outcome on ``point``."""
        if not self.enabled:
            skip(point, "unverified (profile)")
            return
        if rel is None:
            rel = TCU_REL if engine_name.lower() == "tcudb" else EXACT_REL
        self.checked += 1
        try:
            engine = self._real_engine(engine_name, catalog,
                                       device=device, options=options)
            got = result_rows(engine.execute(sql, params=params))
            expected = self._oracle_rows(catalog, sql, params)
            error = rows_match(got, expected, rel=rel)
        except Exception as exc:  # surfaced in the report, not swallowed
            error = f"replay failed: {type(exc).__name__}: {exc}"
        if error is None:
            mark(point, True, "oracle")
        else:
            mark(point, False, "oracle", error)
            self.mismatches.append(
                f"{point.config} / {point.engine}: {error}"
            )

    def verify_check(self, point, ok: bool, kind: str, note: str = "") -> None:
        """Record a non-SQL verification (numeric / shape / model)."""
        if not self.enabled:
            skip(point, "unverified (profile)")
            return
        self.checked += 1
        mark(point, ok, kind, note)
        if not ok:
            self.mismatches.append(
                f"{point.config} / {point.engine}: [{kind}] {note}"
            )


__all__ = [
    "ABS_TOL",
    "EXACT_REL",
    "TCU_REL",
    "OracleVerifier",
    "canonical_sorted",
    "mark",
    "result_rows",
    "rows_match",
    "skip",
]

"""Per-point oracle verification for the benchmark subsystem.

TQP-style tensor runtimes can *corrupt results while improving timings*
(quantization, precision switches, wrong plan rewrites), which is exactly
the failure mode an unverified benchmark rewards.  Every benchmarked
query can therefore be replayed in REAL mode and compared against
:class:`~repro.engine.reference.ReferenceEngine` — the same fp-tolerant
row-multiset comparison the differential test suite uses
(``tests/differential_utils.py`` wraps these helpers with asserts).

Verification kinds recorded on each :class:`SeriesPoint`:

* ``oracle``  — SQL replayed through the engine (REAL mode) and the
  Reference oracle; row multisets compared within fp tolerance.  Under
  the ``stream`` policy the replay runs on a deterministically
  chunk-sampled catalog through the streaming oracle (paper/stress
  scales), recorded in the point's note.
* ``numeric`` — tensor-unit numerics checked against a float64 product
  (used for the raw-GEMM and precision experiments with no SQL query).
* ``shape``   — generator output recounted independently (dataset-shape
  tables).
* ``model``   — a cost-model projection validated against an
  engine-measured run at an overlapping configuration.
"""

from __future__ import annotations

import numpy as np

from repro.engine.base import ExecutionMode
from repro.engine.monetdb import MonetDBEngine
from repro.engine.reference import ReferenceEngine
from repro.engine.tcudb import DistributedEngine, TCUDBEngine
from repro.engine.ydb import YDBEngine
from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.table import Table

#: fp16 round-off through the TCU path; everything else must be exact.
TCU_REL = 2e-3
EXACT_REL = 1e-9
ABS_TOL = 1e-6


def canonical_sorted(rows: list[tuple]) -> list[tuple]:
    """Rows sorted by exact cells first, rounded float cells last.

    Sorting exact cells (strings, ints, bools) before rounded float cells
    keeps fp16-tolerant aggregate values from destabilizing row pairing.
    """

    def key(row: tuple):
        exact: list[str] = []
        approx: list[str] = []
        for cell in row:
            if isinstance(cell, (bool, np.bool_)):
                exact.append(str(bool(cell)))
            elif isinstance(cell, (int, np.integer)):
                exact.append(f"{int(cell):+021d}")
            elif isinstance(cell, (float, np.floating)):
                approx.append(f"{float(cell):+.6e}")
            else:
                exact.append(str(cell))
        return (exact, approx)

    return sorted((tuple(row) for row in rows), key=key)


def _cells_match(got, expected, rel: float, abs_tol: float) -> bool:
    if isinstance(got, str) or isinstance(expected, str):
        return got == expected
    g = float(got)
    e = float(expected)
    return abs(g - e) <= max(abs_tol, rel * abs(e))


def rows_match(
    got_rows: list[tuple],
    expected_rows: list[tuple],
    rel: float = EXACT_REL,
    abs_tol: float = ABS_TOL,
) -> str | None:
    """Compare two *sorted* row multisets; ``None`` on match, else a
    human-readable description of the first difference."""
    if len(got_rows) != len(expected_rows):
        return f"row count {len(got_rows)} != {len(expected_rows)}"
    for index, (got, expected) in enumerate(zip(got_rows, expected_rows)):
        if len(got) != len(expected):
            return (f"row {index}: width {len(got)} != {len(expected)}")
        for g, e in zip(got, expected):
            if not _cells_match(g, e, rel, abs_tol):
                return f"row {index}: {g!r} != {e!r} (rel={rel})"
    return None


def result_rows(result) -> list[tuple]:
    """Canonically sorted rows of a QueryResult."""
    return canonical_sorted(result.require_table().rows())


# --------------------------------------------------------------------- #
# Point marking
# --------------------------------------------------------------------- #

def mark(point, ok: bool, kind: str, note: str = "") -> None:
    """Record a verification outcome on a series point."""
    point.verified = bool(ok)
    point.verify_kind = kind
    point.verify_note = note[:200]


def skip(point, note: str = "") -> None:
    """Record that a point was not verified (and why)."""
    point.verified = None
    point.verify_kind = ""
    point.verify_note = note[:200]


def sampled_catalog(
    catalog, budget_rows: int, phase: int = 0
) -> tuple[Catalog, list[str]]:
    """A deterministic chunk-sampled replica of a catalog.

    Tables within the budget are shared as-is; larger tables are
    re-chunked at a fraction of the budget and keep every ``stride``-th
    chunk, so the ~``budget_rows`` kept rows *spread across the whole
    table* (generated-in-order columns like dates contribute their full
    value range, not just the head).  Sampling is stride-based over the
    chunk grid — no RNG — so the same catalog always samples to the
    same replica and a verification failure reproduces exactly.

    ``phase`` offsets the stride start (``chunks[phase::stride]``):
    distinct phases select *disjoint* chunk strata of the same table,
    which is what the stratified multi-sample replay iterates over.
    """
    out = Catalog()
    notes: list[str] = []
    for name in catalog.table_names():
        table = catalog.get(name)
        if table.num_rows <= budget_rows:
            out.register(table)
            continue
        # Sample in sub-budget chunks so the kept rows stripe the table.
        sample_chunk = max(budget_rows // 8, 64)
        chunked = table.chunked(sample_chunk)
        keep = max(budget_rows // sample_chunk, 1)
        stride = max(-(-chunked.num_chunks // keep), 1)
        kept = chunked.chunks[phase % stride::stride]
        columns = {
            column_name: Column(
                np.concatenate(
                    [chunk.column(column_name).data for chunk in kept]
                ),
                table.column(column_name).dtype,
                table.column(column_name).dictionary,
            )
            for column_name in table.column_names
        }
        sampled = Table(name, columns)
        out.register(sampled)
        notes.append(f"{name}:{sampled.num_rows}/{table.num_rows}")
    return out, notes


class OracleVerifier:
    """Replays benchmarked queries against the Reference oracle.

    One verifier is shared across a whole benchmark run so that the
    oracle executes each distinct (catalog, sql, params) once even when
    three engines are timed on it.  ``enabled=False`` turns every check
    into a recorded skip.

    ``policy`` selects the replay mode for SQL points:

    * ``"full"``   — the exact benchmark catalogs replay in REAL mode
      (the smoke profile: inputs are CI-sized by construction);
    * ``"stream"`` — paper/stress-scale replay: tables beyond
      ``sample_rows`` are deterministically chunk-sampled (stride over
      the storage chunk grid, no RNG) and the oracle executes through
      the *streaming* PhysicalExecutor.  Engine and oracle replay the
      same sample, so the row-multiset comparison remains a true
      differential check; the sampling is recorded in the point's
      ``verify_note``.

    ``strata`` (stream policy only) replays each point on that many
    *disjoint* stride-phased chunk samples instead of one: every
    stratum must match the oracle independently, and the worst relative
    cell deviation observed across all strata is recorded per point as
    a disagreement bound (``disagreement<=…`` in ``verify_note``) — a
    multi-sample confidence statement rather than a single-stride spot
    check.
    """

    def __init__(self, enabled: bool = True, pair_limit: int = 20_000_000,
                 policy: str = "full", sample_rows: int = 2048,
                 strata: int = 1):
        self.enabled = enabled
        self.pair_limit = pair_limit
        self.policy = policy
        self.sample_rows = sample_rows
        self.strata = max(int(strata), 1)
        self.checked = 0
        self.mismatches: list[str] = []
        self._oracle_cache: dict[tuple, list[tuple]] = {}
        # Hold catalog refs so id()-keyed cache entries cannot alias a
        # garbage-collected catalog's address.
        self._catalogs: dict[int, object] = {}
        # (source catalog id, phase) -> (sampled catalog, notes).
        self._sampled: dict[tuple[int, int],
                            tuple[Catalog, list[str]]] = {}

    # -- engine construction ------------------------------------------- #

    @staticmethod
    def _real_engine(name: str, catalog, device=None, options=None):
        key = name.lower()
        if key == "monetdb":
            return MonetDBEngine(catalog, mode=ExecutionMode.REAL)
        if key == "ydb":
            return YDBEngine(catalog, device=device,
                             mode=ExecutionMode.REAL)
        if key == "tcudb":
            return TCUDBEngine(catalog, device=device,
                               mode=ExecutionMode.REAL, options=options)
        if key.startswith("tcudb-dist"):
            # "tcudb-dist" or "tcudb-distN": replay through the
            # distributed engine at N shards (default 2) so sharded
            # benchmark points are verified through the same merge path
            # that produced them.
            shards = int(key[len("tcudb-dist"):] or 2)
            return DistributedEngine(catalog, shards=shards, device=device,
                                     mode=ExecutionMode.REAL,
                                     options=options)
        if key == "reference":
            return ReferenceEngine(catalog)
        raise KeyError(f"no REAL-mode constructor for engine {name!r}")

    def _oracle_rows(self, catalog, sql: str, params: dict | None):
        params_key = tuple(sorted((params or {}).items()))
        key = (id(catalog), sql, params_key)
        if key not in self._oracle_cache:
            # Stream policy: the oracle replays morsel-driven, so its
            # peak memory stays bounded by chunk size + distinct groups.
            oracle = ReferenceEngine(catalog, pair_limit=self.pair_limit,
                                     streaming=self.policy == "stream")
            self._oracle_cache[key] = result_rows(
                oracle.execute(sql, params=params)
            )
            self._catalogs.setdefault(id(catalog), catalog)
        return self._oracle_cache[key]

    def _replay_catalog(self, catalog, phase: int = 0) -> tuple[object, str]:
        """The catalog SQL replay runs on, plus a sampling note."""
        if self.policy != "stream":
            return catalog, ""
        cached = self._sampled.get((id(catalog), phase))
        if cached is None:
            cached = sampled_catalog(catalog, self.sample_rows, phase=phase)
            self._sampled[(id(catalog), phase)] = cached
            self._catalogs.setdefault(id(catalog), catalog)
        replica, notes = cached
        if not notes:
            return replica, "streamed replay"
        return replica, "sampled chunks " + ", ".join(notes)

    @staticmethod
    def _deviation(got_rows: list[tuple], expected_rows: list[tuple]) -> float:
        """Worst relative numeric-cell deviation between two matched
        (same-shape, canonically sorted) row multisets."""
        worst = 0.0
        for got, expected in zip(got_rows, expected_rows):
            for g, e in zip(got, expected):
                if isinstance(g, str) or isinstance(e, str):
                    continue
                delta = abs(float(g) - float(e))
                worst = max(worst, delta / max(abs(float(e)), 1.0))
        return worst

    # -- checks ---------------------------------------------------------- #

    def verify_query(
        self,
        point,
        engine_name: str,
        catalog,
        sql: str,
        params: dict | None = None,
        *,
        device=None,
        options=None,
        rel: float | None = None,
    ) -> None:
        """Replay ``sql`` on a fresh REAL-mode engine and compare row
        multisets against the oracle; record the outcome on ``point``."""
        if not self.enabled:
            skip(point, "unverified (profile)")
            return
        if rel is None:
            rel = (TCU_REL if engine_name.lower().startswith("tcudb")
                   else EXACT_REL)
        self.checked += 1
        phases = (range(self.strata) if self.policy == "stream"
                  else range(1))
        worst = 0.0
        error = note = ""
        try:
            for phase in phases:
                replay_catalog, note = self._replay_catalog(catalog, phase)
                engine = self._real_engine(engine_name, replay_catalog,
                                           device=device, options=options)
                got = result_rows(engine.execute(sql, params=params))
                expected = self._oracle_rows(replay_catalog, sql, params)
                error = rows_match(got, expected, rel=rel)
                if error is not None:
                    error = f"stratum {phase}: {error}"
                    break
                worst = max(worst, self._deviation(got, expected))
        except Exception as exc:  # surfaced in the report, not swallowed
            error = f"replay failed: {type(exc).__name__}: {exc}"
            note = ""
        if error is None and self.policy == "stream" and self.strata > 1:
            # The multi-stratum confidence statement: every disjoint
            # sample agreed with the oracle to within this bound.
            note = (f"{self.strata} strata, disagreement<={worst:.2e}; "
                    f"{note}")
        if error is None:
            mark(point, True, "oracle", note)
        else:
            mark(point, False, "oracle", error)
            self.mismatches.append(
                f"{point.config} / {point.engine}: {error}"
            )

    def verify_check(self, point, ok: bool, kind: str, note: str = "") -> None:
        """Record a non-SQL verification (numeric / shape / model)."""
        if not self.enabled:
            skip(point, "unverified (profile)")
            return
        self.checked += 1
        mark(point, ok, kind, note)
        if not ok:
            self.mismatches.append(
                f"{point.config} / {point.engine}: [{kind}] {note}"
            )


__all__ = [
    "ABS_TOL",
    "EXACT_REL",
    "TCU_REL",
    "OracleVerifier",
    "canonical_sorted",
    "mark",
    "result_rows",
    "rows_match",
    "sampled_catalog",
    "skip",
]

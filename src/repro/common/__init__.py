"""Shared infrastructure: errors, timing breakdowns, deterministic RNG."""

from repro.common.errors import (
    BindError,
    ConfigError,
    DeviceMemoryError,
    ExecutionError,
    HardwareError,
    LexError,
    ParseError,
    PlanError,
    PrecisionError,
    ReproError,
    SchemaError,
    SQLError,
    StorageError,
    UnknownColumnError,
    UnknownTableError,
    UnsupportedQueryError,
)
from repro.common.rng import DEFAULT_SEED, derive_rng, make_rng, zipf_codes
from repro.common.timing import TimingBreakdown, sum_breakdowns

__all__ = [
    "BindError",
    "ConfigError",
    "DEFAULT_SEED",
    "DeviceMemoryError",
    "ExecutionError",
    "HardwareError",
    "LexError",
    "ParseError",
    "PlanError",
    "PrecisionError",
    "ReproError",
    "SchemaError",
    "SQLError",
    "StorageError",
    "TimingBreakdown",
    "UnknownColumnError",
    "UnknownTableError",
    "UnsupportedQueryError",
    "derive_rng",
    "make_rng",
    "sum_breakdowns",
    "zipf_codes",
]

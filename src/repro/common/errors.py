"""Exception hierarchy for the TCUDB reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library.

    Every subtype carries two class-level resilience flags the serving
    layer keys recovery decisions on:

    * ``retryable`` — the failure is transient infrastructure trouble
      (a shard worker dying, a backend briefly unavailable, a corrupted
      partial); re-running the same work may succeed, so retry budgets
      and shard failover apply.
    * ``degraded`` — the error was raised *after* a degradation attempt
      (retries exhausted and the fallback ladder failed too); callers
      should surface it rather than retry further.
    """

    retryable = False
    degraded = False


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class HardwareError(ReproError):
    """Base class for simulated-hardware failures."""


class DeviceMemoryError(HardwareError):
    """An allocation exceeded the simulated device-memory capacity."""

    def __init__(self, requested: int, available: int, capacity: int):
        self.requested = requested
        self.available = available
        self.capacity = capacity
        super().__init__(
            f"device OOM: requested {requested} bytes, "
            f"{available} free of {capacity} total"
        )


class PrecisionError(ReproError):
    """A value cannot be represented in the requested precision."""


class StorageError(ReproError):
    """Base class for storage-layer failures."""


class SchemaError(StorageError):
    """A table/column definition is inconsistent."""


class UnknownTableError(StorageError):
    """The catalog has no table with the requested name."""

    def __init__(self, name: str):
        self.table_name = name
        super().__init__(f"unknown table: {name!r}")


class UnknownColumnError(StorageError):
    """A referenced column does not exist in the table (or is ambiguous)."""

    def __init__(self, name: str, detail: str = ""):
        self.column_name = name
        message = f"unknown column: {name!r}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class SQLError(ReproError):
    """Base class for SQL front-end failures."""


class LexError(SQLError):
    """The SQL text contains an unrecognized token."""

    def __init__(self, message: str, position: int):
        self.position = position
        super().__init__(f"{message} at offset {position}")


class ParseError(SQLError):
    """The SQL token stream does not form a supported statement."""


class BindError(SQLError):
    """Name or type resolution of the parsed query failed."""


class PlanError(ReproError):
    """A logical or physical plan could not be constructed."""


class ExecutionError(ReproError):
    """A physical operator failed at run time."""


class QueryCancelled(ExecutionError):
    """The query's cancellation token fired (explicit cancel or a
    deadline/budget expiry) and execution stopped cooperatively."""


class TransientShardError(ExecutionError):
    """A shard worker failed transiently (injected or real); re-running
    the same shard partition may succeed."""

    retryable = True

    def __init__(self, message: str, shard: int | None = None):
        self.shard = shard
        super().__init__(message)


class BackendUnavailable(ExecutionError):
    """An execution backend refused work (driver hiccup, device busy);
    the request itself is fine and may be retried or routed elsewhere."""

    retryable = True


class CorruptPartialError(ExecutionError):
    """A shard's grid partial failed its checksum; the partial must be
    discarded and the shard re-executed."""

    retryable = True

    def __init__(self, message: str, shard: int | None = None):
        self.shard = shard
        super().__init__(message)


class PoisonedTemplateError(ExecutionError):
    """A cached program template raised during specialization or
    execution; the entry is evicted and the query recompiled fresh."""

    retryable = True


class ResilienceExhausted(ExecutionError):
    """Retries and every rung of the degradation ladder failed; the
    last underlying cause is attached as ``__cause__``."""

    degraded = True


class AdmissionError(ReproError):
    """The serving front-end refused a query (admission queue full)."""


class ServerClosed(QueryCancelled):
    """The server shut down while the query was still queued; the
    ticket is cancelled rather than left hanging forever."""


class InternalError(ReproError):
    """A non-library exception escaped an engine; wrapped so no raw
    ``RuntimeError``/``ValueError`` ever crosses the server boundary."""


class UnsupportedQueryError(ReproError):
    """The query is valid SQL but outside the engine's supported subset."""

"""Deterministic, seedable fault injection for resilience testing.

The serving and distributed layers call :func:`fault_point` (and the
array-corrupting sibling :func:`corrupt_array`) at a handful of *named
sites*.  In normal operation these are no-ops.  When a
:class:`FaultPlan` is active — installed explicitly via :func:`inject`
/ :func:`set_fault_plan` or parsed from the ``REPRO_FAULTS``
environment variable — each site consults the plan's rules and may
sleep (straggler simulation) or raise a typed, *retryable*
:class:`~repro.common.errors.ReproError` subtype.  Every recovery path
in the engine and server is therefore testable and CI-reproducible:
the same plan string always injects the same faults at the same call
counts.

Sites
-----
``shard.execute``
    Around one shard's execution inside :class:`DistributedEngine`
    fan-out.  ``transient`` faults here exercise per-shard retry and
    failover.
``grid.accumulate``
    Where a shard's grid partial is merged.  ``corrupt`` rules perturb
    the partial (checksums catch it; the shard is re-executed).
``cache.get``
    On a :class:`ProgramCache` hit.  ``poison`` rules make the cached
    template raise, exercising evict-and-recompile.
``session.run``
    Around a whole query inside :class:`QueryServer`.  Exercises the
    server retry budget and circuit breaker.

Plan syntax (``REPRO_FAULTS``)
------------------------------
Semicolon-separated entries; the first may pin the seed::

    REPRO_FAULTS="seed=1306;shard.execute:transient:every=3;session.run:unavailable:every=11"

Each rule is ``site:kind[:knob=value[,knob=value...]]`` with kinds
``transient`` / ``unavailable`` / ``slow`` / ``corrupt`` / ``poison``
and knobs:

``p=0.25``
    Fire with this probability (per-rule seeded RNG; deterministic for
    a fixed plan seed and call order).
``n=2``
    Fire on the first *n* matching calls (``fail_n_times``).
``every=3``
    Fire on every 3rd matching call (periodic — consecutive calls never
    both fire, so a single retry deterministically succeeds; this is
    what the CI chaos leg uses to stay flake-free).
``delay=0.01``
    Sleep this many wall-clock seconds when the rule fires (the
    ``slow`` kind; stragglers).
``max=5``
    Stop firing after this many total fires.

A rule with no trigger knob (no ``p``/``n``/``every``) fires on every
matching call until ``max`` is reached.
"""

from __future__ import annotations

import os
import random
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.common.errors import (
    BackendUnavailable,
    ConfigError,
    CorruptPartialError,
    PoisonedTemplateError,
    TransientShardError,
)

#: The named injection sites.  ``fault_point`` validates against this so
#: a typo'd site in a plan or a call site fails loudly.
SITE_SHARD_EXECUTE = "shard.execute"
SITE_GRID_ACCUMULATE = "grid.accumulate"
SITE_CACHE_GET = "cache.get"
SITE_SESSION_RUN = "session.run"

SITES = frozenset({
    SITE_SHARD_EXECUTE,
    SITE_GRID_ACCUMULATE,
    SITE_CACHE_GET,
    SITE_SESSION_RUN,
})

KINDS = frozenset({"transient", "unavailable", "slow", "corrupt", "poison"})

#: Seed for plans that do not pin one (matches the repo-wide default).
DEFAULT_FAULT_SEED = 20220612


@dataclass
class FaultRule:
    """One injection rule: *where*, *what*, and *when* to fire."""

    site: str
    kind: str
    p: float | None = None
    n: int | None = None
    every: int | None = None
    delay: float = 0.0
    max_fires: int | None = None

    # Mutable per-rule state (guarded by the owning plan's lock).
    calls: int = field(default=0, repr=False)
    fires: int = field(default=0, repr=False)
    _rng: random.Random | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ConfigError(
                f"unknown fault site {self.site!r}; "
                f"expected one of {sorted(SITES)}")
        if self.kind not in KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {sorted(KINDS)}")
        if self.p is not None and not 0.0 <= self.p <= 1.0:
            raise ConfigError(f"fault probability out of range: {self.p}")
        if self.every is not None and self.every < 1:
            raise ConfigError(f"fault 'every' must be >= 1: {self.every}")

    def _bind(self, seed: int, index: int) -> None:
        """Give the rule its own RNG stream so rules don't perturb each
        other's draws (plan determinism survives adding a rule)."""
        self._rng = random.Random(f"{seed}/{index}/{self.site}/{self.kind}")

    def _should_fire(self) -> bool:
        """Advance the call counter and decide.  Caller holds the lock."""
        self.calls += 1
        if self.max_fires is not None and self.fires >= self.max_fires:
            return False
        if self.n is not None:
            fire = self.calls <= self.n
        elif self.every is not None:
            fire = self.calls % self.every == 0
        elif self.p is not None:
            assert self._rng is not None, "rule used outside a plan"
            fire = self._rng.random() < self.p
        else:
            fire = True
        if fire:
            self.fires += 1
        return fire


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s with thread-safe counters.

    One plan instance accumulates counters across threads and queries;
    :meth:`stats` exposes them for tests and ``resilience_stats()``.
    """

    def __init__(self, rules: list[FaultRule] | None = None,
                 seed: int = DEFAULT_FAULT_SEED):
        self.seed = seed
        self.rules: list[FaultRule] = list(rules or [])
        self._lock = threading.Lock()
        for index, rule in enumerate(self.rules):
            rule._bind(seed, index)

    def add(self, rule: FaultRule) -> FaultRule:
        with self._lock:
            rule._bind(self.seed, len(self.rules))
            self.rules.append(rule)
        return rule

    def fired_rules(self, site: str) -> list[FaultRule]:
        """Advance counters for *site* and return the rules that fire."""
        fired = []
        with self._lock:
            for rule in self.rules:
                if rule.site == site and rule._should_fire():
                    fired.append(rule)
        return fired

    def reset(self) -> None:
        with self._lock:
            for index, rule in enumerate(self.rules):
                rule.calls = rule.fires = 0
                rule._bind(self.seed, index)

    def stats(self) -> dict:
        with self._lock:
            return {
                "seed": self.seed,
                "rules": [
                    {
                        "site": rule.site,
                        "kind": rule.kind,
                        "calls": rule.calls,
                        "fires": rule.fires,
                    }
                    for rule in self.rules
                ],
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, rules={self.rules!r})"


def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` plan string (syntax in module docstring)."""
    seed = DEFAULT_FAULT_SEED
    rules: list[FaultRule] = []
    for entry in spec.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        if entry.startswith("seed="):
            try:
                seed = int(entry[len("seed="):])
            except ValueError as exc:
                raise ConfigError(f"bad fault seed: {entry!r}") from exc
            continue
        parts = entry.split(":")
        if len(parts) < 2 or len(parts) > 3:
            raise ConfigError(
                f"bad fault rule {entry!r}; "
                f"expected 'site:kind[:knob=value,...]'")
        site, kind = parts[0].strip(), parts[1].strip()
        knobs: dict[str, float | int] = {}
        if len(parts) == 3:
            for token in parts[2].split(","):
                token = token.strip()
                if not token:
                    continue
                if "=" not in token:
                    raise ConfigError(f"bad fault knob {token!r} in {entry!r}")
                key, _, raw = token.partition("=")
                key = key.strip()
                try:
                    if key in ("n", "every", "max"):
                        knobs[key] = int(raw)
                    elif key in ("p", "delay"):
                        knobs[key] = float(raw)
                    else:
                        raise ConfigError(
                            f"unknown fault knob {key!r} in {entry!r}")
                except ValueError as exc:
                    raise ConfigError(
                        f"bad fault knob value {token!r} in {entry!r}"
                    ) from exc
        rules.append(FaultRule(
            site=site,
            kind=kind,
            p=knobs.get("p"),
            n=knobs.get("n"),
            every=knobs.get("every"),
            delay=float(knobs.get("delay", 0.0)),
            max_fires=knobs.get("max"),
        ))
    return FaultPlan(rules, seed=seed)


# --- active-plan management -------------------------------------------------

class _Unset:
    """Sentinel distinguishing "no explicit plan" from inject(None)."""


_UNSET = _Unset()
_explicit_plan: FaultPlan | None | _Unset = _UNSET
_env_cache: tuple[str, FaultPlan] | None = None
_state_lock = threading.Lock()
_local = threading.local()


def set_fault_plan(plan: FaultPlan | None) -> None:
    """Install *plan* process-wide (``None`` disables injection even if
    ``REPRO_FAULTS`` is set; pass :data:`_UNSET` semantics via
    :func:`clear_fault_plan` to fall back to the environment)."""
    global _explicit_plan
    with _state_lock:
        _explicit_plan = plan


def clear_fault_plan() -> None:
    """Drop the explicit plan; ``REPRO_FAULTS`` (if set) applies again."""
    global _explicit_plan
    with _state_lock:
        _explicit_plan = _UNSET


def active_plan() -> FaultPlan | None:
    """The plan in effect: explicit wins, else ``REPRO_FAULTS``.

    The env-parsed plan is cached per spec string as one shared
    instance, so its counters accumulate for the whole process — the
    CI chaos leg's ``every=k`` periodicity spans test cases.
    """
    global _env_cache
    with _state_lock:
        if not isinstance(_explicit_plan, _Unset):
            return _explicit_plan
        spec = os.environ.get("REPRO_FAULTS", "").strip()
        if not spec:
            return None
        if _env_cache is None or _env_cache[0] != spec:
            _env_cache = (spec, parse_fault_plan(spec))
        return _env_cache[1]


@contextmanager
def inject(plan: FaultPlan | None) -> Iterator[FaultPlan | None]:
    """Scoped :func:`set_fault_plan`: install *plan* for the ``with``
    body, restoring the prior state after (tests use this heavily)."""
    global _explicit_plan
    with _state_lock:
        prior = _explicit_plan
        _explicit_plan = plan
    try:
        yield plan
    finally:
        with _state_lock:
            _explicit_plan = prior


@contextmanager
def suppress() -> Iterator[None]:
    """Disable injection on the *current thread* for the ``with`` body.

    Coordinator-side recovery uses this: after retries exhaust, the
    degradation rung re-executes work that must not be re-faulted
    (otherwise an always-fire plan could never converge).  Thread-local
    on purpose — sibling shard workers on other threads keep faulting.
    """
    depth = getattr(_local, "suppressed", 0)
    _local.suppressed = depth + 1
    try:
        yield
    finally:
        _local.suppressed = depth


def _suppressed() -> bool:
    return getattr(_local, "suppressed", 0) > 0


def fault_point(site: str, shard: int | None = None) -> None:
    """Injection hook: sleep and/or raise per the active plan.

    No-op (a dict lookup and one branch) when no plan is active or the
    current thread is inside :func:`suppress`.  ``corrupt`` rules are
    *not* raised here — they act through :func:`corrupt_array`.
    """
    if site not in SITES:
        raise ConfigError(f"unknown fault site {site!r}")
    if _suppressed():
        return
    plan = active_plan()
    if plan is None:
        return
    for rule in plan.fired_rules(site):
        if rule.kind == "slow":
            if rule.delay > 0.0:
                time.sleep(rule.delay)
        elif rule.kind == "transient":
            raise TransientShardError(
                f"injected transient fault at {site}"
                + (f" (shard {shard})" if shard is not None else ""),
                shard=shard)
        elif rule.kind == "unavailable":
            raise BackendUnavailable(
                f"injected backend-unavailable fault at {site}")
        elif rule.kind == "poison":
            raise PoisonedTemplateError(
                f"injected template poison at {site}")
        # "corrupt" rules are consumed by corrupt_array at this site.


def corrupt_array(site: str, array, shard: int | None = None):
    """Return *array*, or a silently perturbed copy if a ``corrupt``
    rule fires at *site*.

    The caller is expected to have captured a checksum of the honest
    value beforehand; downstream verification then detects the
    perturbation and raises :class:`CorruptPartialError` — the full
    corruption→detection→re-execution path, end to end.
    """
    if _suppressed():
        return array
    plan = active_plan()
    if plan is None:
        return array
    for rule in plan.fired_rules(site):
        if rule.kind != "corrupt":
            continue
        corrupted = array.copy()
        flat = corrupted.reshape(-1)
        if flat.size:
            flat[0] = flat[0] + 1e9
        return corrupted
    return array


def checksum_mismatch(site: str, shard: int | None = None) -> None:
    """Raise the typed error for a detected corrupt partial."""
    raise CorruptPartialError(
        f"grid partial failed checksum verification at {site}"
        + (f" (shard {shard})" if shard is not None else ""),
        shard=shard)

"""Deterministic random-number helpers.

All dataset generators take an integer ``seed`` and derive their streams
through :func:`make_rng` so experiments are reproducible run-to-run.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 20220612  # SIGMOD'22 started June 12, 2022.


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a numpy Generator from an integer seed (default fixed)."""
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator for substream ``stream``."""
    seed = int(rng.integers(0, 2**63 - 1)) ^ (stream * 0x9E3779B97F4A7C15)
    return np.random.default_rng(seed & (2**63 - 1))


def zipf_codes(
    rng: np.random.Generator, n: int, n_distinct: int, skew: float = 0.0
) -> np.ndarray:
    """Draw ``n`` codes in ``[0, n_distinct)`` with optional Zipf skew.

    ``skew == 0`` gives a uniform distribution.  Larger values concentrate
    mass on low codes, mimicking the skewed attribute-frequency profiles of
    real entity-matching datasets.
    """
    if n_distinct <= 0:
        raise ValueError("n_distinct must be positive")
    if skew <= 0:
        return rng.integers(0, n_distinct, size=n, dtype=np.int64)
    ranks = np.arange(1, n_distinct + 1, dtype=np.float64)
    weights = ranks**-skew
    weights /= weights.sum()
    return rng.choice(n_distinct, size=n, p=weights).astype(np.int64)

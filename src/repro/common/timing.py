"""Timing breakdowns for simulated query execution.

The paper's figures report stacked execution-time breakdowns per engine
(e.g. "Fill Matrices", "GPU Memory Copy", "HashJoin", "Join+GroupBy+
Aggregation").  :class:`TimingBreakdown` accumulates simulated seconds per
named stage and supports the normalization used throughout Section 5
(dividing every series by a baseline total).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

# Canonical stage names used across engines.  Engines may add their own,
# but sticking to these keeps figure legends consistent with the paper.
STAGE_FILL = "fill_matrices"
STAGE_MEMCPY = "gpu_memcpy"
STAGE_JOIN = "join"
STAGE_GROUPBY = "groupby_aggregation"
STAGE_AGGREGATION = "aggregation"
STAGE_TCU_OP = "tcu_join_groupby_aggregation"
STAGE_CPU = "cpu_processing"
STAGE_SCAN = "scan"
STAGE_OTHER = "other"


class TimingBreakdown:
    """Accumulates simulated execution time per named stage.

    Stages are kept in insertion order so that stacked-bar output matches
    the order in which an engine performed its phases.
    """

    def __init__(self, stages: Mapping[str, float] | None = None):
        self._stages: dict[str, float] = {}
        if stages:
            for name, seconds in stages.items():
                self.add(name, seconds)

    def add(self, stage: str, seconds: float) -> None:
        """Charge ``seconds`` of simulated time to ``stage``."""
        if seconds < 0:
            raise ValueError(f"negative time for stage {stage!r}: {seconds}")
        self._stages[stage] = self._stages.get(stage, 0.0) + float(seconds)

    def get(self, stage: str) -> float:
        return self._stages.get(stage, 0.0)

    @property
    def total(self) -> float:
        return sum(self._stages.values())

    @property
    def stages(self) -> dict[str, float]:
        """A copy of the per-stage times, in insertion order."""
        return dict(self._stages)

    def merge(self, other: "TimingBreakdown") -> "TimingBreakdown":
        """Return a new breakdown with both operands' stages summed."""
        merged = TimingBreakdown(self._stages)
        for name, seconds in other._stages.items():
            merged.add(name, seconds)
        return merged

    def scaled(self, factor: float) -> "TimingBreakdown":
        """Return a new breakdown with all stages multiplied by ``factor``."""
        return TimingBreakdown(
            {name: seconds * factor for name, seconds in self._stages.items()}
        )

    def normalized(self, baseline_total: float) -> dict[str, float]:
        """Per-stage times divided by a baseline total (paper-style)."""
        if baseline_total <= 0:
            raise ValueError("baseline total must be positive")
        return {n: s / baseline_total for n, s in self._stages.items()}

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}={s:.3g}s" for n, s in self._stages.items())
        return f"TimingBreakdown({parts}, total={self.total:.3g}s)"


def sum_breakdowns(breakdowns: Iterable[TimingBreakdown]) -> TimingBreakdown:
    """Sum an iterable of breakdowns stage-by-stage."""
    result = TimingBreakdown()
    for breakdown in breakdowns:
        result = result.merge(breakdown)
    return result

"""Entity-matching datasets (Section 5.4.2).

The paper evaluates EM blocking on two Deepmatcher datasets we cannot
redistribute, so we synthesize datasets with the *published shape*: the
same row counts, the same per-attribute distinct-value counts (paper
Tables 2 and 3) and Zipf-skewed value frequencies.  Blocking-query cost
depends only on those cardinalities, so the substitution preserves the
experiment (see DESIGN.md).

Every attribute value is a string (as in the originals); the engines see
them through dictionary encoding.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import derive_rng, make_rng
from repro.storage.catalog import Catalog
from repro.storage.table import Table

# Paper Table 2: BeerAdvo-RateBeer — 3,777 + 2,671 rows.
BEER_ROWS_A = 3777
BEER_ROWS_B = 2671
BEER_DISTINCTS = {"abv": 20, "style": 71, "factory": 3678, "beer_name": 6228}

# Paper Table 3: iTunes-Amazon — 6,907 + 55,923 rows (scaled: x2).
ITUNES_ROWS_A = 6907
ITUNES_ROWS_B = 55923
ITUNES_DISTINCTS = {
    "price": 12, "genre": 813, "time": 908, "artist": 2418,
    "copyright": 3197, "album": 6004,
}
ITUNES_SCALED_ROWS_A = 13814
ITUNES_SCALED_ROWS_B = 111846
ITUNES_SCALED_DISTINCTS = {
    "price": 25, "genre": 1614, "time": 1208, "artist": 6420,
    "copyright": 8199, "album": 11005,
}


def _attribute_values(
    rng, attribute: str, n_total: int, n_distinct: int, skew: float = 1.05
) -> np.ndarray:
    """``n_total`` draws hitting exactly ``n_distinct`` distinct strings.

    Every value appears at least once; the remaining draws follow a Zipf
    profile, mimicking the frequency skew of real EM attributes.
    """
    if n_distinct > n_total:
        raise ValueError(
            f"{attribute}: cannot produce {n_distinct} distinct values "
            f"from {n_total} rows"
        )
    base = np.arange(n_distinct)
    extra = n_total - n_distinct
    if extra > 0:
        ranks = np.arange(1, n_distinct + 1, dtype=np.float64)
        weights = ranks**-skew
        weights /= weights.sum()
        tail = rng.choice(n_distinct, size=extra, p=weights)
        codes = np.concatenate([base, tail])
    else:
        codes = base
    rng.shuffle(codes)
    return np.array([f"{attribute}_{c}" for c in codes], dtype=object)


def _split_tables(
    name_a: str, name_b: str, rows_a: int, rows_b: int,
    distincts: dict[str, int], rng, extra_columns: dict[str, str],
) -> tuple[Table, Table]:
    total = rows_a + rows_b
    columns_a: dict[str, list] = {"id": list(range(rows_a))}
    columns_b: dict[str, list] = {"id": list(range(rows_b))}
    for i, (attribute, n_distinct) in enumerate(distincts.items()):
        values = _attribute_values(
            derive_rng(rng, i + 1), attribute, total, n_distinct
        )
        columns_a[attribute] = list(values[:rows_a])
        columns_b[attribute] = list(values[rows_a:])
    for column, prefix in extra_columns.items():
        columns_a[column] = [f"{prefix}_a_{i}" for i in range(rows_a)]
        columns_b[column] = [f"{prefix}_b_{i}" for i in range(rows_b)]
    return (
        Table.from_dict(name_a, columns_a),
        Table.from_dict(name_b, columns_b),
    )


def beer_catalog(seed: int | None = None) -> Catalog:
    """BeerAdvo-RateBeer-shaped catalog: table_a / table_b."""
    rng = make_rng(seed)
    table_a, table_b = _split_tables(
        "table_a", "table_b", BEER_ROWS_A, BEER_ROWS_B, BEER_DISTINCTS, rng,
        extra_columns={},
    )
    catalog = Catalog()
    catalog.register(table_a)
    catalog.register(table_b)
    return catalog


def itunes_catalog(seed: int | None = None, scaled: bool = False) -> Catalog:
    """iTunes-Amazon-shaped catalog (``scaled`` doubles it, Section 5.4.2)."""
    rng = make_rng(seed)
    if scaled:
        rows_a, rows_b = ITUNES_SCALED_ROWS_A, ITUNES_SCALED_ROWS_B
        distincts = ITUNES_SCALED_DISTINCTS
    else:
        rows_a, rows_b = ITUNES_ROWS_A, ITUNES_ROWS_B
        distincts = ITUNES_DISTINCTS
    table_a, table_b = _split_tables(
        "table_a", "table_b", rows_a, rows_b, distincts, rng,
        extra_columns={"song": "song"},
    )
    catalog = Catalog()
    catalog.register(table_a)
    catalog.register(table_b)
    return catalog

"""Road-network graphs for the PageRank case study (Section 5.4.3).

The paper subsamples the SNAP Pennsylvania road network (1.08M nodes,
1.54M undirected edges) by taking the most popular N nodes and the edges
among them (paper Table 4).  Without the SNAP file we synthesize a
road-like base graph — a jittered grid with degree ~2.8 (road networks
are near-planar with low, tight degree distributions) — and apply the
same popularity-based induced-subgraph extraction.  Smaller subsets lose
proportionally more boundary edges, reproducing Table 4's rising
edge/node ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.common.rng import make_rng
from repro.storage.catalog import Catalog
from repro.storage.table import Table

# Paper Table 4: nodes -> directed edge counts of the reduced graphs.
PAPER_TABLE4 = {
    1024: 2058, 2048: 4152, 3072: 6280, 4096: 8450,
    8192: 17444, 16384: 37106, 32768: 82070,
}


@dataclass(frozen=True)
class Graph:
    """A directed graph as parallel src/dst arrays over [0, n_nodes)."""

    n_nodes: int
    src: np.ndarray
    dst: np.ndarray

    @property
    def n_edges(self) -> int:
        return int(self.src.size)

    @property
    def edge_node_ratio(self) -> float:
        return self.n_edges / self.n_nodes if self.n_nodes else 0.0


def synthetic_road_network(
    n_nodes: int, seed: int | None = None, target_ratio: float = 2.83
) -> Graph:
    """A connected, road-like graph: grid skeleton + sampled local links.

    Edges are symmetric (each undirected road appears in both
    directions); the directed edge/node ratio targets the SNAP
    Pennsylvania value of ~2.83.
    """
    rng = make_rng(seed)
    side = int(math.ceil(math.sqrt(n_nodes)))
    # Spanning backbone: serpentine path over the grid guarantees
    # connectivity with exactly n-1 undirected edges.
    order = []
    for r in range(side):
        cols = range(side) if r % 2 == 0 else range(side - 1, -1, -1)
        order.extend(r * side + c for c in cols)
    order = [node for node in order if node < n_nodes]
    backbone = np.array(
        [(order[i], order[i + 1]) for i in range(len(order) - 1)],
        dtype=np.int64,
    )
    # Local extra roads: right/down grid neighbours, sampled to hit the
    # target degree.
    candidates = []
    for node in range(n_nodes):
        r, c = divmod(node, side)
        if c + 1 < side and node + 1 < n_nodes:
            candidates.append((node, node + 1))
        if r + 1 < side and node + side < n_nodes:
            candidates.append((node, node + side))
    candidates = np.array(candidates, dtype=np.int64)
    undirected_target = int(n_nodes * target_ratio / 2)
    extra_needed = max(undirected_target - backbone.shape[0], 0)
    backbone_set = {tuple(sorted(e)) for e in backbone.tolist()}
    keep = [
        i for i, edge in enumerate(candidates.tolist())
        if tuple(sorted(edge)) not in backbone_set
    ]
    keep = np.array(keep, dtype=np.int64)
    if extra_needed < keep.size:
        keep = rng.choice(keep, size=extra_needed, replace=False)
    chosen = candidates[keep]
    undirected = np.vstack([backbone, chosen]) if chosen.size else backbone
    src = np.concatenate([undirected[:, 0], undirected[:, 1]])
    dst = np.concatenate([undirected[:, 1], undirected[:, 0]])
    return Graph(n_nodes=n_nodes, src=src, dst=dst)


def reduce_graph(graph: Graph, n_keep: int) -> Graph:
    """Paper's reduction: keep the most popular ``n_keep`` nodes
    (by degree) and the induced edges, then relabel densely."""
    if n_keep >= graph.n_nodes:
        return graph
    degrees = np.bincount(graph.src, minlength=graph.n_nodes) + np.bincount(
        graph.dst, minlength=graph.n_nodes
    )
    # Stable top-N: sort by (-degree, node id).
    popular = np.lexsort((np.arange(graph.n_nodes), -degrees))[:n_keep]
    keep_mask = np.zeros(graph.n_nodes, dtype=bool)
    keep_mask[popular] = True
    edge_mask = keep_mask[graph.src] & keep_mask[graph.dst]
    relabel = -np.ones(graph.n_nodes, dtype=np.int64)
    relabel[np.sort(popular)] = np.arange(n_keep)
    return Graph(
        n_nodes=n_keep,
        src=relabel[graph.src[edge_mask]],
        dst=relabel[graph.dst[edge_mask]],
    )


def reduced_road_graph(
    n_nodes: int, seed: int | None = None, base_multiplier: int = 4
) -> Graph:
    """Table-4-style reduced graph: generate a base road network
    ``base_multiplier`` times larger, then take the popular top-N."""
    base = synthetic_road_network(n_nodes * base_multiplier, seed)
    return reduce_graph(base, n_nodes)


def graph_catalog(graph: Graph) -> Catalog:
    """NODE and EDGE relations for the SQL PageRank queries."""
    catalog = Catalog()
    catalog.register(Table.from_dict("node", {
        "id": np.arange(graph.n_nodes),
    }))
    catalog.register(Table.from_dict("edge", {
        "src": graph.src,
        "dst": graph.dst,
    }))
    return catalog

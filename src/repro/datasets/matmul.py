"""Matrix-multiplication query dataset (Section 5.4.1 / Figure 5).

Two tables A and B with schema (row_num, col_num, val): each record is
one matrix element, so a ``dim x dim`` dense matrix yields ``dim**2``
records per table.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng
from repro.storage.catalog import Catalog
from repro.storage.table import Table

# The query of Figure 5: matrix multiplication in SQL.
MATMUL_QUERY = """
SELECT A.col_num, B.row_num, SUM(A.val * B.val) as res
FROM A, B
WHERE A.row_num = B.col_num
GROUP BY A.col_num, B.row_num;
"""


def generate_matrix_table(
    name: str,
    dim: int,
    rng,
    value_low: float = 0.0,
    value_high: float = 2.0,
    density: float = 1.0,
) -> Table:
    """One matrix as a (row_num, col_num, val) relation."""
    if dim <= 0:
        raise ValueError("dim must be positive")
    if not 0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    cells = dim * dim
    if density < 1.0:
        n = max(int(cells * density), 1)
        flat = rng.choice(cells, size=n, replace=False)
    else:
        n = cells
        flat = np.arange(cells)
    return Table.from_dict(name, {
        "row_num": flat // dim,
        "col_num": flat % dim,
        "val": rng.integers(int(value_low), int(value_high),
                            size=n).astype(float),
    })


def matmul_catalog(
    dim: int,
    seed: int | None = None,
    value_low: float = 0.0,
    value_high: float = 2.0,
    density: float = 1.0,
) -> Catalog:
    """Catalog with tables A and B encoding two dim x dim matrices."""
    rng = make_rng(seed)
    catalog = Catalog()
    catalog.register(
        generate_matrix_table("a", dim, rng, value_low, value_high, density)
    )
    catalog.register(
        generate_matrix_table("b", dim, rng, value_low, value_high, density)
    )
    return catalog


def dense_matrix_from_table(table: Table, dim: int) -> np.ndarray:
    """Reference: decode a (row_num, col_num, val) relation to numpy."""
    dense = np.zeros((dim, dim))
    data = table.to_dict()
    dense[data["row_num"].astype(int), data["col_num"].astype(int)] = data["val"]
    return dense

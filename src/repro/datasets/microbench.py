"""Microbenchmark datasets (Section 5.2).

Two tables with schema (ID, Val): ``n_records`` tuples each, join keys
drawn uniformly from ``n_distinct`` values — the (M, K) configurations of
Figures 7, 8 and 14.
"""

from __future__ import annotations

from repro.common.rng import make_rng
from repro.storage.catalog import Catalog
from repro.storage.table import Table


def generate_microbench_tables(
    n_records: int,
    n_distinct: int,
    seed: int | None = None,
    value_low: int = 0,
    value_high: int = 100,
) -> tuple[Table, Table]:
    """Tables A and B for the sampling queries Q1/Q3/Q4."""
    if n_records <= 0 or n_distinct <= 0:
        raise ValueError("n_records and n_distinct must be positive")
    rng = make_rng(seed)
    table_a = Table.from_dict("a", {
        "id": rng.integers(0, n_distinct, size=n_records),
        "val": rng.integers(value_low, value_high, size=n_records)
        .astype(float),
    })
    table_b = Table.from_dict("b", {
        "id": rng.integers(0, n_distinct, size=n_records),
        "val": rng.integers(value_low, value_high // 2 + 1, size=n_records)
        .astype(float),
    })
    return table_a, table_b


def microbench_catalog(
    n_records: int, n_distinct: int, seed: int | None = None
) -> Catalog:
    """A catalog pre-loaded with the two microbenchmark tables."""
    catalog = Catalog()
    table_a, table_b = generate_microbench_tables(n_records, n_distinct, seed)
    catalog.register(table_a)
    catalog.register(table_b)
    return catalog


# The three sampling queries from Section 3 the paper profiles.
QUERY_Q1 = "SELECT A.Val, B.Val FROM A, B WHERE A.ID = B.ID;"
QUERY_Q3 = (
    "SELECT SUM(A.Val) as s, B.Val FROM A, B "
    "WHERE A.ID = B.ID GROUP BY B.Val;"
)
QUERY_Q4 = "SELECT SUM(A.Val * B.Val) FROM A, B WHERE A.ID = B.ID;"
QUERY_Q5 = "SELECT A.Val, B.Val FROM A, B WHERE A.ID < B.ID;"

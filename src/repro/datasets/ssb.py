"""Star Schema Benchmark data generator (O'Neil et al.).

Generates the SSB star schema — one fact table (lineorder) and four
dimensions (customer, supplier, part, ddate) connected by foreign keys —
at a given scale factor.  Row counts follow the official dbgen ratios
scaled by ``rows_per_sf`` (default 60,000 lineorder rows per SF, 1/100 of
the official 6M, so a Python process generates SF 8 in seconds; all
selectivities and key relationships match the official generator, so
engine comparisons are unaffected).
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import derive_rng, make_rng
from repro.storage.catalog import Catalog
from repro.storage.table import Table

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS_PER_REGION = 5
CITIES_PER_NATION = 10

# 7 years of dates (1992-01-01 .. 1998-12-31), as in dbgen.
FIRST_YEAR = 1992
N_YEARS = 7
DAYS_PER_MONTH = 30  # simplified calendar: 12 x 30-day months
N_DATES = N_YEARS * 12 * DAYS_PER_MONTH

MONTH_NAMES = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
]


def _nation_names() -> list[str]:
    return [
        f"{region.replace(' ', '')[:7]}_N{i}"
        for region in REGIONS
        for i in range(NATIONS_PER_REGION)
    ]


def _city_names() -> list[str]:
    return [
        f"{nation}_C{j}"
        for nation in _nation_names()
        for j in range(CITIES_PER_NATION)
    ]


def generate_ddate() -> Table:
    """The date dimension: one row per (simplified) calendar day."""
    index = np.arange(N_DATES)
    year = FIRST_YEAR + index // (12 * DAYS_PER_MONTH)
    month = (index // DAYS_PER_MONTH) % 12 + 1
    day = index % DAYS_PER_MONTH + 1
    datekey = year * 10000 + month * 100 + day
    week = (index % (12 * DAYS_PER_MONTH)) // 7 + 1
    yearmonth = [
        f"{MONTH_NAMES[m - 1]}{y}" for y, m in zip(year, month)
    ]
    return Table.from_dict("ddate", {
        "d_datekey": datekey,
        "d_year": year,
        "d_month": month,
        "d_yearmonthnum": year * 100 + month,
        "d_yearmonth": yearmonth,
        "d_weeknuminyear": week,
        "d_daynuminmonth": day,
    })


def generate_customer(n: int, rng) -> Table:
    cities = _city_names()
    nations = _nation_names()
    city_idx = rng.integers(0, len(cities), size=n)
    nation_idx = city_idx // CITIES_PER_NATION
    region_idx = nation_idx // NATIONS_PER_REGION
    return Table.from_dict("customer", {
        "c_custkey": np.arange(1, n + 1),
        "c_name": [f"Customer{i:07d}" for i in range(1, n + 1)],
        "c_city": [cities[i] for i in city_idx],
        "c_nation": [nations[i] for i in nation_idx],
        "c_region": [REGIONS[i] for i in region_idx],
    })


def generate_supplier(n: int, rng) -> Table:
    cities = _city_names()
    nations = _nation_names()
    city_idx = rng.integers(0, len(cities), size=n)
    nation_idx = city_idx // CITIES_PER_NATION
    region_idx = nation_idx // NATIONS_PER_REGION
    return Table.from_dict("supplier", {
        "s_suppkey": np.arange(1, n + 1),
        "s_name": [f"Supplier{i:07d}" for i in range(1, n + 1)],
        "s_city": [cities[i] for i in city_idx],
        "s_nation": [nations[i] for i in nation_idx],
        "s_region": [REGIONS[i] for i in region_idx],
    })


def generate_part(n: int, rng) -> Table:
    mfgr_idx = rng.integers(1, 6, size=n)  # MFGR#1..5
    category_idx = rng.integers(1, 6, size=n)  # 5 categories per mfgr
    brand_idx = rng.integers(1, 41, size=n)  # 40 brands per category
    return Table.from_dict("part", {
        "p_partkey": np.arange(1, n + 1),
        "p_name": [f"Part{i:07d}" for i in range(1, n + 1)],
        "p_mfgr": [f"MFGR#{m}" for m in mfgr_idx],
        "p_category": [f"MFGR#{m}{c}" for m, c in zip(mfgr_idx, category_idx)],
        "p_brand1": [
            f"MFGR#{m}{c}{b:02d}"
            for m, c, b in zip(mfgr_idx, category_idx, brand_idx)
        ],
    })


def generate_lineorder(
    n: int, n_customers: int, n_suppliers: int, n_parts: int, rng,
    datekeys: np.ndarray,
) -> Table:
    quantity = rng.integers(1, 51, size=n)
    discount = rng.integers(0, 11, size=n)
    extendedprice = rng.integers(90_000, 10_000_000, size=n) // 100
    revenue = extendedprice * (100 - discount) // 100
    supplycost = (extendedprice * 6) // 10
    return Table.from_dict("lineorder", {
        "lo_orderkey": np.arange(1, n + 1),
        "lo_custkey": rng.integers(1, n_customers + 1, size=n),
        "lo_suppkey": rng.integers(1, n_suppliers + 1, size=n),
        "lo_partkey": rng.integers(1, n_parts + 1, size=n),
        "lo_orderdate": datekeys[rng.integers(0, datekeys.size, size=n)],
        "lo_quantity": quantity,
        "lo_discount": discount,
        "lo_extendedprice": extendedprice,
        "lo_revenue": revenue,
        "lo_supplycost": supplycost,
    })


def ssb_catalog(
    scale_factor: float = 1.0,
    rows_per_sf: int = 60_000,
    seed: int | None = None,
) -> Catalog:
    """Generate the five SSB tables at a scale factor.

    Official dbgen ratios per SF: 6,000,000 lineorder, 30,000 customer,
    2,000 supplier, 200,000 * (1 + log2 SF) part, 2,556 dates.  We scale
    the fact table by ``rows_per_sf`` and the dimensions proportionally.
    """
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    rng = make_rng(seed)
    scale = rows_per_sf / 6_000_000
    n_lineorder = max(int(6_000_000 * scale_factor * scale), 1000)
    n_customers = max(int(30_000 * scale_factor * scale * 20), 200)
    n_suppliers = max(int(2_000 * scale_factor * scale * 20), 40)
    part_factor = 1.0 + (np.log2(scale_factor) if scale_factor > 1 else 0.0)
    n_parts = max(int(200_000 * part_factor * scale * 20), 400)
    catalog = Catalog()
    ddate = generate_ddate()
    catalog.register(ddate)
    catalog.register(generate_customer(n_customers, derive_rng(rng, 1)))
    catalog.register(generate_supplier(n_suppliers, derive_rng(rng, 2)))
    catalog.register(generate_part(n_parts, derive_rng(rng, 3)))
    datekeys = ddate.column("d_datekey").data
    catalog.register(
        generate_lineorder(
            n_lineorder, n_customers, n_suppliers, n_parts,
            derive_rng(rng, 4), datekeys,
        )
    )
    return catalog


def ssb_data_bytes(catalog: Catalog) -> int:
    """Total bytes across the five tables (the paper quotes 0.7-5.6 GB
    for SF 1-8 at full scale)."""
    return sum(
        catalog.get(name).nbytes
        for name in ("lineorder", "customer", "supplier", "part", "ddate")
    )

"""Query engines: TCUDB, the paper's baselines, and the Reference oracle.

Every engine shares the ``Engine.execute(sql)`` facade.  The registry
maps a case-insensitive name to the engine class so benchmarks, tests
and tools can instantiate engines uniformly::

    from repro.engine import create_engine
    engine = create_engine("reference", catalog)
"""

from repro.engine.base import Engine, ExecutionMode, QueryResult
from repro.engine.monetdb import MonetDBEngine
from repro.engine.reference import ReferenceEngine
from repro.engine.tcudb.distributed import DistributedEngine
from repro.engine.tcudb.engine import TCUDBEngine
from repro.engine.ydb import YDBEngine
from repro.storage.catalog import Catalog

ENGINE_REGISTRY: dict[str, type[Engine]] = {
    "tcudb": TCUDBEngine,
    "tcudb-dist": DistributedEngine,
    "ydb": YDBEngine,
    "monetdb": MonetDBEngine,
    "reference": ReferenceEngine,
}


def available_engines() -> list[str]:
    """Registered engine names, sorted."""
    return sorted(ENGINE_REGISTRY)


def create_engine(name: str, catalog: Catalog, **kwargs) -> Engine:
    """Instantiate a registered engine by name."""
    engine_cls = ENGINE_REGISTRY.get(name.lower())
    if engine_cls is None:
        raise KeyError(
            f"unknown engine {name!r}; available: {available_engines()}"
        )
    return engine_cls(catalog, **kwargs)


__all__ = [
    "ENGINE_REGISTRY",
    "DistributedEngine",
    "Engine",
    "ExecutionMode",
    "MonetDBEngine",
    "QueryResult",
    "ReferenceEngine",
    "TCUDBEngine",
    "YDBEngine",
    "available_engines",
    "create_engine",
]

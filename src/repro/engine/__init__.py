"""Query engines: TCUDB plus the three baselines the paper compares."""

from repro.engine.base import Engine, ExecutionMode, QueryResult

__all__ = ["Engine", "ExecutionMode", "QueryResult"]

"""Engine-layer foundations.

* :class:`ExecutionMode` — REAL executes full numerics; ANALYTIC computes
  exact cardinalities and masks (cheap, vectorized) but skips materializing
  join outputs, so paper-scale configurations run in milliseconds while
  charging identical simulated time.
* :class:`QueryResult` — result rows + the per-stage simulated-time
  breakdown each figure of the paper stacks.
* :class:`Engine` — the common ``execute(sql)`` facade.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import ReproError
from repro.common.timing import TimingBreakdown
from repro.sql.binder import BoundQuery, bind
from repro.sql.parser import parse
from repro.storage.catalog import Catalog
from repro.storage.table import Table


class ExecutionMode(enum.Enum):
    REAL = "real"  # full numerics; results materialized
    ANALYTIC = "analytic"  # exact cardinalities, no result materialization


@dataclass
class QueryResult:
    """Outcome of one query execution."""

    engine: str
    n_rows: int
    breakdown: TimingBreakdown
    table: Table | None = None
    plan_description: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Total simulated execution time."""
        return self.breakdown.total

    def require_table(self) -> Table:
        if self.table is None:
            raise ReproError(
                "query ran in ANALYTIC mode; no result table materialized"
            )
        return self.table


class Engine:
    """Common facade: parse, bind and run a query against a catalog."""

    name = "engine"

    def __init__(self, catalog: Catalog, mode: ExecutionMode = ExecutionMode.REAL):
        self.catalog = catalog
        self.mode = mode

    def execute(self, sql: str, params: dict | None = None) -> QueryResult:
        bound = bind(parse(sql), self.catalog, params)
        return self.execute_bound(bound)

    def execute_bound(self, bound: BoundQuery) -> QueryResult:
        raise NotImplementedError

"""Engine-layer foundations.

* :class:`ExecutionMode` — REAL executes full numerics; ANALYTIC computes
  exact cardinalities and masks (cheap, vectorized) but skips materializing
  join outputs, so paper-scale configurations run in milliseconds while
  charging identical simulated time.
* :class:`QueryResult` — result rows + the per-stage simulated-time
  breakdown each figure of the paper stacks.
* :class:`Engine` — the common ``execute(sql)`` facade.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import ReproError
from repro.common.timing import TimingBreakdown
from repro.sql.binder import BoundQuery, bind
from repro.sql.parser import parse
from repro.sql.prepared import PreparedStatement, prepare_statement
from repro.storage.catalog import Catalog
from repro.storage.table import Table


class ExecutionMode(enum.Enum):
    REAL = "real"  # full numerics; results materialized
    ANALYTIC = "analytic"  # exact cardinalities, no result materialization


@dataclass
class QueryResult:
    """Outcome of one query execution."""

    engine: str
    n_rows: int
    breakdown: TimingBreakdown
    table: Table | None = None
    plan_description: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Total simulated execution time."""
        return self.breakdown.total

    def require_table(self) -> Table:
        if self.table is None:
            raise ReproError(
                "query ran in ANALYTIC mode; no result table materialized"
            )
        return self.table


class Engine:
    """Common facade: parse, bind and run a query against a catalog."""

    name = "engine"

    def __init__(self, catalog: Catalog, mode: ExecutionMode = ExecutionMode.REAL):
        self.catalog = catalog
        self.mode = mode

    def execute(
        self,
        sql: str | PreparedStatement,
        params: dict | list | tuple | None = None,
    ) -> QueryResult:
        """One-shot execution: parse, bind (substituting any ``params``),
        run.  A :class:`PreparedStatement` routes to
        :meth:`execute_prepared`."""
        if isinstance(sql, PreparedStatement):
            return self.execute_prepared(sql, params)
        bound = bind(parse(sql), self.catalog, params)
        return self.execute_bound(bound)

    def prepare(self, sql: str) -> PreparedStatement:
        """Compile-once front half: parse + deferred bind, returning the
        immutable template ``execute_prepared`` (re-)binds values into.
        Engines with a program cache also reuse the lowered program."""
        return prepare_statement(parse(sql), self.catalog, sql)

    def execute_prepared(
        self,
        prepared: PreparedStatement,
        params: dict | list | tuple | None = None,
    ) -> QueryResult:
        """Execute a prepared template with this call's parameter values.

        The base implementation substitutes values into the template's
        already-classified predicate lists and runs the engine's normal
        bound-query path — no re-parse, no re-resolution.
        """
        exec_bound, _ = prepared.bind_execution(params)
        return self.execute_bound(exec_bound)

    def execute_bound(self, bound: BoundQuery) -> QueryResult:
        raise NotImplementedError

"""Program cache: compiled TensorPrograms keyed by normalized SQL.

TQP splits query processing into a compilation layer and a runtime
layer precisely so the expensive half runs once per statement, not once
per execution.  This module is that split's memo: a bounded LRU map
from ``(normalized SQL, compile-options key)`` to the compiled
:class:`~repro.engine.tcudb.lower.LoweredQuery` — or to the
:class:`~repro.engine.tcudb.patterns.MatchFailure` that rejected it, so
repeated unsupported statements skip re-matching too.

Entries are validated against a catalog fingerprint
(:meth:`repro.storage.catalog.Catalog.fingerprint`) on every lookup:
registering, replacing, or dropping a table changes the fingerprint,
and a stale entry is evicted and counted as an invalidation.  That is
the whole invalidation story — tables are immutable, so data (and the
statistics the cost model reads) can only change through the catalog.

What makes cached programs shareable: a TensorProgram is a frozen list
of stateless operator descriptions.  All execution state lives in the
per-run ProgramContext, and literal-dependent cost decisions (the
Figure 6 strategy choice) are re-evaluated inside ``Gemm.execute``
against the *current* run's bound query — so a cached program is a pure
compilation artifact, valid for any parameter binding under the same
fingerprint.

Thread-safety contract: every public method takes the cache's internal
lock, so concurrent sessions may ``get``/``put``/``stats`` freely on a
shared instance.  The cached values themselves are never mutated by
readers; callers must treat them as immutable and specialize
parameters by *copying* operators
(:func:`repro.engine.tcudb.specialize.specialize_program`), never by
editing a cached program in place.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable


class ProgramCache:
    """Bounded LRU cache with fingerprint invalidation and counters."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        # key -> (fingerprint, value); insertion order = LRU order.
        self._entries: OrderedDict[Hashable, tuple[Hashable, object]] = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._poisoned = 0

    def get(self, key: Hashable, fingerprint: Hashable):
        """The cached value, or None.

        A key found under a *different* fingerprint is dropped (counted
        as an invalidation) and reported as a miss; a hit refreshes the
        entry's LRU position.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            cached_fingerprint, value = entry
            if cached_fingerprint != fingerprint:
                del self._entries[key]
                self._invalidations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, fingerprint: Hashable, value) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if full."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = (fingerprint, value)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def poison(self, key: Hashable) -> bool:
        """Evict *key* because its cached template raised in use.

        Exception safety for hits: if specializing or executing a
        cached program fails, the caller evicts the entry through here
        (counted separately from capacity evictions) and recompiles
        fresh, so one bad template cannot fail every subsequent hit.
        Returns True if the key was present.
        """
        with self._lock:
            present = key in self._entries
            if present:
                del self._entries[key]
            self._poisoned += 1
            return present

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int | float | None]:
        """Counter snapshot; ``hit_rate`` is None before any lookup."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
                "poisoned": self._poisoned,
                "hit_rate": (self._hits / lookups) if lookups else None,
            }

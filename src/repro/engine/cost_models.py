"""Cost models for the baseline (non-TCU) engines.

The same relational executor runs YDB-style plans on the simulated GPU
and MonetDB-style plans on the CPU; only the cost provider differs.  Each
method returns ``(stage, seconds)`` charges so the executor can build the
stacked breakdowns the paper's figures show.
"""

from __future__ import annotations

from repro.common.timing import (
    STAGE_AGGREGATION,
    STAGE_CPU,
    STAGE_GROUPBY,
    STAGE_JOIN,
    STAGE_MEMCPY,
    STAGE_OTHER,
)
from repro.hardware.gpu import GPUDevice
from repro.hardware.profiles import HostProfile

Charge = tuple[str, float]


class GPUCostModel:
    """YDB: operators as CUDA kernels, data over PCIe (Section 2.2)."""

    engine_name = "YDB"

    def __init__(self, device: GPUDevice):
        self.device = device

    def load_table(self, nbytes: float) -> list[Charge]:
        return [(STAGE_MEMCPY, self.device.h2d_seconds(nbytes))]

    def scan(self, nrows: int, npasses: int = 1) -> list[Charge]:
        return [(STAGE_OTHER, self.device.cuda.scan_seconds(nrows) * npasses)]

    def hash_join(self, n_left: int, n_right: int, pairs: int) -> list[Charge]:
        seconds = (
            self.device.cuda.hash_build_seconds(n_right)
            + self.device.cuda.hash_probe_seconds(n_left)
            + self.device.cuda.join_materialize_seconds(pairs)
        )
        return [(STAGE_JOIN, seconds)]

    def nonequi_join(self, n_left: int, n_right: int, pairs: int) -> list[Charge]:
        # Sort-merge style: sort both sides, then emit ranges.
        sort = self.device.cuda.scan_seconds(n_left + n_right) * 4
        emit = self.device.cuda.join_materialize_seconds(pairs)
        return [(STAGE_JOIN, sort + emit)]

    def accumulate_join(self, nrows: int, pairs: int) -> list[Charge]:
        return [(STAGE_JOIN, self.device.cuda.accumulate_join_seconds(nrows, pairs))]

    def groupby(self, n_input: int, n_groups: int, grouped: bool) -> list[Charge]:
        stage = STAGE_GROUPBY if grouped else STAGE_AGGREGATION
        return [(stage, self.device.cuda.groupby_seconds(n_input, n_groups))]

    def project(self, nrows: int, nitems: int) -> list[Charge]:
        return [(STAGE_OTHER, self.device.cuda.elementwise_seconds(nrows, nitems))]

    def sort(self, nrows: int) -> list[Charge]:
        return [(STAGE_OTHER, self.device.cuda.scan_seconds(nrows) * 4)]

    def result_out(self, nrows: int, ncols: int) -> list[Charge]:
        nbytes = nrows * ncols * 8.0
        return [(STAGE_MEMCPY, self.device.d2h_seconds(nbytes, overlap=True))]


class CPUCostModel:
    """MonetDB: the same plan on host cores; one aggregate stage."""

    engine_name = "MonetDB"

    def __init__(self, host: HostProfile):
        self.host = host

    def load_table(self, nbytes: float) -> list[Charge]:
        # Tables are already in host memory; charge one streaming pass.
        return [(STAGE_CPU, nbytes / (self.host.cores * 8e9))]

    def scan(self, nrows: int, npasses: int = 1) -> list[Charge]:
        return [(STAGE_CPU, nrows * self.host.scan_elem_s * npasses)]

    def hash_join(self, n_left: int, n_right: int, pairs: int) -> list[Charge]:
        seconds = (
            (n_left + n_right) * self.host.hash_row_s * 0.5
            + pairs * self.host.join_pair_s
        )
        return [(STAGE_CPU, seconds)]

    def nonequi_join(self, n_left: int, n_right: int, pairs: int) -> list[Charge]:
        import math

        total = n_left + n_right
        sort = total * self.host.scan_elem_s * max(math.log2(max(total, 2)), 1.0)
        return [(STAGE_CPU, sort + pairs * self.host.join_pair_s)]

    def accumulate_join(self, nrows: int, pairs: int) -> list[Charge]:
        seconds = (
            nrows * self.host.hash_row_s * 0.5 + pairs * self.host.agg_pair_s
        )
        return [(STAGE_CPU, seconds)]

    def groupby(self, n_input: int, n_groups: int, grouped: bool) -> list[Charge]:
        seconds = n_input * self.host.agg_pair_s + n_groups * self.host.scan_elem_s
        return [(STAGE_CPU, seconds)]

    def project(self, nrows: int, nitems: int) -> list[Charge]:
        return [(STAGE_CPU, nrows * nitems * self.host.scan_elem_s)]

    def sort(self, nrows: int) -> list[Charge]:
        import math

        factor = max(math.log2(max(nrows, 2)), 1.0)
        return [(STAGE_CPU, nrows * self.host.scan_elem_s * factor)]

    def result_out(self, nrows: int, ncols: int) -> list[Charge]:
        return [(STAGE_CPU, nrows * ncols * self.host.scan_elem_s)]

"""MAGiQ-style graph query engine over GraphBLAS kernels (Figure 13)."""

from repro.engine.magiq.engine import MAGiQEngine, PageRankOutput
from repro.engine.magiq.graphblas import (
    GRB_CALL_OVERHEAD_S,
    GRB_EDGE_S,
    GRB_NODE_S,
    GraphBLAS,
    GrBResult,
)

__all__ = [
    "GRB_CALL_OVERHEAD_S",
    "GRB_EDGE_S",
    "GRB_NODE_S",
    "GraphBLAS",
    "GrBResult",
    "MAGiQEngine",
    "PageRankOutput",
]

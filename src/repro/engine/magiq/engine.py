"""MAGiQ: a graph database engine storing 2-D key-value (sparse matrix)
data and executing queries as GraphBLAS programs.

In contrast to the relational engines, the backend storage is already a
sparse adjacency matrix, so graph workloads skip the table->matrix
transformation — but every operator runs on conventional CUDA cores
through the GraphBLAS layer, which is exactly the gap TCUDB's TCU-SpMM
exploits (Section 5.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ExecutionError
from repro.common.timing import TimingBreakdown
from repro.engine.magiq.graphblas import GraphBLAS
from repro.hardware.gpu import GPUDevice
from repro.tensor.coo import COOMatrix
from repro.tensor.csr import CSRMatrix


@dataclass
class PageRankOutput:
    """Scores plus the per-phase simulated time of a PageRank run."""

    scores: np.ndarray
    iterations: int
    breakdown: TimingBreakdown


class MAGiQEngine:
    """Graph engine: adjacency in CSR, queries as GraphBLAS programs."""

    name = "MAGiQ"

    def __init__(self, device: GPUDevice | None = None):
        self.device = device if device is not None else GPUDevice()
        self.grb = GraphBLAS(self.device)
        self._adjacency: CSRMatrix | None = None

    # -- storage --------------------------------------------------------- #

    def load_graph(self, src: np.ndarray, dst: np.ndarray,
                   n_nodes: int) -> None:
        """Register a directed graph as its n x n adjacency matrix."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        coo = COOMatrix(src, dst, np.ones(src.size), (n_nodes, n_nodes))
        self._adjacency = CSRMatrix.from_coo(coo)

    @property
    def adjacency(self) -> CSRMatrix:
        if self._adjacency is None:
            raise ExecutionError("no graph loaded")
        return self._adjacency

    @property
    def n_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def n_edges(self) -> int:
        return self.adjacency.nnz

    # -- PageRank as a GraphBLAS program ----------------------------------- #

    def out_degrees(self) -> tuple[np.ndarray, float]:
        """PR Q1: out-degree of each node (row reduction of A)."""
        result = self.grb.reduce_rows(self.adjacency)
        return result.value, result.seconds

    def pagerank(
        self,
        alpha: float = 0.85,
        max_iterations: int = 50,
        tolerance: float = 1e-9,
    ) -> PageRankOutput:
        """Full PageRank: Q1 (degrees), Q2 (init), iterated Q3 (update)."""
        breakdown = TimingBreakdown()
        n = self.n_nodes
        degrees, seconds = self.out_degrees()
        breakdown.add("pr_q1_outdegree", seconds)
        base = (1.0 - alpha) / n
        init = self.grb.apply_scalar(np.ones(n), 0.0, base)
        ranks = init.value
        breakdown.add("pr_q2_init", init.seconds)
        iterations = 0
        for _ in range(max_iterations):
            iterations += 1
            contribution = self.grb.ewise_div(ranks, degrees)
            spread = self.grb.vxm(contribution.value, self.adjacency)
            updated = self.grb.apply_scalar(spread.value, alpha, base)
            breakdown.add(
                "pr_q3_update",
                contribution.seconds + spread.seconds + updated.seconds,
            )
            delta = float(np.abs(updated.value - ranks).sum())
            ranks = updated.value
            if delta < tolerance:
                break
        return PageRankOutput(scores=ranks, iterations=iterations,
                              breakdown=breakdown)

    def pr_q3_core_seconds(self) -> float:
        """Latency of one PR Q3 core join+aggregation (Figure 13's metric):
        the contribution division, the semiring spread and the rescale."""
        n = self.n_nodes
        degrees, _ = self.out_degrees()
        ranks = np.full(n, 1.0 / n)
        contribution = self.grb.ewise_div(ranks, degrees)
        spread = self.grb.vxm(contribution.value, self.adjacency)
        updated = self.grb.apply_scalar(spread.value, 0.85, 0.15 / n)
        return contribution.seconds + spread.seconds + updated.seconds

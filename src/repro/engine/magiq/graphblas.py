"""A GraphBLAS-style kernel library on the simulated CUDA cores.

MAGiQ (Jamour et al., EuroSys'19) translates graph queries into sparse
linear-algebra programs over a GraphBLAS backend.  This module provides
the kernels that backend needs — mxv/vxm over plus-times semirings,
element-wise operations, reductions — with numerics on our CSR matrices
and timing charged per GraphBLAS call: a fixed dispatch overhead (operator
descriptors, masks, kernel launch) plus per-edge and per-node work on the
vector units.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.gpu import GPUDevice
from repro.tensor.csr import CSRMatrix

# Per-call dispatch overhead of a generic masked GraphBLAS operation and
# per-element costs on CUDA cores.  Calibrated so the MAGiQ series of
# Figure 13 sits between YDB and TCUDB with the paper's growth rate.
GRB_CALL_OVERHEAD_S = 40e-6
GRB_EDGE_S = 25e-9
GRB_NODE_S = 2e-9


@dataclass
class GrBResult:
    """Value + simulated seconds of one GraphBLAS call."""

    value: np.ndarray
    seconds: float


class GraphBLAS:
    """Minimal GraphBLAS operation set used by the MAGiQ translation."""

    def __init__(self, device: GPUDevice):
        self.device = device

    def _charge(self, nnz: int, nodes: int) -> float:
        return GRB_CALL_OVERHEAD_S + nnz * GRB_EDGE_S + nodes * GRB_NODE_S

    def mxv(self, matrix: CSRMatrix, vector: np.ndarray) -> GrBResult:
        """y = A (+.*) x — the workhorse of PageRank."""
        value = matrix.matvec(vector)
        return GrBResult(value, self._charge(matrix.nnz, matrix.shape[0]))

    def vxm(self, vector: np.ndarray, matrix: CSRMatrix) -> GrBResult:
        """y = x (+.*) A, i.e. A^T x."""
        value = matrix.transpose().matvec(vector)
        return GrBResult(value, self._charge(matrix.nnz, matrix.shape[1]))

    def mxm(self, a: CSRMatrix, b: CSRMatrix) -> GrBResult:
        """Sparse-sparse product on vector units (Gustavson)."""
        value = a.spgemm(b)
        flops = a.spgemm_flops(b)
        seconds = GRB_CALL_OVERHEAD_S + flops * GRB_EDGE_S
        return GrBResult(value, seconds)  # type: ignore[arg-type]

    def reduce_rows(self, matrix: CSRMatrix) -> GrBResult:
        """Row-wise + reduction (out-degree when A is an adjacency)."""
        value = matrix.matvec(np.ones(matrix.shape[1]))
        return GrBResult(value, self._charge(matrix.nnz, matrix.shape[0]))

    def reduce_vector(self, vector: np.ndarray) -> GrBResult:
        value = np.array([float(np.sum(vector))])
        return GrBResult(value, self._charge(0, vector.size))

    def ewise_mult(self, u: np.ndarray, v: np.ndarray) -> GrBResult:
        value = u * v
        return GrBResult(value, self._charge(0, u.size))

    def ewise_div(self, u: np.ndarray, v: np.ndarray) -> GrBResult:
        safe = np.where(v != 0, v, 1.0)
        value = np.where(v != 0, u / safe, 0.0)
        return GrBResult(value, self._charge(0, u.size))

    def apply_scalar(self, u: np.ndarray, scale: float,
                     offset: float) -> GrBResult:
        value = u * scale + offset
        return GrBResult(value, self._charge(0, u.size))

"""MonetDB: the baseline CPU columnar engine.

Per the paper's methodology (Section 5.1), only physical-plan execution
time is modeled ("--timer=performance"), not client/parse overheads.
"""

from __future__ import annotations

from repro.engine.base import ExecutionMode
from repro.engine.cost_models import CPUCostModel
from repro.engine.relational import RelationalExecutor
from repro.hardware.profiles import I7_7700K, HostProfile
from repro.storage.catalog import Catalog


class MonetDBEngine(RelationalExecutor):
    """CPU columnar engine used as the non-GPU reference design."""

    def __init__(
        self,
        catalog: Catalog,
        host: HostProfile | None = None,
        mode: ExecutionMode = ExecutionMode.REAL,
        materialize_limit: int = 4_000_000,
    ):
        self.host = host if host is not None else I7_7700K
        super().__init__(
            catalog,
            CPUCostModel(self.host),
            mode=mode,
            materialize_limit=materialize_limit,
        )


__all__ = ["MonetDBEngine"]

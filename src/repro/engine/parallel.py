"""Worker pool for parallel morsel execution.

TQP ("Query Processing on Tensor Computation Runtimes") distributes a
query by running partition-local computation on every worker and merging
the partials with an allreduce-style aggregation step.  This module is
the single-host version of that shape: a thread pool fans *independent
chunks* of a morsel-driven operator across N workers and hands the
results back **in submission order**, so every merge point (streaming
aggregation partials, grid accumulation, pair concatenation) consumes
exactly the sequence the sequential executor would have produced —
parallel output stays bit-identical to sequential.

Threads (not processes) are the right pool here: the chunk kernels are
NumPy calls that release the GIL, and the chunks are zero-copy views of
shared catalog arrays that processes would have to serialize.

:func:`workers_policy` mirrors :func:`repro.storage.chunk.chunk_rows_policy`:
an explicit override wins, then the ``REPRO_WORKERS`` environment knob,
then 1 (sequential).  CI pins ``REPRO_WORKERS`` so test runs stay
deterministic in their scheduling.

Thread-safety contract: :func:`parallel_map` is a pure fan-out/fan-in —
it owns its pool for the duration of one call and requires the chunk
function to touch only its own chunk (read-only access to shared
catalog arrays is fine; that is the whole point).  It is safe to call
from multiple threads at once (each call builds its own executor),
which is exactly what concurrent server queries do.
:class:`CancellationToken` is thread-safe by construction — ``cancel``
is an idempotent flag flip any thread may perform while workers poll —
and is the only mutable object shared between a query's submitting
thread and its executor.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass

from repro.common.errors import ConfigError, QueryCancelled, ReproError

#: Hard ceiling on the pool width: beyond this, per-chunk dispatch
#: overhead dominates any conceivable chunk kernel.
MAX_WORKERS = 64


def workers_policy(override: int | None = None) -> int:
    """The effective worker count: an explicit override, the
    ``REPRO_WORKERS`` environment knob, or 1 (sequential)."""
    if override is not None:
        if override <= 0:
            raise ConfigError(f"worker count must be positive, got {override}")
        return min(int(override), MAX_WORKERS)
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return workers_policy(int(env))
        except ValueError:
            raise ConfigError(
                f"REPRO_WORKERS must be a positive integer, got {env!r}"
            ) from None
    return 1


class CancellationToken:
    """Cooperative cancellation shared between a query and its owner.

    Operators poll :meth:`raise_if_cancelled` at chunk boundaries; the
    owner (a serving session, a timeout watchdog) flips the token with
    :meth:`cancel`.  An optional deadline (host wall-clock seconds)
    makes the token self-firing: the first poll past the deadline
    cancels.
    """

    def __init__(self, deadline_s: float | None = None):
        self._event = threading.Event()
        self._reason = "cancelled"
        self._deadline = (
            time.monotonic() + deadline_s if deadline_s is not None else None
        )

    def cancel(self, reason: str = "cancelled") -> None:
        self._reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        if self._event.is_set():
            return True
        if self._deadline is not None and time.monotonic() > self._deadline:
            self.cancel("time budget exceeded")
            return True
        return False

    @property
    def reason(self) -> str:
        return self._reason

    def raise_if_cancelled(self) -> None:
        if self.cancelled:
            raise QueryCancelled(f"query cancelled: {self._reason}")


def parallel_map(
    fn: Callable,
    items: Iterable,
    workers: int,
    token: CancellationToken | None = None,
) -> Iterator:
    """Apply ``fn`` to every item on a worker pool, yielding results in
    **submission order** (the merge-determinism contract).

    In-flight work is bounded to ``2 * workers`` items so a slow
    consumer never forces the whole result sequence to materialize.  A
    worker exception (or a cancelled token) cancels the remaining items
    and re-raises on the yield of the failing item.  ``workers <= 1``
    degenerates to a plain ordered map with no pool.
    """
    if token is not None:
        token.raise_if_cancelled()
    if workers <= 1:
        for item in items:
            if token is not None:
                token.raise_if_cancelled()
            yield fn(item)
        return

    def call(item):
        if token is not None:
            token.raise_if_cancelled()
        return fn(item)

    window = 2 * workers
    pending: deque = deque()
    iterator = iter(items)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        try:
            exhausted = False
            while True:
                while not exhausted and len(pending) < window:
                    try:
                        item = next(iterator)
                    except StopIteration:
                        exhausted = True
                        break
                    pending.append(pool.submit(call, item))
                if not pending:
                    break
                if token is not None:
                    token.raise_if_cancelled()
                yield pending.popleft().result()
        except BaseException:
            if token is not None:
                token.cancel("aborted by a failed sibling chunk")
            for future in pending:
                future.cancel()
            raise


# --- resilience primitives --------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``max_attempts`` counts the first try: 3 means one try plus two
    retries.  Jitter is derived from ``(seed, key, attempt)`` by a
    splitmix-style hash rather than a shared RNG, so concurrent shard
    retries never perturb each other's schedules and a failing run
    replays with identical sleeps.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.002
    multiplier: float = 2.0
    max_backoff_s: float = 0.050
    jitter: float = 0.25
    seed: int = 20220612

    def backoff_for(self, attempt: int, key: int = 0) -> float:
        """Sleep before retry number *attempt* (1-based) of item *key*."""
        if attempt < 1:
            return 0.0
        delay = min(self.max_backoff_s,
                    self.base_backoff_s * self.multiplier ** (attempt - 1))
        if self.jitter <= 0.0:
            return delay
        x = (self.seed * 0x9E3779B97F4A7C15 + key * 0xBF58476D1CE4E5B9
             + attempt * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 31
        frac = (x & 0xFFFFFF) / float(0x1000000)
        return delay * (1.0 - self.jitter + 2.0 * self.jitter * frac)


def is_retryable(error: BaseException) -> bool:
    """True for library errors flagged transient (and not cancellations)."""
    return (isinstance(error, ReproError)
            and not isinstance(error, QueryCancelled)
            and getattr(error, "retryable", False))


def call_with_retries(
    fn: Callable[[], object],
    policy: RetryPolicy,
    token: CancellationToken | None = None,
    key: int = 0,
    attempts_log: list | None = None,
):
    """Run ``fn`` under *policy*, retrying retryable library errors.

    Sleeps the backoff schedule between attempts (checking the token
    first, so a zero-second budget still cancels promptly under
    injected faults).  ``attempts_log``, when given, receives one
    ``{"error", "backoff_s"}`` record per retried failure — the
    material for ``extra["resilience"]``.  Non-retryable errors and
    exhausted budgets propagate unchanged.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except BaseException as error:
            if not is_retryable(error) or attempt >= policy.max_attempts:
                raise
            backoff = policy.backoff_for(attempt, key=key)
            if attempts_log is not None:
                attempts_log.append({
                    "error": type(error).__name__,
                    "backoff_s": round(backoff, 6),
                })
            if token is not None:
                token.raise_if_cancelled()
            if backoff > 0.0:
                time.sleep(backoff)


def speculative_map(
    fn: Callable,
    items: Iterable,
    workers: int,
    token: CancellationToken | None = None,
    straggler_timeout_s: float | None = None,
    on_speculate: Callable[[object], None] | None = None,
) -> Iterator:
    """:func:`parallel_map` with straggler hedging.

    Results stream in submission order.  When the head-of-queue item
    takes longer than ``straggler_timeout_s`` host seconds, the item is
    speculatively re-executed inline on the consuming thread and the
    first result to finish wins (the straggler's is discarded) — the
    single-host analogue of hedged requests.  Unlike
    :func:`parallel_map`, a failing item does **not** cancel the shared
    token: the caller's degradation ladder still needs a live token to
    re-execute surviving work.
    """
    if token is not None:
        token.raise_if_cancelled()
    if workers <= 1:
        for item in items:
            if token is not None:
                token.raise_if_cancelled()
            yield fn(item)
        return

    def call(item):
        if token is not None:
            token.raise_if_cancelled()
        return fn(item)

    window = 2 * workers
    pending: deque = deque()
    iterator = iter(items)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        try:
            exhausted = False
            while True:
                while not exhausted and len(pending) < window:
                    try:
                        item = next(iterator)
                    except StopIteration:
                        exhausted = True
                        break
                    pending.append((item, pool.submit(call, item)))
                if not pending:
                    break
                if token is not None:
                    token.raise_if_cancelled()
                item, future = pending.popleft()
                if straggler_timeout_s is None:
                    yield future.result()
                    continue
                try:
                    yield future.result(timeout=straggler_timeout_s)
                except FutureTimeoutError:
                    if on_speculate is not None:
                        on_speculate(item)
                    result = call(item)
                    future.cancel()
                    yield result
        except BaseException:
            for _, future in pending:
                future.cancel()
            raise


__all__ = [
    "MAX_WORKERS",
    "CancellationToken",
    "RetryPolicy",
    "call_with_retries",
    "is_retryable",
    "parallel_map",
    "speculative_map",
    "workers_policy",
]

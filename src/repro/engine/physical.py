"""General vectorized physical-plan executor and shared NumPy kernels.

This module is the execution backbone of the repo:

* the join / group-by kernels every engine uses live here (they are
  re-exported by :mod:`repro.engine.relational` for the cost-charging
  baseline executors);
* :class:`PhysicalExecutor` interprets the *full* logical algebra from
  :mod:`repro.sql.logical` — Scan, Join, Filter, Aggregate (with HAVING
  and MIN/MAX), Project, Sort, Limit — with pure NumPy semantics and no
  cost model, which is what makes it suitable as a correctness oracle
  (see :class:`repro.engine.reference.ReferenceEngine`);
* the shared output helpers (:func:`resolve_output_index`,
  :func:`apply_order_limit`, :func:`build_result_table`) centralize
  ORDER BY/LIMIT and result-table semantics so TCUDB, the baselines and
  the oracle cannot drift apart on ordering or result typing.

ORDER BY on dictionary-encoded string columns sorts by *decoded* values
(lexicographic), not by dictionary codes, in every engine that routes
through these helpers.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import BindError, ExecutionError
from repro.sql.ast_nodes import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    Expr,
    Literal,
    Predicate,
    SelectItem,
)
from repro.sql.binder import BoundColumn, BoundQuery
from repro.sql.eval import (
    Environment,
    conjunction_mask,
    encode_literal,
    evaluate_expr,
    predicate_mask,
)
from repro.sql.logical import (
    Aggregate,
    Filter,
    Join,
    Limit,
    LogicalNode,
    Project,
    Scan,
    Sort,
)
from repro.storage.column import Column
from repro.storage.table import Table
from repro.storage.types import DataType

# --------------------------------------------------------------------------- #
# Join kernels (shared by every engine; re-exported from engine.relational)
# --------------------------------------------------------------------------- #


def equi_join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray,
    pair_limit: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Matching (left_index, right_index) pairs of an equi join.

    With ``pair_limit``, the (cheaply computed) pair count is checked
    before materialization, so callers need no separate counting pass.
    """
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    starts = np.searchsorted(sorted_right, left_keys, side="left")
    ends = np.searchsorted(sorted_right, left_keys, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if pair_limit is not None and total > pair_limit:
        raise ExecutionError(
            f"equi join would materialize {total} pairs (> {pair_limit})"
        )
    left_idx = np.repeat(np.arange(left_keys.size), counts)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    right_idx = order[np.repeat(starts, counts) + offsets]
    return left_idx, right_idx


def equi_join_count(left_keys: np.ndarray, right_keys: np.ndarray) -> int:
    """Exact matching-pair count without materializing the pairs."""
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    starts = np.searchsorted(sorted_right, left_keys, side="left")
    ends = np.searchsorted(sorted_right, left_keys, side="right")
    return int((ends - starts).sum())


# searchsorted side per operator: for "left op right" we count, per left
# key, the right keys satisfying the comparison in the sorted right array.
# "<" needs right keys strictly greater (insertion point from the right),
# "<=" needs right keys >= (insertion point from the left), and mirrored
# for ">" / ">=".
_NONEQUI_SIDES = {
    "<": "right",
    "<=": "left",
    ">": "left",
    ">=": "right",
}


def nonequi_join_count(
    left_keys: np.ndarray, right_keys: np.ndarray, op: str
) -> int:
    """Exact pair count for <, <=, >, >=, != joins via sorted counting."""
    sorted_right = np.sort(right_keys)
    m = sorted_right.size
    if op in ("<", "<="):
        side = _NONEQUI_SIDES[op]
        positions = np.searchsorted(sorted_right, left_keys, side=side)
        return int((m - positions).sum())
    if op in (">", ">="):
        side = _NONEQUI_SIDES[op]
        positions = np.searchsorted(sorted_right, left_keys, side=side)
        return int(positions.sum())
    if op in ("<>", "!="):
        equal = equi_join_count(left_keys, right_keys)
        return int(left_keys.size) * m - equal
    raise ExecutionError(f"unsupported join operator {op!r}")


def nonequi_join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray, op: str,
    pair_limit: int = 50_000_000,
) -> tuple[np.ndarray, np.ndarray]:
    """Materialize non-equi join pairs (bounded by ``pair_limit``)."""
    pairs = nonequi_join_count(left_keys, right_keys, op)
    if pairs > pair_limit:
        raise ExecutionError(
            f"non-equi join would materialize {pairs} pairs (> {pair_limit})"
        )
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    m = sorted_right.size
    if op in ("<", "<=", ">", ">="):
        side = _NONEQUI_SIDES[op]
        positions = np.searchsorted(sorted_right, left_keys, side=side)
        if op in ("<", "<="):
            counts = m - positions
            starts = positions
        else:
            counts = positions
            starts = np.zeros_like(positions)
        total = int(counts.sum())
        left_idx = np.repeat(np.arange(left_keys.size), counts)
        offsets = (
            np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        )
        right_idx = order[np.repeat(starts, counts) + offsets]
        return left_idx, right_idx
    if op in ("<>", "!="):
        left_idx_all = np.repeat(np.arange(left_keys.size), m)
        right_idx_all = np.tile(np.arange(m), left_keys.size)
        keep = left_keys[left_idx_all] != right_keys[right_idx_all]
        return left_idx_all[keep], right_idx_all[keep]
    raise ExecutionError(f"unsupported join operator {op!r}")


def combine_group_codes(arrays: list[np.ndarray]) -> np.ndarray:
    """Collapse multiple key arrays into one composite code per row."""
    if not arrays:
        raise ExecutionError("group-by requires at least one key")
    combined = np.zeros(arrays[0].size, dtype=np.int64)
    for array in arrays:
        _, codes = np.unique(array, return_inverse=True)
        span = int(codes.max()) + 1 if codes.size else 1
        combined = combined * span + codes
    return combined


def group_aggregate(
    call: AggregateCall, env: Environment, bound: BoundQuery,
    group_ids: np.ndarray, n_groups: int,
) -> np.ndarray:
    """Evaluate one SUM/COUNT/AVG/MIN/MAX call per group."""
    if call.argument is None:  # COUNT(*)
        return np.bincount(group_ids, minlength=n_groups).astype(np.float64)
    values = evaluate_expr(call.argument, env, bound).astype(np.float64)
    if call.func == "count":
        return np.bincount(group_ids, minlength=n_groups).astype(np.float64)
    if call.func == "sum":
        return np.bincount(group_ids, weights=values, minlength=n_groups)
    if call.func == "avg":
        sums = np.bincount(group_ids, weights=values, minlength=n_groups)
        counts = np.bincount(group_ids, minlength=n_groups)
        return sums / np.maximum(counts, 1)
    if call.func == "min":
        out = np.full(n_groups, np.inf)
        np.minimum.at(out, group_ids, values)
        return out
    if call.func == "max":
        out = np.full(n_groups, -np.inf)
        np.maximum.at(out, group_ids, values)
        return out
    raise ExecutionError(f"unsupported aggregate {call.func!r}")


_ARITH_OPS = {
    "+": np.add, "-": np.subtract, "*": np.multiply,
    "/": np.divide, "%": np.mod,
}


class GroupContext:
    """Per-group evaluation of expressions and HAVING predicates.

    Wraps one grouped relation: ``group_ids`` assigns each input row to a
    group, ``representatives`` holds one input row index per group (for
    group-key columns).  Expressions evaluate to one value per group.
    """

    def __init__(
        self,
        bound: BoundQuery,
        env: Environment,
        group_ids: np.ndarray,
        n_groups: int,
        representatives: np.ndarray,
        group_by: list[BoundColumn],
    ):
        self.bound = bound
        self.env = env
        self.group_ids = group_ids
        self.n_groups = n_groups
        self.representatives = representatives
        self.group_keys = {c.key for c in group_by}

    # -- expressions ---------------------------------------------------- #

    def eval_expr(self, expr: Expr) -> np.ndarray:
        if isinstance(expr, AggregateCall):
            return group_aggregate(expr, self.env, self.bound,
                                   self.group_ids, self.n_groups)
        if isinstance(expr, Literal):
            return np.full(self.n_groups, expr.value)
        if isinstance(expr, ColumnRef):
            key = self.bound.resolve(expr).key
            if key not in self.group_keys:
                raise ExecutionError(f"non-grouped column {key} in select")
            return self.env.lookup(key)[self.representatives]
        if isinstance(expr, BinaryOp):
            left = self.eval_expr(expr.left)
            right = self.eval_expr(expr.right)
            op = _ARITH_OPS.get(expr.op)
            if op is None:
                raise ExecutionError(
                    f"unsupported arithmetic operator {expr.op!r}"
                )
            with np.errstate(divide="ignore", invalid="ignore"):
                return op(
                    np.asarray(left, dtype=np.float64),
                    np.asarray(right, dtype=np.float64),
                )
        raise ExecutionError(
            f"unsupported aggregate-context expression {expr!r}"
        )

    # -- HAVING predicates ---------------------------------------------- #

    def eval_predicate(self, predicate: Predicate) -> np.ndarray:
        # Same interpreter as WHERE evaluation, with per-group leaves.
        return predicate_mask(
            predicate,
            self.n_groups,
            self.eval_expr,
            lambda ref, value: encode_literal(self.bound, ref, value),
        )

    def having_mask(self, predicates: list[Predicate]) -> np.ndarray:
        mask = np.ones(self.n_groups, dtype=bool)
        for predicate in predicates:
            mask &= self.eval_predicate(predicate)
        return mask


def build_group_context(
    bound: BoundQuery, env: Environment, group_by: list[BoundColumn]
) -> GroupContext:
    """Assign group ids over an environment (one global group if no keys)."""
    if group_by:
        key_arrays = [env.lookup(c.key) for c in group_by]
        combined = combine_group_codes(key_arrays)
        unique_codes, group_ids = np.unique(combined, return_inverse=True)
        n_groups = int(unique_codes.size)
        representatives = np.zeros(n_groups, dtype=np.int64)
        representatives[group_ids] = np.arange(group_ids.size)
    else:
        group_ids = np.zeros(env.n_rows, dtype=np.int64)
        n_groups = 1 if env.n_rows else 0
        representatives = np.zeros(max(n_groups, 1), dtype=np.int64)
    return GroupContext(bound, env, group_ids, n_groups, representatives,
                        group_by)


# --------------------------------------------------------------------------- #
# Output helpers: ORDER BY / LIMIT resolution and result-table assembly
# --------------------------------------------------------------------------- #


def resolve_output_index(
    bound: BoundQuery,
    expr: Expr,
    names: list[str],
    items: list[SelectItem] | None = None,
) -> int | None:
    """Index of the output column an ORDER BY key refers to (or None).

    Resolution order: bare select-list alias/name, resolved column key
    against plain-column select items, output-name match, stringified
    expression against output names and select expressions (so ``ORDER BY
    SUM(x)`` finds ``SUM(x) AS total``).
    """
    items = list(items) if items is not None else list(bound.select_items)
    by_name = {name.lower(): i for i, name in enumerate(names)}
    if isinstance(expr, ColumnRef):
        if expr.table is None and expr.column in by_name:
            return by_name[expr.column]
        try:
            key = bound.resolve(expr).key
        except BindError:
            key = None  # select-list alias, not a table column
        if key is not None:
            for i, item in enumerate(items):
                if isinstance(item.expr, ColumnRef):
                    try:
                        if bound.resolve(item.expr).key == key:
                            return i
                    except BindError:
                        continue
            for i, name in enumerate(names):
                if name.lower() in (key, expr.column):
                    return i
    text = str(expr).lower()
    if text in by_name:
        return by_name[text]
    for i, item in enumerate(items):
        if str(item.expr).lower() == text:
            return i
    return None


def sort_key_array(
    bound: BoundQuery, item: SelectItem | None, array: np.ndarray
) -> np.ndarray:
    """The array to argsort for one ORDER BY key.

    String outputs are decoded through their dictionary so ordering is
    lexicographic rather than dictionary-code order.
    """
    array = np.asarray(array)
    if item is not None and isinstance(item.expr, ColumnRef):
        try:
            resolved = bound.resolve(item.expr)
        except BindError:
            return array
        if resolved.dtype == DataType.STRING:
            source = bound.binding(resolved.binding).table.column(
                resolved.column
            )
            if source.dictionary is not None:
                return source.dictionary.decode(
                    np.asarray(array, dtype=np.int64)
                )
    return array


def apply_order_limit(
    bound: BoundQuery,
    arrays: list[np.ndarray],
    names: list[str],
    items: list[SelectItem] | None = None,
) -> list[np.ndarray]:
    """Apply the query's ORDER BY and LIMIT to materialized output arrays.

    Unresolvable ORDER BY keys raise: silently skipping a key reorders
    LIMIT results (the historical `_order_index` bug).
    """
    items = list(items) if items is not None else list(bound.select_items)
    if bound.order_by and arrays:
        order = np.arange(np.asarray(arrays[0]).size)
        for order_item in reversed(bound.order_by):
            index = resolve_output_index(bound, order_item.expr, names, items)
            if index is None:
                raise ExecutionError(
                    f"ORDER BY key {order_item.expr} not in select list"
                )
            item = items[index] if index < len(items) else None
            keys = sort_key_array(bound, item, arrays[index])[order]
            positions = np.argsort(keys, kind="stable")
            if order_item.descending:
                positions = positions[::-1]
            order = order[positions]
        arrays = [np.asarray(a)[order] for a in arrays]
    if bound.limit is not None:
        arrays = [np.asarray(a)[: bound.limit] for a in arrays]
    return arrays


def make_output_column(
    bound: BoundQuery, expr: Expr | None, array: np.ndarray
) -> Column:
    """Type one output array, preserving string dictionaries and int64."""
    if isinstance(expr, ColumnRef):
        resolved = bound.resolve(expr)
        if resolved.dtype == DataType.STRING:
            source = bound.binding(resolved.binding).table.column(
                resolved.column
            )
            return Column(array.astype(np.int64), DataType.STRING,
                          source.dictionary)
        if resolved.dtype == DataType.INT64:
            return Column(array.astype(np.int64), DataType.INT64)
    if array.dtype.kind in ("i", "u"):
        return Column(array.astype(np.int64), DataType.INT64)
    return Column(array.astype(np.float64), DataType.FLOAT64)


def build_result_table(
    bound: BoundQuery,
    arrays: list[np.ndarray],
    names: list[str],
    items: list[SelectItem] | None = None,
) -> Table:
    """Assemble output arrays into a result table with unique column names."""
    items = list(items) if items is not None else list(bound.select_items)
    item_exprs: dict[str, Expr | None] = {name: None for name in names}
    for item, name in zip(items, names):
        item_exprs[name] = item.expr
    columns: dict[str, Column] = {}
    for array, name in zip(arrays, names):
        expr = item_exprs.get(name)
        column = make_output_column(bound, expr, np.asarray(array))
        unique_name = name
        suffix = 1
        while unique_name in columns:
            suffix += 1
            unique_name = f"{name}_{suffix}"
        columns[unique_name] = column
    return Table("result", columns)


# --------------------------------------------------------------------------- #
# The general physical executor
# --------------------------------------------------------------------------- #


class PhysicalExecutor:
    """Interpret a logical plan tree with pure NumPy kernels.

    Fully materializing and cost-free: every operator computes exact
    results.  ``pair_limit`` bounds join materialization so runaway
    fuzzed queries fail loudly instead of exhausting memory.
    """

    def __init__(self, bound: BoundQuery, pair_limit: int = 20_000_000):
        self.bound = bound
        self.pair_limit = pair_limit

    # -- relational operators (return environments) ---------------------- #

    def _run_relation(self, node: LogicalNode) -> Environment:
        if isinstance(node, Scan):
            env = Environment.from_table(self.bound, node.binding)
            if node.filters:
                env = env.filtered(
                    conjunction_mask(node.filters, env, self.bound)
                )
            return env
        if isinstance(node, Join):
            return self._run_join(node)
        if isinstance(node, Filter):
            env = self._run_relation(node.input)
            return env.filtered(
                conjunction_mask(node.predicates, env, self.bound)
            )
        raise ExecutionError(f"unexpected relational node {node!r}")

    def _run_join(self, node: Join) -> Environment:
        left = self._run_relation(node.left)
        right = self._run_relation(node.right)
        predicate = node.predicate
        left_keys = left.lookup(predicate.left.key)
        right_keys = right.lookup(predicate.right.key)
        if predicate.is_equi:
            left_idx, right_idx = equi_join_indices(
                left_keys, right_keys, pair_limit=self.pair_limit
            )
        else:
            left_idx, right_idx = nonequi_join_indices(
                left_keys, right_keys, predicate.op,
                pair_limit=self.pair_limit,
            )
        merged = dict(left.taken(left_idx).arrays)
        merged.update(right.taken(right_idx).arrays)
        return Environment(merged, int(left_idx.size))

    # -- projection operators (return output arrays) --------------------- #

    def _run_aggregate(
        self, node: Aggregate
    ) -> tuple[list[np.ndarray], list[str]]:
        env = self._run_relation(node.input)
        names = [item.output_name for item in node.items]
        context = build_group_context(self.bound, env, node.group_by)
        if context.n_groups == 0:
            return [np.array([]) for _ in node.items], names
        arrays = [context.eval_expr(item.expr) for item in node.items]
        if node.having:
            mask = context.having_mask(node.having)
            arrays = [np.asarray(a)[mask] for a in arrays]
        return arrays, names

    def _run_output(self, node: LogicalNode) -> tuple[list[np.ndarray], list[str]]:
        if isinstance(node, Aggregate):
            return self._run_aggregate(node)
        if isinstance(node, Project):
            env = self._run_relation(node.input)
            names = [item.output_name for item in node.items]
            arrays = [
                evaluate_expr(item.expr, env, self.bound)
                for item in node.items
            ]
            return arrays, names
        if isinstance(node, (Sort, Limit)):
            # Sorting and limiting are applied once at the top via
            # apply_order_limit (bound carries the keys and count).
            return self._run_output(node.input)
        raise ExecutionError(f"unknown plan node {node!r}")

    def run(self, tree: LogicalNode) -> tuple[list[np.ndarray], list[str]]:
        """Execute the plan; returns fully ordered/limited output arrays."""
        arrays, names = self._run_output(tree)
        arrays = apply_order_limit(self.bound, arrays, names)
        return arrays, names

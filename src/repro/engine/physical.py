"""General vectorized physical-plan executor and shared NumPy kernels.

This module is the execution backbone of the repo:

* the join / group-by kernels every engine uses live here (they are
  re-exported by :mod:`repro.engine.relational` for the cost-charging
  baseline executors);
* :class:`PhysicalExecutor` interprets the *full* logical algebra from
  :mod:`repro.sql.logical` — Scan, Join, Filter, Aggregate (with HAVING
  and MIN/MAX), Project, Sort, Limit — with pure NumPy semantics and no
  cost model, which is what makes it suitable as a correctness oracle
  (see :class:`repro.engine.reference.ReferenceEngine`);
* the shared output helpers (:func:`resolve_output_index`,
  :func:`apply_order_limit`, :func:`build_result_table`) centralize
  ORDER BY/LIMIT and result-table semantics so TCUDB, the baselines and
  the oracle cannot drift apart on ordering or result typing.

ORDER BY on dictionary-encoded string columns sorts by *decoded* values
(lexicographic), not by dictionary codes, in every engine that routes
through these helpers.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.common.errors import BindError, ExecutionError
from repro.engine.parallel import (
    CancellationToken,
    parallel_map,
    workers_policy,
)
from repro.sql.ast_nodes import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    Expr,
    Literal,
    Predicate,
    SelectItem,
)
from repro.sql.binder import BoundColumn, BoundQuery
from repro.sql.eval import (
    Environment,
    conjunction_mask,
    encode_literal,
    evaluate_expr,
    predicate_mask,
)
from repro.sql.logical import (
    Aggregate,
    Compute,
    Filter,
    Join,
    Limit,
    LogicalNode,
    Project,
    Scan,
    Sort,
)
from repro.storage.column import Column
from repro.storage.statistics import conjunction_can_match
from repro.storage.table import Table
from repro.storage.types import DataType

# --------------------------------------------------------------------------- #
# Join kernels (shared by every engine; re-exported from engine.relational)
# --------------------------------------------------------------------------- #


def equi_join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray,
    pair_limit: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Matching (left_index, right_index) pairs of an equi join.

    With ``pair_limit``, the (cheaply computed) pair count is checked
    before materialization, so callers need no separate counting pass.
    """
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    starts = np.searchsorted(sorted_right, left_keys, side="left")
    ends = np.searchsorted(sorted_right, left_keys, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if pair_limit is not None and total > pair_limit:
        raise ExecutionError(
            f"equi join would materialize {total} pairs (> {pair_limit})"
        )
    left_idx = np.repeat(np.arange(left_keys.size), counts)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    right_idx = order[np.repeat(starts, counts) + offsets]
    return left_idx, right_idx


def equi_join_count(left_keys: np.ndarray, right_keys: np.ndarray) -> int:
    """Exact matching-pair count without materializing the pairs."""
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    starts = np.searchsorted(sorted_right, left_keys, side="left")
    ends = np.searchsorted(sorted_right, left_keys, side="right")
    return int((ends - starts).sum())


# searchsorted side per operator: for "left op right" we count, per left
# key, the right keys satisfying the comparison in the sorted right array.
# "<" needs right keys strictly greater (insertion point from the right),
# "<=" needs right keys >= (insertion point from the left), and mirrored
# for ">" / ">=".
_NONEQUI_SIDES = {
    "<": "right",
    "<=": "left",
    ">": "left",
    ">=": "right",
}


def nonequi_join_count(
    left_keys: np.ndarray, right_keys: np.ndarray, op: str
) -> int:
    """Exact pair count for <, <=, >, >=, != joins via sorted counting."""
    sorted_right = np.sort(right_keys)
    m = sorted_right.size
    if op in ("<", "<="):
        side = _NONEQUI_SIDES[op]
        positions = np.searchsorted(sorted_right, left_keys, side=side)
        return int((m - positions).sum())
    if op in (">", ">="):
        side = _NONEQUI_SIDES[op]
        positions = np.searchsorted(sorted_right, left_keys, side=side)
        return int(positions.sum())
    if op in ("<>", "!="):
        equal = equi_join_count(left_keys, right_keys)
        return int(left_keys.size) * m - equal
    raise ExecutionError(f"unsupported join operator {op!r}")


def nonequi_join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray, op: str,
    pair_limit: int = 50_000_000,
) -> tuple[np.ndarray, np.ndarray]:
    """Materialize non-equi join pairs (bounded by ``pair_limit``)."""
    pairs = nonequi_join_count(left_keys, right_keys, op)
    if pairs > pair_limit:
        raise ExecutionError(
            f"non-equi join would materialize {pairs} pairs (> {pair_limit})"
        )
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    m = sorted_right.size
    if op in ("<", "<=", ">", ">="):
        side = _NONEQUI_SIDES[op]
        positions = np.searchsorted(sorted_right, left_keys, side=side)
        if op in ("<", "<="):
            counts = m - positions
            starts = positions
        else:
            counts = positions
            starts = np.zeros_like(positions)
        total = int(counts.sum())
        left_idx = np.repeat(np.arange(left_keys.size), counts)
        offsets = (
            np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        )
        right_idx = order[np.repeat(starts, counts) + offsets]
        return left_idx, right_idx
    if op in ("<>", "!="):
        left_idx_all = np.repeat(np.arange(left_keys.size), m)
        right_idx_all = np.tile(np.arange(m), left_keys.size)
        keep = left_keys[left_idx_all] != right_keys[right_idx_all]
        return left_idx_all[keep], right_idx_all[keep]
    raise ExecutionError(f"unsupported join operator {op!r}")


def combine_group_codes(arrays: list[np.ndarray]) -> np.ndarray:
    """Collapse multiple key arrays into one composite code per row."""
    if not arrays:
        raise ExecutionError("group-by requires at least one key")
    combined = np.zeros(arrays[0].size, dtype=np.int64)
    for array in arrays:
        _, codes = np.unique(array, return_inverse=True)
        span = int(codes.max()) + 1 if codes.size else 1
        combined = combined * span + codes
    return combined


def group_aggregate(
    call: AggregateCall, env: Environment, bound: BoundQuery,
    group_ids: np.ndarray, n_groups: int,
) -> np.ndarray:
    """Evaluate one SUM/COUNT/AVG/MIN/MAX call per group."""
    if call.argument is None:  # COUNT(*)
        return np.bincount(group_ids, minlength=n_groups).astype(np.float64)
    values = evaluate_expr(call.argument, env, bound).astype(np.float64)
    if call.func == "count":
        return np.bincount(group_ids, minlength=n_groups).astype(np.float64)
    if call.func == "sum":
        return np.bincount(group_ids, weights=values, minlength=n_groups)
    if call.func == "avg":
        sums = np.bincount(group_ids, weights=values, minlength=n_groups)
        counts = np.bincount(group_ids, minlength=n_groups)
        return sums / np.maximum(counts, 1)
    if call.func == "min":
        out = np.full(n_groups, np.inf)
        np.minimum.at(out, group_ids, values)
        return _zero_empty_groups(out, group_ids, n_groups)
    if call.func == "max":
        out = np.full(n_groups, -np.inf)
        np.maximum.at(out, group_ids, values)
        return _zero_empty_groups(out, group_ids, n_groups)
    raise ExecutionError(f"unsupported aggregate {call.func!r}")


def _zero_empty_groups(out: np.ndarray, group_ids: np.ndarray,
                       n_groups: int) -> np.ndarray:
    """Replace the ±inf MIN/MAX sentinels of row-less groups with 0.0.

    Only the single global group of an ungrouped aggregate over zero
    rows can be row-less (grouped group ids come from the present
    rows); this storage model has no NULLs, so that row reports 0.0.
    """
    counts = np.bincount(group_ids, minlength=n_groups)
    out[counts == 0] = 0.0
    return out


_ARITH_OPS = {
    "+": np.add, "-": np.subtract, "*": np.multiply,
    "/": np.divide, "%": np.mod,
}


class GroupContext:
    """Per-group evaluation of expressions and HAVING predicates.

    Wraps one grouped relation: ``group_ids`` assigns each input row to a
    group, ``representatives`` holds one input row index per group (for
    group-key columns).  Expressions evaluate to one value per group.
    Expressions structurally equal to a computed GROUP BY key resolve to
    that key's projected column (expression GROUP BY).
    """

    def __init__(
        self,
        bound: BoundQuery,
        env: Environment,
        group_ids: np.ndarray,
        n_groups: int,
        representatives: np.ndarray,
        group_by: list[BoundColumn],
    ):
        self.bound = bound
        self.env = env
        self.group_ids = group_ids
        self.n_groups = n_groups
        self.representatives = representatives
        self.group_keys = {c.key for c in group_by}
        self.computed = {
            expr: key
            for key, expr in getattr(bound, "group_exprs", {}).items()
        }

    # -- expressions ---------------------------------------------------- #

    def eval_expr(self, expr: Expr) -> np.ndarray:
        computed_key = self.computed.get(expr)
        if computed_key is not None:
            return self.env.lookup(computed_key)[self.representatives]
        if isinstance(expr, AggregateCall):
            return group_aggregate(expr, self.env, self.bound,
                                   self.group_ids, self.n_groups)
        if isinstance(expr, Literal):
            return np.full(self.n_groups, expr.value)
        if isinstance(expr, ColumnRef):
            key = self.bound.resolve(expr).key
            if key not in self.group_keys:
                raise ExecutionError(f"non-grouped column {key} in select")
            return self.env.lookup(key)[self.representatives]
        if isinstance(expr, BinaryOp):
            left = self.eval_expr(expr.left)
            right = self.eval_expr(expr.right)
            op = _ARITH_OPS.get(expr.op)
            if op is None:
                raise ExecutionError(
                    f"unsupported arithmetic operator {expr.op!r}"
                )
            with np.errstate(divide="ignore", invalid="ignore"):
                return op(
                    np.asarray(left, dtype=np.float64),
                    np.asarray(right, dtype=np.float64),
                )
        raise ExecutionError(
            f"unsupported aggregate-context expression {expr!r}"
        )

    # -- HAVING predicates ---------------------------------------------- #

    def eval_predicate(self, predicate: Predicate) -> np.ndarray:
        # Same interpreter as WHERE evaluation, with per-group leaves.
        return predicate_mask(
            predicate,
            self.n_groups,
            self.eval_expr,
            lambda ref, value: encode_literal(self.bound, ref, value),
        )

    def having_mask(self, predicates: list[Predicate]) -> np.ndarray:
        mask = np.ones(self.n_groups, dtype=bool)
        for predicate in predicates:
            mask &= self.eval_predicate(predicate)
        return mask


def compute_environment(
    env: Environment, computed, bound: BoundQuery
) -> Environment:
    """Extend an environment with computed columns (``Compute`` node)."""
    arrays = dict(env.arrays)
    for key, expr in computed:
        arrays[key] = evaluate_expr(expr, env, bound)
    return Environment(arrays, env.n_rows)


def pruned_scan_chunks(bound: BoundQuery, binding: str, filters,
                       chunk_rows: int | None = None):
    """Chunks of one binding's table surviving stat pruning for a scan's
    filter conjuncts.

    Returns ``(kept_chunks, chunked_table, name_of)`` where ``name_of``
    maps lowercase column names to the table's actual names.  This is
    the single chunk-prune protocol — shared by the streaming executor's
    Scan and TCUDB's ``TableSource`` so the statistics-resolution rules
    cannot drift between the two scans.
    """
    table = bound.binding(binding).table
    chunked = table.chunked(chunk_rows)
    name_of = {name.lower(): name for name in table.column_names}
    if not filters:
        return list(chunked), chunked, name_of

    def encode(ref, value):
        return encode_literal(bound, ref, value)

    kept = []
    for chunk in chunked:
        def stats_of(expr, chunk=chunk):
            if not isinstance(expr, ColumnRef):
                return None
            try:
                resolved = bound.resolve(expr)
            except BindError:
                return None
            if resolved.binding != binding:
                return None
            return chunk.stats(name_of[resolved.column])

        if conjunction_can_match(filters, stats_of, encode):
            kept.append(chunk)
    return kept, chunked, name_of


def build_group_context(
    bound: BoundQuery, env: Environment, group_by: list[BoundColumn]
) -> GroupContext:
    """Assign group ids over an environment (one global group if no keys)."""
    if group_by:
        key_arrays = [env.lookup(c.key) for c in group_by]
        combined = combine_group_codes(key_arrays)
        unique_codes, group_ids = np.unique(combined, return_inverse=True)
        n_groups = int(unique_codes.size)
        representatives = np.zeros(n_groups, dtype=np.int64)
        representatives[group_ids] = np.arange(group_ids.size)
    else:
        group_ids = np.zeros(env.n_rows, dtype=np.int64)
        # An ungrouped aggregate always produces exactly one row — over
        # zero input rows that row is COUNT=0 and SUM/AVG/MIN/MAX=0.0
        # (no NULLs in this storage model).
        n_groups = 1
        representatives = np.zeros(1, dtype=np.int64)
    return GroupContext(bound, env, group_ids, n_groups, representatives,
                        group_by)


# --------------------------------------------------------------------------- #
# Output helpers: ORDER BY / LIMIT resolution and result-table assembly
# --------------------------------------------------------------------------- #


def resolve_output_index(
    bound: BoundQuery,
    expr: Expr,
    names: list[str],
    items: list[SelectItem] | None = None,
) -> int | None:
    """Index of the output column an ORDER BY key refers to (or None).

    Resolution order: bare select-list alias/name, resolved column key
    against plain-column select items, output-name match, stringified
    expression against output names and select expressions (so ``ORDER BY
    SUM(x)`` finds ``SUM(x) AS total``).
    """
    items = list(items) if items is not None else list(bound.select_items)
    by_name = {name.lower(): i for i, name in enumerate(names)}
    if isinstance(expr, ColumnRef):
        if expr.table is None and expr.column in by_name:
            return by_name[expr.column]
        try:
            key = bound.resolve(expr).key
        except BindError:
            key = None  # select-list alias, not a table column
        if key is not None:
            for i, item in enumerate(items):
                if isinstance(item.expr, ColumnRef):
                    try:
                        if bound.resolve(item.expr).key == key:
                            return i
                    except BindError:
                        continue
            for i, name in enumerate(names):
                if name.lower() in (key, expr.column):
                    return i
    text = str(expr).lower()
    if text in by_name:
        return by_name[text]
    for i, item in enumerate(items):
        if str(item.expr).lower() == text:
            return i
    return None


def sort_key_array(
    bound: BoundQuery, item: SelectItem | None, array: np.ndarray
) -> np.ndarray:
    """The array to argsort for one ORDER BY key.

    String outputs are decoded through their dictionary so ordering is
    lexicographic rather than dictionary-code order.
    """
    array = np.asarray(array)
    if item is not None and isinstance(item.expr, ColumnRef):
        try:
            resolved = bound.resolve(item.expr)
        except BindError:
            return array
        if resolved.dtype == DataType.STRING:
            source = bound.binding(resolved.binding).table.column(
                resolved.column
            )
            if source.dictionary is not None:
                return source.dictionary.decode(
                    np.asarray(array, dtype=np.int64)
                )
    return array


def apply_order_limit(
    bound: BoundQuery,
    arrays: list[np.ndarray],
    names: list[str],
    items: list[SelectItem] | None = None,
) -> list[np.ndarray]:
    """Apply the query's ORDER BY and LIMIT to materialized output arrays.

    Unresolvable ORDER BY keys raise: silently skipping a key reorders
    LIMIT results (the historical `_order_index` bug).
    """
    items = list(items) if items is not None else list(bound.select_items)
    if bound.order_by and arrays:
        order = np.arange(np.asarray(arrays[0]).size)
        for order_item in reversed(bound.order_by):
            index = resolve_output_index(bound, order_item.expr, names, items)
            if index is None:
                raise ExecutionError(
                    f"ORDER BY key {order_item.expr} not in select list"
                )
            item = items[index] if index < len(items) else None
            keys = sort_key_array(bound, item, arrays[index])[order]
            positions = np.argsort(keys, kind="stable")
            if order_item.descending:
                positions = positions[::-1]
            order = order[positions]
        arrays = [np.asarray(a)[order] for a in arrays]
    if bound.limit is not None:
        arrays = [np.asarray(a)[: bound.limit] for a in arrays]
    return arrays


def make_output_column(
    bound: BoundQuery, expr: Expr | None, array: np.ndarray
) -> Column:
    """Type one output array, preserving string dictionaries and int64."""
    if isinstance(expr, ColumnRef):
        resolved = bound.resolve(expr)
        if resolved.dtype == DataType.STRING:
            source = bound.binding(resolved.binding).table.column(
                resolved.column
            )
            return Column(array.astype(np.int64), DataType.STRING,
                          source.dictionary)
        if resolved.dtype == DataType.INT64:
            return Column(array.astype(np.int64), DataType.INT64)
    if array.dtype.kind in ("i", "u"):
        return Column(array.astype(np.int64), DataType.INT64)
    return Column(array.astype(np.float64), DataType.FLOAT64)


def build_result_table(
    bound: BoundQuery,
    arrays: list[np.ndarray],
    names: list[str],
    items: list[SelectItem] | None = None,
) -> Table:
    """Assemble output arrays into a result table with unique column names."""
    items = list(items) if items is not None else list(bound.select_items)
    item_exprs: dict[str, Expr | None] = {name: None for name in names}
    for item, name in zip(items, names):
        item_exprs[name] = item.expr
    columns: dict[str, Column] = {}
    for array, name in zip(arrays, names):
        expr = item_exprs.get(name)
        column = make_output_column(bound, expr, np.asarray(array))
        unique_name = name
        suffix = 1
        while unique_name in columns:
            suffix += 1
            unique_name = f"{name}_{suffix}"
        columns[unique_name] = column
    return Table("result", columns)


# --------------------------------------------------------------------------- #
# The general physical executor
# --------------------------------------------------------------------------- #


class PhysicalExecutor:
    """Interpret a logical plan tree with pure NumPy kernels.

    Cost-free and exact on both of its paths:

    * the legacy contiguous path (:meth:`run`) materializes every
      operator's full output;
    * the streaming path (:meth:`run_streaming`) pulls fixed-size row
      chunks through Scan/Filter/Compute/Join and merges mergeable
      aggregate partials, so grouped queries execute in memory bounded
      by (chunk size x join fan-out) + (distinct groups) instead of the
      full intermediate — what lets REAL-mode oracle replay work at
      paper scale.  Scans prune chunks their per-chunk min/max
      statistics prove empty for the pushed-down filters.

    ``pair_limit`` bounds join materialization (cumulative across
    chunks on the streaming path) so runaway fuzzed queries fail loudly
    instead of exhausting memory.

    ``workers`` > 1 fans independent chunks of the streaming path
    across a thread pool (``None`` takes the ``REPRO_WORKERS`` policy).
    Chunks are processed by workers but *merged in submission order*,
    so the parallel output — and every floating-point accumulation
    order behind it — is bit-identical to the sequential run.
    ``cancel_token`` is polled at every chunk boundary for cooperative
    cancellation (see :class:`~repro.engine.parallel.CancellationToken`).
    """

    def __init__(self, bound: BoundQuery, pair_limit: int = 20_000_000,
                 chunk_rows: int | None = None,
                 workers: int | None = None,
                 cancel_token: CancellationToken | None = None):
        self.bound = bound
        self.pair_limit = pair_limit
        self.chunk_rows = chunk_rows
        self.workers = workers_policy(workers)
        self.cancel_token = cancel_token
        #: chunks skipped by stat pruning in the last streaming run
        self.chunks_pruned = 0
        self.chunks_scanned = 0

    def _check_cancelled(self) -> None:
        if self.cancel_token is not None:
            self.cancel_token.raise_if_cancelled()

    # -- relational operators (return environments) ---------------------- #

    def _run_relation(self, node: LogicalNode) -> Environment:
        if isinstance(node, Scan):
            env = Environment.from_table(self.bound, node.binding)
            if node.filters:
                env = env.filtered(
                    conjunction_mask(node.filters, env, self.bound)
                )
            return env
        if isinstance(node, Join):
            return self._run_join(node)
        if isinstance(node, Filter):
            env = self._run_relation(node.input)
            return env.filtered(
                conjunction_mask(node.predicates, env, self.bound)
            )
        if isinstance(node, Compute):
            env = self._run_relation(node.input)
            return compute_environment(env, node.computed, self.bound)
        raise ExecutionError(f"unexpected relational node {node!r}")

    def _run_join(self, node: Join) -> Environment:
        left = self._run_relation(node.left)
        right = self._run_relation(node.right)
        predicate = node.predicate
        left_keys = left.lookup(predicate.left.key)
        right_keys = right.lookup(predicate.right.key)
        if predicate.is_equi:
            left_idx, right_idx = equi_join_indices(
                left_keys, right_keys, pair_limit=self.pair_limit
            )
        else:
            left_idx, right_idx = nonequi_join_indices(
                left_keys, right_keys, predicate.op,
                pair_limit=self.pair_limit,
            )
        merged = dict(left.taken(left_idx).arrays)
        merged.update(right.taken(right_idx).arrays)
        return Environment(merged, int(left_idx.size))

    # -- projection operators (return output arrays) --------------------- #

    def _run_aggregate(
        self, node: Aggregate
    ) -> tuple[list[np.ndarray], list[str]]:
        env = self._run_relation(node.input)
        names = [item.output_name for item in node.items]
        context = build_group_context(self.bound, env, node.group_by)
        if context.n_groups == 0:
            return [np.array([]) for _ in node.items], names
        arrays = [context.eval_expr(item.expr) for item in node.items]
        if node.having:
            mask = context.having_mask(node.having)
            arrays = [np.asarray(a)[mask] for a in arrays]
        return arrays, names

    def _run_output(self, node: LogicalNode) -> tuple[list[np.ndarray], list[str]]:
        if isinstance(node, Aggregate):
            return self._run_aggregate(node)
        if isinstance(node, Project):
            env = self._run_relation(node.input)
            names = [item.output_name for item in node.items]
            arrays = [
                evaluate_expr(item.expr, env, self.bound)
                for item in node.items
            ]
            return arrays, names
        if isinstance(node, (Sort, Limit)):
            # Sorting and limiting are applied once at the top via
            # apply_order_limit (bound carries the keys and count).
            return self._run_output(node.input)
        raise ExecutionError(f"unknown plan node {node!r}")

    def run(self, tree: LogicalNode) -> tuple[list[np.ndarray], list[str]]:
        """Execute the plan; returns fully ordered/limited output arrays."""
        self._check_cancelled()
        arrays, names = self._run_output(tree)
        arrays = apply_order_limit(self.bound, arrays, names)
        return arrays, names

    # -- streaming (morsel-driven) execution ----------------------------- #

    def stream_relation(self, node: LogicalNode):
        """Yield the relation's rows as a sequence of chunk Environments.

        Chunk boundaries are an implementation detail: concatenating the
        yielded chunks equals the contiguous ``_run_relation`` output row
        for row (streaming never reorders).  With ``workers`` > 1 the
        chunks run on the worker pool; results are still yielded in
        chunk order, so downstream consumers cannot observe the
        parallelism.
        """
        if self.workers > 1:
            tasks = self._chunk_tasks(node)
            for envs in parallel_map(
                lambda task: task(), tasks, self.workers,
                token=self.cancel_token,
            ):
                yield from envs
            return
        yield from self._stream_relation_sequential(node)

    def _stream_relation_sequential(self, node: LogicalNode):
        if isinstance(node, Scan):
            yield from self._stream_scan(node)
        elif isinstance(node, Join):
            yield from self._stream_join(node)
        elif isinstance(node, Filter):
            for env in self.stream_relation(node.input):
                filtered = env.filtered(
                    conjunction_mask(node.predicates, env, self.bound)
                )
                if filtered.n_rows:
                    yield filtered
        elif isinstance(node, Compute):
            for env in self.stream_relation(node.input):
                yield compute_environment(env, node.computed, self.bound)
        else:
            raise ExecutionError(f"unexpected relational node {node!r}")

    def _stream_scan(self, node: Scan):
        binding = node.binding
        kept, chunked, name_of = pruned_scan_chunks(
            self.bound, binding, node.filters, self.chunk_rows
        )
        self.chunks_pruned += chunked.num_chunks - len(kept)
        for chunk in kept:
            self._check_cancelled()
            self.chunks_scanned += 1
            env = Environment(
                {
                    f"{binding}.{lower}": chunk.column(name).data
                    for lower, name in name_of.items()
                },
                chunk.num_rows,
            )
            if node.filters:
                env = env.filtered(
                    conjunction_mask(node.filters, env, self.bound)
                )
            if env.n_rows:
                yield env

    def _stream_join(self, node: Join):
        """Stream the probe (left) side against a materialized build
        (right) side, one chunk of matches at a time."""
        right = self._run_relation(node.right)
        predicate = node.predicate
        right_keys = right.lookup(predicate.right.key)
        total = 0
        for left_env in self.stream_relation(node.left):
            self._check_cancelled()
            left_keys = left_env.lookup(predicate.left.key)
            # Each chunk gets the *remaining* budget, so a skewed chunk
            # fails on its cheap pre-count instead of materializing an
            # over-limit pair set first.
            remaining = self.pair_limit - total
            if predicate.is_equi:
                left_idx, right_idx = equi_join_indices(
                    left_keys, right_keys, pair_limit=remaining
                )
            else:
                left_idx, right_idx = nonequi_join_indices(
                    left_keys, right_keys, predicate.op,
                    pair_limit=remaining,
                )
            total += int(left_idx.size)
            if not left_idx.size:
                continue
            merged = dict(left_env.taken(left_idx).arrays)
            merged.update(right.taken(right_idx).arrays)
            yield Environment(merged, int(left_idx.size))

    # -- parallel morsel decomposition ----------------------------------- #

    def _chunk_tasks(self, node: LogicalNode):
        """Decompose a relation into independent chunk tasks.

        Each task returns the list of Environments its chunk contributes;
        concatenating every task's list in task order reproduces the
        sequential :meth:`stream_relation` output exactly — scans map to
        one task per surviving chunk, Filter/Compute wrap the inner
        tasks, and a Join materializes its build side once (here, on the
        submitting thread) and wraps the probe-side tasks around a
        lock-protected cumulative pair budget.
        """
        if isinstance(node, Scan):
            kept, chunked, name_of = pruned_scan_chunks(
                self.bound, node.binding, node.filters, self.chunk_rows
            )
            self.chunks_pruned += chunked.num_chunks - len(kept)
            self.chunks_scanned += len(kept)
            return [
                self._scan_task(node, chunk, name_of) for chunk in kept
            ]
        if isinstance(node, Filter):
            return [
                self._filter_task(node, inner)
                for inner in self._chunk_tasks(node.input)
            ]
        if isinstance(node, Compute):
            return [
                self._compute_task(node, inner)
                for inner in self._chunk_tasks(node.input)
            ]
        if isinstance(node, Join):
            right = self._run_relation(node.right)
            budget = _PairBudget(self.pair_limit)
            return [
                self._probe_task(node, inner, right, budget)
                for inner in self._chunk_tasks(node.left)
            ]
        raise ExecutionError(f"unexpected relational node {node!r}")

    def _scan_task(self, node: Scan, chunk, name_of):
        binding = node.binding

        def task():
            env = Environment(
                {
                    f"{binding}.{lower}": chunk.column(name).data
                    for lower, name in name_of.items()
                },
                chunk.num_rows,
            )
            if node.filters:
                env = env.filtered(
                    conjunction_mask(node.filters, env, self.bound)
                )
            return [env] if env.n_rows else []

        return task

    def _filter_task(self, node: Filter, inner):
        def task():
            out = []
            for env in inner():
                filtered = env.filtered(
                    conjunction_mask(node.predicates, env, self.bound)
                )
                if filtered.n_rows:
                    out.append(filtered)
            return out

        return task

    def _compute_task(self, node: Compute, inner):
        def task():
            return [
                compute_environment(env, node.computed, self.bound)
                for env in inner()
            ]

        return task

    def _probe_task(self, node: Join, inner, right: Environment,
                    budget: "_PairBudget"):
        predicate = node.predicate
        right_keys = right.lookup(predicate.right.key)

        def task():
            out = []
            for left_env in inner():
                left_keys = left_env.lookup(predicate.left.key)
                if predicate.is_equi:
                    count = equi_join_count(left_keys, right_keys)
                else:
                    count = nonequi_join_count(
                        left_keys, right_keys, predicate.op
                    )
                # Reserve before materializing: over-budget chunks fail
                # on their cheap pre-count, exactly like the sequential
                # remaining-budget check.
                budget.reserve(count, predicate.op)
                if not count:
                    continue
                if predicate.is_equi:
                    left_idx, right_idx = equi_join_indices(
                        left_keys, right_keys
                    )
                else:
                    left_idx, right_idx = nonequi_join_indices(
                        left_keys, right_keys, predicate.op,
                        pair_limit=count,
                    )
                merged = dict(left_env.taken(left_idx).arrays)
                merged.update(right.taken(right_idx).arrays)
                out.append(Environment(merged, int(left_idx.size)))
            return out

        return task

    def _stream_output(
        self, node: LogicalNode
    ) -> tuple[list[np.ndarray], list[str]]:
        if isinstance(node, Aggregate):
            return self._stream_aggregate(node)
        if isinstance(node, Project):
            names = [item.output_name for item in node.items]
            parts: list[list[np.ndarray]] = [[] for _ in node.items]
            for env in self.stream_relation(node.input):
                for i, item in enumerate(node.items):
                    parts[i].append(
                        np.asarray(evaluate_expr(item.expr, env, self.bound))
                    )
            arrays = [
                np.concatenate(chunks) if chunks else np.array([])
                for chunks in parts
            ]
            return arrays, names
        if isinstance(node, (Sort, Limit)):
            return self._stream_output(node.input)
        raise ExecutionError(f"unknown plan node {node!r}")

    def _stream_aggregate(
        self, node: Aggregate
    ) -> tuple[list[np.ndarray], list[str]]:
        names = [item.output_name for item in node.items]
        calls: list[AggregateCall] = []
        for item in node.items:
            for sub in item.expr.walk():
                if isinstance(sub, AggregateCall) and sub not in calls:
                    calls.append(sub)
        for predicate in node.having:
            from repro.sql.ast_nodes import walk_predicate_exprs

            for expr in walk_predicate_exprs(predicate):
                for sub in expr.walk():
                    if isinstance(sub, AggregateCall) and sub not in calls:
                        calls.append(sub)
        aggregator = StreamAggregator(self.bound, node.group_by, calls)
        for env in self.stream_relation(node.input):
            aggregator.consume(env)
        evaluator = aggregator.finalize()
        if evaluator.n_groups == 0:
            return [np.array([]) for _ in node.items], names
        arrays = [evaluator.eval_expr(item.expr) for item in node.items]
        if node.having:
            mask = evaluator.having_mask(node.having)
            arrays = [np.asarray(a)[mask] for a in arrays]
        return arrays, names

    def run_streaming(
        self, tree: LogicalNode
    ) -> tuple[list[np.ndarray], list[str]]:
        """Streaming equivalent of :meth:`run`: same arrays, bounded
        memory."""
        self._check_cancelled()
        self.chunks_pruned = 0
        self.chunks_scanned = 0
        arrays, names = self._stream_output(tree)
        arrays = apply_order_limit(self.bound, arrays, names)
        return arrays, names


class _PairBudget:
    """Cumulative join-pair budget shared by parallel probe tasks.

    The sequential streaming join raises once the cumulative pair count
    crosses ``pair_limit``; with probe chunks racing, the reservation
    must be atomic so exactly the same total triggers exactly the same
    error (only the reporting chunk can differ).
    """

    def __init__(self, limit: int):
        self.limit = limit
        self._total = 0
        self._lock = threading.Lock()

    def reserve(self, pairs: int, op: str) -> None:
        with self._lock:
            self._total += pairs
            if self._total > self.limit:
                kind = "equi" if op == "=" else "non-equi"
                raise ExecutionError(
                    f"{kind} join would materialize {self._total} "
                    f"cumulative pairs (> {self.limit})"
                )


# --------------------------------------------------------------------------- #
# Streaming aggregation: mergeable per-chunk partials
# --------------------------------------------------------------------------- #


class StreamAggregator:
    """Grouped aggregation over a chunk stream.

    Each chunk reduces to per-chunk-group partials (SUM/COUNT partials
    sum, MIN/MAX partials min/max, AVG carries sum+count), keyed by the
    chunk's group-key values; ``finalize`` merges the partials with one
    global re-group.  Memory is bounded by the number of *distinct
    groups seen*, never by the input row count.
    """

    def __init__(self, bound: BoundQuery, group_by: list[BoundColumn],
                 calls: list[AggregateCall]):
        self.bound = bound
        self.group_by = list(group_by)
        self.group_keys = [c.key for c in group_by]
        self.calls = list(calls)
        self._key_parts: list[list[np.ndarray]] = [
            [] for _ in self.group_keys
        ]
        # Per call: list of (component name -> partial array) per chunk.
        self._partials: list[dict[str, list[np.ndarray]]] = [
            {"sum": [], "count": [], "min": [], "max": []}
            for _ in self.calls
        ]
        self._saw_rows = False

    def consume(self, env: Environment) -> None:
        n = env.n_rows
        if n == 0:
            return
        self._saw_rows = True
        if self.group_keys:
            key_arrays = [np.asarray(env.lookup(k)) for k in self.group_keys]
            combined = combine_group_codes(key_arrays)
            uniques, ids = np.unique(combined, return_inverse=True)
            n_groups = int(uniques.size)
            representatives = np.zeros(n_groups, dtype=np.int64)
            representatives[ids] = np.arange(n)
            for part, keys in zip(self._key_parts, key_arrays):
                part.append(keys[representatives])
        else:
            ids = np.zeros(n, dtype=np.int64)
            n_groups = 1
        counts = np.bincount(ids, minlength=n_groups).astype(np.float64)
        for call, partial in zip(self.calls, self._partials):
            if call.argument is None or call.func == "count":
                partial["count"].append(counts)
                continue
            values = np.asarray(
                evaluate_expr(call.argument, env, self.bound),
                dtype=np.float64,
            )
            if call.func in ("sum", "avg"):
                partial["sum"].append(
                    np.bincount(ids, weights=values, minlength=n_groups)
                )
                partial["count"].append(counts)
            elif call.func == "min":
                out = np.full(n_groups, np.inf)
                np.minimum.at(out, ids, values)
                partial["min"].append(out)
            elif call.func == "max":
                out = np.full(n_groups, -np.inf)
                np.maximum.at(out, ids, values)
                partial["max"].append(out)
            else:
                raise ExecutionError(f"unsupported aggregate {call.func!r}")

    def finalize(self) -> "StreamGroupEval":
        if not self._saw_rows:
            if self.group_keys:
                return StreamGroupEval(self.bound, self.group_by, {}, {}, 0)
            # Ungrouped aggregate over an empty stream: one output row
            # with COUNT=0 and SUM/AVG/MIN/MAX=0.0 — mirroring
            # build_group_context on the batch path.
            finals = {call: np.zeros(1) for call in self.calls}
            return StreamGroupEval(self.bound, self.group_by, {}, finals, 1)
        if self.group_keys:
            key_arrays = [np.concatenate(part) for part in self._key_parts]
            combined = combine_group_codes(key_arrays)
            uniques, ids = np.unique(combined, return_inverse=True)
            n_groups = int(uniques.size)
            representatives = np.zeros(n_groups, dtype=np.int64)
            representatives[ids] = np.arange(ids.size)
            key_values = {
                key: array[representatives]
                for key, array in zip(self.group_keys, key_arrays)
            }
        else:
            n_partials = max(
                (len(p["count"]) or len(p["sum"]) or len(p["min"])
                 or len(p["max"]))
                for p in self._partials
            ) if self._partials else 1
            ids = np.zeros(max(n_partials, 1), dtype=np.int64)
            n_groups = 1
            key_values = {}
        finals: dict[AggregateCall, np.ndarray] = {}
        for call, partial in zip(self.calls, self._partials):
            if call.argument is None or call.func == "count":
                finals[call] = np.bincount(
                    ids, weights=np.concatenate(partial["count"]),
                    minlength=n_groups,
                )
            elif call.func in ("sum", "avg"):
                sums = np.bincount(
                    ids, weights=np.concatenate(partial["sum"]),
                    minlength=n_groups,
                )
                if call.func == "sum":
                    finals[call] = sums
                else:
                    counts = np.bincount(
                        ids, weights=np.concatenate(partial["count"]),
                        minlength=n_groups,
                    )
                    finals[call] = sums / np.maximum(counts, 1)
            elif call.func == "min":
                out = np.full(n_groups, np.inf)
                np.minimum.at(out, ids, np.concatenate(partial["min"]))
                finals[call] = out
            else:  # max
                out = np.full(n_groups, -np.inf)
                np.maximum.at(out, ids, np.concatenate(partial["max"]))
                finals[call] = out
        return StreamGroupEval(self.bound, self.group_by, key_values,
                               finals, n_groups)


class StreamGroupEval:
    """Per-group expression/HAVING evaluation over merged partials
    (the streaming counterpart of :class:`GroupContext`)."""

    def __init__(self, bound: BoundQuery, group_by: list[BoundColumn],
                 key_values: dict[str, np.ndarray],
                 finals: dict[AggregateCall, np.ndarray], n_groups: int):
        self.bound = bound
        self.group_keys = {c.key for c in group_by}
        self.key_values = key_values
        self.finals = finals
        self.n_groups = n_groups
        self.computed = {
            expr: key
            for key, expr in getattr(bound, "group_exprs", {}).items()
        }

    def eval_expr(self, expr: Expr) -> np.ndarray:
        computed_key = self.computed.get(expr)
        if computed_key is not None and computed_key in self.key_values:
            return self.key_values[computed_key]
        if isinstance(expr, AggregateCall):
            final = self.finals.get(expr)
            if final is None:
                raise ExecutionError(
                    f"aggregate {expr} was not accumulated by the stream"
                )
            return final
        if isinstance(expr, Literal):
            return np.full(self.n_groups, expr.value)
        if isinstance(expr, ColumnRef):
            key = self.bound.resolve(expr).key
            if key not in self.group_keys:
                raise ExecutionError(f"non-grouped column {key} in select")
            return self.key_values[key]
        if isinstance(expr, BinaryOp):
            left = np.asarray(self.eval_expr(expr.left), dtype=np.float64)
            right = np.asarray(self.eval_expr(expr.right), dtype=np.float64)
            op = _ARITH_OPS.get(expr.op)
            if op is None:
                raise ExecutionError(
                    f"unsupported arithmetic operator {expr.op!r}"
                )
            with np.errstate(divide="ignore", invalid="ignore"):
                return op(left, right)
        raise ExecutionError(
            f"unsupported aggregate-context expression {expr!r}"
        )

    def having_mask(self, predicates: list[Predicate]) -> np.ndarray:
        mask = np.ones(self.n_groups, dtype=bool)
        for predicate in predicates:
            mask &= predicate_mask(
                predicate,
                self.n_groups,
                self.eval_expr,
                lambda ref, value: encode_literal(self.bound, ref, value),
            )
        return mask

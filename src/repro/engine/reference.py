"""Reference oracle engine: pure-NumPy, cost-free, fully general.

TCUDB's core claim is that matmul-encoded plans return the *same
answers* as a conventional engine.  The :class:`ReferenceEngine` is the
independent arbiter of "same answers": it interprets the logical plan
with :class:`~repro.engine.physical.PhysicalExecutor` — no cost model,
no pattern matching, no precision tricks — so the differential and fuzz
test suites can compare every engine against it.
"""

from __future__ import annotations

from repro.common.timing import TimingBreakdown
from repro.engine.base import Engine, ExecutionMode, QueryResult
from repro.engine.physical import PhysicalExecutor, build_result_table
from repro.sql.binder import BoundQuery
from repro.sql.logical import explain
from repro.sql.planner import plan
from repro.storage.catalog import Catalog


class ReferenceEngine(Engine):
    """The trusted correctness oracle (always REAL-mode, no simulated cost)."""

    name = "Reference"

    def __init__(
        self,
        catalog: Catalog,
        mode: ExecutionMode = ExecutionMode.REAL,
        pair_limit: int = 20_000_000,
        streaming: bool = False,
        chunk_rows: int | None = None,
        workers: int | None = None,
        cancel_token=None,
    ):
        # The oracle always materializes; ANALYTIC mode has no meaning here.
        super().__init__(catalog, ExecutionMode.REAL)
        self.pair_limit = pair_limit
        # Streaming replay pulls chunk batches through the plan instead
        # of materializing whole intermediates — same answers, memory
        # bounded by chunk size + distinct groups (what lets the bench
        # verifier replay paper-scale profiles).
        self.streaming = streaming
        self.chunk_rows = chunk_rows
        # Worker-pool fan-out of the streaming path (None = REPRO_WORKERS
        # policy) and the cooperative cancellation token, both forwarded
        # to the PhysicalExecutor per query.
        self.workers = workers
        self.cancel_token = cancel_token

    def execute_bound(self, bound: BoundQuery) -> QueryResult:
        tree = plan(bound)
        executor = PhysicalExecutor(bound, pair_limit=self.pair_limit,
                                    chunk_rows=self.chunk_rows,
                                    workers=self.workers,
                                    cancel_token=self.cancel_token)
        if self.streaming:
            arrays, names = executor.run_streaming(tree)
        else:
            arrays, names = executor.run(tree)
        table = build_result_table(bound, arrays, names)
        return QueryResult(
            engine=self.name,
            n_rows=table.num_rows,
            breakdown=TimingBreakdown(),
            table=table,
            plan_description=explain(tree),
            extra={
                "oracle": True,
                "streaming": self.streaming,
                "workers": executor.workers,
                "chunks_pruned": executor.chunks_pruned,
                "chunks_scanned": executor.chunks_scanned,
            },
        )


__all__ = ["ReferenceEngine"]

"""Relational plan executor for the baseline engines.

Interprets the logical plan with vectorized numpy operators while charging
simulated time through a cost model (GPU for YDB, CPU for MonetDB).  In
ANALYTIC mode, join outputs larger than ``materialize_limit`` are not
materialized: the executor still computes the *exact* matching-pair count
(a cheap sort/searchsorted pass) and estimates downstream cardinalities
from statistics, so paper-scale configurations finish instantly while the
simulated charges stay faithful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ExecutionError
from repro.common.timing import TimingBreakdown
from repro.sql.ast_nodes import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    Expr,
    Literal,
    SelectItem,
)
from repro.sql.binder import BoundColumn, BoundQuery
from repro.sql.eval import Environment, conjunction_mask, evaluate_expr
from repro.sql.logical import (
    Aggregate,
    Join,
    Limit,
    LogicalNode,
    Project,
    Scan,
    Sort,
)
from repro.sql.planner import plan
from repro.storage.column import Column
from repro.storage.table import Table
from repro.storage.types import DataType

from repro.engine.base import Engine, ExecutionMode, QueryResult


@dataclass
class OpOutput:
    """One operator's output: environment (or None when skipped) + size."""

    env: Environment | None
    n_rows: int

    @property
    def materialized(self) -> bool:
        return self.env is not None


def equi_join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Matching (left_index, right_index) pairs of an equi join."""
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    starts = np.searchsorted(sorted_right, left_keys, side="left")
    ends = np.searchsorted(sorted_right, left_keys, side="right")
    counts = ends - starts
    total = int(counts.sum())
    left_idx = np.repeat(np.arange(left_keys.size), counts)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    right_idx = order[np.repeat(starts, counts) + offsets]
    return left_idx, right_idx


def equi_join_count(left_keys: np.ndarray, right_keys: np.ndarray) -> int:
    """Exact matching-pair count without materializing the pairs."""
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    starts = np.searchsorted(sorted_right, left_keys, side="left")
    ends = np.searchsorted(sorted_right, left_keys, side="right")
    return int((ends - starts).sum())


# searchsorted side per operator: for "left op right" we count, per left
# key, the right keys satisfying the comparison in the sorted right array.
# "<" needs right keys strictly greater (insertion point from the right),
# "<=" needs right keys >= (insertion point from the left), and mirrored
# for ">" / ">=".
_NONEQUI_SIDES = {
    "<": "right",
    "<=": "left",
    ">": "left",
    ">=": "right",
}


def nonequi_join_count(
    left_keys: np.ndarray, right_keys: np.ndarray, op: str
) -> int:
    """Exact pair count for <, <=, >, >=, != joins via sorted counting."""
    sorted_right = np.sort(right_keys)
    m = sorted_right.size
    if op in ("<", "<="):
        side = _NONEQUI_SIDES[op]
        positions = np.searchsorted(sorted_right, left_keys, side=side)
        return int((m - positions).sum())
    if op in (">", ">="):
        side = _NONEQUI_SIDES[op]
        positions = np.searchsorted(sorted_right, left_keys, side=side)
        return int(positions.sum())
    if op in ("<>", "!="):
        equal = equi_join_count(left_keys, right_keys)
        return int(left_keys.size) * m - equal
    raise ExecutionError(f"unsupported join operator {op!r}")


def nonequi_join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray, op: str,
    pair_limit: int = 50_000_000,
) -> tuple[np.ndarray, np.ndarray]:
    """Materialize non-equi join pairs (bounded by ``pair_limit``)."""
    pairs = nonequi_join_count(left_keys, right_keys, op)
    if pairs > pair_limit:
        raise ExecutionError(
            f"non-equi join would materialize {pairs} pairs (> {pair_limit})"
        )
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    m = sorted_right.size
    if op in ("<", "<=", ">", ">="):
        side = _NONEQUI_SIDES[op]
        positions = np.searchsorted(sorted_right, left_keys, side=side)
        if op in ("<", "<="):
            counts = m - positions
            starts = positions
        else:
            counts = positions
            starts = np.zeros_like(positions)
        total = int(counts.sum())
        left_idx = np.repeat(np.arange(left_keys.size), counts)
        offsets = (
            np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        )
        right_idx = order[np.repeat(starts, counts) + offsets]
        return left_idx, right_idx
    if op in ("<>", "!="):
        left_idx_all = np.repeat(np.arange(left_keys.size), m)
        right_idx_all = np.tile(np.arange(m), left_keys.size)
        keep = left_keys[left_idx_all] != right_keys[right_idx_all]
        return left_idx_all[keep], right_idx_all[keep]
    raise ExecutionError(f"unsupported join operator {op!r}")


def combine_group_codes(arrays: list[np.ndarray]) -> np.ndarray:
    """Collapse multiple key arrays into one composite code per row."""
    if not arrays:
        raise ExecutionError("group-by requires at least one key")
    combined = np.zeros(arrays[0].size, dtype=np.int64)
    for array in arrays:
        _, codes = np.unique(array, return_inverse=True)
        span = int(codes.max()) + 1 if codes.size else 1
        combined = combined * span + codes
    return combined


class RelationalExecutor(Engine):
    """Shared vectorized executor, specialized by a cost model."""

    def __init__(
        self,
        catalog,
        cost_model,
        mode: ExecutionMode = ExecutionMode.REAL,
        materialize_limit: int = 4_000_000,
    ):
        super().__init__(catalog, mode)
        self.cost_model = cost_model
        self.materialize_limit = materialize_limit
        self.name = cost_model.engine_name
        # Joins feeding an aggregate whose output exceeds this many pairs
        # aggregate during the probe instead of materializing tuples
        # (matmul-shaped queries; see Section 5.4.1).
        self.fused_accumulate_threshold = 50_000_000
        self._fuse_next_join = False
        self._last_join_fused = False

    # -- entry point -------------------------------------------------------- #

    def execute_bound(self, bound: BoundQuery) -> QueryResult:
        tree = plan(bound)
        breakdown = TimingBreakdown()
        output, arrays, names = self._run(tree, bound, breakdown)
        for stage, seconds in self.cost_model.result_out(
            output.n_rows, max(len(names), 1)
        ):
            breakdown.add(stage, seconds)
        table = None
        if arrays is not None:
            table = self._build_table(bound, arrays, names)
        from repro.sql.logical import explain

        return QueryResult(
            engine=self.name,
            n_rows=output.n_rows,
            breakdown=breakdown,
            table=table,
            plan_description=explain(tree),
        )

    # -- dispatch --------------------------------------------------------------- #

    def _run(self, node: LogicalNode, bound: BoundQuery,
             breakdown: TimingBreakdown):
        if isinstance(node, Scan):
            out = self._run_scan(node, bound, breakdown)
            return out, None, None
        if isinstance(node, Join):
            out = self._run_join(node, bound, breakdown)
            return out, None, None
        if isinstance(node, Aggregate):
            return self._run_aggregate(node, bound, breakdown)
        if isinstance(node, Project):
            return self._run_project(node, bound, breakdown)
        if isinstance(node, Sort):
            output, arrays, names = self._run(node.input, bound, breakdown)
            for stage, seconds in self.cost_model.sort(output.n_rows):
                breakdown.add(stage, seconds)
            if arrays is not None:
                arrays, names = self._apply_sort(node, bound, arrays, names)
            return output, arrays, names
        if isinstance(node, Limit):
            output, arrays, names = self._run(node.input, bound, breakdown)
            n = min(output.n_rows, node.count)
            if arrays is not None:
                arrays = [a[: node.count] for a in arrays]
            return OpOutput(env=output.env, n_rows=n), arrays, names
        raise ExecutionError(f"unknown plan node {node!r}")

    def _run_relation(self, node: LogicalNode, bound: BoundQuery,
                      breakdown: TimingBreakdown) -> OpOutput:
        output, arrays, _ = self._run(node, bound, breakdown)
        if arrays is not None:
            raise ExecutionError("unexpected projected input to a relation op")
        return output

    # -- scans ---------------------------------------------------------------------- #

    def _referenced_columns(self, bound: BoundQuery, binding: str) -> int:
        keys = {
            column.column for column in bound.resolution.values()
            if column.binding == binding
        }
        return max(len(keys), 1)

    def _run_scan(self, node: Scan, bound: BoundQuery,
                  breakdown: TimingBreakdown) -> OpOutput:
        table = bound.binding(node.binding).table
        ncols = self._referenced_columns(bound, node.binding)
        for stage, seconds in self.cost_model.load_table(
            table.num_rows * ncols * 8.0
        ):
            breakdown.add(stage, seconds)
        env = Environment.from_table(bound, node.binding)
        if node.filters:
            for stage, seconds in self.cost_model.scan(
                table.num_rows, len(node.filters)
            ):
                breakdown.add(stage, seconds)
            mask = conjunction_mask(node.filters, env, bound)
            env = env.filtered(mask)
        return OpOutput(env=env, n_rows=env.n_rows)

    # -- joins ------------------------------------------------------------------------ #

    def _run_join(self, node: Join, bound: BoundQuery,
                  breakdown: TimingBreakdown) -> OpOutput:
        fuse_candidate = self._fuse_next_join
        self._fuse_next_join = False
        left = self._run_relation(node.left, bound, breakdown)
        right = self._run_relation(node.right, bound, breakdown)
        predicate = node.predicate
        if not (left.materialized and right.materialized):
            pairs = self._estimate_pairs(bound, left, right, predicate)
            self._charge_join(breakdown, predicate.op, left.n_rows,
                              right.n_rows, pairs, fuse_candidate)
            return OpOutput(env=None, n_rows=pairs)
        left_keys = left.env.lookup(predicate.left.key)
        right_keys = right.env.lookup(predicate.right.key)
        if predicate.is_equi:
            pairs = equi_join_count(left_keys, right_keys)
        else:
            pairs = nonequi_join_count(left_keys, right_keys, predicate.op)
        self._charge_join(breakdown, predicate.op, left.n_rows, right.n_rows,
                          pairs, fuse_candidate)
        skip = (
            self.mode == ExecutionMode.ANALYTIC
            and pairs > self.materialize_limit
        )
        if skip:
            return OpOutput(env=None, n_rows=pairs)
        if predicate.is_equi:
            left_idx, right_idx = equi_join_indices(left_keys, right_keys)
        else:
            left_idx, right_idx = nonequi_join_indices(
                left_keys, right_keys, predicate.op
            )
        merged = dict(left.env.taken(left_idx).arrays)
        merged.update(right.env.taken(right_idx).arrays)
        return OpOutput(env=Environment(merged, pairs), n_rows=pairs)

    def _charge_join(self, breakdown: TimingBreakdown, op: str,
                     n_left: int, n_right: int, pairs: int,
                     fuse_candidate: bool = False) -> None:
        self._last_join_fused = False
        if (fuse_candidate and op == "="
                and pairs > self.fused_accumulate_threshold):
            charges = self.cost_model.accumulate_join(n_left + n_right, pairs)
            self._last_join_fused = True
        elif op == "=":
            charges = self.cost_model.hash_join(n_left, n_right, pairs)
        else:
            charges = self.cost_model.nonequi_join(n_left, n_right, pairs)
        for stage, seconds in charges:
            breakdown.add(stage, seconds)

    def _estimate_pairs(self, bound: BoundQuery, left: OpOutput,
                        right: OpOutput, predicate) -> int:
        left_stats = bound.column_stats(predicate.left)
        right_stats = bound.column_stats(predicate.right)
        if predicate.is_equi:
            d = max(left_stats.n_distinct, right_stats.n_distinct, 1)
            return int(left.n_rows * right.n_rows / d)
        return int(left.n_rows * right.n_rows / 2)

    # -- aggregation --------------------------------------------------------------------- #

    def _run_aggregate(self, node: Aggregate, bound: BoundQuery,
                       breakdown: TimingBreakdown):
        from repro.sql.logical import Join as JoinNode

        self._fuse_next_join = isinstance(node.input, JoinNode)
        source = self._run_relation(node.input, bound, breakdown)
        self._fuse_next_join = False
        fused = self._last_join_fused
        self._last_join_fused = False
        grouped = bool(node.group_by)
        if not source.materialized:
            n_groups = self._estimate_groups(bound, node.group_by, source.n_rows)
            agg_input = n_groups if fused else source.n_rows
            for stage, seconds in self.cost_model.groupby(
                agg_input, n_groups, grouped
            ):
                breakdown.add(stage, seconds)
            names = [item.output_name for item in node.items]
            return OpOutput(env=None, n_rows=n_groups), None, names
        env = source.env
        if grouped:
            key_arrays = [env.lookup(c.key) for c in node.group_by]
            combined = combine_group_codes(key_arrays)
            unique_codes, group_ids = np.unique(combined, return_inverse=True)
            n_groups = int(unique_codes.size)
            representatives = np.zeros(n_groups, dtype=np.int64)
            representatives[group_ids] = np.arange(group_ids.size)
        else:
            group_ids = np.zeros(env.n_rows, dtype=np.int64)
            n_groups = 1 if env.n_rows else 0
            representatives = np.zeros(max(n_groups, 1), dtype=np.int64)
        for stage, seconds in self.cost_model.groupby(
            source.n_rows, n_groups, grouped
        ):
            breakdown.add(stage, seconds)
        if n_groups == 0:
            arrays = [np.array([]) for _ in node.items]
            names = [item.output_name for item in node.items]
            return OpOutput(env=None, n_rows=0), arrays, names
        arrays = [
            self._eval_agg_expr(item.expr, env, bound, group_ids, n_groups,
                                representatives, node.group_by)
            for item in node.items
        ]
        names = [item.output_name for item in node.items]
        return OpOutput(env=None, n_rows=n_groups), arrays, names

    def _estimate_groups(self, bound: BoundQuery,
                         group_by: list[BoundColumn], n_input: int) -> int:
        if not group_by:
            return 1 if n_input else 0
        estimate = 1
        for column in group_by:
            estimate *= max(bound.column_stats(column).n_distinct, 1)
        return min(estimate, n_input)

    def _eval_agg_expr(self, expr: Expr, env: Environment, bound: BoundQuery,
                       group_ids: np.ndarray, n_groups: int,
                       representatives: np.ndarray,
                       group_by: list[BoundColumn]) -> np.ndarray:
        if isinstance(expr, AggregateCall):
            return self._eval_aggregate(expr, env, bound, group_ids, n_groups)
        if isinstance(expr, Literal):
            return np.full(n_groups, expr.value)
        if isinstance(expr, ColumnRef):
            key = bound.resolve(expr).key
            if key not in {c.key for c in group_by}:
                raise ExecutionError(f"non-grouped column {key} in select")
            return env.lookup(key)[representatives]
        if isinstance(expr, BinaryOp):
            left = self._eval_agg_expr(expr.left, env, bound, group_ids,
                                       n_groups, representatives, group_by)
            right = self._eval_agg_expr(expr.right, env, bound, group_ids,
                                        n_groups, representatives, group_by)
            ops = {
                "+": np.add, "-": np.subtract, "*": np.multiply,
                "/": np.divide, "%": np.mod,
            }
            return ops[expr.op](
                np.asarray(left, dtype=np.float64),
                np.asarray(right, dtype=np.float64),
            )
        raise ExecutionError(f"unsupported aggregate-context expression {expr!r}")

    def _eval_aggregate(self, call: AggregateCall, env: Environment,
                        bound: BoundQuery, group_ids: np.ndarray,
                        n_groups: int) -> np.ndarray:
        if call.argument is None:  # COUNT(*)
            return np.bincount(group_ids, minlength=n_groups).astype(np.float64)
        values = evaluate_expr(call.argument, env, bound).astype(np.float64)
        if call.func == "count":
            return np.bincount(group_ids, minlength=n_groups).astype(np.float64)
        if call.func == "sum":
            return np.bincount(group_ids, weights=values, minlength=n_groups)
        if call.func == "avg":
            sums = np.bincount(group_ids, weights=values, minlength=n_groups)
            counts = np.bincount(group_ids, minlength=n_groups)
            return sums / np.maximum(counts, 1)
        if call.func == "min":
            out = np.full(n_groups, np.inf)
            np.minimum.at(out, group_ids, values)
            return out
        if call.func == "max":
            out = np.full(n_groups, -np.inf)
            np.maximum.at(out, group_ids, values)
            return out
        raise ExecutionError(f"unsupported aggregate {call.func!r}")

    # -- projection / sorting ------------------------------------------------------------- #

    def _run_project(self, node: Project, bound: BoundQuery,
                     breakdown: TimingBreakdown):
        source = self._run_relation(node.input, bound, breakdown)
        for stage, seconds in self.cost_model.project(
            source.n_rows, len(node.items)
        ):
            breakdown.add(stage, seconds)
        names = [item.output_name for item in node.items]
        if not source.materialized:
            return OpOutput(env=None, n_rows=source.n_rows), None, names
        arrays = [
            evaluate_expr(item.expr, source.env, bound) for item in node.items
        ]
        return OpOutput(env=source.env, n_rows=source.n_rows), arrays, names

    def _apply_sort(self, node: Sort, bound: BoundQuery,
                    arrays: list[np.ndarray], names: list[str]):
        by_name = {name.lower(): i for i, name in enumerate(names)}
        order = np.arange(arrays[0].size if arrays else 0)
        for item in reversed(node.keys):
            index = self._sort_column_index(item.expr, bound, by_name, names)
            keys = np.asarray(arrays[index])[order]
            positions = np.argsort(keys, kind="stable")
            if item.descending:
                positions = positions[::-1]
            order = order[positions]
        return [a[order] for a in arrays], names

    def _sort_column_index(self, expr: Expr, bound: BoundQuery,
                           by_name: dict[str, int], names: list[str]) -> int:
        if isinstance(expr, ColumnRef):
            if expr.table is None and expr.column in by_name:
                return by_name[expr.column]
            try:
                key = bound.resolve(expr).key
            except Exception:  # alias only
                key = str(expr)
            for i, name in enumerate(names):
                if name.lower() in (key, expr.column):
                    return i
            if key in by_name:
                return by_name[key]
        text = str(expr).lower()
        if text in by_name:
            return by_name[text]
        raise ExecutionError(f"ORDER BY key {expr} not in select list")

    # -- result assembly --------------------------------------------------------------------- #

    def _build_table(self, bound: BoundQuery, arrays: list[np.ndarray],
                     names: list[str]) -> Table:
        columns: dict[str, Column] = {}
        item_exprs = {name: None for name in names}
        for item, name in zip(self._final_items(bound), names):
            item_exprs[name] = item.expr
        for array, name in zip(arrays, names):
            expr = item_exprs.get(name)
            column = self._make_column(bound, expr, np.asarray(array))
            unique_name = name
            suffix = 1
            while unique_name in columns:
                suffix += 1
                unique_name = f"{name}_{suffix}"
            columns[unique_name] = column
        return Table("result", columns)

    @staticmethod
    def _final_items(bound: BoundQuery) -> list[SelectItem]:
        return list(bound.select_items)

    def _make_column(self, bound: BoundQuery, expr: Expr | None,
                     array: np.ndarray) -> Column:
        if isinstance(expr, ColumnRef):
            resolved = bound.resolve(expr)
            if resolved.dtype == DataType.STRING:
                source = bound.binding(resolved.binding).table.column(
                    resolved.column
                )
                return Column(array.astype(np.int64), DataType.STRING,
                              source.dictionary)
            if resolved.dtype == DataType.INT64:
                return Column(array.astype(np.int64), DataType.INT64)
        if array.dtype.kind in ("i", "u"):
            return Column(array.astype(np.int64), DataType.INT64)
        return Column(array.astype(np.float64), DataType.FLOAT64)

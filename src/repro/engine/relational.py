"""Relational plan executor for the baseline engines.

Interprets the logical plan with vectorized numpy operators while charging
simulated time through a cost model (GPU for YDB, CPU for MonetDB).  The
NumPy kernels themselves live in :mod:`repro.engine.physical` (shared
with the Reference oracle) and are re-exported here for compatibility.
In ANALYTIC mode, join outputs larger than ``materialize_limit`` are not
materialized: the executor still computes the *exact* matching-pair count
(a cheap sort/searchsorted pass) and estimates downstream cardinalities
from statistics, so paper-scale configurations finish instantly while the
simulated charges stay faithful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ExecutionError
from repro.common.timing import TimingBreakdown
from repro.sql.binder import BoundColumn, BoundQuery
from repro.sql.eval import Environment, conjunction_mask, evaluate_expr
from repro.sql.logical import (
    Aggregate,
    Compute,
    Filter,
    Join,
    Limit,
    LogicalNode,
    Project,
    Scan,
    Sort,
)
from repro.sql.planner import plan
from repro.storage.statistics import (
    bound_stats_lookup,
    conjunction_selectivity,
)
from repro.storage.table import Table

from repro.engine.base import Engine, ExecutionMode, QueryResult
from repro.engine.physical import (  # noqa: F401  (re-exported kernels)
    build_group_context,
    build_result_table,
    combine_group_codes,
    equi_join_count,
    equi_join_indices,
    nonequi_join_count,
    nonequi_join_indices,
    resolve_output_index,
    sort_key_array,
)


@dataclass
class OpOutput:
    """One operator's output: environment (or None when skipped) + size."""

    env: Environment | None
    n_rows: int

    @property
    def materialized(self) -> bool:
        return self.env is not None


class RelationalExecutor(Engine):
    """Shared vectorized executor, specialized by a cost model."""

    def __init__(
        self,
        catalog,
        cost_model,
        mode: ExecutionMode = ExecutionMode.REAL,
        materialize_limit: int = 4_000_000,
    ):
        super().__init__(catalog, mode)
        self.cost_model = cost_model
        self.materialize_limit = materialize_limit
        self.name = cost_model.engine_name
        # Joins feeding an aggregate whose output exceeds this many pairs
        # aggregate during the probe instead of materializing tuples
        # (matmul-shaped queries; see Section 5.4.1).
        self.fused_accumulate_threshold = 50_000_000
        self._fuse_next_join = False
        self._last_join_fused = False

    # -- entry point -------------------------------------------------------- #

    def execute_bound(self, bound: BoundQuery) -> QueryResult:
        tree = plan(bound)
        breakdown = TimingBreakdown()
        output, arrays, names = self._run(tree, bound, breakdown)
        for stage, seconds in self.cost_model.result_out(
            output.n_rows, max(len(names), 1)
        ):
            breakdown.add(stage, seconds)
        table = None
        if arrays is not None:
            table = self._build_table(bound, arrays, names)
        from repro.sql.logical import explain

        return QueryResult(
            engine=self.name,
            n_rows=output.n_rows,
            breakdown=breakdown,
            table=table,
            plan_description=explain(tree),
        )

    # -- dispatch --------------------------------------------------------------- #

    def _run(self, node: LogicalNode, bound: BoundQuery,
             breakdown: TimingBreakdown):
        if isinstance(node, Scan):
            out = self._run_scan(node, bound, breakdown)
            return out, None, None
        if isinstance(node, Join):
            out = self._run_join(node, bound, breakdown)
            return out, None, None
        if isinstance(node, Filter):
            out = self._run_filter(node, bound, breakdown)
            return out, None, None
        if isinstance(node, Compute):
            out = self._run_compute(node, bound, breakdown)
            return out, None, None
        if isinstance(node, Aggregate):
            return self._run_aggregate(node, bound, breakdown)
        if isinstance(node, Project):
            return self._run_project(node, bound, breakdown)
        if isinstance(node, Sort):
            output, arrays, names = self._run(node.input, bound, breakdown)
            for stage, seconds in self.cost_model.sort(output.n_rows):
                breakdown.add(stage, seconds)
            if arrays is not None:
                arrays, names = self._apply_sort(node, bound, arrays, names)
            return output, arrays, names
        if isinstance(node, Limit):
            output, arrays, names = self._run(node.input, bound, breakdown)
            n = min(output.n_rows, node.count)
            if arrays is not None:
                arrays = [a[: node.count] for a in arrays]
            return OpOutput(env=output.env, n_rows=n), arrays, names
        raise ExecutionError(f"unknown plan node {node!r}")

    def _run_relation(self, node: LogicalNode, bound: BoundQuery,
                      breakdown: TimingBreakdown) -> OpOutput:
        output, arrays, _ = self._run(node, bound, breakdown)
        if arrays is not None:
            raise ExecutionError("unexpected projected input to a relation op")
        return output

    # -- scans ---------------------------------------------------------------------- #

    def _referenced_columns(self, bound: BoundQuery, binding: str) -> int:
        keys = {
            column.column for column in bound.resolution.values()
            if column.binding == binding
        }
        return max(len(keys), 1)

    def _run_scan(self, node: Scan, bound: BoundQuery,
                  breakdown: TimingBreakdown) -> OpOutput:
        table = bound.binding(node.binding).table
        ncols = self._referenced_columns(bound, node.binding)
        for stage, seconds in self.cost_model.load_table(
            table.num_rows * ncols * 8.0
        ):
            breakdown.add(stage, seconds)
        env = Environment.from_table(bound, node.binding)
        if node.filters:
            for stage, seconds in self.cost_model.scan(
                table.num_rows, len(node.filters)
            ):
                breakdown.add(stage, seconds)
            mask = conjunction_mask(node.filters, env, bound)
            env = env.filtered(mask)
        return OpOutput(env=env, n_rows=env.n_rows)

    # -- residual filters -------------------------------------------------------- #

    def _run_filter(self, node: Filter, bound: BoundQuery,
                    breakdown: TimingBreakdown) -> OpOutput:
        source = self._run_relation(node.input, bound, breakdown)
        for stage, seconds in self.cost_model.scan(
            source.n_rows, len(node.predicates)
        ):
            breakdown.add(stage, seconds)
        if not source.materialized:
            # Unmaterialized input: per-conjunct selectivities derived
            # from column statistics (0.5 only beyond their reach).
            n = int(source.n_rows * conjunction_selectivity(
                node.predicates, bound_stats_lookup(bound)
            ))
            return OpOutput(env=None, n_rows=n)
        mask = conjunction_mask(node.predicates, source.env, bound)
        env = source.env.filtered(mask)
        return OpOutput(env=env, n_rows=env.n_rows)

    # -- computed columns (expression GROUP BY) ----------------------------------- #

    def _run_compute(self, node: Compute, bound: BoundQuery,
                     breakdown: TimingBreakdown) -> OpOutput:
        source = self._run_relation(node.input, bound, breakdown)
        for stage, seconds in self.cost_model.scan(
            source.n_rows, len(node.computed)
        ):
            breakdown.add(stage, seconds)
        if not source.materialized:
            return source
        from repro.engine.physical import compute_environment

        env = compute_environment(source.env, node.computed, bound)
        return OpOutput(env=env, n_rows=env.n_rows)

    # -- joins ------------------------------------------------------------------------ #

    def _run_join(self, node: Join, bound: BoundQuery,
                  breakdown: TimingBreakdown) -> OpOutput:
        fuse_candidate = self._fuse_next_join
        self._fuse_next_join = False
        left = self._run_relation(node.left, bound, breakdown)
        right = self._run_relation(node.right, bound, breakdown)
        predicate = node.predicate
        if not (left.materialized and right.materialized):
            pairs = self._estimate_pairs(bound, left, right, predicate)
            self._charge_join(breakdown, predicate.op, left.n_rows,
                              right.n_rows, pairs, fuse_candidate)
            return OpOutput(env=None, n_rows=pairs)
        left_keys = left.env.lookup(predicate.left.key)
        right_keys = right.env.lookup(predicate.right.key)
        if predicate.is_equi:
            pairs = equi_join_count(left_keys, right_keys)
        else:
            pairs = nonequi_join_count(left_keys, right_keys, predicate.op)
        self._charge_join(breakdown, predicate.op, left.n_rows, right.n_rows,
                          pairs, fuse_candidate)
        skip = (
            self.mode == ExecutionMode.ANALYTIC
            and pairs > self.materialize_limit
        )
        if skip:
            return OpOutput(env=None, n_rows=pairs)
        if predicate.is_equi:
            left_idx, right_idx = equi_join_indices(left_keys, right_keys)
        else:
            left_idx, right_idx = nonequi_join_indices(
                left_keys, right_keys, predicate.op
            )
        merged = dict(left.env.taken(left_idx).arrays)
        merged.update(right.env.taken(right_idx).arrays)
        return OpOutput(env=Environment(merged, pairs), n_rows=pairs)

    def _charge_join(self, breakdown: TimingBreakdown, op: str,
                     n_left: int, n_right: int, pairs: int,
                     fuse_candidate: bool = False) -> None:
        self._last_join_fused = False
        if (fuse_candidate and op == "="
                and pairs > self.fused_accumulate_threshold):
            charges = self.cost_model.accumulate_join(n_left + n_right, pairs)
            self._last_join_fused = True
        elif op == "=":
            charges = self.cost_model.hash_join(n_left, n_right, pairs)
        else:
            charges = self.cost_model.nonequi_join(n_left, n_right, pairs)
        for stage, seconds in charges:
            breakdown.add(stage, seconds)

    def _estimate_pairs(self, bound: BoundQuery, left: OpOutput,
                        right: OpOutput, predicate) -> int:
        left_stats = bound.column_stats(predicate.left)
        right_stats = bound.column_stats(predicate.right)
        if predicate.is_equi:
            d = max(left_stats.n_distinct, right_stats.n_distinct, 1)
            return int(left.n_rows * right.n_rows / d)
        return int(left.n_rows * right.n_rows / 2)

    # -- aggregation --------------------------------------------------------------------- #

    def _run_aggregate(self, node: Aggregate, bound: BoundQuery,
                       breakdown: TimingBreakdown):
        from repro.sql.logical import Join as JoinNode

        self._fuse_next_join = isinstance(node.input, JoinNode)
        source = self._run_relation(node.input, bound, breakdown)
        self._fuse_next_join = False
        fused = self._last_join_fused
        self._last_join_fused = False
        grouped = bool(node.group_by)
        names = [item.output_name for item in node.items]
        if not source.materialized:
            n_groups = self._estimate_groups(bound, node.group_by, source.n_rows)
            agg_input = n_groups if fused else source.n_rows
            for stage, seconds in self.cost_model.groupby(
                agg_input, n_groups, grouped
            ):
                breakdown.add(stage, seconds)
            if node.having:
                # Aggregate comparisons price at the 0.5 default; plain
                # column conjuncts use their statistics.
                n_groups = int(n_groups * conjunction_selectivity(
                    node.having, bound_stats_lookup(bound)
                ))
            return OpOutput(env=None, n_rows=n_groups), None, names
        env = source.env
        context = build_group_context(bound, env, node.group_by)
        n_groups = context.n_groups
        for stage, seconds in self.cost_model.groupby(
            source.n_rows, n_groups, grouped
        ):
            breakdown.add(stage, seconds)
        if n_groups == 0:
            arrays = [np.array([]) for _ in node.items]
            return OpOutput(env=None, n_rows=0), arrays, names
        arrays = [context.eval_expr(item.expr) for item in node.items]
        if node.having:
            mask = context.having_mask(node.having)
            arrays = [np.asarray(a)[mask] for a in arrays]
            n_groups = int(np.count_nonzero(mask))
        return OpOutput(env=None, n_rows=n_groups), arrays, names

    def _estimate_groups(self, bound: BoundQuery,
                         group_by: list[BoundColumn], n_input: int) -> int:
        from repro.sql.ast_nodes import ColumnRef

        if not group_by:
            # Ungrouped aggregates always emit one row, even over zero
            # input rows (COUNT=0 / SUM=0.0 in this NULL-free model).
            return 1
        estimate = 1
        group_exprs = getattr(bound, "group_exprs", {})
        for column in group_by:
            if column.key in group_exprs:
                # Computed key: distinct(f(x, y, ...)) is bounded by the
                # product of the base columns' distinct counts.
                factor = 1
                for node in group_exprs[column.key].walk():
                    if isinstance(node, ColumnRef):
                        stats = bound.column_stats(bound.resolve(node))
                        factor *= max(stats.n_distinct, 1)
                estimate *= min(factor, max(n_input, 1))
                continue
            estimate *= max(bound.column_stats(column).n_distinct, 1)
        return min(estimate, n_input)

    # -- projection / sorting ------------------------------------------------------------- #

    def _run_project(self, node: Project, bound: BoundQuery,
                     breakdown: TimingBreakdown):
        source = self._run_relation(node.input, bound, breakdown)
        for stage, seconds in self.cost_model.project(
            source.n_rows, len(node.items)
        ):
            breakdown.add(stage, seconds)
        names = [item.output_name for item in node.items]
        if not source.materialized:
            return OpOutput(env=None, n_rows=source.n_rows), None, names
        arrays = [
            evaluate_expr(item.expr, source.env, bound) for item in node.items
        ]
        return OpOutput(env=source.env, n_rows=source.n_rows), arrays, names

    def _apply_sort(self, node: Sort, bound: BoundQuery,
                    arrays: list[np.ndarray], names: list[str]):
        items = list(bound.select_items)
        order = np.arange(arrays[0].size if arrays else 0)
        for item in reversed(node.keys):
            index = resolve_output_index(bound, item.expr, names, items)
            if index is None:
                raise ExecutionError(
                    f"ORDER BY key {item.expr} not in select list"
                )
            select_item = items[index] if index < len(items) else None
            keys = sort_key_array(bound, select_item, arrays[index])[order]
            positions = np.argsort(keys, kind="stable")
            if item.descending:
                positions = positions[::-1]
            order = order[positions]
        return [np.asarray(a)[order] for a in arrays], names

    # -- result assembly --------------------------------------------------------------------- #

    def _build_table(self, bound: BoundQuery, arrays: list[np.ndarray],
                     names: list[str]) -> Table:
        return build_result_table(bound, arrays, names)

"""TCUDB: the paper's primary contribution.

Query analyzer (pattern matching), query optimizer (Figure 6), code
generator (CUDA C emission) and program driver (TCU operator library).
"""

from repro.engine.tcudb.codegen import GeneratedProgram, generate_program
from repro.engine.tcudb.cost import (
    OperatorGeometry,
    PlanCost,
    Strategy,
    estimate_blocked,
    estimate_cpu_baseline,
    estimate_dense,
    estimate_gpu_baseline,
    estimate_sparse,
)
from repro.engine.tcudb.driver import (
    CompositeKey,
    PreparedAggSide,
    PreparedJoin,
    TCUDriver,
)
from repro.engine.tcudb.engine import TCUDBEngine, TCUDBOptions
from repro.engine.tcudb.feasibility import (
    FeasibilityReport,
    run_feasibility_test,
)
from repro.engine.tcudb.optimizer import OptimizerDecision, TCUOptimizer
from repro.engine.tcudb.patterns import (
    AggregateSpec,
    MatchFailure,
    PatternKind,
    TCUPattern,
    match_pattern,
)
from repro.engine.tcudb.transform import (
    KeyDomain,
    SideMatrix,
    TransformCost,
    best_transform_cost,
    comparison_matrix,
    cpu_transform_cost,
    gpu_transform_cost,
    grouped_matrix,
    tuple_matrix,
    union_key_domain,
)

__all__ = [
    "AggregateSpec",
    "CompositeKey",
    "FeasibilityReport",
    "GeneratedProgram",
    "KeyDomain",
    "MatchFailure",
    "OperatorGeometry",
    "OptimizerDecision",
    "PatternKind",
    "PlanCost",
    "PreparedAggSide",
    "PreparedJoin",
    "SideMatrix",
    "Strategy",
    "TCUDBEngine",
    "TCUDBOptions",
    "TCUDriver",
    "TCUOptimizer",
    "TCUPattern",
    "TransformCost",
    "best_transform_cost",
    "comparison_matrix",
    "cpu_transform_cost",
    "estimate_blocked",
    "estimate_cpu_baseline",
    "estimate_dense",
    "estimate_gpu_baseline",
    "estimate_sparse",
    "generate_program",
    "gpu_transform_cost",
    "grouped_matrix",
    "match_pattern",
    "run_feasibility_test",
    "tuple_matrix",
    "union_key_domain",
]

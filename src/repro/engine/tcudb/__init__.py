"""TCUDB: the paper's primary contribution.

Query compiler (pattern + hybrid lowering onto the TensorProgram IR),
query optimizer (Figure 6, run per operator), code generator (CUDA C
emission per operator) and program driver (TCU operator library).
"""

from repro.engine.tcudb.codegen import (
    GeneratedProgram,
    OpEmission,
    emit_tensor_program,
    generate_program,
)
from repro.engine.tcudb.cost import (
    OperatorGeometry,
    PlanCost,
    Strategy,
    estimate_blocked,
    estimate_cpu_baseline,
    estimate_dense,
    estimate_gpu_baseline,
    estimate_sparse,
)
from repro.engine.tcudb.driver import (
    CompositeKey,
    OperandStructure,
    PreparedAggSide,
    PreparedJoin,
    TCUDriver,
    build_coo_operands,
)
from repro.engine.tcudb.distributed import (
    STAGE_SHARD_MERGE,
    DistributedEngine,
)
from repro.engine.tcudb.engine import TCUDBEngine, TCUDBOptions
from repro.engine.tcudb.fuse import fuse_program
from repro.engine.tcudb.feasibility import (
    FeasibilityReport,
    run_feasibility_test,
)
from repro.engine.tcudb.lower import LoweredQuery, lower_hybrid, lower_query
from repro.engine.tcudb.ops import BatchedGemm, FallbackRequired
from repro.engine.tcudb.program import (
    OperatorCost,
    ProgramContext,
    TensorProgram,
)
from repro.engine.tcudb.optimizer import OptimizerDecision, TCUOptimizer
from repro.engine.tcudb.patterns import (
    AggregateSpec,
    MatchFailure,
    PatternKind,
    TCUPattern,
    match_pattern,
)
from repro.engine.tcudb.transform import (
    KeyDomain,
    SideMatrix,
    TransformCost,
    best_transform_cost,
    comparison_matrix,
    cpu_transform_cost,
    gpu_transform_cost,
    grouped_matrix,
    tuple_matrix,
    union_key_domain,
)

__all__ = [
    "AggregateSpec",
    "BatchedGemm",
    "CompositeKey",
    "DistributedEngine",
    "FallbackRequired",
    "FeasibilityReport",
    "GeneratedProgram",
    "KeyDomain",
    "LoweredQuery",
    "MatchFailure",
    "OpEmission",
    "OperandStructure",
    "OperatorCost",
    "OperatorGeometry",
    "OptimizerDecision",
    "PatternKind",
    "PlanCost",
    "PreparedAggSide",
    "PreparedJoin",
    "ProgramContext",
    "STAGE_SHARD_MERGE",
    "SideMatrix",
    "Strategy",
    "TCUDBEngine",
    "TCUDBOptions",
    "TCUDriver",
    "TCUOptimizer",
    "TCUPattern",
    "TensorProgram",
    "TransformCost",
    "best_transform_cost",
    "build_coo_operands",
    "comparison_matrix",
    "cpu_transform_cost",
    "emit_tensor_program",
    "estimate_blocked",
    "estimate_cpu_baseline",
    "estimate_dense",
    "estimate_gpu_baseline",
    "estimate_sparse",
    "fuse_program",
    "generate_program",
    "gpu_transform_cost",
    "grouped_matrix",
    "lower_hybrid",
    "lower_query",
    "match_pattern",
    "run_feasibility_test",
    "tuple_matrix",
    "union_key_domain",
]

"""Cost estimation for TCU-accelerated plans (Section 4.2.2).

A plan's estimated cost is DT_op + DM_op + CT_op:

* DT_op / DM_op come from :mod:`repro.engine.tcudb.transform` (Equations
  1 and 2, CPU vs GPU-assisted transformation);
* CT_op follows Equation (3) at the precision's peak rate, replaced by
  the measured blocked/pipelined rate for out-of-memory inputs and by
  the tile-stream rate scaled by input density for sparse inputs.

The same geometry also prices the conventional GPU (YDB hash-join) and
CPU plans so the optimizer can run Figure 6's final comparison.  All
estimators work from :class:`OperatorGeometry` — plain numbers — so
benchmarks can project paper-scale configurations without materializing
data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.engine.tcudb.transform import (
    TransformCost,
    best_transform_cost,
)
from repro.hardware.gpu import GPUDevice
from repro.hardware.profiles import HostProfile
from repro.tensor.matmul import msplit_gemm_seconds
from repro.tensor.precision import Precision
from repro.tensor.tiled import estimate_tile_pairs


class Strategy(enum.Enum):
    DENSE = "dense"  # one cuBLAS/WMMA GEMM (TCUJoin)
    BLOCKED = "blocked"  # MSplitGEMM streaming GEMM
    SPARSE = "sparse"  # TCU-SpMM over non-empty 16x16 tiles


@dataclass(frozen=True)
class OperatorGeometry:
    """Dimensions and cardinalities of one TCU operator invocation."""

    g1: int  # rows of the left matrix (tuples or group keys)
    g2: int  # rows of the right matrix
    k: int  # join-key domain size (inner dimension)
    nnz_left: int  # stored entries of the left matrix
    nnz_right: int
    n_tuples: int  # qualifying records scanned to build the matrices
    raw_bytes: float  # raw column bytes the GPU-assisted path must ship
    result_rows: int  # rows the operator emits (pairs or non-empty groups)
    n_matmuls: int = 1  # aggregates may need value + count products
    needs_nonzero: bool = True  # join patterns extract nonzero coordinates
    # Value-filled matrices (SUM aggregates) scatter with duplicate
    # accumulation — atomic conflicts make each record ~4x costlier to
    # place than an indicator fill.
    fill_scale: float = 1.0
    # How many times the operand matrices are rebuilt from the base
    # tuples.  The fused BatchedGemm builds the indicator structure once
    # (1) and stacks per-aggregate values; the unfused per-aggregate
    # loop rebuilds both operands for every grid (n_matmuls).
    fill_passes: int = 1

    def fill_tuples(self) -> int:
        """Qualifying-record placements the transformation must perform."""
        return int(self.n_tuples * self.fill_scale * self.fill_passes)

    @property
    def density_left(self) -> float:
        cells = self.g1 * self.k
        return self.nnz_left / cells if cells else 0.0

    @property
    def density_right(self) -> float:
        cells = self.g2 * self.k
        return self.nnz_right / cells if cells else 0.0

    @property
    def min_density(self) -> float:
        return min(self.density_left, self.density_right)

    def matrix_bytes(self, precision: Precision) -> float:
        per = precision.bytes_per_element
        return (self.g1 * self.k + self.g2 * self.k) * per

    def output_bytes(self) -> float:
        # fp32/int32 accumulator grid.
        return self.g1 * self.g2 * 4.0

    def working_set_bytes(self, precision: Precision) -> float:
        return self.matrix_bytes(precision) + self.output_bytes()


@dataclass(frozen=True)
class PlanCost:
    """Cost breakdown of one candidate TCU plan."""

    strategy: Strategy
    precision: Precision
    transform: TransformCost
    compute_seconds: float  # CT_op
    result_seconds: float  # nonzero + result transfer
    n_blocks: int = 1

    @property
    def total(self) -> float:
        return self.transform.total + self.compute_seconds + self.result_seconds


def _result_seconds(
    device: GPUDevice, geo: OperatorGeometry
) -> float:
    """nonzero() extraction over the result grid plus the (pipelined)
    transfer of result rows back to the host."""
    seconds = 0.0
    if geo.needs_nonzero:
        seconds += device.cuda.nonzero_seconds(geo.g1 * geo.g2, geo.result_rows)
    seconds += device.d2h_seconds(geo.result_rows * 8.0, overlap=True)
    return seconds


def estimate_dense(
    device: GPUDevice,
    host: HostProfile,
    geo: OperatorGeometry,
    precision: Precision,
    allow_gpu_transform: bool = True,
) -> PlanCost:
    """Single in-memory GEMM (the TCUJoin fast path)."""
    matrix_bytes = geo.matrix_bytes(precision)
    gpu_feasible = allow_gpu_transform and device.memory.fits(
        geo.raw_bytes + geo.working_set_bytes(precision)
    )
    transform = best_transform_cost(
        host, device, geo.fill_tuples(), geo.raw_bytes,
        matrix_bytes, gpu_feasible,
    )
    compute = (
        device.tcu.matmul_seconds(geo.g1, geo.g2, geo.k, precision)
        * geo.n_matmuls
    )
    return PlanCost(
        strategy=Strategy.DENSE,
        precision=precision,
        transform=transform,
        compute_seconds=compute,
        result_seconds=_result_seconds(device, geo),
    )


def estimate_blocked(
    device: GPUDevice,
    host: HostProfile,
    geo: OperatorGeometry,
    precision: Precision,
) -> PlanCost:
    """MSplitGEMM streaming GEMM for working sets beyond device memory.

    The transformation must run on the CPU (matrices cannot be device
    resident in full); submatrix transfers overlap with compute inside
    ``msplit_gemm_seconds``.
    """
    from repro.engine.tcudb.transform import cpu_transform_cost

    matrix_bytes = geo.matrix_bytes(precision)
    transform = cpu_transform_cost(
        host, device, geo.fill_tuples(), 0.0
    )
    # Matrix traffic is part of the pipelined GEMM below, so the CPU
    # transform here charges only the host-side fill.
    compute, plan = msplit_gemm_seconds(
        device, geo.g1, geo.g2, geo.k, precision,
        memory_budget=device.memory.available * 0.9,
    )
    compute += matrix_bytes / device.profile.pcie_bandwidth
    compute *= geo.n_matmuls
    return PlanCost(
        strategy=Strategy.BLOCKED,
        precision=precision,
        transform=transform,
        compute_seconds=compute,
        result_seconds=_result_seconds(device, geo),
        n_blocks=plan.n_stages,
    )


def estimate_sparse(
    device: GPUDevice,
    host: HostProfile,
    geo: OperatorGeometry,
    precision: Precision,
    tile_pairs: float | None = None,
    allow_gpu_transform: bool = True,
) -> PlanCost:
    """TCU-SpMM: CSR build + 16x16 tiling + MMA over non-empty tiles.

    Costs follow Section 4.2.4: the dense compute cost scaled by input
    density (realized here by charging only surviving tile pairs), plus a
    linear scan to construct/partition/filter the inputs.
    """
    if tile_pairs is None:
        tile_pairs = estimate_tile_pairs(
            (geo.g1, geo.k), geo.nnz_left, (geo.k, geo.g2), geo.nnz_right
        )
    # Sparse operands ship in CSR, not dense: nnz * (value + index).
    csr_bytes = (geo.nnz_left + geo.nnz_right) * (
        precision.bytes_per_element + 4.0
    )
    gpu_feasible = allow_gpu_transform and device.memory.fits(
        geo.raw_bytes + csr_bytes * 3
    )
    transform = best_transform_cost(
        host, device, geo.fill_tuples(), geo.raw_bytes,
        csr_bytes, gpu_feasible,
    )
    build = device.cuda.gather_seconds(geo.nnz_left + geo.nnz_right)
    compute = (
        device.tcu.spmm_seconds(int(tile_pairs), precision) * geo.n_matmuls
        + build
    )
    return PlanCost(
        strategy=Strategy.SPARSE,
        precision=precision,
        transform=transform,
        compute_seconds=compute,
        result_seconds=_result_seconds(device, geo),
    )


# -- non-GEMM operator estimates (TensorProgram per-operator costing) --------- #


def estimate_mask_apply(device: GPUDevice, rows: int,
                        n_predicates: int, fused: bool = False) -> float:
    """CUDA-core cost of a ``MaskApply``: one gather-rate pass over the
    masked intermediate per predicate.  A fused epilogue (the mask
    evaluated inside the GEMM result hook instead of a separate grid
    pass) charges a single pass regardless of the conjunct count — the
    predicates ride the extraction kernel's existing traversal."""
    if fused:
        return device.cuda.gather_seconds(max(rows, 1))
    return device.cuda.gather_seconds(max(rows, 1) * max(n_predicates, 1))


def estimate_fold_step(host: HostProfile, device: GPUDevice,
                       fact_rows: int, dim_rows: int,
                       chained_fill_s: float) -> float:
    """One ``FoldJoin`` chained-join step: host fill of both sides, the
    per-qualifying-record matrix->table conversion, and the device-side
    gather of the folded columns."""
    return (
        fact_rows * chained_fill_s
        + (fact_rows + dim_rows) * host.fill_elem_s
        + device.cuda.gather_seconds(fact_rows)
    )


def estimate_fold_chain(host: HostProfile, device: GPUDevice,
                        step_sizes: list[tuple[int, int]],
                        chained_fill_s: float) -> float:
    """One fused ``FoldJoinChain``: a single ledger entry whose seconds
    are exactly the sum of the sequential per-step fold estimates.

    ``step_sizes`` holds one ``(fact_rows, dim_rows)`` pair per folded
    dimension, with ``fact_rows`` the survivor count *entering* that
    step.  The fusion is a host-side rewrite — the simulated kernel
    stream (fills, conversions, gathers) is unchanged — so charging the
    exact sequential sum keeps fused programs' simulated time
    byte-identical to the unfused chain.
    """
    return sum(
        estimate_fold_step(host, device, fact_rows, dim_rows, chained_fill_s)
        for fact_rows, dim_rows in step_sizes
    )


def estimate_shard_merge(device: GPUDevice, grid_cells: int,
                         n_shards: int, n_grids: int = 1) -> float:
    """Allreduce-style merge of per-shard aggregation grids.

    Models the ring-allreduce traffic of data-parallel TQP: every shard
    ships its full fp32 grid across the interconnect (grid bytes x shard
    count over the PCIe/NVLink-class bandwidth of the device profile)
    and the destination folds it in with one add pass per incoming grid.
    Single-shard execution merges nothing and costs nothing.
    """
    if n_shards <= 1:
        return 0.0
    grid_bytes = float(max(grid_cells, 1)) * 4.0 * max(n_grids, 1)
    transfer = grid_bytes * n_shards / device.profile.pcie_bandwidth
    fold = device.cuda.gather_seconds(
        max(grid_cells, 1) * max(n_grids, 1) * (n_shards - 1)
    )
    return transfer + fold


def estimate_physical_stage(host: HostProfile, input_rows: int,
                            output_rows: int, n_joins: int) -> float:
    """Host cost of a hybrid ``PhysicalStage`` pre-join: hash passes over
    the scanned inputs plus pair materialization per join level."""
    return (
        input_rows * host.hash_row_s * 0.5
        + output_rows * host.join_pair_s * max(n_joins, 1)
    )


# -- baseline plan estimates (Figure 6's final comparison) -------------------- #


def estimate_gpu_baseline(
    device: GPUDevice,
    geo: OperatorGeometry,
    pairs: int,
    grouped: bool,
) -> float:
    """YDB-style hash-join (+ group-by) plan on the CUDA cores."""
    seconds = (
        device.h2d_seconds(geo.raw_bytes)
        + device.cuda.hash_build_seconds(geo.g2 if geo.g2 > 1 else geo.n_tuples // 2)
        + device.cuda.hash_probe_seconds(geo.n_tuples)
        + device.cuda.join_materialize_seconds(pairs)
    )
    if grouped:
        seconds += device.cuda.groupby_seconds(pairs, geo.result_rows)
    seconds += device.d2h_seconds(geo.result_rows * 8.0, overlap=True)
    return seconds


def estimate_cpu_baseline(
    host: HostProfile,
    geo: OperatorGeometry,
    pairs: int,
    grouped: bool,
) -> float:
    """MonetDB-style plan on the host cores."""
    seconds = (
        geo.n_tuples * host.hash_row_s * 0.5 + pairs * host.join_pair_s
    )
    if grouped:
        seconds += pairs * host.agg_pair_s
    return seconds


def candidate_precisions(choice_precision: Precision) -> list[Precision]:
    """Precisions the adaptive mixed-precision optimizer evaluates: the
    most compact feasible one plus every wider TCU type (a wider type is
    always feasible when a narrower one is)."""
    order = [Precision.INT4, Precision.INT8, Precision.FP16]
    index = order.index(choice_precision)
    return order[index:]

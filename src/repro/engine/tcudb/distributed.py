"""Data-parallel distributed execution: one TensorProgram, N shards.

This is TQP's multi-device architecture ("Query Processing on Tensor
Computation Runtimes", He et al. 2022) mapped onto our driver: the fact
table is row-partitioned per shard (:class:`~repro.storage.shard.
ShardedCatalog`), dimensions are broadcast, every shard runs the *same*
compiled program against its partition, and per-shard partials merge
with an explicit allreduce-style reduction.  Because shard fan-out is
the contract PR 5/6 already built for chunks —
``A@B.T == Σ_s A_s@B_s.T`` and mergeable ``StreamAggregator`` partials
— the merge step reuses that algebra one level up.

Shard-local execution never re-parses or re-binds: a shard bound is the
coordinator's :class:`~repro.sql.binder.BoundQuery` with the fact
binding's ``BoundTable`` swapped for the shard partition (shard
catalogs are schema-identical, so every resolution artifact — column
dtypes, predicate classification, substituted parameter literals — is
shared verbatim).

Merge routes, chosen per query:

``grid-allreduce``
    Aggregate/group-by queries whose program ends in
    ``Gemm -> GridAggregate -> Decode``.  The coordinator compiles ONE
    program; each shard executes the operator *prefix* (scan/fold/fill/
    GEMM) against its shard-local bound, producing aggregation-grid
    partials in its own composite-key space.  The coordinator re-encodes
    every shard grid into the union label space (per-column sorted label
    union; the union equals the single-node label set because every
    qualifying row lives on exactly one shard) and folds the grids in
    **ascending shard order** — the documented deterministic merge order
    that keeps repeated distributed runs bit-identical — then runs the
    program *suffix* (GridAggregate + fused HAVING epilogue + Decode)
    once over the merged grids.

``partial-rows``
    Aggregates the grid path cannot carry (MIN/MAX are beyond TCU
    expressiveness; per-shard cost/feasibility rejections).  Each shard
    runs a rewritten partial query (group keys + SUM partials for
    SUM/AVG, MIN/MAX partials, COUNT(*)); the coordinator re-groups the
    concatenated partial rows with the ``StreamAggregator`` merge
    algebra: sums/counts add, min/max fold, AVG finalizes as
    Σsum/Σcount.  A shard with zero qualifying rows contributes an
    identity partial — its COUNT=0 row is dropped before the fold so it
    can neither fabricate a group nor corrupt a MIN with a spurious 0.

``concat``
    Non-aggregate queries without LIMIT: per-shard rows concatenate in
    shard order; ORDER BY re-applies globally on the coordinator.

``single-node``
    Queries that never read the partitioned fact table (replicated
    dimensions would be counted once per shard), self-joins of the fact
    table (shard-local joins lose cross-shard pairs), ANALYTIC mode, and
    non-aggregate LIMIT queries (which rows survive a tie at the LIMIT
    boundary depends on physical row order, which sharding permutes).

Determinism: the merge folds shards in ascending shard index on the
coordinator thread, so repeated distributed runs are bit-identical.
Versus single-shard execution the results are exact whenever per-group
sums are exact in fp64 (integer-valued measures, e.g. the SSB data);
otherwise they are tolerance-equal under floating-point reassociation —
the same contract chunk accumulation already documents.

Cost model: per-shard simulated time falls out of the ordinary per-op
charging over ``1/N``-row operands; the coordinator takes the
**stage-wise maximum** across shards (shards run in parallel), then
charges the allreduce via
:func:`~repro.engine.tcudb.cost.estimate_shard_merge` — visible as an
``allreduce`` entry in the per-op ledger and a note on the program
listing of every distributed result.
"""

from __future__ import annotations

import threading
from dataclasses import replace

import numpy as np

from repro.common.errors import (
    ExecutionError,
    QueryCancelled,
    ResilienceExhausted,
)
from repro.common.faults import (
    SITE_CACHE_GET,
    SITE_GRID_ACCUMULATE,
    SITE_SHARD_EXECUTE,
    checksum_mismatch,
    corrupt_array,
    fault_point,
    suppress,
)
from repro.common.timing import TimingBreakdown
from repro.engine.base import Engine, ExecutionMode, QueryResult
from repro.engine.cache import ProgramCache
from repro.engine.parallel import (
    RetryPolicy,
    call_with_retries,
    is_retryable,
    speculative_map,
)
from repro.engine.physical import (
    StreamGroupEval,
    apply_order_limit,
    build_result_table,
    combine_group_codes,
)
from repro.engine.tcudb.cost import estimate_shard_merge
from repro.engine.tcudb.driver import CompositeKey, PreparedAggSide
from repro.engine.tcudb.engine import TCUDBEngine, TCUDBOptions
from repro.engine.tcudb.lower import LoweredQuery, lower_hybrid, lower_query
from repro.engine.tcudb.ops import (
    AggOperandsValue,
    FallbackRequired,
    Gemm,
    GridAggregate,
    ProductValue,
)
from repro.engine.tcudb.program import OperatorCost, ProgramContext
from repro.hardware.gpu import GPUDevice
from repro.hardware.profiles import HostProfile
from repro.sql.ast_nodes import (
    AggregateCall,
    ColumnRef,
    SelectItem,
    walk_predicate_exprs,
)
from repro.sql.binder import COMPUTED_GROUP_BINDING, BoundQuery, BoundTable
from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.shard import ShardedCatalog
from repro.storage.table import Table

#: Ledger stage name of the allreduce merge charge.
STAGE_SHARD_MERGE = "shard_merge"


class _FanoutRecorder:
    """Per-query ledger of recovery events during one shard fan-out.

    Worker threads report into it concurrently; the coordinator folds
    it into ``extra["resilience"]`` after the merge.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.retries: dict[int, list[dict]] = {}
        self.recovered: list[dict] = []
        self.speculated: list[int] = []

    def record_retries(self, index: int, log: list[dict]) -> None:
        with self._lock:
            self.retries[index] = log

    def record_recovery(self, index: int, error: BaseException) -> None:
        with self._lock:
            self.recovered.append({
                "shard": index, "error": type(error).__name__,
            })

    def record_speculation(self, index: int) -> None:
        with self._lock:
            self.speculated.append(index)

    @property
    def eventful(self) -> bool:
        with self._lock:
            return bool(self.retries or self.recovered or self.speculated)

    def summary(self) -> dict:
        with self._lock:
            return {
                "retries": {
                    shard: list(log)
                    for shard, log in sorted(self.retries.items())
                },
                "attempts": 1 + sum(len(log)
                                    for log in self.retries.values()),
                "recovered": list(self.recovered),
                "speculated": sorted(self.speculated),
            }


class DistributedEngine(Engine):
    """N-shard data-parallel TCUDB with an allreduce merge step."""

    name = "TCUDB-dist"

    def __init__(
        self,
        catalog: Catalog | ShardedCatalog,
        shards: int | None = None,
        fact: str | None = None,
        partition_policy: str = "hash",
        partition_key: str | None = None,
        device: GPUDevice | None = None,
        host: HostProfile | None = None,
        mode: ExecutionMode = ExecutionMode.REAL,
        options: TCUDBOptions | None = None,
        program_cache: ProgramCache | None = None,
        retry_policy: RetryPolicy | None = None,
        straggler_timeout_s: float | None = None,
    ):
        if isinstance(catalog, ShardedCatalog):
            sharded = catalog
            catalog = sharded.base
        else:
            sharded = ShardedCatalog.partition(
                catalog, shards=shards, fact=fact,
                policy=partition_policy, key=partition_key,
            )
        super().__init__(catalog, mode)
        self.sharded = sharded
        self.n_shards = sharded.n_shards
        self.options = options if options is not None else TCUDBOptions()
        self.program_cache = program_cache
        # Per-shard recovery: bounded retry with backoff for retryable
        # failures, optional straggler hedging (host wall-clock seconds
        # before a slow shard is speculatively re-executed).
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy())
        self.straggler_timeout_s = straggler_timeout_s
        # The coordinator node: runs single-node routes, compiles the
        # shared program, and executes the post-merge suffix.  Its cache
        # entries (and the distributed program entries below) carry a
        # namespace so they never collide with a plain single-node
        # engine sharing the same ProgramCache on the same SQL.
        self.node = TCUDBEngine(
            catalog, device=device, host=host, mode=mode,
            options=replace(self.options, cache_namespace="dist:coord"),
            program_cache=program_cache,
        )
        # One engine per shard over its shard-local catalog.  Morsel
        # workers are pinned to 1 — the shard fan-out *is* the
        # parallelism — and every shard namespaces its cache entries:
        # shard catalogs have distinct fingerprints (each holds its own
        # fact partition), so un-namespaced shard engines sharing the
        # coordinator's cache would evict each other's entries on every
        # execution (the fingerprint guard reads a mismatch as stale).
        self.shard_engines = [
            TCUDBEngine(
                sharded.shard(i), device=self.node.device, host=self.node.host,
                mode=mode,
                options=replace(self.options, workers=1,
                                cache_namespace=f"dist:shard{i}"),
                program_cache=program_cache,
            )
            for i in range(self.n_shards)
        ]
        self.cancel_token = None

    # -- routing --------------------------------------------------------- #

    def execute_bound(self, bound: BoundQuery) -> QueryResult:
        self.node.cancel_token = self.cancel_token
        for engine in self.shard_engines:
            engine.cancel_token = self.cancel_token
        fact_bindings = sum(
            bt.table.name.lower() == self.sharded.fact for bt in bound.tables
        )
        if self.n_shards <= 1:
            return self._single_node(bound, "single shard configured")
        if fact_bindings == 0:
            # Only replicated tables: every shard sees identical rows,
            # so a fan-out would multiply the result N times over.
            return self._single_node(
                bound, "query does not read the partitioned fact table"
            )
        if fact_bindings > 1:
            # A shard-local self-join of the fact misses cross-shard
            # row pairs.
            return self._single_node(
                bound, "self-join of the partitioned fact table"
            )
        if self.mode != ExecutionMode.REAL:
            return self._single_node(bound, "analytic mode")
        if bound.has_aggregates or bound.group_by:
            return self._degradable(bound, "aggregate", self._execute_aggregate)
        if bound.limit is not None:
            # Which rows survive a tie at the LIMIT boundary depends on
            # physical row order, which partitioning permutes.
            return self._single_node(
                bound, "LIMIT on a non-aggregate query is order-sensitive"
            )
        return self._degradable(bound, "concat", self._execute_concat)

    def _degradable(self, bound: BoundQuery, route: str, fn) -> QueryResult:
        """Run a fan-out route with the whole-query degradation rung.

        Per-shard retry and shard-level re-execution live inside
        :meth:`_resilient_fanout`; if a retryable failure still escapes
        (e.g. a shard engine broken beyond its partition), the query is
        re-routed single-node on the coordinator with injection
        suppressed — correct rows, no shard parallelism.  Cancellation
        and non-retryable (user) errors propagate unchanged; if the
        last rung fails too, :class:`ResilienceExhausted` carries the
        final cause.
        """
        try:
            return fn(bound)
        except QueryCancelled:
            raise
        except Exception as error:
            if not is_retryable(error):
                raise
            try:
                with suppress():
                    result = self._single_node(
                        bound,
                        f"degraded from {route} fan-out after "
                        f"{type(error).__name__}",
                    )
            except QueryCancelled:
                raise
            except Exception as final:
                raise ResilienceExhausted(
                    f"retries and single-node degradation both failed "
                    f"for the {route} route: {final}"
                ) from final
            result.extra["resilience"] = {
                "route": "single-node",
                "degraded_from": route,
                "cause": f"{type(error).__name__}: {error}",
            }
            return result

    def _single_node(self, bound: BoundQuery, reason: str) -> QueryResult:
        result = self.node.execute_bound(bound)
        result.engine = self.name
        result.extra["distributed"] = {
            "route": "single-node", "reason": reason,
            "shards": 1, "policy": self.sharded.policy,
        }
        return result

    def _shard_bound(self, bound: BoundQuery, index: int) -> BoundQuery:
        """The shard-local execution bound: same resolution, same
        (already parameter-substituted) predicates, fact binding swapped
        for the shard partition."""
        catalog = self.sharded.shard(index)
        tables = [
            BoundTable(bt.binding, catalog.get(bt.table.name))
            if bt.table.name.lower() == self.sharded.fact else bt
            for bt in bound.tables
        ]
        return replace(bound, tables=tables)

    def _fanout(self, fn, recorder: _FanoutRecorder):
        """Run ``fn(shard_index)`` for every shard with per-shard
        recovery; results come back in ascending shard order — the
        deterministic merge order every reduction below relies on.

        Recovery ladder, per shard: (1) bounded retry with exponential
        backoff + jitter for retryable failures (transient shard
        errors, unavailable backends, corrupt partials); (2) one
        fault-suppressed re-execution of just this shard's partition —
        surviving shards' partials are untouched, only the failed
        partition recomputes.  Straggler hedging
        (``straggler_timeout_s``) speculatively re-executes a slow
        shard on the consuming thread, first result wins.  Every event
        lands in *recorder* for ``extra["resilience"]``.
        """
        token = self.cancel_token
        policy = self.retry_policy

        def run_one(index: int):
            log: list[dict] = []

            def attempt():
                fault_point(SITE_SHARD_EXECUTE, shard=index)
                return fn(index)

            try:
                result = call_with_retries(
                    attempt, policy, token=token, key=index,
                    attempts_log=log,
                )
            except QueryCancelled:
                raise
            except Exception as error:
                if not is_retryable(error):
                    raise
                # Retries exhausted: re-execute only this shard's
                # partition with injection suppressed (thread-local, so
                # sibling shards keep their plans).  A real —
                # non-injected — persistent failure still raises here
                # and escalates to the whole-query single-node rung.
                with suppress():
                    result = fn(index)
                recorder.record_recovery(index, error)
            if log:
                recorder.record_retries(index, log)
            return result

        return list(speculative_map(
            run_one, range(self.n_shards), workers=self.n_shards,
            token=token, straggler_timeout_s=self.straggler_timeout_s,
            on_speculate=recorder.record_speculation,
        ))

    def _attach_resilience(self, result: QueryResult,
                           recorder: _FanoutRecorder) -> None:
        if recorder.eventful:
            summary = recorder.summary()
            summary["route"] = result.extra["distributed"]["route"]
            summary["retry_policy"] = {
                "max_attempts": self.retry_policy.max_attempts,
                "base_backoff_s": self.retry_policy.base_backoff_s,
                "multiplier": self.retry_policy.multiplier,
            }
            result.extra["resilience"] = summary

    # -- grid-allreduce route -------------------------------------------- #

    def _execute_aggregate(self, bound: BoundQuery) -> QueryResult:
        lowered = self._lower_shared(bound)
        if isinstance(lowered, LoweredQuery):
            split = self._split_program(lowered)
            if split is not None:
                try:
                    return self._execute_grid(bound, lowered, *split)
                except FallbackRequired as failure:
                    if failure.kind == "pattern" and not lowered.hybrid:
                        # Data-dependent shape problem (e.g. duplicate
                        # dimension keys — dimension data, so every
                        # shard sees it): retry through hybrid lowering
                        # before abandoning the grid path.
                        hybrid = lower_hybrid(
                            bound, self.mode, fusion=self.options.fusion,
                            streaming=self.options.stream_prestage,
                        )
                        if isinstance(hybrid, LoweredQuery):
                            split = self._split_program(hybrid)
                            if split is not None:
                                try:
                                    return self._execute_grid(
                                        bound, hybrid, *split
                                    )
                                except FallbackRequired:
                                    pass
        return self._execute_partials(bound)

    @staticmethod
    def _bound_key(bound: BoundQuery) -> tuple:
        """Cache key capturing the *executed* query, literals included.

        ``bound.statement`` alone is not enough: a prepared execution's
        statement still spells ``@parameter`` markers while the bound's
        predicate lists carry this call's substituted literals — which
        the lowered program embeds.  Key on both.
        """
        return (
            repr(bound.statement),
            tuple(sorted(
                (binding, tuple(repr(p) for p in conjuncts))
                for binding, conjuncts in bound.filters.items()
            )),
            tuple(repr(p) for p in bound.residuals),
            tuple(repr(p) for p in bound.having),
            tuple(repr(item.expr) for item in bound.select_items),
            tuple(repr(item.expr) for item in bound.order_by),
            tuple(sorted(
                (key, repr(expr))
                for key, expr in bound.group_exprs.items()
            )),
        )

    def _lower_shared(self, bound: BoundQuery):
        """Compile the ONE program all shards execute (cached when a
        ProgramCache is attached)."""
        cache = self.program_cache
        key = fingerprint = None
        if cache is not None:
            key = ("dist-program", self._bound_key(bound),
                   self.node._cache_options_key())
            fingerprint = self.catalog.fingerprint()
            cached = cache.get(key, fingerprint)
            if cached is not None:
                try:
                    fault_point(SITE_CACHE_GET)
                    return cached
                except QueryCancelled:
                    raise
                except Exception:
                    # Poisoned template: evict and recompile fresh
                    # below rather than re-serving the bad entry.
                    cache.poison(key)
        lowered = lower_query(bound, self.mode, fusion=self.options.fusion,
                              streaming=self.options.stream_prestage)
        if cache is not None:
            cache.put(key, fingerprint, lowered)
        return lowered

    @staticmethod
    def _split_program(lowered: LoweredQuery):
        """Split the program at its GridAggregate: the prefix runs per
        shard, the suffix runs once over the merged grids.  ``None``
        when the program has no mergeable grid stage (e.g. an operator
        between GEMM and grid aggregation) — callers then take the
        partial-rows route."""
        ops = lowered.program.ops
        for index, op in enumerate(ops):
            if isinstance(op, GridAggregate):
                gemm = next((o for o in ops[:index] if o.id == op.input), None)
                if isinstance(gemm, Gemm):
                    return ops[:index], ops[index:], gemm
                return None
        return None

    def _execute_grid(self, bound: BoundQuery, lowered: LoweredQuery,
                      prefix, suffix, gemm: Gemm) -> QueryResult:
        token = self.cancel_token

        def run_shard(index: int) -> ProgramContext:
            engine = self.shard_engines[index]
            ctx = ProgramContext(
                bound=self._shard_bound(bound, index), device=engine.device,
                host=engine.host, mode=self.mode, options=engine.options,
                optimizer=engine.optimizer, driver=engine.driver,
                cancel_token=token,
            )
            for op in prefix:
                if token is not None:
                    token.raise_if_cancelled()
                ctx.values[op.id] = op.execute(ctx)
            self._verify_partial(ctx, gemm, index)
            return ctx

        recorder = _FanoutRecorder()
        shard_ctxs = self._fanout(run_shard, recorder)
        products = [ctx.value(gemm.id) for ctx in shard_ctxs]
        merged, grid_cells, n_grids = self._merge_products(products)

        # Coordinator context: stage-wise max of the shard breakdowns
        # (shards run in parallel), the critical shard's ledger, then
        # the allreduce charge and the suffix operators.
        ctx = ProgramContext(
            bound=bound, device=self.node.device, host=self.node.host,
            mode=self.mode, options=self.node.options,
            optimizer=self.node.optimizer, driver=self.node.driver,
            cancel_token=token,
        )
        critical = max(shard_ctxs, key=lambda c: c.breakdown.total)
        for stage in sorted({
            s for c in shard_ctxs for s in c.breakdown.stages
        }):
            ctx.breakdown.add(
                stage, max(c.breakdown.get(stage) for c in shard_ctxs)
            )
        ctx.op_costs.extend(critical.op_costs)
        ctx.decisions.update(critical.decisions)
        merge_seconds = estimate_shard_merge(
            self.node.device, grid_cells, self.n_shards, n_grids
        )
        ctx.breakdown.add(STAGE_SHARD_MERGE, merge_seconds)
        ctx.op_costs.append(OperatorCost(
            op_id="allreduce", kind=STAGE_SHARD_MERGE,
            stage=STAGE_SHARD_MERGE, seconds=merge_seconds,
        ))
        ctx.values[gemm.id] = merged
        ctx.values[gemm.input] = merged.operands  # for program emission
        output = None
        for op in suffix:
            if token is not None:
                token.raise_if_cancelled()
            output = op.execute(ctx)
            ctx.values[op.id] = output
        result = self.node._finalize(bound, lowered, ctx, output)
        result.engine = self.name
        self._annotate(result, "grid-allreduce", merge_seconds,
                       executed_by="TCU-dist")
        self._attach_resilience(result, recorder)
        return result

    @staticmethod
    def _verify_partial(ctx: ProgramContext, gemm: Gemm, index: int) -> None:
        """Checksum-guard one shard's grid partial before it is shipped.

        The checksums (per-grid sums) are captured from the honest
        arrays; the partial then passes through the
        ``grid.accumulate`` corruption point — so an injected
        perturbation flows exactly where a real bit-flip would — and is
        re-verified.  A mismatch raises the retryable
        :class:`~repro.common.errors.CorruptPartialError`, and the
        retry ladder recomputes this shard from scratch.
        """
        product = ctx.value(gemm.id)
        if (not isinstance(product, ProductValue)
                or product.grids is None or product.count_grid is None):
            return
        arrays = [*product.grids, product.count_grid]
        checksums = [float(np.sum(a)) for a in arrays]
        shipped = [corrupt_array(SITE_GRID_ACCUMULATE, a, shard=index)
                   for a in arrays]
        ctx.values[gemm.id] = replace(
            product, grids=shipped[:-1], count_grid=shipped[-1]
        )
        for expected, array in zip(checksums, shipped):
            actual = float(np.sum(array))
            if (not np.isfinite(actual)
                    or abs(actual - expected) > 1e-6 * max(1.0, abs(expected))):
                checksum_mismatch(SITE_GRID_ACCUMULATE, shard=index)

    def _merge_products(self, products: list[ProductValue]):
        """Fold per-shard grid partials into the union composite space.

        Returns ``(merged ProductValue, grid cells, grid count)`` for
        the allreduce cost charge.  Shards whose operands were empty
        contribute the identity (they are skipped); all-empty shards
        collapse to an empty product, from which GridAggregate
        synthesizes the correct empty/zero-row output.
        """
        live = [p for p in products if not p.empty]
        if not live:
            return ProductValue(operands=products[0].operands,
                                empty=True), 0, 0
        if any(p.grids is None or p.count_grid is None for p in live):
            raise FallbackRequired(
                "shard produced a grid-less product partial", kind="cost"
            )
        first = live[0].operands
        left_side, row_maps = self._merge_side(
            [p.operands.left for p in live]
        )
        right_side, col_maps = self._merge_side(
            [p.operands.right for p in live]
        )
        g1, g2 = left_side.g, right_side.g
        grids = [np.zeros((g1, g2)) for _ in first.specs]
        count_grid = np.zeros((g1, g2))
        # Deterministic allreduce: ascending shard order, coordinator
        # thread.  Row/col maps are injective (distinct shard composite
        # codes map to distinct union codes), so fancy-indexed += folds
        # every shard cell exactly once.
        for product, rows, cols in zip(live, row_maps, col_maps):
            cells = np.ix_(rows, cols)
            for merged_grid, grid in zip(grids, product.grids):
                merged_grid[cells] += grid
            count_grid[cells] += product.count_grid
        operands = AggOperandsValue(
            left=left_side, right=right_side, k=first.k,
            geometry=first.geometry, feasibility=first.feasibility,
            pairs=sum(p.operands.pairs for p in live),
            specs=first.specs, grouped=first.grouped,
        )
        merged = ProductValue(operands=operands, grids=grids,
                              count_grid=count_grid)
        return merged, g1 * g2, len(grids) + 1

    @staticmethod
    def _merge_side(sides: list[PreparedAggSide]):
        """Union composite-key space of one operand side, plus the
        injective shard-code -> union-code index map per shard.

        Per group column, the union of shard label sets equals the
        single-node label set (np.unique output is sorted, and every
        qualifying row lives on exactly one shard), so the merged grid
        has exactly the single-node geometry and group enumeration
        order.
        """
        if all(side.group is None for side in sides):
            merged = PreparedAggSide(
                keys_mapped=np.zeros(0, dtype=np.int64), group=None,
                values_per_agg=[], count_values=np.zeros(0),
                group_order=[],
            )
            return merged, [np.zeros(1, dtype=np.int64) for _ in sides]
        if any(side.group is None for side in sides):
            raise ExecutionError(
                "shard grid partials disagree on group structure"
            )
        n_columns = len(sides[0].group.labels)
        union_labels = [
            np.unique(np.concatenate(
                [side.group.labels[c] for side in sides]
            ))
            for c in range(n_columns)
        ]
        cardinality = 1
        for labels in union_labels:
            cardinality *= int(labels.size)
        maps = []
        for side in sides:
            codes = np.arange(side.group.cardinality, dtype=np.int64)
            decoded = side.group.decode(codes)
            mapped = np.zeros(codes.size, dtype=np.int64)
            for values, labels in zip(decoded, union_labels):
                mapped = mapped * labels.size + np.searchsorted(
                    labels, values
                )
            maps.append(mapped)
        merged = PreparedAggSide(
            keys_mapped=np.zeros(0, dtype=np.int64),
            group=CompositeKey(labels=union_labels,
                               codes=np.zeros(0, dtype=np.int64),
                               cardinality=cardinality),
            values_per_agg=[], count_values=np.zeros(0),
            group_order=list(sides[0].group_order),
        )
        return merged, maps

    # -- partial-rows route ---------------------------------------------- #

    @staticmethod
    def _aggregate_calls(bound: BoundQuery) -> list[AggregateCall]:
        calls: list[AggregateCall] = []
        for item in bound.select_items:
            for sub in item.expr.walk():
                if isinstance(sub, AggregateCall) and sub not in calls:
                    calls.append(sub)
        for predicate in bound.having:
            for expr in walk_predicate_exprs(predicate):
                for sub in expr.walk():
                    if isinstance(sub, AggregateCall) and sub not in calls:
                        calls.append(sub)
        return calls

    def _execute_partials(self, bound: BoundQuery) -> QueryResult:
        calls = self._aggregate_calls(bound)
        group_cols = list(bound.group_by)
        resolution = dict(bound.resolution)
        items: list[SelectItem] = []
        for i, col in enumerate(group_cols):
            if col.binding == COMPUTED_GROUP_BINDING:
                expr = bound.group_exprs[col.key]
            else:
                expr = ColumnRef(col.binding, col.column)
                resolution[expr] = col
            items.append(SelectItem(expr, alias=f"__g{i}"))
        # SUM partials carry SUM and AVG (AVG finalizes as Σsum/Σcount);
        # MIN/MAX fold; every COUNT derives from the shared __cnt.
        partial_alias: dict[AggregateCall, str | None] = {}
        for j, call in enumerate(calls):
            if call.argument is None or call.func == "count":
                partial_alias[call] = None
                continue
            func = "sum" if call.func in ("sum", "avg") else call.func
            alias = f"__a{j}"
            partial_alias[call] = alias
            items.append(
                SelectItem(AggregateCall(func, call.argument), alias=alias)
            )
        items.append(SelectItem(AggregateCall("count", None), alias="__cnt"))
        statement = replace(
            bound.statement, select_items=tuple(items), having=(),
            order_by=(), limit=None, select_star=False,
        )
        partial = replace(
            bound, statement=statement, resolution=resolution,
            select_items=items, order_by=[], limit=None, having=[],
        )

        def run_shard(index: int) -> QueryResult:
            return self.shard_engines[index].execute_bound(
                self._shard_bound(partial, index)
            )

        recorder = _FanoutRecorder()
        shard_results = self._fanout(run_shard, recorder)
        tables = [r.require_table() for r in shard_results]

        def gather(name: str) -> np.ndarray:
            return np.concatenate(
                [np.asarray(t.column(name).data, dtype=np.float64)
                 for t in tables]
            )

        def gather_raw(name: str) -> np.ndarray:
            return np.concatenate(
                [np.asarray(t.column(name).data) for t in tables]
            )

        counts_in = gather("__cnt")
        # Identity partials: a shard with zero qualifying rows reports
        # one ungrouped COUNT=0 row — drop those before the fold so they
        # neither fabricate a group nor pollute a MIN/MAX with a
        # spurious 0.
        live = counts_in > 0
        if not np.any(live):
            if group_cols:
                evaluator = StreamGroupEval(bound, group_cols, {}, {}, 0)
            else:
                finals = {call: np.zeros(1) for call in calls}
                evaluator = StreamGroupEval(bound, group_cols, {}, finals, 1)
        else:
            counts_in = counts_in[live]
            if group_cols:
                keys = [gather_raw(f"__g{i}")[live]
                        for i in range(len(group_cols))]
                combined = combine_group_codes(keys)
                uniques, ids = np.unique(combined, return_inverse=True)
                n_groups = int(uniques.size)
                representatives = np.zeros(n_groups, dtype=np.int64)
                representatives[ids] = np.arange(ids.size)
                key_values = {
                    col.key: keys[i][representatives]
                    for i, col in enumerate(group_cols)
                }
            else:
                ids = np.zeros(counts_in.size, dtype=np.int64)
                n_groups = 1
                key_values = {}
            counts = np.bincount(ids, weights=counts_in, minlength=n_groups)
            finals = {}
            for call in calls:
                alias = partial_alias[call]
                if alias is None:
                    finals[call] = counts
                    continue
                values = gather(alias)[live]
                if call.func == "sum":
                    finals[call] = np.bincount(ids, weights=values,
                                               minlength=n_groups)
                elif call.func == "avg":
                    sums = np.bincount(ids, weights=values,
                                       minlength=n_groups)
                    finals[call] = sums / np.maximum(counts, 1)
                elif call.func == "min":
                    out = np.full(n_groups, np.inf)
                    np.minimum.at(out, ids, values)
                    finals[call] = out
                else:  # max
                    out = np.full(n_groups, -np.inf)
                    np.maximum.at(out, ids, values)
                    finals[call] = out
            evaluator = StreamGroupEval(bound, group_cols, key_values,
                                        finals, n_groups)
        names = [item.output_name for item in bound.select_items]
        if evaluator.n_groups == 0:
            arrays = [np.array([]) for _ in bound.select_items]
        else:
            arrays = [np.asarray(evaluator.eval_expr(item.expr))
                      for item in bound.select_items]
            if bound.having:
                mask = evaluator.having_mask(bound.having)
                arrays = [array[mask] for array in arrays]
        arrays = apply_order_limit(bound, arrays, names)
        table = build_result_table(bound, arrays, names)
        transferred = int(counts_in.size) * max(len(items), 1)
        result = self._merged_result(
            bound, shard_results, table, "partial-rows", transferred,
            executed_by="TCU-dist-partial",
        )
        self._attach_resilience(result, recorder)
        return result

    # -- concat route ----------------------------------------------------- #

    def _execute_concat(self, bound: BoundQuery) -> QueryResult:
        statement = replace(bound.statement, order_by=(), limit=None)
        local = replace(bound, statement=statement, order_by=[], limit=None)

        def run_shard(index: int) -> QueryResult:
            return self.shard_engines[index].execute_bound(
                self._shard_bound(local, index)
            )

        recorder = _FanoutRecorder()
        shard_results = self._fanout(run_shard, recorder)
        tables = [r.require_table() for r in shard_results]
        names = tables[0].column_names
        columns = {name: [t.column(name) for t in tables] for name in names}
        arrays = [
            np.concatenate([c.data for c in columns[name]])
            for name in names
        ]
        items = (list(bound.select_items)
                 if len(bound.select_items) == len(names) else None)
        arrays = apply_order_limit(bound, arrays, names, items=items)
        out = {
            name: Column(array, columns[name][0].dtype,
                         columns[name][0].dictionary)
            for name, array in zip(names, arrays)
        }
        table = Table("result", out)
        transferred = sum(t.num_rows for t in tables) * max(len(names), 1)
        result = self._merged_result(
            bound, shard_results, table, "concat", transferred,
            executed_by="TCU-dist-concat",
        )
        self._attach_resilience(result, recorder)
        return result

    # -- shared result assembly ------------------------------------------- #

    def _merged_result(self, bound: BoundQuery,
                       shard_results: list[QueryResult], table: Table,
                       route: str, transferred_cells: int,
                       executed_by: str) -> QueryResult:
        breakdown = TimingBreakdown()
        for stage in sorted({
            s for r in shard_results for s in r.breakdown.stages
        }):
            breakdown.add(
                stage, max(r.breakdown.get(stage) for r in shard_results)
            )
        merge_seconds = estimate_shard_merge(
            self.node.device, transferred_cells, self.n_shards, 1
        )
        breakdown.add(STAGE_SHARD_MERGE, merge_seconds)
        critical = max(shard_results, key=lambda r: r.breakdown.total)
        op_costs = list(critical.extra.get("operator_costs") or [])
        op_costs.append(OperatorCost(
            op_id="allreduce", kind=STAGE_SHARD_MERGE,
            stage=STAGE_SHARD_MERGE, seconds=merge_seconds,
        ))
        result = QueryResult(
            engine=self.name,
            n_rows=table.num_rows,
            breakdown=breakdown,
            table=table,
            plan_description=critical.plan_description,
            extra={
                "executed_by": executed_by,
                "operator_costs": op_costs,
                "program_listing": critical.extra.get(
                    "program_listing",
                    f"distributed[{route}] per-shard plans",
                ),
                "shard_executed_by": [
                    r.extra.get("executed_by", "TCU")
                    for r in shard_results
                ],
            },
        )
        self._annotate(result, route, merge_seconds,
                       executed_by=executed_by)
        return result

    def _annotate(self, result: QueryResult, route: str,
                  merge_seconds: float, executed_by: str) -> None:
        result.extra["executed_by"] = executed_by
        result.extra["distributed"] = {
            "route": route,
            "shards": self.n_shards,
            "policy": self.sharded.policy,
            "fact": self.sharded.fact,
            "merge_seconds": merge_seconds,
        }
        note = (f"note: allreduce merge over {self.n_shards} shards "
                f"({self.sharded.policy} partition on "
                f"{self.sharded.fact!r}): {merge_seconds:.3e}s "
                f"[{STAGE_SHARD_MERGE}]")
        listing = result.extra.get("program_listing")
        result.extra["program_listing"] = (
            f"{listing}\n  {note}" if listing else note
        )
        if result.plan_description:
            result.plan_description = f"{result.plan_description}\n{note}"
        else:
            result.plan_description = note


__all__ = ["DistributedEngine", "STAGE_SHARD_MERGE"]

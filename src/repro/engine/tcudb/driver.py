"""The TCUDB program driver: TCU-accelerated physical operators.

Executes the plan the optimizer selected.  Numerics run through the
simulated tensor cores (bit-accurate fp16/int8/int4 emulation) whenever
the matrices are small enough to materialize; beyond that the driver
switches to a semantically equivalent vectorized path — indicator-matrix
products over exact keys — while charging identical simulated time.  The
equivalence of the two paths is property-tested.

Since the TensorProgram refactor the operator-level orchestration lives
in :mod:`repro.engine.tcudb.ops`; this module provides the shared
device kernels those operators invoke — strategy-dispatched GEMM
execution (``_execute_gemm``), dense operand construction
(``join_operand_matrices``, ``_grids_by_matmul``), the semantic
exact-key equivalents (``_join_pairs_semantic``, ``_grids_semantic``)
and the numeric-emulation gates — plus the legacy ``join_2way``
operator retained for the driver-level property tests.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.common.errors import ExecutionError
from repro.common.timing import STAGE_FILL, STAGE_MEMCPY, TimingBreakdown
from repro.engine.base import ExecutionMode
from repro.engine.parallel import parallel_map, workers_policy
from repro.engine.relational import equi_join_indices, nonequi_join_indices
from repro.engine.tcudb.cost import PlanCost, Strategy
from repro.hardware.gpu import GPUDevice
from repro.tensor.backend import get_backend
from repro.tensor.coo import COOMatrix, dense_from_coo
from repro.tensor.matmul import msplit_gemm
from repro.tensor.tiled import TiledMatrix, TileLayout

# Largest dense matrix/grid the driver will actually materialize for
# numeric emulation; beyond this, the semantic fast path takes over.
NUMERIC_CELL_LIMIT = 8_000_000


@dataclass
class CompositeKey:
    """Invertible composite encoding of one side's group-by columns."""

    labels: list[np.ndarray]  # distinct physical values per column
    codes: np.ndarray  # composite code per input row
    cardinality: int

    @staticmethod
    def build(arrays: list[np.ndarray]) -> "CompositeKey":
        if not arrays:
            raise ExecutionError("composite key needs at least one array")
        labels: list[np.ndarray] = []
        per_column_codes: list[np.ndarray] = []
        for array in arrays:
            uniques, codes = np.unique(array, return_inverse=True)
            labels.append(uniques)
            per_column_codes.append(codes)
        combined = np.zeros(arrays[0].size, dtype=np.int64)
        cardinality = 1
        for uniques, codes in zip(labels, per_column_codes):
            combined = combined * uniques.size + codes
            cardinality *= uniques.size
        return CompositeKey(labels=labels, codes=combined,
                            cardinality=cardinality)

    def decode(self, composite: np.ndarray) -> list[np.ndarray]:
        """Recover the per-column physical values of composite codes."""
        remaining = np.asarray(composite, dtype=np.int64)
        sizes = [u.size for u in self.labels]
        out: list[np.ndarray] = [None] * len(self.labels)  # type: ignore
        for i in range(len(self.labels) - 1, -1, -1):
            out[i] = self.labels[i][remaining % sizes[i]]
            remaining = remaining // sizes[i]
        return out


@dataclass
class PreparedJoin:
    """Inputs of a 2-way join operator (keys already in physical codes)."""

    op: str
    left_keys_mapped: np.ndarray  # positions in the union domain
    right_keys_mapped: np.ndarray
    domain_values: np.ndarray
    k: int


@dataclass
class PreparedAggSide:
    """One side of a join+aggregate operator."""

    keys_mapped: np.ndarray
    group: CompositeKey | None  # None => side collapses to one row
    values_per_agg: list[np.ndarray]  # factor products (incl. weights)
    count_values: np.ndarray  # weights for the COUNT grid
    # binding.column keys of the group columns, in composite-code order
    # (used to decode grid rows back into output columns).
    group_order: list[str] = field(default_factory=list)
    # Streamed fill (the B side of ValueFill): per-aggregate fill values
    # are computed on demand — whole-side or one key-domain chunk's
    # tuple selection — instead of being materialized up front, so at
    # most one aggregate slice of one chunk is ever live.
    value_fill: Callable[[int, np.ndarray | None], np.ndarray] | None = None

    @property
    def g(self) -> int:
        return self.group.cardinality if self.group else 1

    def row_codes(self) -> np.ndarray:
        if self.group is None:
            return np.zeros(self.keys_mapped.size, dtype=np.int64)
        return self.group.codes

    def values_for(self, index: int,
                   selection: np.ndarray | None = None) -> np.ndarray:
        """Fill values of aggregate ``index``, optionally restricted to a
        tuple ``selection`` (boolean mask or index array).  Slicing the
        factor columns before the elementwise products is bit-identical
        to slicing the materialized product."""
        if self.value_fill is not None:
            return self.value_fill(index, selection)
        values = np.asarray(self.values_per_agg[index])
        return values if selection is None else values[selection]


def _resolve_values(values, selection: np.ndarray | None = None):
    """Materialize one fill-value operand: a plain array (optionally
    sliced) or a streamed-fill thunk called with the selection."""
    if callable(values):
        return values(selection)
    arr = np.asarray(values)
    return arr if selection is None else arr[selection]


@dataclass
class OperatorRun:
    """What one driver invocation produced."""

    n_rows: int
    breakdown: TimingBreakdown
    arrays: list[np.ndarray] | None = None
    names: list[str] | None = None
    meta: dict = field(default_factory=dict)


@dataclass(frozen=True)
class OperandStructure:
    """Shared indicator structure of one operand matrix, built once.

    The (row, column) coordinate pattern of a grouped operand matrix is
    the same for every aggregate of a product — only the fill values
    differ.  This structure canonicalizes the coordinates a single time
    (one ``np.unique`` over the linearized cells) so per-aggregate
    operand builds, nnz accounting and exact cell-range feasibility all
    reduce to one ``np.bincount`` over the shared ``inverse`` array.
    """

    g: int
    k: int
    cells: np.ndarray  # sorted distinct linearized cells (row * k + col)
    inverse: np.ndarray  # input tuple -> index into ``cells``

    @property
    def nnz(self) -> int:
        return int(self.cells.size)

    @property
    def rows(self) -> np.ndarray:
        return self.cells // self.k

    @property
    def cols(self) -> np.ndarray:
        return self.cells % self.k

    def cell_sums(self, values: np.ndarray) -> np.ndarray:
        """Per-cell sums of one fill-value array (duplicates summed)."""
        return np.bincount(
            self.inverse, weights=np.asarray(values, dtype=np.float64),
            minlength=self.nnz,
        )

    def coo(self, values: np.ndarray) -> COOMatrix:
        """Direct-sparse operand: COO built straight from the key/code
        arrays — the dense intermediate is never materialized."""
        sums = self.cell_sums(values)
        keep = sums != 0.0
        return COOMatrix(
            rows=self.rows[keep], cols=self.cols[keep], vals=sums[keep],
            shape=(self.g, self.k),
        )

    def dense(self, values: np.ndarray, dtype=np.float64) -> np.ndarray:
        out = np.zeros(self.g * self.k, dtype=dtype)
        out[self.cells] = self.cell_sums(values)
        return out.reshape(self.g, self.k)

    def dense_stack(self, values_list: list[np.ndarray],
                    dtype=np.float64) -> np.ndarray:
        """(n_agg, g, k) stacked operand: shared coordinates, one slice of
        fill values per aggregate.  ``dtype`` follows the active
        backend's fill dtype (float32 stacks feed sgemm directly)."""
        stack = np.zeros((len(values_list), self.g * self.k), dtype=dtype)
        for i, values in enumerate(values_list):
            stack[i, self.cells] = self.cell_sums(values)
        return stack.reshape(len(values_list), self.g, self.k)


def build_coo_operands(side: "PreparedAggSide", k: int) -> OperandStructure:
    """Canonicalize one agg side's operand coordinates (rows/codes shared
    across every aggregate of the product)."""
    cells = side.row_codes() * k + np.asarray(side.keys_mapped,
                                              dtype=np.int64)
    unique_cells, inverse = np.unique(cells, return_inverse=True)
    return OperandStructure(g=side.g, k=k, cells=unique_cells,
                            inverse=inverse)


class TCUDriver:
    """Executes TCU plans on a simulated device.

    ``chunk_rows`` enables morsel-driven numeric execution: dense/blocked
    aggregate grids accumulate over key-domain chunks (each operand slice
    is at most ``g x chunk_rows`` cells) and numeric join products chunk
    the probe rows, extracting nonzero pairs per product slice.  Chunked
    accumulation is what keeps large-``k`` products on the bit-accurate
    numeric path with bounded memory; ``None`` reproduces the legacy
    whole-operand build.

    ``workers`` > 1 fans the independent chunks of both loops across a
    thread pool (the GEMM emulation is stateless, so parallel products
    are safe).  Partials still merge in chunk order — pair concatenation
    and grid summation see exactly the sequential order, so parallel
    results stay bit-identical (``A @ B.T == sum_c A[:,c] @ B[:,c].T``
    accumulated in a fixed order).
    """

    def __init__(self, device: GPUDevice, mode: ExecutionMode,
                 chunk_rows: int | None = None,
                 workers: int | None = None,
                 backend: str | None = None):
        self.device = device
        self.mode = mode
        self.chunk_rows = chunk_rows
        self.workers = workers_policy(workers)
        # Kernel-primitive layer: "sim" (the simulated unit, the oracle),
        # "fast" (optimized NumPy/BLAS) or "torch"; see
        # repro.tensor.backend for the selection policy and the
        # equivalence contract.
        self.backend = get_backend(backend)

    # -- shared charging ---------------------------------------------------- #

    def _charge(self, breakdown: TimingBreakdown, plan: PlanCost,
                op_stage: str) -> None:
        breakdown.add(STAGE_FILL, plan.transform.fill_seconds)
        breakdown.add(STAGE_MEMCPY, plan.transform.memcpy_seconds)
        breakdown.add(op_stage, plan.compute_seconds)
        # Result extraction: nonzero scan belongs to the operator, the
        # host transfer to the memcpy stage; plan.result_seconds bundles
        # both, so split by recomputing the transfer part.
        breakdown.add(STAGE_MEMCPY, plan.result_seconds)

    # -- numeric-emulation gates (shared with the TensorProgram ops) -------- #

    def use_numeric_join(self, prepared: PreparedJoin,
                         mode: ExecutionMode) -> bool:
        """True when the join product can run bit-accurate TCU emulation.

        Unchunked, every dense piece (left operand, right operand, the
        product) must fit the cell budget.  With chunked execution the
        probe rows stream: only one ``chunk x k`` operand slice and one
        ``chunk x m`` product slice live at a time, so the left row count
        stops being a limit — the build side still must fit.
        """
        if mode != ExecutionMode.REAL:
            return False
        n = prepared.left_keys_mapped.size
        m = prepared.right_keys_mapped.size
        k = prepared.k
        if (n * m <= NUMERIC_CELL_LIMIT
                and n * k <= NUMERIC_CELL_LIMIT
                and m * k <= NUMERIC_CELL_LIMIT):
            return True
        if self.chunk_rows is None:
            return False
        chunk = min(self.chunk_rows, max(n, 1))
        return (
            m * k <= NUMERIC_CELL_LIMIT
            and chunk * m <= NUMERIC_CELL_LIMIT
            and chunk * k <= NUMERIC_CELL_LIMIT
        )

    def use_numeric_grid(self, g1: int, g2: int, k: int,
                         nnz_left: int | None = None,
                         nnz_right: int | None = None,
                         sparse: bool = False) -> bool:
        """True when the aggregate grids can run bit-accurate numerics.

        Dense plans must materialize both (g, k) operand matrices, so the
        dense cell counts gate — unless chunked execution is on, in which
        case the key domain streams through the unit in ``chunk_rows``
        column slices and only the ``g x chunk`` slices plus the output
        grid need fit.  Sparse plans with direct-COO operands
        (``sparse=True`` plus known nnz) never build the dense operands —
        what bounds them is the tiled representation: at worst one 16x16
        tile per stored entry (or per grid slot, whichever is smaller),
        kept under the same cell budget as the dense gate.  That keeps
        large-but-sparse products on the bit-accurate numeric path
        without letting a scattered operand blow up tile memory.
        """
        if g1 * g2 > NUMERIC_CELL_LIMIT:
            return False
        if sparse and nnz_left is not None and nnz_right is not None:
            from repro.tensor.tiled import TILE

            k_slots = -(-k // TILE)
            worst_tiles = (
                min(nnz_left, -(-g1 // TILE) * k_slots)
                + min(nnz_right, -(-g2 // TILE) * k_slots)
            )
            return worst_tiles * TILE * TILE <= NUMERIC_CELL_LIMIT
        k_slice = k if self.chunk_rows is None else min(k, self.chunk_rows)
        return (
            g1 * k_slice <= NUMERIC_CELL_LIMIT
            and g2 * k_slice <= NUMERIC_CELL_LIMIT
        )

    # -- 2-way join (Q1/Q5) ---------------------------------------------------- #

    def join_2way(self, prepared: PreparedJoin, plan: PlanCost) -> OperatorRun:
        breakdown = TimingBreakdown()
        self._charge(breakdown, plan, "tcu_join")
        if self.use_numeric_join(prepared, self.mode):
            left_idx, right_idx = self._join_pairs_by_matmul(prepared, plan)
        else:
            left_idx, right_idx = self._join_pairs_semantic(prepared)
        if self.mode != ExecutionMode.REAL and left_idx is None:
            count = self._join_count(prepared)
            return OperatorRun(n_rows=count, breakdown=breakdown,
                               meta={"strategy": plan.strategy.value})
        return OperatorRun(
            n_rows=int(left_idx.size),
            breakdown=breakdown,
            arrays=[left_idx, right_idx],
            names=["__left_index", "__right_index"],
            meta={"strategy": plan.strategy.value},
        )

    @staticmethod
    def join_operand_matrices(
        prepared: PreparedJoin,
        backend=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dense indicator/comparison operand matrices of one join
        (Sections 3.1/3.4), shared by the legacy 2-way path and the
        TensorProgram ``Gemm`` operator.  ``backend`` supplies the
        dense-from-COO fill kernel (``None``: the simulator's)."""
        from repro.engine.tcudb.transform import comparison_matrix

        fill = backend.dense_from_coo if backend is not None else dense_from_coo
        n = prepared.left_keys_mapped.size
        m = prepared.right_keys_mapped.size
        k = prepared.k
        if prepared.op == "=":
            left = fill(
                np.arange(n), prepared.left_keys_mapped, np.ones(n), (n, k)
            )
        else:
            side = comparison_matrix(
                prepared.left_keys_mapped, prepared.domain_values, prepared.op
            )
            left = fill(side.rows, side.cols, side.vals, (n, k))
        right = fill(
            np.arange(m), prepared.right_keys_mapped, np.ones(m), (m, k)
        )
        return left, right

    def _join_pairs_by_matmul(self, prepared: PreparedJoin, plan: PlanCost):
        n = prepared.left_keys_mapped.size
        if self.chunk_rows is not None and n > self.chunk_rows:
            return self._join_pairs_chunked(prepared, plan)
        left, right = self.join_operand_matrices(prepared, self.backend)
        product = self._execute_gemm(left, right.T, plan)
        rows, cols = self.backend.nonzero(product > 0)
        return rows, cols

    def _join_pairs_chunked(self, prepared: PreparedJoin, plan: PlanCost):
        """Numeric join with the probe rows streamed in chunks: one
        ``chunk x k`` operand slice and one ``chunk x m`` product slice
        live at a time; pairs are extracted per slice and accumulated."""
        from repro.engine.tcudb.transform import comparison_matrix

        m = prepared.right_keys_mapped.size
        k = prepared.k
        right = self.backend.dense_from_coo(
            np.arange(m), prepared.right_keys_mapped, np.ones(m), (m, k)
        ).T

        chunk = self.chunk_rows
        n = prepared.left_keys_mapped.size

        def probe_chunk(start: int) -> tuple[np.ndarray, np.ndarray]:
            keys = prepared.left_keys_mapped[start:start + chunk]
            nc = keys.size
            if prepared.op == "=":
                left = self.backend.dense_from_coo(
                    np.arange(nc), keys, np.ones(nc), (nc, k)
                )
            else:
                side = comparison_matrix(
                    keys, prepared.domain_values, prepared.op
                )
                left = self.backend.dense_from_coo(side.rows, side.cols,
                                                   side.vals, (nc, k))
            product = self._execute_gemm(left, right, plan)
            rows, cols = self.backend.nonzero(product > 0)
            return rows + start, cols

        # Chunks are independent GEMMs over a shared read-only build side;
        # parallel_map yields them in submission order, so the pair lists
        # concatenate exactly as the sequential loop would.
        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        for rows, cols in parallel_map(probe_chunk, range(0, n, chunk),
                                       self.workers):
            rows_parts.append(rows)
            cols_parts.append(cols)
        if not rows_parts:
            empty = np.array([], dtype=np.int64)
            return empty, empty.copy()
        return np.concatenate(rows_parts), np.concatenate(cols_parts)

    def _join_pairs_semantic(self, prepared: PreparedJoin):
        if self.mode != ExecutionMode.REAL:
            return None, None
        if prepared.op == "=":
            return equi_join_indices(
                prepared.left_keys_mapped, prepared.right_keys_mapped
            )
        left_values = prepared.domain_values[prepared.left_keys_mapped]
        right_values = prepared.domain_values[prepared.right_keys_mapped]
        return nonequi_join_indices(left_values, right_values, prepared.op)

    def _join_count(self, prepared: PreparedJoin) -> int:
        from repro.engine.relational import nonequi_join_count
        from repro.engine.tcudb.transform import mapped_pair_count

        if prepared.op == "=":
            return mapped_pair_count(
                prepared.left_keys_mapped, prepared.right_keys_mapped,
                prepared.k,
            )
        left_values = prepared.domain_values[prepared.left_keys_mapped]
        right_values = prepared.domain_values[prepared.right_keys_mapped]
        return nonequi_join_count(left_values, right_values, prepared.op)

    # -- join + (group-by) aggregation grids ------------------------------------ #
    # (invoked by the TensorProgram Gemm operator; result assembly lives
    # in ops.GridAggregate)

    def _grids_by_matmul(self, left: PreparedAggSide, right: PreparedAggSide,
                         k: int, aggregates, plan: PlanCost):
        """Unfused per-aggregate grid execution: each grid rebuilds both
        operand matrices from scratch (the redundancy the fusion pass's
        ``BatchedGemm`` eliminates)."""
        count_grid = self._one_grid(
            left, right, k, left.count_values, right.count_values, plan,
        )
        grids = []
        for i, spec in enumerate(aggregates):
            if spec.func == "count":
                grids.append(count_grid)
                continue
            grids.append(
                self._one_grid(
                    left, right, k, left.values_per_agg[i],
                    partial(right.values_for, i), plan,
                )
            )
        return grids, count_grid

    def _one_grid(self, left, right, k, left_values, right_values, plan):
        # Indicator products stay exact at any TCU precision; value
        # products run at the plan's precision.  Sparse plans build the
        # operands straight in COO (no dense intermediate).  The B side's
        # values may arrive as a streamed-fill thunk; the chunked path
        # below fills it one key-domain chunk at a time.
        if plan.strategy == Strategy.SPARSE:
            mat_a = build_coo_operands(left, k).coo(left_values)
            mat_b = build_coo_operands(right, k).coo(
                _resolve_values(right_values))
            return self._execute_gemm(mat_a, mat_b.transpose(), plan)
        if self.chunk_rows is not None and k > self.chunk_rows:
            return self._grid_accumulate(left, right, k,
                                         [np.asarray(left_values,
                                                     dtype=np.float64)],
                                         [right_values],
                                         plan)[0]
        mat_a = self.backend.dense_from_coo(
            left.row_codes(), left.keys_mapped, left_values, (left.g, k)
        )
        mat_b = self.backend.dense_from_coo(
            right.row_codes(), right.keys_mapped,
            _resolve_values(right_values), (right.g, k)
        )
        return self._execute_gemm(mat_a, mat_b.T, plan)

    def _grid_accumulate(self, left, right, k, left_values_list,
                         right_values_list, plan):
        """Grid-wise accumulation over key-domain chunks.

        Each chunk builds per-side ``(g, chunk)`` operand slices holding
        only the tuples whose mapped key falls in the chunk, multiplies
        them and accumulates the partial grids — the tiled-matmul
        identity ``A @ B.T == sum_c A[:, c] @ B[:, c].T`` over column
        chunks ``c``.  Only one slice pair is live at a time, so the
        dense numeric path scales to any key-domain size.  B-side value
        entries may be streamed-fill thunks: each chunk then fills only
        its own tuple selection, so the full B-side value arrays are
        never materialized.
        """
        chunk = self.chunk_rows
        n_slices = len(left_values_list)
        lrows, lkeys = left.row_codes(), np.asarray(left.keys_mapped)
        rrows, rkeys = right.row_codes(), np.asarray(right.keys_mapped)

        def chunk_operands(k0: int, i: int, lsel, rsel, kc: int):
            mat_a = self.backend.dense_from_coo(
                lrows[lsel], lkeys[lsel] - k0,
                np.asarray(left_values_list[i])[lsel], (left.g, kc),
            )
            mat_b = self.backend.dense_from_coo(
                rrows[rsel], rkeys[rsel] - k0,
                _resolve_values(right_values_list[i], rsel),
                (right.g, kc),
            )
            return mat_a, mat_b

        grids = [np.zeros((left.g, right.g)) for _ in range(n_slices)]
        if (self.workers <= 1
                and plan.strategy not in (Strategy.SPARSE, Strategy.BLOCKED)):
            # Sequential dense accumulation: the backend adds each chunk's
            # partial straight into the output grid (matmul_into), reusing
            # one scratch buffer across all key-domain chunks instead of
            # materializing a partial grid per chunk.  Same accumulation
            # order as the parallel merge below, so both stay
            # bit-identical per backend.
            for k0 in range(0, k, chunk):
                k1 = min(k0 + chunk, k)
                lsel = (lkeys >= k0) & (lkeys < k1)
                rsel = (rkeys >= k0) & (rkeys < k1)
                if not lsel.any() or not rsel.any():
                    continue
                for i in range(n_slices):
                    mat_a, mat_b = chunk_operands(k0, i, lsel, rsel, k1 - k0)
                    self.backend.matmul_into(grids[i], self.device,
                                             mat_a, mat_b.T, plan.precision)
            return grids

        def chunk_partials(k0: int) -> list[np.ndarray] | None:
            k1 = min(k0 + chunk, k)
            lsel = (lkeys >= k0) & (lkeys < k1)
            rsel = (rkeys >= k0) & (rkeys < k1)
            if not lsel.any() or not rsel.any():
                return None
            partials = []
            for i in range(n_slices):
                mat_a, mat_b = chunk_operands(k0, i, lsel, rsel, k1 - k0)
                partials.append(self._execute_gemm(mat_a, mat_b.T, plan))
            return partials

        # Partial grids compute in parallel but sum on this thread in
        # chunk order — float accumulation order matches the sequential
        # loop, keeping the parallel grids bit-identical.
        for partials in parallel_map(chunk_partials, range(0, k, chunk),
                                     self.workers):
            if partials is None:
                continue
            for i in range(n_slices):
                grids[i] += partials[i]
        return grids

    def _grids_batched(self, left: PreparedAggSide, right: PreparedAggSide,
                       k: int, aggregates, plan: PlanCost,
                       left_structure: OperandStructure | None = None,
                       right_structure: OperandStructure | None = None):
        """Fused multi-aggregate grid execution (``BatchedGemm``).

        Builds each side's indicator structure once, stacks the
        per-aggregate fill values into an (n_agg, g, k) operand and
        issues a single stacked matmul, instead of the per-aggregate
        rebuild-everything loop of :meth:`_grids_by_matmul`.
        """
        if left_structure is None:
            left_structure = build_coo_operands(left, k)
        if right_structure is None:
            right_structure = build_coo_operands(right, k)
        value_index: list[int | None] = [None]  # slice 0 = COUNT grid
        left_values = [left.count_values]
        right_values = [right.count_values]
        for i, spec in enumerate(aggregates):
            if spec.func == "count":
                continue
            value_index.append(i)
            left_values.append(left.values_per_agg[i])
            right_values.append(partial(right.values_for, i))
        if plan.strategy == Strategy.SPARSE:
            # Batched sparse tiles: the tile structure (block keys,
            # uniques, within-tile offsets) is derived ONCE from the
            # shared COO coordinates; each aggregate of the batch then
            # materializes its tiles with a single fancy-index fill —
            # no per-grid TiledMatrix re-derivation.
            g1, g2 = left_structure.g, right_structure.g
            layout_a = TileLayout.from_coords(
                left_structure.rows, left_structure.cols, (g1, k))
            layout_b = TileLayout.from_coords(
                right_structure.cols, right_structure.rows, (k, g2))
            products = []
            for lv, rv in zip(left_values, right_values):
                tiled_a = layout_a.fill(left_structure.cell_sums(lv))
                tiled_b = layout_b.fill(
                    right_structure.cell_sums(_resolve_values(rv)))
                product, _ = tiled_a.spmm(tiled_b)
                products.append(product.to_dense()[:g1, :g2])
            stacked = np.stack(products)
        elif self.chunk_rows is not None and k > self.chunk_rows:
            # Grid-wise accumulation over key-domain chunks; the shared
            # coordinate structure is rebuilt per chunk slice, but only
            # one (g, chunk) slice pair is ever live.
            stacked = np.stack(
                self._grid_accumulate(left, right, k, left_values,
                                      right_values, plan)
            )
        else:
            fill_dtype = self.backend.fill_dtype
            a_stack = left_structure.dense_stack(left_values,
                                                 dtype=fill_dtype)
            b_stack = right_structure.dense_stack(
                [_resolve_values(rv) for rv in right_values],
                dtype=fill_dtype)
            if plan.strategy == Strategy.BLOCKED:
                stacked = np.stack([
                    np.asarray(
                        msplit_gemm(self.device, a, b.T, plan.precision,
                                    backend=self.backend)[0],
                        dtype=np.float64,
                    )
                    for a, b in zip(a_stack, b_stack)
                ])
            else:
                stacked = np.asarray(
                    self.backend.matmul(
                        self.device, a_stack, b_stack.transpose(0, 2, 1),
                        plan.precision
                    ),
                    dtype=np.float64,
                )
        count_grid = stacked[0]
        by_index = {
            index: stacked[slot]
            for slot, index in enumerate(value_index)
            if index is not None
        }
        grids = [
            count_grid if spec.func == "count" else by_index[i]
            for i, spec in enumerate(aggregates)
        ]
        return grids, count_grid

    def _execute_gemm(self, a, b, plan: PlanCost) -> np.ndarray:
        """Strategy-dispatched GEMM.  ``a``/``b`` may be dense arrays or
        :class:`~repro.tensor.coo.COOMatrix` operands — sparse plans
        consume the COO directly (no dense round-trip), dense plans
        densify it."""
        if plan.strategy == Strategy.SPARSE:
            coo_a = a if isinstance(a, COOMatrix) else COOMatrix.from_dense(a)
            coo_b = b if isinstance(b, COOMatrix) else COOMatrix.from_dense(b)
            # Both operands carry unique coordinates (nonzero extraction
            # and the operand builder are both duplicate-free), so the
            # canonicalizing sort in from_coo is skipped.
            tiled_a = TiledMatrix.from_coo(coo_a, assume_canonical=True)
            tiled_b = TiledMatrix.from_coo(coo_b, assume_canonical=True)
            result, _ = tiled_a.spmm(tiled_b)
            return result.to_dense()[: coo_a.shape[0], : coo_b.shape[1]]
        if isinstance(a, COOMatrix):
            a = a.to_dense()
        if isinstance(b, COOMatrix):
            b = b.to_dense()
        if plan.strategy == Strategy.BLOCKED:
            result, _ = msplit_gemm(self.device, a, b, plan.precision,
                                    backend=self.backend)
            return np.asarray(result, dtype=np.float64)
        return np.asarray(
            self.backend.matmul(self.device, a, b, plan.precision),
            dtype=np.float64,
        )

    def _grids_semantic(self, left, right, aggregates, g1, g2):
        left_idx, right_idx = equi_join_indices(
            left.keys_mapped, right.keys_mapped
        )
        cell = left.row_codes()[left_idx] * g2 + right.row_codes()[right_idx]
        size = g1 * g2
        count_grid = np.bincount(
            cell,
            weights=left.count_values[left_idx] * right.count_values[right_idx],
            minlength=size,
        ).reshape(g1, g2)
        grids = []
        for i, spec in enumerate(aggregates):
            if spec.func == "count":
                grids.append(count_grid)
                continue
            weights = (
                left.values_per_agg[i][left_idx]
                * right.values_for(i, right_idx)
            )
            grids.append(
                np.bincount(cell, weights=weights, minlength=size)
                .reshape(g1, g2)
            )
        return grids, count_grid


"""The TCUDB program driver: TCU-accelerated physical operators.

Executes the plan the optimizer selected.  Numerics run through the
simulated tensor cores (bit-accurate fp16/int8/int4 emulation) whenever
the matrices are small enough to materialize; beyond that the driver
switches to a semantically equivalent vectorized path — indicator-matrix
products over exact keys — while charging identical simulated time.  The
equivalence of the two paths is property-tested.

Operators:

* ``join_2way``   — Q1/Q5: indicator/comparison matrices, one GEMM,
  nonzero() extraction of matching pairs.
* ``join_agg``    — Q3/Q4/Figure-5/SSB/PageRank: value-filled grouped
  matrices, one GEMM per aggregate plus a count GEMM (Lemma 3.1's
  reduction is pre-applied to ungrouped sides).
* ``multiway``    — Q2: chained 2-way joins with CUDA nonzero()
  matrix->table conversion between steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ExecutionError
from repro.common.timing import STAGE_FILL, STAGE_MEMCPY, TimingBreakdown
from repro.engine.base import ExecutionMode
from repro.engine.relational import equi_join_indices, nonequi_join_indices
from repro.engine.tcudb.cost import PlanCost, Strategy
from repro.engine.tcudb.patterns import (
    AggRef,
    AggregateSpec,
    ConstRef,
    GroupRef,
    OutputItem,
    OutputNode,
    OutputOp,
)
from repro.hardware.gpu import GPUDevice
from repro.tensor.coo import COOMatrix
from repro.tensor.matmul import msplit_gemm
from repro.tensor.tiled import TiledMatrix

# Largest dense matrix/grid the driver will actually materialize for
# numeric emulation; beyond this, the semantic fast path takes over.
NUMERIC_CELL_LIMIT = 8_000_000


@dataclass
class CompositeKey:
    """Invertible composite encoding of one side's group-by columns."""

    labels: list[np.ndarray]  # distinct physical values per column
    codes: np.ndarray  # composite code per input row
    cardinality: int

    @staticmethod
    def build(arrays: list[np.ndarray]) -> "CompositeKey":
        if not arrays:
            raise ExecutionError("composite key needs at least one array")
        labels: list[np.ndarray] = []
        per_column_codes: list[np.ndarray] = []
        for array in arrays:
            uniques, codes = np.unique(array, return_inverse=True)
            labels.append(uniques)
            per_column_codes.append(codes)
        combined = np.zeros(arrays[0].size, dtype=np.int64)
        cardinality = 1
        for uniques, codes in zip(labels, per_column_codes):
            combined = combined * uniques.size + codes
            cardinality *= uniques.size
        return CompositeKey(labels=labels, codes=combined,
                            cardinality=cardinality)

    def decode(self, composite: np.ndarray) -> list[np.ndarray]:
        """Recover the per-column physical values of composite codes."""
        remaining = np.asarray(composite, dtype=np.int64)
        sizes = [u.size for u in self.labels]
        out: list[np.ndarray] = [None] * len(self.labels)  # type: ignore
        for i in range(len(self.labels) - 1, -1, -1):
            out[i] = self.labels[i][remaining % sizes[i]]
            remaining = remaining // sizes[i]
        return out


@dataclass
class PreparedJoin:
    """Inputs of a 2-way join operator (keys already in physical codes)."""

    op: str
    left_keys_mapped: np.ndarray  # positions in the union domain
    right_keys_mapped: np.ndarray
    domain_values: np.ndarray
    k: int


@dataclass
class PreparedAggSide:
    """One side of a join+aggregate operator."""

    keys_mapped: np.ndarray
    group: CompositeKey | None  # None => side collapses to one row
    values_per_agg: list[np.ndarray]  # factor products (incl. weights)
    count_values: np.ndarray  # weights for the COUNT grid

    @property
    def g(self) -> int:
        return self.group.cardinality if self.group else 1

    def row_codes(self) -> np.ndarray:
        if self.group is None:
            return np.zeros(self.keys_mapped.size, dtype=np.int64)
        return self.group.codes


@dataclass
class OperatorRun:
    """What one driver invocation produced."""

    n_rows: int
    breakdown: TimingBreakdown
    arrays: list[np.ndarray] | None = None
    names: list[str] | None = None
    meta: dict = field(default_factory=dict)


def _dense_from_coo(rows, cols, vals, shape) -> np.ndarray:
    dense = np.zeros(shape, dtype=np.float64)
    np.add.at(dense, (rows, cols), vals)
    return dense


class TCUDriver:
    """Executes TCU plans on a simulated device."""

    def __init__(self, device: GPUDevice, mode: ExecutionMode):
        self.device = device
        self.mode = mode

    # -- shared charging ---------------------------------------------------- #

    def _charge(self, breakdown: TimingBreakdown, plan: PlanCost,
                op_stage: str) -> None:
        breakdown.add(STAGE_FILL, plan.transform.fill_seconds)
        breakdown.add(STAGE_MEMCPY, plan.transform.memcpy_seconds)
        breakdown.add(op_stage, plan.compute_seconds)
        # Result extraction: nonzero scan belongs to the operator, the
        # host transfer to the memcpy stage; plan.result_seconds bundles
        # both, so split by recomputing the transfer part.
        breakdown.add(STAGE_MEMCPY, plan.result_seconds)

    # -- 2-way join (Q1/Q5) ---------------------------------------------------- #

    def join_2way(self, prepared: PreparedJoin, plan: PlanCost) -> OperatorRun:
        breakdown = TimingBreakdown()
        self._charge(breakdown, plan, "tcu_join")
        n = prepared.left_keys_mapped.size
        m = prepared.right_keys_mapped.size
        use_matmul = (
            self.mode == ExecutionMode.REAL
            and n * m <= NUMERIC_CELL_LIMIT
            and n * prepared.k <= NUMERIC_CELL_LIMIT
            and m * prepared.k <= NUMERIC_CELL_LIMIT
        )
        if use_matmul:
            left_idx, right_idx = self._join_pairs_by_matmul(prepared, plan)
        else:
            left_idx, right_idx = self._join_pairs_semantic(prepared)
        if self.mode != ExecutionMode.REAL and left_idx is None:
            count = self._join_count(prepared)
            return OperatorRun(n_rows=count, breakdown=breakdown,
                               meta={"strategy": plan.strategy.value})
        return OperatorRun(
            n_rows=int(left_idx.size),
            breakdown=breakdown,
            arrays=[left_idx, right_idx],
            names=["__left_index", "__right_index"],
            meta={"strategy": plan.strategy.value},
        )

    def _join_pairs_by_matmul(self, prepared: PreparedJoin, plan: PlanCost):
        from repro.engine.tcudb.transform import comparison_matrix

        n = prepared.left_keys_mapped.size
        m = prepared.right_keys_mapped.size
        k = prepared.k
        if prepared.op == "=":
            left = _dense_from_coo(
                np.arange(n), prepared.left_keys_mapped, np.ones(n), (n, k)
            )
        else:
            side = comparison_matrix(
                prepared.left_keys_mapped, prepared.domain_values, prepared.op
            )
            left = _dense_from_coo(side.rows, side.cols, side.vals, (n, k))
        right = _dense_from_coo(
            np.arange(m), prepared.right_keys_mapped, np.ones(m), (m, k)
        )
        product = self._execute_gemm(left, right.T, plan)
        rows, cols = np.nonzero(product > 0)
        return rows, cols

    def _join_pairs_semantic(self, prepared: PreparedJoin):
        if self.mode != ExecutionMode.REAL:
            return None, None
        if prepared.op == "=":
            return equi_join_indices(
                prepared.left_keys_mapped, prepared.right_keys_mapped
            )
        left_values = prepared.domain_values[prepared.left_keys_mapped]
        right_values = prepared.domain_values[prepared.right_keys_mapped]
        return nonequi_join_indices(left_values, right_values, prepared.op)

    def _join_count(self, prepared: PreparedJoin) -> int:
        from repro.engine.relational import (
            equi_join_count,
            nonequi_join_count,
        )

        if prepared.op == "=":
            return equi_join_count(
                prepared.left_keys_mapped, prepared.right_keys_mapped
            )
        left_values = prepared.domain_values[prepared.left_keys_mapped]
        right_values = prepared.domain_values[prepared.right_keys_mapped]
        return nonequi_join_count(left_values, right_values, prepared.op)

    # -- join + (group-by) aggregation ------------------------------------------ #

    def join_agg(
        self,
        left: PreparedAggSide,
        right: PreparedAggSide,
        k: int,
        aggregates: list[AggregateSpec],
        outputs: list[OutputItem],
        plan: PlanCost,
        grouped: bool,
    ) -> OperatorRun:
        breakdown = TimingBreakdown()
        stage = (
            "tcu_join_groupby_aggregation" if grouped else "tcu_join_aggregation"
        )
        self._charge(breakdown, plan, stage)
        g1, g2 = left.g, right.g
        use_matmul = (
            self.mode == ExecutionMode.REAL
            and g1 * g2 <= NUMERIC_CELL_LIMIT
            and g1 * k <= NUMERIC_CELL_LIMIT
            and g2 * k <= NUMERIC_CELL_LIMIT
        )
        if self.mode != ExecutionMode.REAL:
            estimate = min(
                g1 * g2,
                max(int(left.keys_mapped.size), int(right.keys_mapped.size), 1),
            )
            return OperatorRun(n_rows=estimate, breakdown=breakdown,
                               meta={"strategy": plan.strategy.value})
        if use_matmul:
            grids, count_grid = self._grids_by_matmul(left, right, k,
                                                      aggregates, plan)
        else:
            grids, count_grid = self._grids_semantic(left, right, aggregates,
                                                     g1, g2)
        return self._assemble(left, right, grids, count_grid, aggregates,
                              outputs, breakdown, plan)

    def _grids_by_matmul(self, left, right, k, aggregates, plan):
        g1, g2 = left.g, right.g
        count_grid = self._one_grid(
            left, right, k, left.count_values, right.count_values, plan,
            indicator=True,
        )
        grids = []
        for i, spec in enumerate(aggregates):
            if spec.func == "count":
                grids.append(count_grid)
                continue
            grids.append(
                self._one_grid(
                    left, right, k, left.values_per_agg[i],
                    right.values_per_agg[i], plan, indicator=False,
                )
            )
        return grids, count_grid

    def _one_grid(self, left, right, k, left_values, right_values, plan,
                  indicator):
        g1, g2 = left.g, right.g
        mat_a = _dense_from_coo(
            left.row_codes(), left.keys_mapped, left_values, (g1, k)
        )
        mat_b = _dense_from_coo(
            right.row_codes(), right.keys_mapped, right_values, (g2, k)
        )
        # Indicator products stay exact at any TCU precision; value
        # products run at the plan's precision.
        return self._execute_gemm(mat_a, mat_b.T, plan)

    def _execute_gemm(self, a: np.ndarray, b: np.ndarray,
                      plan: PlanCost) -> np.ndarray:
        if plan.strategy == Strategy.BLOCKED:
            result, _ = msplit_gemm(self.device, a, b, plan.precision)
            return np.asarray(result, dtype=np.float64)
        if plan.strategy == Strategy.SPARSE:
            tiled_a = TiledMatrix.from_coo(COOMatrix.from_dense(a))
            tiled_b = TiledMatrix.from_coo(COOMatrix.from_dense(b))
            result, _ = tiled_a.spmm(tiled_b)
            return result.to_dense()[: a.shape[0], : b.shape[1]]
        return np.asarray(
            self.device.tcu.matmul(a, b, plan.precision), dtype=np.float64
        )

    def _grids_semantic(self, left, right, aggregates, g1, g2):
        left_idx, right_idx = equi_join_indices(
            left.keys_mapped, right.keys_mapped
        )
        cell = left.row_codes()[left_idx] * g2 + right.row_codes()[right_idx]
        size = g1 * g2
        count_grid = np.bincount(
            cell,
            weights=left.count_values[left_idx] * right.count_values[right_idx],
            minlength=size,
        ).reshape(g1, g2)
        grids = []
        for i, spec in enumerate(aggregates):
            if spec.func == "count":
                grids.append(count_grid)
                continue
            weights = (
                left.values_per_agg[i][left_idx]
                * right.values_per_agg[i][right_idx]
            )
            grids.append(
                np.bincount(cell, weights=weights, minlength=size)
                .reshape(g1, g2)
            )
        return grids, count_grid

    def _assemble(self, left, right, grids, count_grid, aggregates, outputs,
                  breakdown, plan):
        present = count_grid > 0
        rows, cols = np.nonzero(present)
        agg_values: list[np.ndarray] = []
        for spec, grid in zip(aggregates, grids):
            values = grid[rows, cols]
            if spec.func == "avg":
                values = values / np.maximum(count_grid[rows, cols], 1)
            agg_values.append(values)
        group_columns: dict[str, np.ndarray] = {}
        if left.group is not None:
            decoded = left.group.decode(rows)
            for column, values in zip(self._group_keys(outputs, side=0),
                                      decoded):
                group_columns[column] = values
        if right.group is not None:
            decoded = right.group.decode(cols)
            for column, values in zip(self._group_keys(outputs, side=1),
                                      decoded):
                group_columns[column] = values
        arrays: list[np.ndarray] = []
        names: list[str] = []
        for item in outputs:
            arrays.append(
                self._eval_output(item.node, agg_values, group_columns,
                                  rows.size)
            )
            names.append(item.name)
        return OperatorRun(
            n_rows=int(rows.size),
            breakdown=breakdown,
            arrays=arrays,
            names=names,
            meta={"strategy": plan.strategy.value,
                  "group_columns": group_columns},
        )

    def _group_keys(self, outputs: list[OutputItem], side: int) -> list[str]:
        # The engine stores group-column ordering in driver metadata via
        # the prepared sides; here we rely on the engine attaching
        # ``_group_order`` before the call.
        order = getattr(self, "_group_order", ([], []))
        return order[side]

    def set_group_order(self, left_keys: list[str],
                        right_keys: list[str]) -> None:
        self._group_order = (left_keys, right_keys)

    def _eval_output(self, node: OutputNode, agg_values, group_columns,
                     n_rows) -> np.ndarray:
        if isinstance(node, AggRef):
            return np.asarray(agg_values[node.index], dtype=np.float64)
        if isinstance(node, ConstRef):
            return np.full(n_rows, node.value)
        if isinstance(node, GroupRef):
            values = group_columns.get(node.column.key)
            if values is None:
                raise ExecutionError(
                    f"group column {node.column.key} missing from grid"
                )
            return np.asarray(values)
        if isinstance(node, OutputOp):
            left = self._eval_output(node.left, agg_values, group_columns,
                                     n_rows).astype(np.float64)
            right = self._eval_output(node.right, agg_values, group_columns,
                                      n_rows).astype(np.float64)
            ops = {"+": np.add, "-": np.subtract, "*": np.multiply,
                   "/": np.divide, "%": np.mod}
            return ops[node.op](left, right)
        raise ExecutionError(f"bad output node {node!r}")

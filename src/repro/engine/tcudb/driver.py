"""The TCUDB program driver: TCU-accelerated physical operators.

Executes the plan the optimizer selected.  Numerics run through the
simulated tensor cores (bit-accurate fp16/int8/int4 emulation) whenever
the matrices are small enough to materialize; beyond that the driver
switches to a semantically equivalent vectorized path — indicator-matrix
products over exact keys — while charging identical simulated time.  The
equivalence of the two paths is property-tested.

Since the TensorProgram refactor the operator-level orchestration lives
in :mod:`repro.engine.tcudb.ops`; this module provides the shared
device kernels those operators invoke — strategy-dispatched GEMM
execution (``_execute_gemm``), dense operand construction
(``join_operand_matrices``, ``_grids_by_matmul``), the semantic
exact-key equivalents (``_join_pairs_semantic``, ``_grids_semantic``)
and the numeric-emulation gates — plus the legacy ``join_2way``
operator retained for the driver-level property tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ExecutionError
from repro.common.timing import STAGE_FILL, STAGE_MEMCPY, TimingBreakdown
from repro.engine.base import ExecutionMode
from repro.engine.relational import equi_join_indices, nonequi_join_indices
from repro.engine.tcudb.cost import PlanCost, Strategy
from repro.hardware.gpu import GPUDevice
from repro.tensor.coo import COOMatrix
from repro.tensor.matmul import msplit_gemm
from repro.tensor.tiled import TiledMatrix

# Largest dense matrix/grid the driver will actually materialize for
# numeric emulation; beyond this, the semantic fast path takes over.
NUMERIC_CELL_LIMIT = 8_000_000


@dataclass
class CompositeKey:
    """Invertible composite encoding of one side's group-by columns."""

    labels: list[np.ndarray]  # distinct physical values per column
    codes: np.ndarray  # composite code per input row
    cardinality: int

    @staticmethod
    def build(arrays: list[np.ndarray]) -> "CompositeKey":
        if not arrays:
            raise ExecutionError("composite key needs at least one array")
        labels: list[np.ndarray] = []
        per_column_codes: list[np.ndarray] = []
        for array in arrays:
            uniques, codes = np.unique(array, return_inverse=True)
            labels.append(uniques)
            per_column_codes.append(codes)
        combined = np.zeros(arrays[0].size, dtype=np.int64)
        cardinality = 1
        for uniques, codes in zip(labels, per_column_codes):
            combined = combined * uniques.size + codes
            cardinality *= uniques.size
        return CompositeKey(labels=labels, codes=combined,
                            cardinality=cardinality)

    def decode(self, composite: np.ndarray) -> list[np.ndarray]:
        """Recover the per-column physical values of composite codes."""
        remaining = np.asarray(composite, dtype=np.int64)
        sizes = [u.size for u in self.labels]
        out: list[np.ndarray] = [None] * len(self.labels)  # type: ignore
        for i in range(len(self.labels) - 1, -1, -1):
            out[i] = self.labels[i][remaining % sizes[i]]
            remaining = remaining // sizes[i]
        return out


@dataclass
class PreparedJoin:
    """Inputs of a 2-way join operator (keys already in physical codes)."""

    op: str
    left_keys_mapped: np.ndarray  # positions in the union domain
    right_keys_mapped: np.ndarray
    domain_values: np.ndarray
    k: int


@dataclass
class PreparedAggSide:
    """One side of a join+aggregate operator."""

    keys_mapped: np.ndarray
    group: CompositeKey | None  # None => side collapses to one row
    values_per_agg: list[np.ndarray]  # factor products (incl. weights)
    count_values: np.ndarray  # weights for the COUNT grid
    # binding.column keys of the group columns, in composite-code order
    # (used to decode grid rows back into output columns).
    group_order: list[str] = field(default_factory=list)

    @property
    def g(self) -> int:
        return self.group.cardinality if self.group else 1

    def row_codes(self) -> np.ndarray:
        if self.group is None:
            return np.zeros(self.keys_mapped.size, dtype=np.int64)
        return self.group.codes


@dataclass
class OperatorRun:
    """What one driver invocation produced."""

    n_rows: int
    breakdown: TimingBreakdown
    arrays: list[np.ndarray] | None = None
    names: list[str] | None = None
    meta: dict = field(default_factory=dict)


def _dense_from_coo(rows, cols, vals, shape) -> np.ndarray:
    dense = np.zeros(shape, dtype=np.float64)
    np.add.at(dense, (rows, cols), vals)
    return dense


class TCUDriver:
    """Executes TCU plans on a simulated device."""

    def __init__(self, device: GPUDevice, mode: ExecutionMode):
        self.device = device
        self.mode = mode

    # -- shared charging ---------------------------------------------------- #

    def _charge(self, breakdown: TimingBreakdown, plan: PlanCost,
                op_stage: str) -> None:
        breakdown.add(STAGE_FILL, plan.transform.fill_seconds)
        breakdown.add(STAGE_MEMCPY, plan.transform.memcpy_seconds)
        breakdown.add(op_stage, plan.compute_seconds)
        # Result extraction: nonzero scan belongs to the operator, the
        # host transfer to the memcpy stage; plan.result_seconds bundles
        # both, so split by recomputing the transfer part.
        breakdown.add(STAGE_MEMCPY, plan.result_seconds)

    # -- numeric-emulation gates (shared with the TensorProgram ops) -------- #

    def use_numeric_join(self, prepared: PreparedJoin,
                         mode: ExecutionMode) -> bool:
        """True when the join product is small enough for bit-accurate
        TCU emulation (beyond it, the semantic exact-key path applies)."""
        n = prepared.left_keys_mapped.size
        m = prepared.right_keys_mapped.size
        return (
            mode == ExecutionMode.REAL
            and n * m <= NUMERIC_CELL_LIMIT
            and n * prepared.k <= NUMERIC_CELL_LIMIT
            and m * prepared.k <= NUMERIC_CELL_LIMIT
        )

    def use_numeric_grid(self, g1: int, g2: int, k: int) -> bool:
        return (
            g1 * g2 <= NUMERIC_CELL_LIMIT
            and g1 * k <= NUMERIC_CELL_LIMIT
            and g2 * k <= NUMERIC_CELL_LIMIT
        )

    # -- 2-way join (Q1/Q5) ---------------------------------------------------- #

    def join_2way(self, prepared: PreparedJoin, plan: PlanCost) -> OperatorRun:
        breakdown = TimingBreakdown()
        self._charge(breakdown, plan, "tcu_join")
        if self.use_numeric_join(prepared, self.mode):
            left_idx, right_idx = self._join_pairs_by_matmul(prepared, plan)
        else:
            left_idx, right_idx = self._join_pairs_semantic(prepared)
        if self.mode != ExecutionMode.REAL and left_idx is None:
            count = self._join_count(prepared)
            return OperatorRun(n_rows=count, breakdown=breakdown,
                               meta={"strategy": plan.strategy.value})
        return OperatorRun(
            n_rows=int(left_idx.size),
            breakdown=breakdown,
            arrays=[left_idx, right_idx],
            names=["__left_index", "__right_index"],
            meta={"strategy": plan.strategy.value},
        )

    @staticmethod
    def join_operand_matrices(
        prepared: PreparedJoin,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dense indicator/comparison operand matrices of one join
        (Sections 3.1/3.4), shared by the legacy 2-way path and the
        TensorProgram ``Gemm`` operator."""
        from repro.engine.tcudb.transform import comparison_matrix

        n = prepared.left_keys_mapped.size
        m = prepared.right_keys_mapped.size
        k = prepared.k
        if prepared.op == "=":
            left = _dense_from_coo(
                np.arange(n), prepared.left_keys_mapped, np.ones(n), (n, k)
            )
        else:
            side = comparison_matrix(
                prepared.left_keys_mapped, prepared.domain_values, prepared.op
            )
            left = _dense_from_coo(side.rows, side.cols, side.vals, (n, k))
        right = _dense_from_coo(
            np.arange(m), prepared.right_keys_mapped, np.ones(m), (m, k)
        )
        return left, right

    def _join_pairs_by_matmul(self, prepared: PreparedJoin, plan: PlanCost):
        left, right = self.join_operand_matrices(prepared)
        product = self._execute_gemm(left, right.T, plan)
        rows, cols = np.nonzero(product > 0)
        return rows, cols

    def _join_pairs_semantic(self, prepared: PreparedJoin):
        if self.mode != ExecutionMode.REAL:
            return None, None
        if prepared.op == "=":
            return equi_join_indices(
                prepared.left_keys_mapped, prepared.right_keys_mapped
            )
        left_values = prepared.domain_values[prepared.left_keys_mapped]
        right_values = prepared.domain_values[prepared.right_keys_mapped]
        return nonequi_join_indices(left_values, right_values, prepared.op)

    def _join_count(self, prepared: PreparedJoin) -> int:
        from repro.engine.relational import (
            equi_join_count,
            nonequi_join_count,
        )

        if prepared.op == "=":
            return equi_join_count(
                prepared.left_keys_mapped, prepared.right_keys_mapped
            )
        left_values = prepared.domain_values[prepared.left_keys_mapped]
        right_values = prepared.domain_values[prepared.right_keys_mapped]
        return nonequi_join_count(left_values, right_values, prepared.op)

    # -- join + (group-by) aggregation grids ------------------------------------ #
    # (invoked by the TensorProgram Gemm operator; result assembly lives
    # in ops.GridAggregate)

    def _grids_by_matmul(self, left: PreparedAggSide, right: PreparedAggSide,
                         k: int, aggregates, plan: PlanCost):
        count_grid = self._one_grid(
            left, right, k, left.count_values, right.count_values, plan,
        )
        grids = []
        for i, spec in enumerate(aggregates):
            if spec.func == "count":
                grids.append(count_grid)
                continue
            grids.append(
                self._one_grid(
                    left, right, k, left.values_per_agg[i],
                    right.values_per_agg[i], plan,
                )
            )
        return grids, count_grid

    def _one_grid(self, left, right, k, left_values, right_values, plan):
        mat_a = _dense_from_coo(
            left.row_codes(), left.keys_mapped, left_values, (left.g, k)
        )
        mat_b = _dense_from_coo(
            right.row_codes(), right.keys_mapped, right_values, (right.g, k)
        )
        # Indicator products stay exact at any TCU precision; value
        # products run at the plan's precision.
        return self._execute_gemm(mat_a, mat_b.T, plan)

    def _execute_gemm(self, a: np.ndarray, b: np.ndarray,
                      plan: PlanCost) -> np.ndarray:
        if plan.strategy == Strategy.BLOCKED:
            result, _ = msplit_gemm(self.device, a, b, plan.precision)
            return np.asarray(result, dtype=np.float64)
        if plan.strategy == Strategy.SPARSE:
            tiled_a = TiledMatrix.from_coo(COOMatrix.from_dense(a))
            tiled_b = TiledMatrix.from_coo(COOMatrix.from_dense(b))
            result, _ = tiled_a.spmm(tiled_b)
            return result.to_dense()[: a.shape[0], : b.shape[1]]
        return np.asarray(
            self.device.tcu.matmul(a, b, plan.precision), dtype=np.float64
        )

    def _grids_semantic(self, left, right, aggregates, g1, g2):
        left_idx, right_idx = equi_join_indices(
            left.keys_mapped, right.keys_mapped
        )
        cell = left.row_codes()[left_idx] * g2 + right.row_codes()[right_idx]
        size = g1 * g2
        count_grid = np.bincount(
            cell,
            weights=left.count_values[left_idx] * right.count_values[right_idx],
            minlength=size,
        ).reshape(g1, g2)
        grids = []
        for i, spec in enumerate(aggregates):
            if spec.func == "count":
                grids.append(count_grid)
                continue
            weights = (
                left.values_per_agg[i][left_idx]
                * right.values_per_agg[i][right_idx]
            )
            grids.append(
                np.bincount(cell, weights=weights, minlength=size)
                .reshape(g1, g2)
            )
        return grids, count_grid


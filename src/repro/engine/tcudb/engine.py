"""TCUDB: the TCU-accelerated analytic query engine (Section 4).

Execution pipeline per query:

1. parse + bind (shared SQL front end);
2. **query analyzer** — pattern-match the bound query (Section 3);
3. **query optimizer** — Figure 6's workflow: range test, working-set
   test, density test, adaptive precision, cost comparison against the
   conventional GPU/CPU plans;
4. **code generator** — emit the CUDA C program for the chosen plan;
5. **program driver** — execute the plan on the simulated device;
6. fall back to the YDB executor (same device) whenever a test fails.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import UnsupportedQueryError
from repro.common.timing import STAGE_FILL, TimingBreakdown
from repro.engine.base import Engine, ExecutionMode, QueryResult
from repro.engine.physical import apply_order_limit
from repro.engine.relational import equi_join_count
from repro.engine.tcudb.codegen import generate_program
from repro.engine.tcudb.cost import OperatorGeometry, Strategy
from repro.engine.tcudb.driver import (
    CompositeKey,
    OperatorRun,
    PreparedAggSide,
    PreparedJoin,
    TCUDriver,
)
from repro.engine.tcudb.feasibility import (
    INDICATOR_RANGE,
    run_feasibility_test,
)
from repro.engine.tcudb.optimizer import OptimizerDecision, TCUOptimizer
from repro.engine.tcudb.patterns import (
    MatchFailure,
    PatternKind,
    TCUPattern,
    match_pattern,
)
from repro.engine.ydb import YDBEngine
from repro.hardware.calibration import run_calibration
from repro.hardware.gpu import GPUDevice
from repro.hardware.profiles import I7_7700K, HostProfile
from repro.sql.binder import BoundColumn, BoundQuery
from repro.sql.eval import Environment, conjunction_mask
from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.tensor.precision import Precision

from repro.engine.tcudb.transform import union_key_domain


# Per-qualifying-record cost of one chained-join step's matrix->table
# conversion and intermediate rebuild (Section 3.2's step 2/3).  Fitted to
# the paper's SSB results, where TCUDB's star joins win by 1.3x-3.7x over
# YDB rather than by orders of magnitude.
CHAINED_JOIN_FILL_S = 150e-9


@dataclass
class TCUDBOptions:
    """Tuning knobs (ablation benchmarks flip these)."""

    force_strategy: Strategy | None = None
    force_precision: Precision | None = None
    require_exact: bool = False  # reject plans with fp16 rounding
    disable_fallback: bool = False  # raise instead of falling back
    force_cpu_transform: bool = False


class TCUDBEngine(Engine):
    """The TCU-accelerated engine with YDB fallback."""

    name = "TCUDB"

    def __init__(
        self,
        catalog: Catalog,
        device: GPUDevice | None = None,
        host: HostProfile | None = None,
        mode: ExecutionMode = ExecutionMode.REAL,
        options: TCUDBOptions | None = None,
    ):
        super().__init__(catalog, mode)
        self.device = device if device is not None else GPUDevice()
        self.host = host if host is not None else I7_7700K
        self.calibration = run_calibration(self.device, self.host)
        self.options = options if options is not None else TCUDBOptions()
        self.optimizer = TCUOptimizer(
            self.device, self.host, self.calibration,
            allow_gpu_transform=not self.options.force_cpu_transform,
            force_strategy=self.options.force_strategy,
            force_precision=self.options.force_precision,
        )
        self.driver = TCUDriver(self.device, mode)
        self._fallback = YDBEngine(catalog, self.device, mode=mode)

    # ------------------------------------------------------------------ #

    def execute_bound(self, bound: BoundQuery) -> QueryResult:
        pattern = match_pattern(bound)
        if isinstance(pattern, MatchFailure):
            return self._fall_back(bound, pattern.reason)
        if pattern.kind == PatternKind.JOIN_2WAY:
            return self._run_join_2way(pattern)
        if pattern.kind == PatternKind.JOIN_AGG:
            return self._run_join_agg(pattern)
        return self._run_multiway(pattern)

    def _fall_back(self, bound: BoundQuery, reason: str) -> QueryResult:
        if self.options.disable_fallback:
            raise UnsupportedQueryError(f"TCU execution rejected: {reason}")
        result = self._fallback.execute_bound(bound)
        result.engine = self.name
        result.extra["executed_by"] = "YDB-fallback"
        result.extra["fallback_reason"] = reason
        return result

    # -- shared preparation ------------------------------------------------ #

    def _filtered_env(self, bound: BoundQuery, binding: str,
                      breakdown: TimingBreakdown) -> Environment:
        env = Environment.from_table(bound, binding)
        filters = bound.filters.get(binding, [])
        if filters:
            breakdown.add(
                STAGE_FILL,
                env.n_rows * self.host.scan_elem_s * len(filters),
            )
            env = env.filtered(conjunction_mask(filters, env, bound))
        return env

    def _referenced_columns(self, bound: BoundQuery, binding: str) -> int:
        return max(
            len({c.column for c in bound.resolution.values()
                 if c.binding == binding}),
            1,
        )

    def _apply_decision_overrides(
        self, decision: OptimizerDecision
    ) -> OptimizerDecision:
        # Forcing happens inside the optimizer (it must re-estimate the
        # plan, not relabel it); this hook remains for symmetry.
        return decision

    # -- Q1/Q5: two-way join ---------------------------------------------------- #

    def _run_join_2way(self, pattern: TCUPattern) -> QueryResult:
        bound = pattern.bound
        predicate = pattern.joins[0]
        prep = TimingBreakdown()
        left_env = self._filtered_env(bound, predicate.left.binding, prep)
        right_env = self._filtered_env(bound, predicate.right.binding, prep)
        left_keys = left_env.lookup(predicate.left.key)
        right_keys = right_env.lookup(predicate.right.key)
        domain = union_key_domain(left_keys, right_keys)
        n, m, k = left_keys.size, right_keys.size, domain.k
        nnz_left = self._comparison_nnz(domain, predicate.op, n)
        pairs = self._pair_count(domain, predicate.op)
        raw_bytes = 8.0 * (
            n * self._referenced_columns(bound, predicate.left.binding)
            + m * self._referenced_columns(bound, predicate.right.binding)
        )
        geometry = OperatorGeometry(
            g1=n, g2=m, k=k, nnz_left=nnz_left, nnz_right=m,
            n_tuples=n + m, raw_bytes=raw_bytes, result_rows=pairs,
            n_matmuls=1, needs_nonzero=True,
        )
        feasibility = run_feasibility_test(
            INDICATOR_RANGE, INDICATOR_RANGE, k,
            require_exact=self.options.require_exact,
        )
        decision = self.optimizer.decide(geometry, feasibility, pairs,
                                         grouped=False)
        decision = self._apply_decision_overrides(decision)
        if not decision.use_tcu and not self.options.force_strategy:
            return self._fall_back(bound, decision.reason)
        prepared = PreparedJoin(
            op=predicate.op,
            left_keys_mapped=domain.left,
            right_keys_mapped=domain.right,
            domain_values=domain.values,
            k=k,
        )
        run = self.driver.join_2way(prepared, decision.plan)
        program = generate_program(
            decision.plan, n, m, k, op_label="TCUJoin (2-way natural join)",
        )
        return self._join_result(pattern, left_env, right_env, run, prep,
                                 decision, program)

    def _comparison_nnz(self, domain, op: str, n: int) -> int:
        if op == "=":
            return n
        left_values = domain.values[domain.left]
        sorted_domain = domain.values
        if op == "<":
            counts = domain.k - np.searchsorted(sorted_domain, left_values,
                                                side="right")
        elif op == "<=":
            counts = domain.k - np.searchsorted(sorted_domain, left_values,
                                                side="left")
        elif op == ">":
            counts = np.searchsorted(sorted_domain, left_values, side="left")
        elif op == ">=":
            counts = np.searchsorted(sorted_domain, left_values, side="right")
        else:  # <>, !=
            counts = np.full(n, domain.k - 1)
        return int(counts.sum())

    def _pair_count(self, domain, op: str) -> int:
        from repro.engine.relational import nonequi_join_count

        if op == "=":
            return equi_join_count(domain.left, domain.right)
        return nonequi_join_count(
            domain.values[domain.left], domain.values[domain.right], op
        )

    def _join_result(self, pattern, left_env, right_env, run: OperatorRun,
                     prep, decision, program) -> QueryResult:
        bound = pattern.bound
        breakdown = prep.merge(run.breakdown)
        table = None
        if run.arrays is not None:
            left_idx, right_idx = run.arrays
            arrays = []
            names = []
            for item, column in zip(bound.select_items, pattern.projected):
                if isinstance(column, float):
                    arrays.append(np.full(left_idx.size, column))
                    names.append(item.output_name)
                    continue
                env = left_env if column.binding == (
                    pattern.joins[0].left.binding
                ) else right_env
                indices = left_idx if column.binding == (
                    pattern.joins[0].left.binding
                ) else right_idx
                arrays.append(env.lookup(column.key)[indices])
                names.append(item.output_name)
            arrays, names = self._apply_order_limit(bound, arrays, names)
            table = self._build_table(bound, arrays, names,
                                      list(pattern.projected))
        return QueryResult(
            engine=self.name,
            n_rows=run.n_rows if bound.limit is None
            else min(run.n_rows, bound.limit),
            breakdown=breakdown,
            table=table,
            plan_description=decision.explain(),
            extra={
                "decision": decision,
                "generated_code": program,
                "strategy": decision.plan.strategy.value,
                "precision": decision.plan.precision.value,
            },
        )

    # -- Q3/Q4/Fig5/SSB/PageRank: join + aggregation ------------------------------ #

    def _run_join_agg(self, pattern: TCUPattern) -> QueryResult:
        bound = pattern.bound
        prep = TimingBreakdown()
        fact = pattern.fact
        dims = [t.binding for t in bound.tables if t.binding != fact]
        b_side = self._choose_b_side(pattern, dims)
        fact_env = self._filtered_env(bound, fact, prep)
        fold = self._fold_dimensions(pattern, fact_env, dims, b_side, prep)
        if isinstance(fold, MatchFailure):
            return self._fall_back(bound, fold.reason)
        fact_env, weights, gathered, fact_keys = fold
        b_env = self._filtered_env(bound, b_side, prep)
        if fact_env.n_rows == 0 or b_env.n_rows == 0:
            return self._empty_agg_result(pattern, prep)
        b_predicate = self._join_for(pattern, fact, b_side)
        b_keys = b_env.lookup(
            (b_predicate.left if b_predicate.left.binding == b_side
             else b_predicate.right).key
        )
        domain = union_key_domain(fact_keys, b_keys)
        left_side, a_group_order = self._build_agg_side(
            pattern, bound, fact_env, gathered, weights, domain.left,
            side_bindings=set([fact]) | (set(dims) - {b_side}),
            b_side=False, b_env=None,
        )
        right_side, b_group_order = self._build_agg_side(
            pattern, bound, b_env, {}, np.ones(b_keys.size), domain.right,
            side_bindings={b_side}, b_side=True, b_env=b_env,
        )
        pairs = equi_join_count(domain.left, domain.right)
        geometry = self._agg_geometry(bound, pattern, left_side, right_side,
                                      domain.k, pairs, fact, b_side)
        feasibility = self._agg_feasibility(pattern, left_side, right_side,
                                            domain.k)
        decision = self.optimizer.decide(
            geometry, feasibility, pairs, grouped=bool(pattern.group_by)
        )
        decision = self._apply_decision_overrides(decision)
        if not decision.use_tcu and not self.options.force_strategy:
            return self._fall_back(bound, decision.reason)
        self.driver.set_group_order(a_group_order, b_group_order)
        run = self.driver.join_agg(
            left_side, right_side, domain.k, pattern.aggregates,
            pattern.outputs, decision.plan, grouped=bool(pattern.group_by),
        )
        program = generate_program(
            decision.plan, left_side.g, right_side.g, domain.k,
            op_label="TCU Join+GroupBy+Aggregation",
            n_matmuls=geometry.n_matmuls,
        )
        breakdown = prep.merge(run.breakdown)
        table = None
        n_rows = run.n_rows
        if run.arrays is not None:
            arrays, names = self._apply_order_limit(bound, run.arrays,
                                                    list(run.names))
            bycol = []
            for item in pattern.outputs:
                from repro.engine.tcudb.patterns import GroupRef

                bycol.append(
                    item.node.column if isinstance(item.node, GroupRef)
                    else None
                )
            table = self._build_table(bound, arrays, names, bycol)
            n_rows = table.num_rows
        return QueryResult(
            engine=self.name,
            n_rows=n_rows,
            breakdown=breakdown,
            table=table,
            plan_description=decision.explain(),
            extra={
                "decision": decision,
                "generated_code": program,
                "strategy": decision.plan.strategy.value,
                "precision": decision.plan.precision.value,
            },
        )

    def _empty_agg_result(self, pattern: TCUPattern,
                          prep: TimingBreakdown) -> QueryResult:
        """An aggregation over an empty join yields zero groups."""
        names = [item.name for item in pattern.outputs]
        arrays = [np.array([]) for _ in names]
        table = None
        if self.mode == ExecutionMode.REAL:
            table = self._build_table(
                pattern.bound, arrays, names, [None] * len(names)
            )
        return QueryResult(
            engine=self.name, n_rows=0, breakdown=prep, table=table,
            plan_description="empty input: no TCU operator issued",
            extra={"strategy": "none", "precision": "none"},
        )

    def _choose_b_side(self, pattern: TCUPattern, dims: list[str]) -> str:
        for column in pattern.group_by:
            if column.binding in dims:
                return column.binding
        return dims[-1]

    def _join_for(self, pattern: TCUPattern, fact: str, dim: str):
        for predicate in pattern.joins:
            bindings = {predicate.left.binding, predicate.right.binding}
            if bindings == {fact, dim}:
                return predicate
        raise UnsupportedQueryError(f"no join between {fact} and {dim}")

    def _fold_dimensions(self, pattern: TCUPattern, fact_env: Environment,
                         dims: list[str], b_side: str, prep: TimingBreakdown):
        """Fold every non-B dimension into the fact side.

        Each fold is one step of the paper's multi-way join chain
        (Section 3.2): a join realized as a matrix product followed by a
        CUDA nonzero() matrix->table conversion that rebuilds the
        intermediate for the next step.  We charge that per-qualifying-
        record conversion cost and shrink the fact side progressively, so
        selective dimensions (e.g. SSB Q4.1's region filters) make the
        remaining chain cheaper — as in the paper.

        Unique-key dimensions gather their group/factor columns onto fact
        rows; duplicate-key dimensions that contribute nothing multiply
        the fact weight by their key multiplicity (exact bag semantics).
        """
        bound = pattern.bound
        weights = np.ones(fact_env.n_rows)
        gathered: dict[str, np.ndarray] = {}
        fact = pattern.fact
        for dim in dims:
            if dim == b_side:
                continue
            predicate = self._join_for(pattern, fact, dim)
            fact_col = (predicate.left if predicate.left.binding == fact
                        else predicate.right)
            dim_col = (predicate.left if predicate.left.binding == dim
                       else predicate.right)
            dim_env = self._filtered_env(bound, dim, prep)
            dim_keys = dim_env.lookup(dim_col.key)
            fact_keys = fact_env.lookup(fact_col.key)
            # Chained-join step: matrix fill + product + nonzero()
            # conversion of the intermediate back to tuples.
            prep.add(
                STAGE_FILL,
                fact_keys.size * CHAINED_JOIN_FILL_S
                + (fact_keys.size + dim_keys.size) * self.host.fill_elem_s,
            )
            prep.add(STAGE_FILL,
                     self.device.cuda.gather_seconds(fact_keys.size))
            needed = self._dim_needed_columns(pattern, dim)
            unique_keys = np.unique(dim_keys)
            if unique_keys.size == 0:
                # Filtered dimension is empty: the join eliminates every
                # fact row.
                empty = np.zeros(fact_env.n_rows, dtype=bool)
                fact_env = fact_env.filtered(empty)
                weights = weights[empty]
                gathered = {
                    k: np.asarray(v)[empty] for k, v in gathered.items()
                }
                for key in needed:
                    gathered[key] = np.array([], dtype=np.int64)
                continue
            is_unique = unique_keys.size == dim_keys.size
            if needed and not is_unique:
                return MatchFailure(
                    f"dimension {dim} has duplicate join keys but "
                    "contributes group/factor columns"
                )
            positions = np.searchsorted(unique_keys, fact_keys)
            positions = np.clip(positions, 0, max(unique_keys.size - 1, 0))
            matched = (
                unique_keys[positions] == fact_keys
                if unique_keys.size else np.zeros(fact_keys.size, dtype=bool)
            )
            if is_unique:
                row_of = np.argsort(dim_keys, kind="stable")
                dim_rows = row_of[np.clip(positions, 0,
                                          max(dim_keys.size - 1, 0))]
                for key in needed:
                    gathered[key] = dim_env.lookup(key)[dim_rows]
            else:
                counts = np.bincount(
                    np.searchsorted(unique_keys, dim_keys),
                    minlength=max(unique_keys.size, 1),
                )
                multiplicity = np.where(matched, counts[positions], 0)
                weights = weights * multiplicity
            if not matched.all():
                fact_env = fact_env.filtered(matched)
                weights = weights[matched]
                gathered = {k: v[matched] for k, v in gathered.items()}
        fact_keys = self._final_fact_keys(pattern, fact_env, b_side)
        return fact_env, weights, gathered, fact_keys

    def _final_fact_keys(self, pattern: TCUPattern, fact_env: Environment,
                         b_side: str) -> np.ndarray:
        predicate = self._join_for(pattern, pattern.fact, b_side)
        fact_col = (predicate.left if predicate.left.binding == pattern.fact
                    else predicate.right)
        return fact_env.lookup(fact_col.key)

    def _dim_needed_columns(self, pattern: TCUPattern, dim: str) -> list[str]:
        needed = [c.key for c in pattern.group_by if c.binding == dim]
        for spec in pattern.aggregates:
            needed.extend(
                f.column.key for f in spec.factors_for(dim)
            )
        return sorted(set(needed))

    def _build_agg_side(self, pattern, bound, env, gathered, weights,
                        mapped_keys, side_bindings, b_side, b_env):
        def column_array(column: BoundColumn) -> np.ndarray:
            if column.key in gathered:
                return gathered[column.key]
            return env.lookup(column.key)

        group_cols = [c for c in pattern.group_by
                      if c.binding in side_bindings]
        group = None
        group_order = [c.key for c in group_cols]
        if group_cols:
            group = CompositeKey.build(
                [np.asarray(column_array(c)) for c in group_cols]
            )
        values_per_agg: list[np.ndarray] = []
        n = mapped_keys.size
        for spec in pattern.aggregates:
            values = np.full(n, 1.0)
            if not b_side:
                values = values * spec.constant * weights
            for factor in spec.factors:
                if factor.column.binding not in side_bindings:
                    continue
                array = np.asarray(column_array(factor.column),
                                   dtype=np.float64)
                values = values * (array if factor.power == 1
                                   else 1.0 / array)
            values_per_agg.append(values)
        count_values = weights if not b_side else np.ones(n)
        side = PreparedAggSide(
            keys_mapped=np.asarray(mapped_keys),
            group=group,
            values_per_agg=values_per_agg,
            count_values=np.asarray(count_values, dtype=np.float64),
        )
        return side, group_order

    def _agg_geometry(self, bound, pattern, left_side, right_side, k, pairs,
                      fact, b_side) -> OperatorGeometry:
        nnz_left = int(np.unique(
            left_side.row_codes() * k + left_side.keys_mapped
        ).size)
        nnz_right = int(np.unique(
            right_side.row_codes() * k + right_side.keys_mapped
        ).size)
        n = left_side.keys_mapped.size
        m = right_side.keys_mapped.size
        raw_bytes = 8.0 * (
            n * self._referenced_columns(bound, fact)
            + m * self._referenced_columns(bound, b_side)
        )
        value_specs = sum(
            1 for spec in pattern.aggregates if spec.func != "count"
        )
        has_value_fill = any(spec.factors for spec in pattern.aggregates)
        return OperatorGeometry(
            g1=left_side.g, g2=right_side.g, k=k,
            nnz_left=nnz_left, nnz_right=nnz_right,
            n_tuples=n + m, raw_bytes=raw_bytes,
            result_rows=min(left_side.g * right_side.g, max(pairs, 1)),
            n_matmuls=value_specs + 1,  # +1 for the COUNT/indicator grid
            needs_nonzero=True,
            fill_scale=4.0 if has_value_fill else 1.0,
        )

    def _agg_feasibility(self, pattern, left_side, right_side, k):
        """Exact data-range test over the prepared operand matrices.

        Both sides are fully materialized by the time the optimizer
        decides, so the test computes the exact per-cell sums each
        matrix will hold.  (The previous statistics-based variant widened
        column ranges by the *average* duplicate multiplicity, which
        under-estimates the max per-cell accumulation — e.g. COUNT over
        a skewed fact key — and admitted int4/fp16 plans the simulated
        TCU then rejected with a PrecisionError.)
        """
        worst_left = self._exact_cell_range(left_side, k,
                                            left_side.count_values)
        worst_right = self._exact_cell_range(right_side, k,
                                             right_side.count_values)
        for i, spec in enumerate(pattern.aggregates):
            if spec.func == "count":
                continue
            left_range = self._exact_cell_range(
                left_side, k, left_side.values_per_agg[i]
            )
            right_range = self._exact_cell_range(
                right_side, k, right_side.values_per_agg[i]
            )
            if left_range is None or right_range is None:
                return run_feasibility_test(None, None, k)
            worst_left = self._wider(worst_left, left_range)
            worst_right = self._wider(worst_right, right_range)
        return run_feasibility_test(
            worst_left or INDICATOR_RANGE, worst_right or INDICATOR_RANGE, k,
            require_exact=self.options.require_exact,
        )

    @staticmethod
    def _exact_cell_range(side, k, values):
        """Exact [min, max] of one operand matrix's cell sums (0 included
        for empty cells); None when a value is non-finite (e.g. division
        by a zero-valued column)."""
        from repro.tensor.precision import ValueRange

        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return INDICATOR_RANGE
        if not np.all(np.isfinite(values)):
            return None
        cells = side.row_codes() * k + side.keys_mapped
        _, inverse = np.unique(cells, return_inverse=True)
        sums = np.bincount(inverse, weights=values)
        # The fill values (not just the accumulated endpoints) decide
        # integrality: fractional fills quantize to garbage at int4/int8.
        integral = bool(np.all(values == np.rint(values)))
        return ValueRange(float(min(sums.min(), 0.0)),
                          float(max(sums.max(), 0.0)),
                          integral=integral)

    @staticmethod
    def _wider(a, b):
        from repro.tensor.precision import ValueRange

        if a is None:
            return b
        if b is None:
            return a
        return ValueRange(min(a.lo, b.lo), max(a.hi, b.hi),
                          integral=a.is_integral and b.is_integral)

    # -- Q2: multi-way join chains ----------------------------------------------- #

    def _run_multiway(self, pattern: TCUPattern) -> QueryResult:
        bound = pattern.bound
        prep = TimingBreakdown()
        envs = {
            t.binding: self._filtered_env(bound, t.binding, prep)
            for t in bound.tables
        }
        order = [t.binding for t in bound.tables]
        indices: dict[str, np.ndarray] = {
            order[0]: np.arange(envs[order[0]].n_rows)
        }
        joined = {order[0]}
        breakdown = prep
        remaining = list(pattern.joins)
        decisions = []
        current_rows = envs[order[0]].n_rows
        for binding in order[1:]:
            predicate = self._pick_chain_predicate(remaining, joined, binding)
            if predicate is None:
                return self._fall_back(bound, "join chain is disconnected")
            remaining.remove(predicate)
            inner, outer = ((predicate.left, predicate.right)
                            if predicate.right.binding == binding
                            else (predicate.right, predicate.left))
            left_keys = envs[inner.binding].lookup(inner.key)[
                indices[inner.binding]
            ]
            right_keys = envs[binding].lookup(outer.key)
            domain = union_key_domain(left_keys, right_keys)
            n, m, k = left_keys.size, right_keys.size, domain.k
            pairs = equi_join_count(domain.left, domain.right)
            geometry = OperatorGeometry(
                g1=n, g2=m, k=k, nnz_left=n, nnz_right=m, n_tuples=n + m,
                raw_bytes=8.0 * (n + m), result_rows=pairs, n_matmuls=1,
            )
            feasibility = run_feasibility_test(INDICATOR_RANGE,
                                               INDICATOR_RANGE, k)
            decision = self.optimizer.decide(geometry, feasibility, pairs,
                                             grouped=False)
            decision = self._apply_decision_overrides(decision)
            if not decision.use_tcu and not self.options.force_strategy:
                return self._fall_back(bound, f"step {binding}: "
                                       + decision.reason)
            decisions.append(decision)
            prepared = PreparedJoin(
                op="=", left_keys_mapped=domain.left,
                right_keys_mapped=domain.right,
                domain_values=domain.values, k=k,
            )
            run = self.driver.join_2way(prepared, decision.plan)
            breakdown = breakdown.merge(run.breakdown)
            if run.arrays is None:
                current_rows = run.n_rows
                indices = {}
                joined.add(binding)
                continue
            left_idx, right_idx = run.arrays
            indices = {b: idx[left_idx] for b, idx in indices.items()}
            indices[binding] = right_idx
            joined.add(binding)
            current_rows = int(left_idx.size)
        table = None
        if indices:
            arrays, names = [], []
            for item, column in zip(bound.select_items, pattern.projected):
                if isinstance(column, float):
                    arrays.append(np.full(current_rows, column))
                    names.append(item.output_name)
                    continue
                env = envs[column.binding]
                arrays.append(env.lookup(column.key)[indices[column.binding]])
                names.append(item.output_name)
            arrays, names = self._apply_order_limit(bound, arrays, names)
            table = self._build_table(bound, arrays, names, pattern.projected)
        program = generate_program(
            decisions[-1].plan, 0, 0, 0,
            op_label=f"TCU multi-way join ({len(decisions)} steps)",
        ) if decisions else None
        return QueryResult(
            engine=self.name,
            n_rows=current_rows,
            breakdown=breakdown,
            table=table,
            plan_description="\n---\n".join(d.explain() for d in decisions),
            extra={
                "decisions": decisions,
                "generated_code": program,
                "strategy": decisions[-1].plan.strategy.value
                if decisions else None,
            },
        )

    @staticmethod
    def _pick_chain_predicate(predicates, joined, binding):
        for predicate in predicates:
            bindings = {predicate.left.binding, predicate.right.binding}
            if binding in bindings and bindings - {binding} <= joined:
                return predicate
        return None

    # -- output helpers ------------------------------------------------------------- #

    def _apply_order_limit(self, bound: BoundQuery, arrays, names):
        # Shared strict helper: unresolvable ORDER BY keys raise instead
        # of being silently skipped (which mis-ordered LIMIT results).
        if arrays and arrays[0] is not None:
            arrays = apply_order_limit(bound, list(arrays), list(names))
        return arrays, names

    def _build_table(self, bound: BoundQuery, arrays, names,
                     columns: list[BoundColumn | None]) -> Table:
        out: dict[str, Column] = {}
        for i, (array, name) in enumerate(zip(arrays, names)):
            array = np.asarray(array)
            source = columns[i] if i < len(columns) else None
            if not isinstance(source, BoundColumn):
                source = None
            if source is not None and source.dtype == DataType.STRING:
                dictionary = bound.binding(source.binding).table.column(
                    source.column
                ).dictionary
                column = Column(array.astype(np.int64), DataType.STRING,
                                dictionary)
            elif source is not None and source.dtype == DataType.INT64:
                column = Column(array.astype(np.int64), DataType.INT64)
            elif array.dtype.kind in ("i", "u"):
                column = Column(array.astype(np.int64), DataType.INT64)
            else:
                column = Column(array.astype(np.float64), DataType.FLOAT64)
            unique = name
            suffix = 1
            while unique in out:
                suffix += 1
                unique = f"{name}_{suffix}"
            out[unique] = column
        return Table("result", out)

"""TCUDB: the TCU-accelerated analytic query engine (Section 4).

Execution pipeline per query:

1. parse + bind (shared SQL front end);
2. **lowering** (:mod:`repro.engine.tcudb.lower`) — translate the bound
   query into a :class:`~repro.engine.tcudb.program.TensorProgram`: a
   DAG of composable TCU operators (pattern lowering for the
   matmul-encodable core shapes, hybrid lowering with a conventional
   pre-stage for partially-expressible queries);
3. **per-operator optimization** — every ``Gemm`` node runs Figure 6's
   workflow (range test, working-set test, density test, adaptive
   precision, cost comparison) for its own product;
4. **code generation** — the program emits its CUDA C source one
   section per operator, so executed plans stay inspectable;
5. **execution** — operators thread the timing/precision/feasibility
   machinery through the DAG on the simulated device;
6. fall back to the YDB executor (same device) only when lowering or an
   operator's tests reject TCU execution outright.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import QueryCancelled, UnsupportedQueryError
from repro.common.faults import SITE_CACHE_GET, fault_point
from repro.engine.base import Engine, ExecutionMode, QueryResult
from repro.engine.cache import ProgramCache
from repro.engine.physical import apply_order_limit
from repro.engine.tcudb.cost import Strategy
from repro.engine.tcudb.driver import TCUDriver
from repro.engine.tcudb.lower import LoweredQuery, lower_hybrid, lower_query
from repro.engine.tcudb.ops import FallbackRequired, OutputValue
from repro.engine.tcudb.optimizer import TCUOptimizer
from repro.engine.tcudb.patterns import MatchFailure
from repro.engine.tcudb.program import ProgramContext
from repro.engine.tcudb.specialize import specialize_program
from repro.engine.ydb import YDBEngine
from repro.hardware.calibration import run_calibration
from repro.hardware.gpu import GPUDevice
from repro.hardware.profiles import I7_7700K, HostProfile
from repro.sql.binder import BoundColumn, BoundQuery
from repro.sql.prepared import PreparedStatement
from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.tensor.precision import Precision


@dataclass
class TCUDBOptions:
    """Tuning knobs (ablation benchmarks flip these)."""

    force_strategy: Strategy | None = None
    force_precision: Precision | None = None
    require_exact: bool = False  # reject plans with fp16 rounding
    disable_fallback: bool = False  # raise instead of falling back
    force_cpu_transform: bool = False
    # The TensorProgram fusion pass (repro.engine.tcudb.fuse): on by
    # default; ``fusion=False`` executes the unfused per-aggregate
    # operator DAG (bench ablation / debugging).
    fusion: bool = True
    # Chunked (morsel-driven) execution: scans walk stat-pruned row
    # chunks, the driver accumulates GEMM grids over key-domain chunks,
    # and hybrid pre-stages stream.  ``chunked_execution=False`` is the
    # legacy contiguous ablation switch; ``chunk_rows=None`` takes the
    # storage layer's chunk-size policy.
    chunked_execution: bool = True
    chunk_rows: int | None = None
    # Streaming hybrid pre-stage: lets hybrid-class queries run in
    # ANALYTIC mode (bounded by the stage's row budget) instead of
    # falling back with kind="mode".
    stream_prestage: bool = True
    # Morsel parallelism: worker-thread count for the independent chunk
    # loops (scan filters, probe-chunk GEMMs, grid partials, streaming
    # pre-stages).  ``None`` defers to the REPRO_WORKERS policy; 1 is
    # strictly sequential.  Parallel output is bit-identical.
    workers: int | None = None
    # Cache namespace: distinguishes engines that share one ProgramCache
    # but compile against different catalogs (e.g. the per-shard engines
    # of a DistributedEngine).  Without it, shard engines would share a
    # cache key while their catalog fingerprints differ, so every shard
    # execution would evict the previous shard's entry (the fingerprint
    # guard treats a mismatch as stale) and the cache would thrash.
    cache_namespace: str = ""
    # Tensor backend for the kernel primitives: "sim" (the simulated
    # unit, the reference oracle), "fast" (optimized NumPy/BLAS) or
    # "torch" (optional).  ``None`` defers to the REPRO_BACKEND policy;
    # see repro.tensor.backend.  Simulated seconds are charged by the
    # cost model regardless of backend, so this only changes host
    # wall-clock (within the documented numeric envelope).
    backend: str | None = None


class TCUDBEngine(Engine):
    """The TCU-accelerated engine with YDB fallback."""

    name = "TCUDB"

    def __init__(
        self,
        catalog: Catalog,
        device: GPUDevice | None = None,
        host: HostProfile | None = None,
        mode: ExecutionMode = ExecutionMode.REAL,
        options: TCUDBOptions | None = None,
        program_cache: ProgramCache | None = None,
    ):
        super().__init__(catalog, mode)
        # Compile-once serving: when a ProgramCache is attached (e.g. by
        # the QueryServer, shared across sessions), prepared executions
        # reuse lowered+fused TensorPrograms keyed on normalized SQL,
        # and one-shot execute() routes through the prepared path.
        self.program_cache = program_cache
        self.device = device if device is not None else GPUDevice()
        self.host = host if host is not None else I7_7700K
        self.calibration = run_calibration(self.device, self.host)
        self.options = options if options is not None else TCUDBOptions()
        self.optimizer = TCUOptimizer(
            self.device, self.host, self.calibration,
            allow_gpu_transform=not self.options.force_cpu_transform,
            force_strategy=self.options.force_strategy,
            force_precision=self.options.force_precision,
        )
        self.driver = TCUDriver(self.device, mode,
                                chunk_rows=self._driver_chunk_rows(),
                                workers=self.options.workers,
                                backend=self.options.backend)
        self._fallback = YDBEngine(catalog, self.device, mode=mode)
        # Per-query cooperative cancellation: the serving front-end sets
        # this before execute_bound and clears it after; operators poll
        # it at chunk/op boundaries.
        self.cancel_token = None

    def _driver_chunk_rows(self) -> int | None:
        if not self.options.chunked_execution:
            return None
        from repro.storage.chunk import chunk_rows_policy

        return chunk_rows_policy(self.options.chunk_rows)

    # ------------------------------------------------------------------ #

    def execute(
        self,
        sql: str | PreparedStatement,
        params: dict | list | tuple | None = None,
    ) -> QueryResult:
        if isinstance(sql, PreparedStatement):
            return self.execute_prepared(sql, params)
        if self.program_cache is None:
            return super().execute(sql, params)
        # With a cache attached, one-shot statements route through the
        # prepared path so repeated identical SQL reuses its program
        # (literals render inline, so the normalized text is the key).
        return self.execute_prepared(self.prepare(sql), params)

    def execute_prepared(
        self,
        prepared: PreparedStatement,
        params: dict | list | tuple | None = None,
    ) -> QueryResult:
        """Compile-once execution: lower the parameter template at most
        once (per catalog fingerprint), then stamp this call's values in
        via :func:`~repro.engine.tcudb.specialize.specialize_program`.

        Cached lowering *failures* are reused too: a statement the
        matcher rejects falls back to YDB without re-matching.  The
        cost-model contract holds because every ``Gemm`` re-runs the
        Figure 6 strategy decision per execution against the execution
        bound — the cache freezes program *structure*, not the
        literal-dependent density/precision choices.
        """
        exec_bound, values = prepared.bind_execution(params)
        cache = self.program_cache
        key = fingerprint = None
        cached = None
        if cache is not None:
            key = (prepared.normalized_sql, self._cache_options_key())
            fingerprint = self.catalog.fingerprint()
            cached = cache.get(key, fingerprint)

        def compile_fresh() -> LoweredQuery | MatchFailure:
            template = lower_query(prepared.bound, self.mode,
                                   fusion=self.options.fusion,
                                   streaming=self.options.stream_prestage)
            if cache is not None:
                cache.put(key, fingerprint, template)
            return template

        def relower() -> LoweredQuery | MatchFailure:
            hybrid = lower_hybrid(prepared.bound, self.mode,
                                  fusion=self.options.fusion,
                                  streaming=self.options.stream_prestage)
            if not isinstance(hybrid, LoweredQuery):
                return hybrid
            if cache is not None:
                # The pattern program failed on a data-dependent shape
                # that is stable under this fingerprint (the data can
                # only change by re-registering, which changes the
                # fingerprint) — remember the hybrid template instead.
                cache.put(key, fingerprint, hybrid)
            return LoweredQuery(
                program=specialize_program(hybrid.program, exec_bound,
                                           values),
                pattern=hybrid.pattern,
                hybrid=hybrid.hybrid,
            )

        def run(template: LoweredQuery | MatchFailure) -> QueryResult:
            specialized = template
            if isinstance(template, LoweredQuery):
                specialized = LoweredQuery(
                    program=specialize_program(template.program, exec_bound,
                                               values),
                    pattern=template.pattern,
                    hybrid=template.hybrid,
                )
            return self._run_lowered(exec_bound, specialized, relower)

        if cached is not None:
            # Hit-path exception safety: a template that raises during
            # specialization or execution is evicted (not pinned) and
            # the statement recompiles fresh, so one poisoned entry
            # cannot fail every subsequent hit.  Cancellation is the
            # caller's signal, never the template's fault.
            try:
                fault_point(SITE_CACHE_GET)
                return run(cached)
            except QueryCancelled:
                raise
            except Exception:
                cache.poison(key)
                return run(compile_fresh())
        return run(compile_fresh())

    def _cache_options_key(self) -> tuple:
        """Compile-relevant engine configuration, part of the cache key.

        Every option that changes what ``lower_query`` produces (or how
        operators execute) except ``workers``: morsel parallelism is
        bit-identical to sequential execution by contract, so sessions
        with different worker counts share programs.  The *resolved*
        backend name is part of the key: backends only differ within the
        numeric envelope, but cached-program isolation keeps any future
        backend-specific specialization honest (and the key resolves the
        env default so two engines under different ``REPRO_BACKEND``
        values never share an entry).
        """
        options = self.options
        return (
            self.mode.value,
            options.force_strategy,
            options.force_precision,
            options.require_exact,
            options.disable_fallback,
            options.force_cpu_transform,
            options.fusion,
            options.chunked_execution,
            options.chunk_rows,
            options.stream_prestage,
            options.cache_namespace,
            self.driver.backend.name,
        )

    def execute_bound(self, bound: BoundQuery) -> QueryResult:
        lowered = lower_query(bound, self.mode, fusion=self.options.fusion,
                              streaming=self.options.stream_prestage)

        def relower() -> LoweredQuery | MatchFailure:
            return lower_hybrid(bound, self.mode,
                                fusion=self.options.fusion,
                                streaming=self.options.stream_prestage)

        return self._run_lowered(bound, lowered, relower)

    def _run_lowered(
        self,
        bound: BoundQuery,
        lowered: LoweredQuery | MatchFailure,
        relower,
    ) -> QueryResult:
        if isinstance(lowered, MatchFailure):
            return self._fall_back(bound, lowered.reason, lowered.kind)
        ctx = self._context(bound)
        try:
            output = lowered.program.run(ctx)
        except FallbackRequired as failure:
            if failure.kind == "pattern" and not lowered.hybrid:
                # The pattern program discovered a data-dependent shape
                # problem (e.g. duplicate-key dimensions) at run time;
                # retry through the hybrid pipeline before giving up.
                hybrid = relower()
                if isinstance(hybrid, LoweredQuery):
                    ctx = self._context(bound)
                    try:
                        output = hybrid.program.run(ctx)
                        lowered = hybrid
                    except FallbackRequired as second:
                        return self._fall_back(bound, second.reason,
                                               second.kind)
                elif hybrid.kind == "mode":
                    # Hybrid-expressible, blocked only by the mode.
                    return self._fall_back(bound, hybrid.reason, hybrid.kind)
                else:
                    return self._fall_back(bound, failure.reason,
                                           failure.kind)
            else:
                return self._fall_back(bound, failure.reason, failure.kind)
        return self._finalize(bound, lowered, ctx, output)

    def _context(self, bound: BoundQuery) -> ProgramContext:
        return ProgramContext(
            bound=bound, device=self.device, host=self.host, mode=self.mode,
            options=self.options, optimizer=self.optimizer,
            driver=self.driver, cancel_token=self.cancel_token,
        )

    def _fall_back(self, bound: BoundQuery, reason: str,
                   kind: str = "pattern") -> QueryResult:
        if self.options.disable_fallback:
            raise UnsupportedQueryError(f"TCU execution rejected: {reason}")
        result = self._fallback.execute_bound(bound)
        result.engine = self.name
        result.extra["executed_by"] = "YDB-fallback"
        result.extra["fallback_reason"] = reason
        result.extra["fallback_kind"] = kind
        return result

    # -- result assembly ------------------------------------------------ #

    def _finalize(self, bound: BoundQuery, lowered: LoweredQuery,
                  ctx: ProgramContext, output: OutputValue) -> QueryResult:
        program = lowered.program
        decisions = [ctx.decisions[op.id] for op in program.ops
                     if op.id in ctx.decisions]
        table = None
        n_rows = output.n_rows
        if output.arrays is not None:
            arrays = apply_order_limit(bound, list(output.arrays),
                                       list(output.names))
            table = self._build_table(bound, arrays, output.names,
                                      output.by_columns)
            n_rows = table.num_rows
        elif bound.limit is not None:
            n_rows = min(n_rows, bound.limit)
        if decisions:
            last = decisions[-1]
            strategy = last.plan.strategy.value if last.plan else "none"
            precision = last.plan.precision.value if last.plan else "none"
            generated = program.generated_code(ctx)
            plan_description = "\n---\n".join(
                [program.describe()] + [d.explain() for d in decisions]
            )
        else:
            # Empty inputs short-circuit before any product is priced.
            strategy = precision = "none"
            generated = None
            plan_description = "empty input: no TCU operator issued"
        extra = {
            "decision": decisions[-1] if decisions else None,
            "decisions": decisions,
            "generated_code": generated,
            "strategy": strategy,
            "precision": precision,
            "executed_by": "TCU-hybrid" if lowered.hybrid else "TCU",
            "fusion": self.options.fusion,
            "program": program,
            "program_listing": program.describe(),
            "operator_costs": ctx.op_costs,
        }
        return QueryResult(
            engine=self.name,
            n_rows=n_rows,
            breakdown=ctx.breakdown,
            table=table,
            plan_description=plan_description,
            extra=extra,
        )

    def _build_table(self, bound: BoundQuery, arrays, names,
                     columns: list[BoundColumn | None]) -> Table:
        out: dict[str, Column] = {}
        for i, (array, name) in enumerate(zip(arrays, names)):
            array = np.asarray(array)
            source = columns[i] if i < len(columns) else None
            if not isinstance(source, BoundColumn):
                source = None
            if source is not None and source.dtype == DataType.STRING:
                dictionary = bound.binding(source.binding).table.column(
                    source.column
                ).dictionary
                column = Column(array.astype(np.int64), DataType.STRING,
                                dictionary)
            elif source is not None and source.dtype == DataType.INT64:
                column = Column(array.astype(np.int64), DataType.INT64)
            elif array.dtype.kind in ("i", "u"):
                column = Column(array.astype(np.int64), DataType.INT64)
            else:
                column = Column(array.astype(np.float64), DataType.FLOAT64)
            unique = name
            suffix = 1
            while unique in out:
                suffix += 1
                unique = f"{name}_{suffix}"
            out[unique] = column
        return Table("result", out)

"""The data-range feasibility test (Section 4.2.1).

Given the value ranges of both operand matrices (computed exactly from
the prepared sides by ``ops._exact_cell_range``), the test
bounds the largest possible result as m1 * m2 * k and picks the most
compact TCU-compatible precision (int4 -> int8 -> fp16) — or rejects
TCU execution when no precision can represent the data.

Indicator (0/1) matrices — plain joins — are always exactly
representable, which is why the paper's Table 1 shows zero error for
those cases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tensor.precision import ValueRange
from repro.tensor.quantize import PrecisionChoice, choose_precision


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of the range test for one TCU operator."""

    feasible: bool
    choice: PrecisionChoice | None
    left_range: ValueRange | None
    right_range: ValueRange | None
    result_bound: float
    reason: str = ""


INDICATOR_RANGE = ValueRange(0.0, 1.0)


def run_feasibility_test(
    left_range: ValueRange | None,
    right_range: ValueRange | None,
    k: int,
    require_exact: bool = False,
) -> FeasibilityReport:
    """Figure 6's data-range test: pick the most compact workable type."""
    if left_range is None or right_range is None:
        return FeasibilityReport(
            feasible=False, choice=None, left_range=left_range,
            right_range=right_range, result_bound=math.inf,
            reason="operand value range is unbounded (division by a column "
                   "whose range spans zero)",
        )
    choice = choose_precision(left_range, right_range, k,
                              require_exact=require_exact)
    bound = left_range.magnitude * right_range.magnitude * max(k, 1)
    if not choice.feasible:
        return FeasibilityReport(
            feasible=False, choice=choice, left_range=left_range,
            right_range=right_range, result_bound=bound,
            reason="no TCU-compatible data type can represent the inputs "
                   "at the required accuracy",
        )
    return FeasibilityReport(
        feasible=True, choice=choice, left_range=left_range,
        right_range=right_range, result_bound=bound,
    )

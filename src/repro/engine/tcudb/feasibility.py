"""The data-range feasibility test (Section 4.2.1).

From per-column statistics the test derives the value ranges of both
operand matrices, bounds the largest possible result as m1 * m2 * k, and
picks the most compact TCU-compatible precision (int4 -> int8 -> fp16) —
or rejects TCU execution when no precision can represent the data.

Indicator (0/1) matrices — plain joins, COUNT — are always exactly
representable, which is why the paper's Table 1 shows zero error for
those cases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.engine.tcudb.patterns import AggregateSpec, Factor
from repro.sql.binder import BoundQuery
from repro.tensor.precision import ValueRange
from repro.tensor.quantize import PrecisionChoice, choose_precision


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of the range test for one TCU operator."""

    feasible: bool
    choice: PrecisionChoice | None
    left_range: ValueRange | None
    right_range: ValueRange | None
    result_bound: float
    reason: str = ""


INDICATOR_RANGE = ValueRange(0.0, 1.0)


def factor_range(bound: BoundQuery, factor: Factor) -> ValueRange | None:
    """Value range of one multiplicative factor (column or its inverse)."""
    stats = bound.column_stats(factor.column)
    lo, hi = stats.min_value, stats.max_value
    if factor.power == 1:
        return ValueRange(lo, hi)
    # Inverse factor: bounded only when the column cannot hit zero.
    if lo > 0:
        return ValueRange(1.0 / hi, 1.0 / lo)
    if hi < 0:
        return ValueRange(1.0 / lo, 1.0 / hi)
    return None


def product_range(ranges: list[ValueRange]) -> ValueRange:
    """Interval product of factor ranges (conservative, exact for
    monotone factors)."""
    lo, hi = 1.0, 1.0
    for r in ranges:
        candidates = [lo * r.lo, lo * r.hi, hi * r.lo, hi * r.hi]
        lo, hi = min(candidates), max(candidates)
    return ValueRange(lo, hi)


def side_value_range(
    bound: BoundQuery,
    spec: AggregateSpec | None,
    binding: str,
    multiplicity: float,
    constant: float = 1.0,
) -> ValueRange | None:
    """Range of one side matrix's entries.

    Entries are sums over duplicate (group, key) coordinates, so the
    per-tuple factor-product range is widened by the estimated duplicate
    multiplicity (bag semantics).
    """
    if spec is None:
        return INDICATOR_RANGE
    factors = spec.factors_for(binding)
    if not factors:
        base = ValueRange(1.0, 1.0)
    else:
        ranges = []
        for factor in factors:
            r = factor_range(bound, factor)
            if r is None:
                return None
            ranges.append(r)
        base = product_range(ranges)
    mult = max(multiplicity, 1.0)
    scaled = ValueRange(
        min(base.lo * constant, base.lo * constant * mult,
            base.hi * constant, base.hi * constant * mult),
        max(base.lo * constant, base.lo * constant * mult,
            base.hi * constant, base.hi * constant * mult),
    )
    return scaled


def run_feasibility_test(
    left_range: ValueRange | None,
    right_range: ValueRange | None,
    k: int,
    require_exact: bool = False,
) -> FeasibilityReport:
    """Figure 6's data-range test: pick the most compact workable type."""
    if left_range is None or right_range is None:
        return FeasibilityReport(
            feasible=False, choice=None, left_range=left_range,
            right_range=right_range, result_bound=math.inf,
            reason="operand value range is unbounded (division by a column "
                   "whose range spans zero)",
        )
    choice = choose_precision(left_range, right_range, k,
                              require_exact=require_exact)
    bound = left_range.magnitude * right_range.magnitude * max(k, 1)
    if not choice.feasible:
        return FeasibilityReport(
            feasible=False, choice=choice, left_range=left_range,
            right_range=right_range, result_bound=bound,
            reason="no TCU-compatible data type can represent the inputs "
                   "at the required accuracy",
        )
    return FeasibilityReport(
        feasible=True, choice=choice, left_range=left_range,
        right_range=right_range, result_bound=bound,
    )


def estimate_multiplicity(n_rows: int, n_cells: int) -> float:
    """Expected duplicates per matrix cell when n_rows tuples scatter into
    n_cells distinct (row, col) coordinates."""
    if n_cells <= 0:
        return float(n_rows)
    return max(1.0, math.ceil(n_rows / n_cells))

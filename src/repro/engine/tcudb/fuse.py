"""Fusion pass: an optimizing rewrite over the TensorProgram DAG.

Runs between lowering and execution, taking a
:class:`~repro.engine.tcudb.program.TensorProgram` and returning a
semantically equivalent but cheaper one.  Both TQP ("Query Processing on
Tensor Computation Runtimes", He et al.) and the TCU-reduction line of
work show that tensor-runtime engines win by batching many small tensor
ops into few large ones — the rewrites below do exactly that, and every
rewrite is recorded in the program listing (``fused_from=[...]``) and
the program notes so executed programs stay inspectable.

Rewrite rules, applied in order:

``fold-chain``
    A run of back-to-back ``FoldJoin`` steps (each feeding the next's
    fact side, with no other consumers in between) collapses into one
    :class:`~repro.engine.tcudb.ops.FoldJoinChain`: every step probes
    the original fact rows against its own key domain, survivorship
    accumulates in one combined mask, and each needed dimension column
    is gathered once on the final survivors instead of being gathered
    early and refiltered by every later step.  The cost model charges a
    single fold step for the run (the exact sum of the sequential
    per-step estimates), and the fuzz chain-join corpus stays
    bit-identical.

``batched-gemm``
    A ``Gemm`` consuming a ``ValueFill`` whose product needs two or more
    grids (the per-aggregate fan-out of a JOIN_AGG or grouped reduce) is
    rewritten to a :class:`~repro.engine.tcudb.ops.BatchedGemm`: the
    ``ValueFill`` builds each side's indicator structure once (rows and
    group codes shared, per-aggregate values stacked into an
    ``(n_agg, g, k)`` operand) and the driver issues a single stacked
    matmul.  The cost model charges one operand fill plus ``n_agg`` MMA
    passes instead of ``n_agg`` full operand rebuilds.

``having-epilogue``
    ``Gemm → GridAggregate → MaskApply[having]`` collapses the mask into
    the grid harvest: the HAVING conjuncts are evaluated inside the GEMM
    result hook (a masked nonzero extraction) instead of a separate pass
    over the harvested groups.

``residual-epilogue``
    ``Gemm → NonzeroExtract → MaskApply[residual-pairs]`` collapses the
    residual mask into the pair extraction the same way.

``residual-fill``
    ``MaskApply[residual-fact] → ValueFill[star]`` folds the fact-side
    residual mask into the operand fill: masked fact tuples are never
    placed into the operand matrices (a masked fill riding the existing
    placement pass), removing the last standalone mask operator.

Fusion never rewrites semantics: every rule preserves the operator's
payload contract, and the fused-vs-unfused equivalence is property-tested
over the fuzz corpus (``tests/test_fusion.py``).
"""

from __future__ import annotations

from dataclasses import replace

from repro.engine.tcudb import ops
from repro.engine.tcudb.program import TensorProgram


def _grid_count(fill: ops.ValueFill) -> int:
    """Grids the product must produce: the COUNT/indicator grid plus one
    value grid per non-COUNT aggregate."""
    value_specs = sum(1 for spec in fill.specs if spec.func != "count")
    return value_specs + 1


def fuse_program(program: TensorProgram) -> TensorProgram:
    """Apply the rewrite rules; returns a new, equivalent program.

    The input program is not mutated — unfused execution (``fusion=off``)
    can run the original side by side for ablation.
    """
    by_id = {op.id: op for op in program.ops}
    rewritten: dict[str, ops.TensorOp] = {}
    dropped: dict[str, str] = {}  # fused MaskApply id -> its new host op
    notes: list[str] = []

    # -- rule: fold-chain -------------------------------------------------- #
    consumers: dict[str, list[str]] = {}
    for op in program.ops:
        for input_id in op.input_ids():
            consumers.setdefault(input_id, []).append(op.id)
    fold_ids = {op.id for op in program.ops if type(op) is ops.FoldJoin}
    fused_folds: set[str] = set()
    for op in program.ops:
        if type(op) is not ops.FoldJoin or op.id in fused_folds:
            continue
        if op.fact_input in fold_ids:
            continue  # not the head of a run
        run = [op]
        while True:
            run_consumers = consumers.get(run[-1].id, [])
            if len(run_consumers) != 1:
                break
            successor = by_id.get(run_consumers[0])
            if (type(successor) is not ops.FoldJoin
                    or successor.fact_input != run[-1].id):
                break
            run.append(successor)
        fused_folds.update(fold.id for fold in run)
        if len(run) < 2:
            continue
        # The chain takes the LAST fold's id and program slot (every dim
        # scan of the run precedes it), so downstream consumers keep
        # their wiring; the earlier folds of the run are dropped.
        rewritten[run[-1].id] = ops.FoldJoinChain(
            id=run[-1].id,
            fact_input=run[0].fact_input,
            steps=[
                ops.FoldStep(
                    dim_input=fold.dim_input,
                    dim_binding=fold.dim_binding,
                    fact_column=fold.fact_column,
                    dim_column=fold.dim_column,
                    needed=fold.needed,
                )
                for fold in run
            ],
        )
        for fold in run[:-1]:
            dropped[fold.id] = run[-1].id
        notes.append(
            f"fusion: fold-chain collapsed {len(run)} chained-join steps "
            f"({', '.join(fold.dim_binding for fold in run)}) into one "
            "gather pass"
        )

    # -- rule: batched-gemm ------------------------------------------------ #
    for op in program.ops:
        if type(op) is not ops.Gemm:
            continue
        producer = by_id.get(op.input)
        if not isinstance(producer, ops.ValueFill):
            continue
        n_grids = _grid_count(producer)
        if n_grids < 2:
            continue
        fused_from = [f"{op.id}[count]"] + [
            f"{op.id}[{spec.func}#{i}]"
            for i, spec in enumerate(producer.specs) if spec.func != "count"
        ]
        shared_fill = replace(producer, shared=True)
        # consumer_id is annotated outside the dataclass fields (codegen
        # uses it to look up the consumer Gemm's plan); carry it over.
        if hasattr(producer, "consumer_id"):
            shared_fill.consumer_id = producer.consumer_id
        rewritten[producer.id] = shared_fill
        rewritten[op.id] = ops.BatchedGemm(
            id=op.id, input=op.input, label=op.label,
            n_grids=n_grids, fused_from=fused_from,
        )
        notes.append(
            f"fusion: batched-gemm collapsed {n_grids} per-aggregate "
            f"products of {op.id} into one stacked GEMM"
        )

    # -- rules: masked epilogues ------------------------------------------- #
    for op in program.ops:
        if not isinstance(op, ops.MaskApply):
            continue
        host = by_id.get(op.input)
        if op.role == "having" and isinstance(host, ops.GridAggregate):
            base = rewritten.get(host.id, host)
            rewritten[host.id] = replace(
                base,
                epilogue_predicates=list(op.predicates),
                epilogue_nodes=dict(op.having_nodes),
                fused_from=list(base.fused_from) + [op.id],
            )
            dropped[op.id] = host.id
            notes.append(
                f"fusion: having-epilogue folded {op.id} into {host.id}'s "
                "result hook"
            )
        elif (op.role == "residual-pairs"
                and isinstance(host, ops.NonzeroExtract)):
            base = rewritten.get(host.id, host)
            rewritten[host.id] = replace(
                base,
                epilogue_predicates=list(op.predicates),
                fused_from=list(base.fused_from) + [op.id],
            )
            dropped[op.id] = host.id
            notes.append(
                f"fusion: residual-epilogue folded {op.id} into "
                f"{host.id}'s extraction kernel"
            )

    # -- rule: residual-fill ----------------------------------------------- #
    for op in program.ops:
        if not isinstance(op, ops.ValueFill) or op.mode != "star":
            continue
        host = by_id.get(op.left_input)
        if not (isinstance(host, ops.MaskApply)
                and host.role == "residual-fact"):
            continue
        base = rewritten.get(op.id, op)
        fused_fill = replace(
            base,
            epilogue_predicates=list(host.predicates),
            fused_from=list(base.fused_from) + [host.id],
        )
        if hasattr(base, "consumer_id"):
            fused_fill.consumer_id = base.consumer_id
        rewritten[op.id] = fused_fill
        # Consumers of the mask (this fill) rewire to the mask's input.
        dropped[host.id] = host.input
        notes.append(
            f"fusion: residual-fill folded {host.id} into {op.id}'s "
            "operand fill (masked placement)"
        )

    if not rewritten and not dropped:
        return program

    # -- reassemble: drop fused masks, rewire their consumers ------------- #
    new_ops: list[ops.TensorOp] = []
    for op in program.ops:
        if op.id in dropped:
            continue
        op = rewritten.get(op.id, op)
        new_ops.append(_rewire(op, dropped))
    return TensorProgram(
        ops=new_ops,
        strategy=program.strategy,
        hybrid=program.hybrid,
        notes=list(program.notes) + notes,
    )


def _rewire(op: ops.TensorOp, dropped: dict[str, str]) -> ops.TensorOp:
    """Point consumers of a fused-away MaskApply at its host operator."""
    if not dropped:
        return op
    updates = {}
    for attr in ("input", "left_input", "right_input", "chain_input",
                 "fact_input", "dim_input"):
        value = getattr(op, attr, None)
        if isinstance(value, str) and value in dropped:
            updates[attr] = dropped[value]
    return replace(op, **updates) if updates else op


__all__ = ["fuse_program"]

"""Lowering pass: bound query -> :class:`TensorProgram`.

Translates the planner's logical algebra into a DAG of composable TCU
operators.  Two strategies, tried in order:

1. **Pattern lowering** — the classifier in
   :mod:`repro.engine.tcudb.patterns` recognizes a matmul-encodable core
   shape (JOIN_2WAY / JOIN_MULTIWAY / JOIN_AGG) and this pass emits the
   operator chain for it.  Unlike the historical whole-query matcher,
   HAVING lowers to a ``MaskApply`` over the aggregate grid and
   cross-table residual predicates lower to ``MaskApply`` over the
   folded fact side (JOIN_AGG) or over the extracted join pairs
   (JOIN_2WAY / multiway) — native TCU execution instead of whole-query
   fallback.

2. **Hybrid lowering** — when the pattern core cannot express the query
   (non-star join graphs, non-product aggregate arguments,
   duplicate-key dimensions, residuals touching every dimension) but
   the *aggregation* is still matmul-shaped (SUM/COUNT/AVG), the
   conventional ``PhysicalStage`` executes the relational prefix and
   the TCU runs the Lemma-3.1 grouped reduce over the materialized
   relation.  Partially-expressible queries run hybrid rather than
   all-or-nothing.

Queries beyond both strategies return a :class:`MatchFailure` whose
``kind`` feeds the fallback-rate reporting surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.base import ExecutionMode
from repro.engine.tcudb import ops
from repro.engine.tcudb.patterns import (
    AggRef,
    AggregateSpec,
    ConstRef,
    GroupRef,
    MatchFailure,
    OutputItem,
    OutputNode,
    OutputOp,
    PatternKind,
    TCUPattern,
    build_having_nodes,
    is_parameter_constant,
    match_pattern,
)
from repro.engine.tcudb.program import TensorProgram
from repro.sql.ast_nodes import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    Expr,
    Literal,
    walk_predicate_exprs,
)
from repro.sql.binder import BoundQuery, JoinPredicate
from repro.sql.planner import plan_relation


@dataclass
class LoweredQuery:
    """A query lowered onto the TCU operator pipeline."""

    program: TensorProgram
    pattern: TCUPattern | None = None
    hybrid: bool = False


def lower_query(
    bound: BoundQuery, mode: ExecutionMode, fusion: bool = True,
    streaming: bool = True,
) -> LoweredQuery | MatchFailure:
    """Lower a bound query, preferring the full pattern pipeline.

    ``fusion`` runs the optimizing rewrite pass
    (:mod:`repro.engine.tcudb.fuse`) over the lowered program — on by
    default; ``fusion=False`` is the ablation/debug switch.
    ``streaming`` allows hybrid pre-stages to stream in ANALYTIC mode
    (off reproduces the legacy ``kind="mode"`` fallback).
    """
    pattern = match_pattern(bound)
    if isinstance(pattern, TCUPattern):
        lowered = _lower_pattern(bound, pattern)
        if isinstance(lowered, LoweredQuery):
            return _maybe_fuse(lowered, fusion)
        pattern_failure = lowered
    else:
        pattern_failure = pattern
    hybrid = lower_hybrid(bound, mode, fusion=fusion, streaming=streaming)
    if isinstance(hybrid, LoweredQuery):
        return hybrid
    if hybrid.kind == "mode":
        # The query is hybrid-expressible; only the execution mode
        # blocks it.  Report that, not a (wrong) expressiveness gap.
        return hybrid
    # Report the primary (pattern) rejection: it names the construct
    # beyond matmul expressiveness.
    return pattern_failure


def _maybe_fuse(lowered: LoweredQuery, fusion: bool) -> LoweredQuery:
    if not fusion:
        return lowered
    from repro.engine.tcudb.fuse import fuse_program

    return LoweredQuery(
        program=fuse_program(lowered.program),
        pattern=lowered.pattern,
        hybrid=lowered.hybrid,
    )


# --------------------------------------------------------------------------- #
# Pattern lowering
# --------------------------------------------------------------------------- #


def _lower_pattern(
    bound: BoundQuery, pattern: TCUPattern
) -> LoweredQuery | MatchFailure:
    if pattern.kind == PatternKind.JOIN_AGG:
        return _lower_join_agg(bound, pattern)
    return _lower_join_chain(bound, pattern)


def _residual_bindings(bound: BoundQuery) -> set[str]:
    bindings: set[str] = set()
    for predicate in bound.residuals:
        for expr in walk_predicate_exprs(predicate):
            for node in expr.walk():
                if isinstance(node, ColumnRef):
                    bindings.add(bound.resolve(node).binding)
    return bindings


def _residual_columns(bound: BoundQuery, binding: str) -> list[str]:
    """Columns of one binding referenced by residual predicates."""
    needed: set[str] = set()
    for predicate in bound.residuals:
        for expr in walk_predicate_exprs(predicate):
            for node in expr.walk():
                if isinstance(node, ColumnRef):
                    column = bound.resolve(node)
                    if column.binding == binding:
                        needed.add(column.key)
    return sorted(needed)


# -- join-only chains (JOIN_2WAY / JOIN_MULTIWAY) ---------------------------- #


def _lower_join_chain(
    bound: BoundQuery, pattern: TCUPattern
) -> LoweredQuery | MatchFailure:
    if bound.having:
        return MatchFailure(
            "HAVING requires aggregation (no aggregates in the select list)"
        )
    program_ops: list[ops.TensorOp] = []
    scans: dict[str, str] = {}

    def scan(binding: str) -> str:
        if binding not in scans:
            op = ops.TableSource(id=f"scan_{binding}", binding=binding)
            program_ops.append(op)
            scans[binding] = op.id
        return scans[binding]

    if pattern.kind == PatternKind.JOIN_2WAY:
        predicate = pattern.joins[0]
        first = predicate.left.binding
        steps = [(predicate, predicate.right.binding, "two_way")]
    else:
        first = bound.tables[0].binding
        remaining = list(pattern.joins)
        joined = {first}
        steps = []
        for table in bound.tables[1:]:
            binding = table.binding
            predicate = _pick_chain_predicate(remaining, joined, binding)
            if predicate is None:
                return MatchFailure("join chain is disconnected")
            remaining.remove(predicate)
            steps.append((predicate, binding, "chain_step"))
            joined.add(binding)
    start = ops.ChainStart(id="chain_0", input=scan(first), binding=first)
    program_ops.append(start)
    chain_id = start.id
    for index, (predicate, binding, profile) in enumerate(steps, start=1):
        build = ops.IndicatorBuild(
            id=f"indicator_{index}",
            chain_input=chain_id,
            right_input=scan(binding),
            predicate=predicate,
            right_binding=binding,
            profile=profile,
        )
        label = ("TCUJoin (2-way natural join)" if profile == "two_way"
                 else f"TCU multi-way join step {index}")
        gemm = ops.Gemm(id=f"gemm_{index}", input=build.id, label=label)
        build.consumer_id = gemm.id
        extract = ops.NonzeroExtract(id=f"pairs_{index}", input=gemm.id)
        program_ops.extend([build, gemm, extract])
        chain_id = extract.id
    if bound.residuals:
        mask = ops.MaskApply(
            id="mask_residual", input=chain_id,
            predicates=list(bound.residuals), role="residual-pairs",
        )
        program_ops.append(mask)
        chain_id = mask.id
    program_ops.append(
        ops.Decode(
            id="decode", input=chain_id, role="project",
            items=list(bound.select_items),
            projected=list(pattern.projected),
        )
    )
    strategy = ("pattern:join_2way" if pattern.kind == PatternKind.JOIN_2WAY
                else "pattern:join_multiway")
    return LoweredQuery(
        program=TensorProgram(ops=program_ops, strategy=strategy),
        pattern=pattern,
    )


def _pick_chain_predicate(predicates, joined, binding):
    for predicate in predicates:
        bindings = {predicate.left.binding, predicate.right.binding}
        if binding in bindings and bindings - {binding} <= joined:
            return predicate
    return None


# -- star aggregation (JOIN_AGG) --------------------------------------------- #


def _lower_join_agg(
    bound: BoundQuery, pattern: TCUPattern
) -> LoweredQuery | MatchFailure:
    fact = pattern.fact
    dims = [t.binding for t in bound.tables if t.binding != fact]
    residual_bindings = _residual_bindings(bound)
    b_side = _choose_b_side(pattern, dims, residual_bindings)
    if isinstance(b_side, MatchFailure):
        return b_side
    having_nodes: dict[Expr, OutputNode] = {}
    if bound.having:
        built = build_having_nodes(bound, pattern)
        if isinstance(built, MatchFailure):
            return built
        having_nodes = built
    program_ops: list[ops.TensorOp] = []
    scan_fact = ops.TableSource(id=f"scan_{fact}", binding=fact)
    program_ops.append(scan_fact)
    fact_id = scan_fact.id
    for dim in dims:
        if dim == b_side:
            continue
        predicate = _join_for(pattern, fact, dim)
        if predicate is None:
            return MatchFailure(f"no join between {fact} and {dim}")
        fact_col = (predicate.left if predicate.left.binding == fact
                    else predicate.right)
        dim_col = (predicate.left if predicate.left.binding == dim
                   else predicate.right)
        needed = sorted(
            set(_dim_needed_columns(pattern, dim))
            | set(_residual_columns(bound, dim))
        )
        scan_dim = ops.TableSource(id=f"scan_{dim}", binding=dim)
        fold = ops.FoldJoin(
            id=f"fold_{dim}", fact_input=fact_id, dim_input=scan_dim.id,
            dim_binding=dim, fact_column=fact_col, dim_column=dim_col,
            needed=needed,
        )
        program_ops.extend([scan_dim, fold])
        fact_id = fold.id
    if bound.residuals:
        mask = ops.MaskApply(
            id="mask_residual", input=fact_id,
            predicates=list(bound.residuals), role="residual-fact",
        )
        program_ops.append(mask)
        fact_id = mask.id
    b_predicate = _join_for(pattern, fact, b_side)
    if b_predicate is None:
        return MatchFailure(f"no join between {fact} and {b_side}")
    fact_col = (b_predicate.left if b_predicate.left.binding == fact
                else b_predicate.right)
    b_col = (b_predicate.left if b_predicate.left.binding == b_side
             else b_predicate.right)
    scan_b = ops.TableSource(id=f"scan_{b_side}", binding=b_side)
    fill = ops.ValueFill(
        id="value_fill", left_input=fact_id, right_input=scan_b.id,
        mode="star", specs=pattern.aggregates, group_by=pattern.group_by,
        pattern=pattern, b_side=b_side, fact_column=fact_col, b_column=b_col,
    )
    gemm = ops.Gemm(id="gemm_agg", input=fill.id,
                    label="TCU Join+GroupBy+Aggregation")
    fill.consumer_id = gemm.id
    harvest = ops.GridAggregate(id="grid_agg", input=gemm.id)
    program_ops.extend([scan_b, fill, gemm, harvest])
    node_id = harvest.id
    if bound.having:
        having = ops.MaskApply(
            id="mask_having", input=node_id, predicates=list(bound.having),
            role="having", having_nodes=having_nodes,
        )
        program_ops.append(having)
        node_id = having.id
    program_ops.append(
        ops.Decode(id="decode", input=node_id, role="aggregate",
                   outputs=list(pattern.outputs))
    )
    return LoweredQuery(
        program=TensorProgram(ops=program_ops, strategy="pattern:join_agg"),
        pattern=pattern,
    )


def _choose_b_side(
    pattern: TCUPattern, dims: list[str], residual_bindings: set[str]
) -> str | MatchFailure:
    """The dimension joined on the B (right) side of the aggregate GEMM.

    Residual predicates mask the folded fact side *before* the B join,
    so the B dimension must not be referenced by any residual.  Among
    the eligible dimensions the historical heuristic applies: prefer a
    GROUP BY dimension, else the last dimension in FROM order.
    """
    candidates = [d for d in dims if d not in residual_bindings]
    if not candidates:
        return MatchFailure(
            "residual predicates reference every dimension; no B side "
            "remains for the aggregate product"
        )
    for column in pattern.group_by:
        if column.binding in candidates:
            return column.binding
    return candidates[-1]


def _join_for(
    pattern: TCUPattern, fact: str, dim: str
) -> JoinPredicate | None:
    for predicate in pattern.joins:
        bindings = {predicate.left.binding, predicate.right.binding}
        if bindings == {fact, dim}:
            return predicate
    return None


def _dim_needed_columns(pattern: TCUPattern, dim: str) -> list[str]:
    needed = [c.key for c in pattern.group_by if c.binding == dim]
    for spec in pattern.aggregates:
        needed.extend(f.column.key for f in spec.factors_for(dim))
    return sorted(set(needed))


# --------------------------------------------------------------------------- #
# Hybrid lowering (PhysicalStage + grouped reduce)
# --------------------------------------------------------------------------- #


def lower_hybrid(
    bound: BoundQuery, mode: ExecutionMode, fusion: bool = True,
    streaming: bool = True,
) -> LoweredQuery | MatchFailure:
    """Lower the aggregation core onto the TCU over a conventional
    pre-stage (Lemma 3.1 grouped reduce).

    With ``streaming`` (the default), the pre-stage pulls chunk batches
    through the plan prefix, which also unlocks ANALYTIC-mode hybrid
    execution (bounded by the stage's row budget) — previously a
    ``kind="mode"`` fallback."""
    if not (bound.has_aggregates or bound.group_by):
        return MatchFailure(
            "no aggregation core: hybrid lowering accelerates "
            "grouped reduction only"
        )
    group_keys = {c.key for c in bound.group_by}
    group_columns = {c.key: c for c in bound.group_by}
    # Computed GROUP BY keys: select/HAVING expressions structurally
    # equal to a group expression resolve to the projected key column.
    expr_groups = {
        expr: group_columns[key]
        for key, expr in getattr(bound, "group_exprs", {}).items()
        if key in group_columns
    }
    calls: list[AggregateCall] = []
    specs: list[AggregateSpec] = []

    def build(expr: Expr) -> OutputNode | MatchFailure:
        if expr in expr_groups:
            return GroupRef(expr_groups[expr])
        if isinstance(expr, Literal):
            if isinstance(expr.value, str):
                return MatchFailure("string literals in aggregate outputs")
            return ConstRef(float(expr.value))
        if isinstance(expr, ColumnRef):
            column = bound.resolve(expr)
            if column.key not in group_keys:
                return MatchFailure(
                    f"column {column.key} in SELECT is not a GROUP BY key"
                )
            return GroupRef(column)
        if isinstance(expr, AggregateCall):
            if expr.func in ("min", "max"):
                return MatchFailure(
                    f"{expr.func.upper()} is beyond TCU expressiveness"
                )
            if expr.func not in ("sum", "count", "avg"):
                return MatchFailure(f"unsupported aggregate {expr.func!r}")
            if expr in calls:
                return AggRef(calls.index(expr))
            calls.append(expr)
            specs.append(
                AggregateSpec(func=expr.func, constant=1.0, factors=[])
            )
            return AggRef(len(calls) - 1)
        if isinstance(expr, BinaryOp):
            left = build(expr.left)
            if isinstance(left, MatchFailure):
                return left
            right = build(expr.right)
            if isinstance(right, MatchFailure):
                return right
            return OutputOp(op=expr.op, left=left, right=right)
        return MatchFailure(f"unsupported select expression {expr}")

    outputs: list[OutputItem] = []
    for item in bound.select_items:
        node = build(item.expr)
        if isinstance(node, MatchFailure):
            return node
        outputs.append(OutputItem(name=item.output_name, node=node))
    having_nodes: dict[Expr, OutputNode] = {}
    for predicate in bound.having:
        for expr in walk_predicate_exprs(predicate):
            if isinstance(expr, Literal) and isinstance(expr.value, str):
                continue
            if is_parameter_constant(expr):
                # Folds to a literal once parameter values bind;
                # specialization installs the folded ConstRef.
                continue
            if expr in having_nodes:
                continue
            node = build(expr)
            if isinstance(node, MatchFailure):
                return MatchFailure(f"HAVING: {node.reason}")
            having_nodes[expr] = node
    # Checked last, after expressibility: a "mode" rejection asserts the
    # query *would* run hybrid in REAL mode (the classification the
    # fallback-rate reporting relies on).  Streaming pre-stages execute
    # in any mode, so the rejection only survives with streaming off.
    if mode != ExecutionMode.REAL and not streaming:
        return MatchFailure(
            "hybrid pre-stage requires REAL mode (materialized relation)",
            kind="mode",
        )
    tree = plan_relation(bound)
    stage = ops.PhysicalStage(id="prestage", tree=tree, streaming=streaming)
    fill = ops.ValueFill(
        id="value_fill", left_input=stage.id, right_input=None,
        mode="reduce", specs=specs, group_by=list(bound.group_by),
        arguments=[call.argument for call in calls],
    )
    gemm = ops.Gemm(id="gemm_reduce", input=fill.id,
                    label="TCU grouped reduce (Lemma 3.1)")
    fill.consumer_id = gemm.id
    harvest = ops.GridAggregate(id="grid_agg", input=gemm.id)
    program_ops: list[ops.TensorOp] = [stage, fill, gemm, harvest]
    node_id = harvest.id
    if bound.having:
        having = ops.MaskApply(
            id="mask_having", input=node_id, predicates=list(bound.having),
            role="having", having_nodes=having_nodes,
        )
        program_ops.append(having)
        node_id = having.id
    program_ops.append(
        ops.Decode(id="decode", input=node_id, role="aggregate",
                   outputs=outputs)
    )
    return _maybe_fuse(
        LoweredQuery(
            program=TensorProgram(
                ops=program_ops, strategy="hybrid:grouped_reduce",
                hybrid=True,
            ),
            hybrid=True,
        ),
        fusion,
    )


__all__ = ["LoweredQuery", "lower_hybrid", "lower_query"]

"""Composable TCU operators: the nodes of a :class:`TensorProgram` DAG.

Each operator implements ``execute(ctx)`` — reading its input payloads
from the program context's value store, charging simulated time, and
returning its own payload — plus ``describe()`` (plan listing) and
``emission(ctx)`` (its per-operator CUDA section for the code
generator).  The catalog:

* :class:`TableSource`    — scan one binding, apply its local filters;
* :class:`FoldJoin`       — one chained-join step folding a dimension
  into the fact side (Section 3.2's matrix->table conversion);
* :class:`FoldJoinChain`  — a fused run of consecutive fold steps
  (installed by the fusion pass): one combined survivor mask, one
  gather pass over the final survivors;
* :class:`IndicatorBuild` — union key domain + indicator/comparison
  operand matrices for one join step (Section 3.1/3.4 encodings);
* :class:`ValueFill`      — value-filled grouped operand matrices for a
  join+aggregate product, or the Lemma-3.1 grouped-reduce encoding of an
  already-materialized relation (hybrid mode);
* :class:`Gemm`           — run the Figure-6 optimizer workflow for this
  product (range/working-set/density tests, adaptive precision, cost
  comparison) and execute the matrix multiply;
* :class:`NonzeroExtract` — nonzero() extraction of matching pairs,
  extending the join chain;
* :class:`GridAggregate`  — harvest non-empty cells of the aggregate
  grids (AVG division, group-key decoding);
* :class:`MaskApply`      — residual predicates over the fact side or
  extracted pairs, and HAVING over the aggregated grid;
* :class:`PhysicalStage`  — conventional pre-stage executing the
  non-TCU-expressible prefix of the plan (hybrid execution);
* :class:`Decode`         — project output columns / evaluate output
  expressions into result arrays.

The payload dataclasses (``RelationValue``, ``ChainValue``, ...) are the
typed edges of the DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.common.errors import ExecutionError
from repro.common.timing import STAGE_FILL
from repro.engine.base import ExecutionMode
from repro.engine.physical import PhysicalExecutor, pruned_scan_chunks
from repro.engine.relational import equi_join_count
from repro.engine.tcudb.codegen import OpEmission
from repro.engine.tcudb.cost import (
    OperatorGeometry,
    Strategy,
    estimate_fold_chain,
    estimate_fold_step,
    estimate_mask_apply,
    estimate_physical_stage,
)
from repro.engine.tcudb.driver import (
    CompositeKey,
    OperandStructure,
    PreparedAggSide,
    PreparedJoin,
    build_coo_operands,
)
from repro.storage.statistics import (
    bound_stats_lookup,
    conjunction_selectivity,
)
from repro.engine.tcudb.feasibility import (
    INDICATOR_RANGE,
    FeasibilityReport,
    run_feasibility_test,
)
from repro.engine.tcudb.patterns import (
    AggRef,
    AggregateSpec,
    ConstRef,
    GroupRef,
    OutputItem,
    OutputNode,
    OutputOp,
    TCUPattern,
)
from repro.engine.tcudb.transform import mapped_pair_count, union_key_domain
from repro.sql.ast_nodes import Expr, Predicate
from repro.sql.binder import BoundColumn, JoinPredicate
from repro.sql.eval import (
    Environment,
    conjunction_mask,
    encode_literal,
    evaluate_expr,
    predicate_mask,
)
from repro.sql.logical import Join as JoinNode
from repro.sql.logical import LogicalNode, Scan

# Per-qualifying-record cost of one chained-join step's matrix->table
# conversion and intermediate rebuild (Section 3.2's step 2/3).  Fitted to
# the paper's SSB results, where TCUDB's star joins win by 1.3x-3.7x over
# YDB rather than by orders of magnitude.
CHAINED_JOIN_FILL_S = 150e-9


class FallbackRequired(Exception):
    """An operator determined the program cannot (or should not) run on
    the TCU; the engine falls back to the conventional plan."""

    def __init__(self, reason: str, kind: str = "cost"):
        super().__init__(reason)
        self.reason = reason
        self.kind = kind


# --------------------------------------------------------------------------- #
# Payloads — the typed edges of the DAG
# --------------------------------------------------------------------------- #


@dataclass
class RelationValue:
    """A materialized (filtered) relation."""

    env: Environment

    @property
    def n_rows(self) -> int:
        return self.env.n_rows


@dataclass
class FactValue:
    """The fact side of a star, with folded-dimension state."""

    env: Environment
    weights: np.ndarray
    gathered: dict[str, np.ndarray]

    @property
    def n_rows(self) -> int:
        return self.env.n_rows

    def column(self, key: str) -> np.ndarray:
        if key in self.gathered:
            return self.gathered[key]
        return self.env.lookup(key)

    def eval_environment(self) -> Environment:
        """Fact env extended with the gathered dimension columns."""
        arrays = dict(self.env.arrays)
        arrays.update(self.gathered)
        return Environment(arrays, self.env.n_rows)

    def filtered(self, mask: np.ndarray) -> "FactValue":
        return FactValue(
            env=self.env.filtered(mask),
            weights=self.weights[mask],
            gathered={k: np.asarray(v)[mask] for k, v in self.gathered.items()},
        )


@dataclass
class ChainValue:
    """State of a (possibly multi-step) join chain.

    ``indices[binding]`` maps each output row to a row of that binding's
    scanned environment.  ``indices`` is empty when the chain is not
    materialized (ANALYTIC estimates); ``multiplicity[binding]`` then
    carries, per scanned row of that binding, its exact row count in the
    unmaterialized intermediate — what lets chain steps past the first
    price from exact per-step cardinalities instead of unfiltered key
    counts."""

    envs: dict[str, Environment]
    indices: dict[str, np.ndarray]
    n_rows: int
    joined: set[str] = field(default_factory=set)
    multiplicity: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def materialized(self) -> bool:
        return bool(self.indices)

    def keys_of(self, column: BoundColumn) -> np.ndarray:
        keys = self.envs[column.binding].lookup(column.key)
        return keys[self.indices[column.binding]]

    def merged_environment(self) -> Environment:
        arrays: dict[str, np.ndarray] = {}
        for binding in self.joined:
            env = self.envs[binding]
            index = self.indices[binding]
            for key, array in env.arrays.items():
                arrays[key] = array[index]
        return Environment(arrays, self.n_rows)


@dataclass
class JoinOperandsValue:
    """Operand matrices of one join product (indicator/comparison)."""

    prepared: PreparedJoin
    geometry: OperatorGeometry
    feasibility: FeasibilityReport
    pairs: int
    chain: ChainValue
    right_env: Environment
    right_binding: str
    inner_binding: str
    # Per-left-scanned-row multiplicity in the unmaterialized chain
    # (ANALYTIC chain steps); None when the chain is materialized.
    left_weights: np.ndarray | None = None


@dataclass
class AggOperandsValue:
    """Operand matrices of one join+aggregate (or grouped-reduce) product.

    When built by a shared-structure ``ValueFill`` (fusion on), the
    canonicalized COO coordinate structures ride along so the consuming
    ``BatchedGemm`` never rebuilds them.
    """

    left: PreparedAggSide | None
    right: PreparedAggSide | None
    k: int
    geometry: OperatorGeometry | None
    feasibility: FeasibilityReport | None
    pairs: int
    specs: list[AggregateSpec]
    grouped: bool
    empty: bool = False
    left_structure: OperandStructure | None = None
    right_structure: OperandStructure | None = None


@dataclass
class ProductValue:
    """Output of one Gemm: a dense product / grids, or a deferred handle."""

    operands: JoinOperandsValue | AggOperandsValue
    dense: np.ndarray | None = None  # join product (numeric emulation)
    grids: list[np.ndarray] | None = None  # one grid per aggregate
    count_grid: np.ndarray | None = None
    semantic: bool = False  # extraction defers to exact-key kernels
    empty: bool = False
    # Chunked numeric join: pairs extracted grid-wise per product chunk
    # (the full dense product was never materialized at once).
    pair_indices: tuple[np.ndarray, np.ndarray] | None = None


@dataclass
class GroupsValue:
    """Aggregated output grid, harvested to per-group arrays."""

    agg_values: list[np.ndarray] | None  # None in ANALYTIC mode
    group_columns: dict[str, np.ndarray] | None
    n_rows: int
    empty: bool = False


@dataclass
class OutputValue:
    """Final output arrays (pre ORDER BY / LIMIT)."""

    arrays: list[np.ndarray] | None
    names: list[str]
    by_columns: list
    n_rows: int


# --------------------------------------------------------------------------- #
# Operators
# --------------------------------------------------------------------------- #


@dataclass
class TensorOp:
    """Base operator: an id plus input op ids."""

    id: str

    kind = "op"

    def input_ids(self) -> list[str]:
        return []

    def describe(self) -> str:
        return f"{self.id}: {type(self).__name__}"

    def emission(self, ctx) -> OpEmission | None:
        return None

    def execute(self, ctx):  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass
class TableSource(TensorOp):
    """Scan one binding and apply its local filter conjuncts.

    With chunked execution on, the scan walks the table's fixed-size row
    chunks and *prunes* chunks whose per-chunk min/max statistics prove
    the filters empty — pruned chunks are never touched and never
    charged, so selective filters over clustered columns get cheaper
    with data layout, as a real columnar scan would.
    """

    binding: str

    kind = "scan"

    def describe(self) -> str:
        return f"{self.id}: TableSource({self.binding})"

    def emission(self, ctx) -> OpEmission:
        return OpEmission(
            kind="scan",
            label=f"Scan+Filter({self.binding})",
            lines=[f"  // host: scan {self.binding} chunk-wise, apply local "
                   "predicates (stat-pruned)"],
        )

    def execute(self, ctx) -> RelationValue:
        filters = ctx.bound.filters.get(self.binding, [])
        if not filters:
            return RelationValue(
                env=Environment.from_table(ctx.bound, self.binding)
            )
        if ctx.chunk_rows is None:
            env = Environment.from_table(ctx.bound, self.binding)
            ctx.charge(self, STAGE_FILL,
                       env.n_rows * ctx.host.scan_elem_s * len(filters))
            return RelationValue(
                env=env.filtered(conjunction_mask(filters, env, ctx.bound))
            )
        return RelationValue(env=self._scan_chunked(ctx, filters))

    def _scan_chunked(self, ctx, filters) -> Environment:
        binding = self.binding
        table = ctx.bound.binding(binding).table
        kept, chunked, name_of = pruned_scan_chunks(
            ctx.bound, binding, filters, ctx.chunk_rows
        )
        scanned = sum(chunk.num_rows for chunk in kept)
        ctx.charge(self, STAGE_FILL,
                   scanned * ctx.host.scan_elem_s * len(filters))
        if ctx.workers > 1 and kept:
            # Morsel-parallel filtering: each kept chunk evaluates the
            # conjunction over its own slice; filtering per chunk and
            # concatenating in chunk order is elementwise-identical to
            # filtering the concatenated arrays.
            from repro.engine.parallel import parallel_map

            binding_local = binding

            def filter_chunk(chunk):
                env = Environment(
                    {
                        f"{binding_local}.{lower}": chunk.column(name).data
                        for lower, name in name_of.items()
                    },
                    chunk.num_rows,
                )
                mask = conjunction_mask(filters, env, ctx.bound)
                return {k: v[mask] for k, v in env.arrays.items()}

            parts = list(parallel_map(filter_chunk, kept, ctx.workers))
            arrays = {
                key: np.concatenate([part[key] for part in parts])
                for key in parts[0]
            }
            n_rows = int(next(iter(arrays.values())).size) if arrays else 0
            return Environment(arrays, n_rows)
        if len(kept) == chunked.num_chunks:
            env = Environment.from_table(ctx.bound, binding)
        elif kept:
            env = Environment(
                {
                    f"{binding}.{lower}": np.concatenate(
                        [chunk.column(name).data for chunk in kept]
                    )
                    for lower, name in name_of.items()
                },
                scanned,
            )
        else:
            env = Environment(
                {
                    f"{binding}.{lower}": np.array(
                        [], dtype=table.column(name).data.dtype
                    )
                    for lower, name in name_of.items()
                },
                0,
            )
        return env.filtered(conjunction_mask(filters, env, ctx.bound))


@dataclass
class ChainStart(TensorOp):
    """Seed the join chain with its first (scanned, filtered) binding."""

    input: str
    binding: str

    kind = "chain_start"

    def input_ids(self) -> list[str]:
        return [self.input]

    def describe(self) -> str:
        return f"{self.id}: ChainStart({self.binding})"

    def execute(self, ctx) -> ChainValue:
        relation: RelationValue = ctx.value(self.input)
        return ChainValue(
            envs={self.binding: relation.env},
            indices={self.binding: np.arange(relation.env.n_rows)},
            n_rows=relation.env.n_rows,
            joined={self.binding},
        )


@dataclass
class FoldJoin(TensorOp):
    """Fold one non-B dimension into the fact side.

    One step of the paper's multi-way join chain (Section 3.2): a join
    realized as a matrix product followed by a CUDA nonzero()
    matrix->table conversion that rebuilds the intermediate for the next
    step.  We charge that per-qualifying-record conversion cost and
    shrink the fact side progressively, so selective dimensions (e.g.
    SSB Q4.1's region filters) make the remaining chain cheaper — as in
    the paper.

    Unique-key dimensions gather their group/factor/residual columns
    onto fact rows; duplicate-key dimensions that contribute nothing
    multiply the fact weight by their key multiplicity (exact bag
    semantics).
    """

    fact_input: str
    dim_input: str
    dim_binding: str
    fact_column: BoundColumn
    dim_column: BoundColumn
    needed: list[str]

    kind = "fold"

    def input_ids(self) -> list[str]:
        return [self.fact_input, self.dim_input]

    def describe(self) -> str:
        return (f"{self.id}: FoldJoin({self.fact_column.key} = "
                f"{self.dim_column.key}, gather={self.needed or '[]'})")

    def emission(self, ctx) -> OpEmission:
        return OpEmission(
            kind="fold",
            label=f"FoldJoin({self.dim_binding})",
            lines=[
                f"  // chained-join step: fold {self.dim_binding} into the "
                "fact side",
                "  fold_gather_kernel<<<grid, block>>>"
                f"(d_fact_keys, d_{self.dim_binding}_keys, d_gathered);",
            ],
        )

    def execute(self, ctx) -> FactValue:
        fact = ctx.value(self.fact_input)
        if isinstance(fact, RelationValue):
            fact = FactValue(env=fact.env,
                             weights=np.ones(fact.env.n_rows), gathered={})
        dim_env = ctx.value(self.dim_input).env
        dim_keys = dim_env.lookup(self.dim_column.key)
        fact_keys = fact.column(self.fact_column.key)
        # Chained-join step: matrix fill + product + nonzero() conversion
        # of the intermediate back to tuples.
        ctx.charge(
            self, STAGE_FILL,
            estimate_fold_step(ctx.host, ctx.device, fact_keys.size,
                               dim_keys.size, CHAINED_JOIN_FILL_S),
        )
        unique_keys = np.unique(dim_keys)
        if unique_keys.size == 0:
            # Filtered dimension is empty: the join eliminates every
            # fact row.
            empty = np.zeros(fact.env.n_rows, dtype=bool)
            folded = fact.filtered(empty)
            for key in self.needed:
                folded.gathered[key] = np.array([], dtype=np.int64)
            return folded
        is_unique = unique_keys.size == dim_keys.size
        if self.needed and not is_unique:
            raise FallbackRequired(
                f"dimension {self.dim_binding} has duplicate join keys but "
                "contributes group/factor columns",
                kind="pattern",
            )
        positions, matched = self._probe_chunked(ctx, unique_keys, fact_keys)
        weights = fact.weights
        gathered = dict(fact.gathered)
        if is_unique:
            row_of = np.argsort(dim_keys, kind="stable")
            dim_rows = ctx.backend.gather(
                row_of, np.clip(positions, 0, max(dim_keys.size - 1, 0)))
            for key in self.needed:
                gathered[key] = ctx.backend.gather(dim_env.lookup(key),
                                                   dim_rows)
        else:
            counts = ctx.backend.bincount(
                np.searchsorted(unique_keys, dim_keys),
                minlength=max(unique_keys.size, 1),
            )
            multiplicity = np.where(matched, counts[positions], 0)
            weights = weights * multiplicity
        folded = FactValue(env=fact.env, weights=weights, gathered=gathered)
        if not matched.all():
            folded = folded.filtered(matched)
        return folded

    @staticmethod
    def _probe_chunked(ctx, unique_keys: np.ndarray, fact_keys: np.ndarray):
        """Probe the fold's sorted key domain one fact chunk at a time.

        Chunk-at-a-time probing bounds the per-step temporaries to the
        chunk size (the morsel contract); concatenating the per-chunk
        results is bit-identical to the whole-side probe.
        """
        chunk = ctx.chunk_rows or max(int(fact_keys.size), 1)
        positions_parts: list[np.ndarray] = []
        matched_parts: list[np.ndarray] = []
        for start in range(0, int(fact_keys.size), chunk):
            part = fact_keys[start:start + chunk]
            positions = np.searchsorted(unique_keys, part)
            positions = np.clip(positions, 0, max(unique_keys.size - 1, 0))
            positions_parts.append(positions)
            matched_parts.append(unique_keys[positions] == part)
        if not positions_parts:
            empty = np.array([], dtype=np.int64)
            return empty, np.array([], dtype=bool)
        return (np.concatenate(positions_parts),
                np.concatenate(matched_parts))


@dataclass(frozen=True)
class FoldStep:
    """One folded dimension of a :class:`FoldJoinChain` (the same
    fields a standalone :class:`FoldJoin` carries)."""

    dim_input: str
    dim_binding: str
    fact_column: BoundColumn
    dim_column: BoundColumn
    needed: list[str]


@dataclass
class FoldJoinChain(TensorOp):
    """Fold a run of consecutive dimensions in one gather pass.

    The fusion pass collapses back-to-back :class:`FoldJoin` steps into
    this op: every step probes the *original* fact rows (searchsorted is
    per-row, so probing unfiltered rows then masking is bit-identical to
    the step-at-a-time refilter), survivorship accumulates in one
    combined mask, and each needed dimension column is gathered exactly
    once — on the rows that survive the whole run — instead of being
    gathered early and refiltered by every later step.

    The cost model charges a single fold step for the run: one ledger
    entry whose seconds are exactly the sum of the sequential per-step
    estimates (each over the rows that would have survived into that
    step), so fused programs keep byte-identical simulated time.
    """

    fact_input: str
    steps: list[FoldStep]

    kind = "fold_chain"

    def input_ids(self) -> list[str]:
        return [self.fact_input] + [step.dim_input for step in self.steps]

    def describe(self) -> str:
        folds = ", ".join(
            f"{step.fact_column.key} = {step.dim_column.key}"
            for step in self.steps
        )
        return f"{self.id}: FoldJoinChain({folds})"

    def emission(self, ctx) -> OpEmission:
        bindings = ", ".join(step.dim_binding for step in self.steps)
        return OpEmission(
            kind="fold_chain",
            label=f"FoldJoinChain({bindings})",
            lines=[
                f"  // fused chained-join run: fold {bindings} into the "
                "fact side in one pass",
                *[
                    "  fold_gather_kernel<<<grid, block>>>"
                    f"(d_fact_keys, d_{step.dim_binding}_keys, d_gathered);"
                    for step in self.steps
                ],
            ],
        )

    def execute(self, ctx) -> FactValue:
        fact = ctx.value(self.fact_input)
        if isinstance(fact, RelationValue):
            fact = FactValue(env=fact.env,
                             weights=np.ones(fact.env.n_rows), gathered={})
        combined = np.ones(fact.env.n_rows, dtype=bool)
        weights = fact.weights
        # Deferred per-step gathers, executed once on the final
        # survivors; kept in step order so the gathered-column layout
        # matches the sequential fold chain exactly.
        deferred: list[tuple] = []
        step_sizes: list[tuple[int, int]] = []
        for step in self.steps:
            dim_env = ctx.value(step.dim_input).env
            dim_keys = dim_env.lookup(step.dim_column.key)
            fact_keys = fact.column(step.fact_column.key)
            # Rows that would have survived into this step of the
            # sequential chain — what its estimate would have charged.
            step_sizes.append((int(combined.sum()), int(dim_keys.size)))
            unique_keys = np.unique(dim_keys)
            if unique_keys.size == 0:
                # Empty dimension: the join eliminates every fact row
                # (later steps still execute on the empty survivor set,
                # exactly like the sequential ops would).
                combined[:] = False
                deferred.append(("empty", step.needed))
                continue
            is_unique = unique_keys.size == dim_keys.size
            if step.needed and not is_unique:
                raise FallbackRequired(
                    f"dimension {step.dim_binding} has duplicate join keys "
                    "but contributes group/factor columns",
                    kind="pattern",
                )
            positions, matched = FoldJoin._probe_chunked(
                ctx, unique_keys, fact_keys)
            if is_unique:
                row_of = np.argsort(dim_keys, kind="stable")
                dim_rows = ctx.backend.gather(
                    row_of,
                    np.clip(positions, 0, max(dim_keys.size - 1, 0)))
                deferred.append(("gather", dim_env, dim_rows, step.needed))
            else:
                counts = ctx.backend.bincount(
                    np.searchsorted(unique_keys, dim_keys),
                    minlength=max(unique_keys.size, 1),
                )
                multiplicity = np.where(matched, counts[positions], 0)
                weights = weights * multiplicity
            combined &= matched
        ctx.charge(
            self, STAGE_FILL,
            estimate_fold_chain(ctx.host, ctx.device, step_sizes,
                                CHAINED_JOIN_FILL_S),
        )
        folded = FactValue(env=fact.env, weights=weights,
                           gathered=dict(fact.gathered))
        if not combined.all():
            folded = folded.filtered(combined)
        for entry in deferred:
            if entry[0] == "empty":
                for key in entry[1]:
                    folded.gathered[key] = np.array([], dtype=np.int64)
                continue
            _, dim_env, dim_rows, needed = entry
            surviving_rows = dim_rows[combined]
            for key in needed:
                folded.gathered[key] = ctx.backend.gather(
                    dim_env.lookup(key), surviving_rows)
        return folded


@dataclass
class IndicatorBuild(TensorOp):
    """Build the operand matrices of one join step (Section 3.1/3.4).

    Consumes the chain state plus the next table's relation, derives the
    union key domain, and produces the prepared indicator (equi) or
    comparison (non-equi) matrices together with the operator geometry
    and the data-range feasibility report the downstream ``Gemm``
    prices.  ``profile`` selects the geometry accounting: ``two_way``
    (the 2-table pattern, non-equi aware) or ``chain_step`` (one link of
    a multi-way chain).
    """

    chain_input: str
    right_input: str
    predicate: JoinPredicate
    right_binding: str
    profile: str = "two_way"

    kind = "indicator_build"

    def input_ids(self) -> list[str]:
        return [self.chain_input, self.right_input]

    def describe(self) -> str:
        return (f"{self.id}: IndicatorBuild({self.predicate.left.key} "
                f"{self.predicate.op} {self.predicate.right.key})")

    def emission(self, ctx) -> OpEmission:
        return OpEmission(
            kind="indicator_build",
            label=f"IndicatorBuild({self.predicate.op})",
            consumer_id=getattr(self, "consumer_id", None),
            transform=True,
        )

    def execute(self, ctx) -> JoinOperandsValue:
        chain: ChainValue = ctx.value(self.chain_input)
        right: RelationValue = ctx.value(self.right_input)
        predicate = self.predicate
        inner, outer = ((predicate.left, predicate.right)
                        if predicate.right.binding == self.right_binding
                        else (predicate.right, predicate.left))
        weights = None
        if chain.materialized:
            left_keys = chain.keys_of(inner)
        else:
            # ANALYTIC chains past the first unmaterialized step: the
            # chain threads exact per-row multiplicities, so this step
            # prices from the exact intermediate cardinality instead of
            # the unfiltered key counts.
            left_keys = chain.envs[inner.binding].lookup(inner.key)
            weights = chain.multiplicity.get(inner.binding)
        right_keys = right.env.lookup(outer.key)
        domain = union_key_domain(left_keys, right_keys)
        n, m, k = left_keys.size, right_keys.size, domain.k
        if self.profile == "two_way":
            nnz_left = _comparison_nnz(domain, predicate.op, n)
            pairs = _pair_count(domain, predicate.op)
            raw_bytes = 8.0 * (
                n * ctx.referenced_columns(inner.binding)
                + m * ctx.referenced_columns(outer.binding)
            )
        elif weights is not None:
            # Exact cardinality of the unmaterialized intermediate and of
            # this step's output (weighted histogram dot product).
            n = max(int(chain.n_rows), 0)
            nnz_left = n
            per_key = np.bincount(domain.left, weights=weights,
                                  minlength=max(domain.k, 1))
            pairs = int(round(float(per_key[domain.right].sum())))
            raw_bytes = 8.0 * (n + m)
        else:
            nnz_left = n
            pairs = mapped_pair_count(domain.left, domain.right, domain.k)
            raw_bytes = 8.0 * (n + m)
        geometry = OperatorGeometry(
            g1=n, g2=m, k=k, nnz_left=nnz_left, nnz_right=m,
            n_tuples=n + m, raw_bytes=raw_bytes, result_rows=pairs,
            n_matmuls=1, needs_nonzero=True,
        )
        feasibility = run_feasibility_test(
            INDICATOR_RANGE, INDICATOR_RANGE, k,
            require_exact=(ctx.options.require_exact
                           if self.profile == "two_way" else False),
        )
        prepared = PreparedJoin(
            op=predicate.op if self.profile == "two_way" else "=",
            left_keys_mapped=domain.left,
            right_keys_mapped=domain.right,
            domain_values=domain.values,
            k=k,
        )
        return JoinOperandsValue(
            prepared=prepared, geometry=geometry, feasibility=feasibility,
            pairs=pairs, chain=chain, right_env=right.env,
            right_binding=self.right_binding, inner_binding=inner.binding,
            left_weights=weights,
        )


@dataclass
class ValueFill(TensorOp):
    """Build value-filled grouped operand matrices for one aggregate
    product.

    Two modes:

    * ``star`` — the pattern lowering: the folded fact side joins the B
      dimension; values are the per-side products of the decomposed
      aggregate factors (Section 3.1's grouped/adjacency construction).
    * ``reduce`` — hybrid lowering (Lemma 3.1): a fully materialized
      relation reduces against a ones-vector; aggregate arguments are
      arbitrary scalar expressions evaluated per row, the inner
      dimension is the row index.
    """

    left_input: str
    right_input: str | None
    mode: str  # "star" | "reduce"
    specs: list[AggregateSpec]
    group_by: list[BoundColumn]
    # star mode only:
    pattern: TCUPattern | None = None
    b_side: str | None = None
    fact_column: BoundColumn | None = None
    b_column: BoundColumn | None = None
    # reduce mode only: one argument expression (or None for COUNT) per spec
    arguments: list[Expr | None] = field(default_factory=list)
    # Set by the fusion pass: build each side's indicator structure once
    # (shared rows/codes) instead of per-aggregate.
    shared: bool = False
    # Fused residual-fact mask (fusion pass): the residual conjuncts are
    # evaluated inside the operand fill — masked fact tuples are never
    # placed, instead of a separate MaskApply pass over the fact side.
    epilogue_predicates: list[Predicate] = field(default_factory=list)
    fused_from: list[str] = field(default_factory=list)

    kind = "value_fill"

    def input_ids(self) -> list[str]:
        ids = [self.left_input]
        if self.right_input is not None:
            ids.append(self.right_input)
        return ids

    def describe(self) -> str:
        funcs = ",".join(s.func for s in self.specs) or "-"
        keys = ",".join(c.key for c in self.group_by) or "<global>"
        suffix = " [coo-shared]" if self.shared else ""
        if self.epilogue_predicates:
            conds = " AND ".join(str(p) for p in self.epilogue_predicates)
            suffix += f" epilogue({conds}) fused_from={self.fused_from}"
        return (f"{self.id}: ValueFill[{self.mode}](aggs={funcs}, "
                f"group_by={keys}){suffix}")

    def emission(self, ctx) -> OpEmission:
        label = f"ValueFill[{self.mode}]"
        if self.shared:
            label += " (shared indicator structure)"
        if self.epilogue_predicates:
            label += " +MaskedFill"
        return OpEmission(
            kind="value_fill",
            label=label,
            consumer_id=getattr(self, "consumer_id", None),
            transform=True,
        )

    def execute(self, ctx) -> AggOperandsValue:
        if self.mode == "reduce":
            return self._execute_reduce(ctx)
        return self._execute_star(ctx)

    # -- star (pattern) mode ------------------------------------------- #

    def _execute_star(self, ctx) -> AggOperandsValue:
        fact = ctx.value(self.left_input)
        if isinstance(fact, RelationValue):
            fact = FactValue(env=fact.env,
                             weights=np.ones(fact.env.n_rows), gathered={})
        if self.epilogue_predicates:
            # Masked operand fill: residual-fact conjuncts ride the fill
            # pass — masked tuples are never placed into the operands.
            ctx.charge(
                self, "tcu_mask_apply",
                estimate_mask_apply(ctx.device, fact.n_rows,
                                    len(self.epilogue_predicates),
                                    fused=True),
            )
            mask = conjunction_mask(self.epilogue_predicates,
                                    fact.eval_environment(), ctx.bound)
            fact = fact.filtered(mask)
        b_env = ctx.value(self.right_input).env
        grouped = bool(self.pattern.group_by)
        if fact.env.n_rows == 0 or b_env.n_rows == 0:
            return AggOperandsValue(
                left=None, right=None, k=0, geometry=None, feasibility=None,
                pairs=0, specs=self.specs, grouped=grouped, empty=True,
            )
        fact_keys = fact.column(self.fact_column.key)
        b_keys = b_env.lookup(self.b_column.key)
        domain = union_key_domain(fact_keys, b_keys)
        bound = ctx.bound
        fact_binding = self.pattern.fact
        dims = {t.binding for t in bound.tables} - {fact_binding, self.b_side}
        left_side = _build_agg_side(
            self.specs, self.group_by, fact.column, domain.left,
            side_bindings={fact_binding} | dims, weights=fact.weights,
            b_side=False,
        )
        right_side = _build_agg_side(
            self.specs, self.group_by, b_env.lookup, domain.right,
            side_bindings={self.b_side}, weights=np.ones(b_keys.size),
            b_side=True,
        )
        pairs = mapped_pair_count(domain.left, domain.right, domain.k)
        left_structure = right_structure = None
        if self.shared:
            left_structure = build_coo_operands(left_side, domain.k)
            right_structure = build_coo_operands(right_side, domain.k)
        geometry = _agg_geometry(
            ctx, self.specs, left_side, right_side, domain.k, pairs,
            fact_binding, self.b_side,
            left_structure=left_structure, right_structure=right_structure,
        )
        feasibility = _agg_feasibility(
            self.specs, left_side, right_side, domain.k,
            require_exact=ctx.options.require_exact,
            left_structure=left_structure, right_structure=right_structure,
        )
        return AggOperandsValue(
            left=left_side, right=right_side, k=domain.k, geometry=geometry,
            feasibility=feasibility, pairs=pairs, specs=self.specs,
            grouped=grouped,
            left_structure=left_structure, right_structure=right_structure,
        )

    # -- reduce (hybrid) mode ------------------------------------------ #

    def _execute_reduce(self, ctx) -> AggOperandsValue:
        relation: RelationValue = ctx.value(self.left_input)
        env = relation.env
        n = env.n_rows
        grouped = bool(self.group_by)
        if n == 0:
            return AggOperandsValue(
                left=None, right=None, k=0, geometry=None, feasibility=None,
                pairs=0, specs=self.specs, grouped=grouped, empty=True,
            )
        group = None
        group_order = [c.key for c in self.group_by]
        if self.group_by:
            group = CompositeKey.build(
                [np.asarray(env.lookup(c.key)) for c in self.group_by]
            )
        values_per_agg: list[np.ndarray] = []
        for spec, argument in zip(self.specs, self.arguments):
            if spec.func == "count" or argument is None:
                values_per_agg.append(np.ones(n))
                continue
            values = evaluate_expr(argument, env, ctx.bound)
            values_per_agg.append(np.asarray(values, dtype=np.float64))
        left_side = PreparedAggSide(
            keys_mapped=np.arange(n, dtype=np.int64),
            group=group,
            values_per_agg=values_per_agg,
            count_values=np.ones(n),
            group_order=group_order,
        )
        # The reduce-mode B side is an all-ones vector for every
        # aggregate: share one array instead of materializing a copy per
        # aggregate.
        ones = np.ones(n)
        right_side = PreparedAggSide(
            keys_mapped=np.arange(n, dtype=np.int64),
            group=None,
            values_per_agg=[ones] * len(self.specs),
            count_values=ones,
        )
        value_specs = sum(1 for s in self.specs if s.func != "count")
        g1 = left_side.g
        geometry = OperatorGeometry(
            g1=g1, g2=1, k=n,
            nnz_left=n, nnz_right=n,
            n_tuples=n,
            raw_bytes=8.0 * n * max(len(self.group_by) + len(self.specs), 1),
            result_rows=min(g1, n),
            n_matmuls=value_specs + 1,
            needs_nonzero=True,
            fill_scale=4.0 if value_specs else 1.0,
        )
        left_structure = right_structure = None
        if self.shared:
            left_structure = build_coo_operands(left_side, n)
            right_structure = build_coo_operands(right_side, n)
        feasibility = _agg_feasibility(
            self.specs, left_side, right_side, n,
            require_exact=ctx.options.require_exact,
            left_structure=left_structure, right_structure=right_structure,
        )
        return AggOperandsValue(
            left=left_side, right=right_side, k=n, geometry=geometry,
            feasibility=feasibility, pairs=n, specs=self.specs,
            grouped=grouped,
            left_structure=left_structure, right_structure=right_structure,
        )


@dataclass
class Gemm(TensorOp):
    """Price (Figure 6) and execute one matrix product.

    Runs the per-operator optimizer workflow over the operand geometry
    and feasibility report, charges the chosen plan's transform/compute/
    result costs, and performs the product — bit-accurate TCU emulation
    when the matrices are small enough to materialize, the semantically
    equivalent exact-key path beyond that.
    """

    input: str
    label: str = "TCU GEMM"

    kind = "gemm"

    def input_ids(self) -> list[str]:
        return [self.input]

    def describe(self) -> str:
        return f"{self.id}: Gemm({self.label})"

    def emission(self, ctx) -> OpEmission:
        decision = ctx.decisions.get(self.id)
        operands = ctx.values.get(self.input)
        dims = (0, 0, 0)
        n_matmuls = 1
        if isinstance(operands, JoinOperandsValue):
            dims = (operands.geometry.g1, operands.geometry.g2,
                    operands.geometry.k)
        elif isinstance(operands, AggOperandsValue) and operands.geometry:
            dims = (operands.geometry.g1, operands.geometry.g2,
                    operands.geometry.k)
            n_matmuls = operands.geometry.n_matmuls
        return OpEmission(
            kind="gemm", label=self.label,
            plan=decision.plan if decision else None,
            dims=dims, n_matmuls=n_matmuls,
        )

    def priced_geometry(self, operands) -> OperatorGeometry:
        """Geometry the optimizer prices and the plan charges.

        The unfused per-aggregate loop rebuilds both operand matrices for
        every grid, so multi-grid products charge one operand fill per
        matmul; the fused ``BatchedGemm`` overrides this to a single
        shared fill.
        """
        geometry = operands.geometry
        if isinstance(operands, AggOperandsValue) and geometry.n_matmuls > 1:
            return replace(geometry, fill_passes=geometry.n_matmuls)
        return geometry

    def execute(self, ctx) -> ProductValue:
        operands = ctx.value(self.input)
        if isinstance(operands, AggOperandsValue) and operands.empty:
            return ProductValue(operands=operands, empty=True)
        grouped = (operands.grouped
                   if isinstance(operands, AggOperandsValue) else False)
        geometry = self.priced_geometry(operands)
        decision = ctx.optimizer.decide(
            geometry, operands.feasibility, operands.pairs,
            grouped=grouped, op_label=f"{self.id} ({self.label})",
        )
        ctx.record_decision(self.id, decision)
        if not decision.use_tcu and not ctx.options.force_strategy:
            kind = ("feasibility"
                    if decision.feasibility is not None
                    and not decision.feasibility.feasible else "cost")
            raise FallbackRequired(decision.reason, kind=kind)
        plan = decision.plan
        if isinstance(operands, JoinOperandsValue):
            ctx.charge_plan(self, plan, "tcu_join")
            return self._execute_join(ctx, operands, plan)
        stage = ("tcu_join_groupby_aggregation" if grouped
                 else "tcu_join_aggregation")
        ctx.charge_plan(self, plan, stage)
        return self._execute_agg(ctx, operands, plan)

    def _execute_join(self, ctx, operands: JoinOperandsValue,
                      plan) -> ProductValue:
        prepared = operands.prepared
        if not ctx.driver.use_numeric_join(prepared, ctx.mode):
            return ProductValue(operands=operands, semantic=True)
        # The driver chunks the probe rows when the full dense product
        # would blow the cell budget, extracting nonzeros per product
        # chunk and accumulating the pair lists grid-wise.
        rows, cols = ctx.driver._join_pairs_by_matmul(prepared, plan)
        return ProductValue(operands=operands, pair_indices=(rows, cols))

    def _run_grids(self, ctx, operands: AggOperandsValue, plan):
        return ctx.driver._grids_by_matmul(
            operands.left, operands.right, operands.k, operands.specs, plan
        )

    def _execute_agg(self, ctx, operands: AggOperandsValue,
                     plan) -> ProductValue:
        left, right = operands.left, operands.right
        g1, g2, k = left.g, right.g, operands.k
        if ctx.mode != ExecutionMode.REAL:
            return ProductValue(operands=operands, semantic=True)
        geometry = operands.geometry
        if ctx.driver.use_numeric_grid(
            g1, g2, k,
            nnz_left=geometry.nnz_left, nnz_right=geometry.nnz_right,
            sparse=plan.strategy == Strategy.SPARSE,
        ):
            grids, count_grid = self._run_grids(ctx, operands, plan)
        else:
            grids, count_grid = ctx.driver._grids_semantic(
                left, right, operands.specs, g1, g2
            )
        return ProductValue(operands=operands, grids=grids,
                            count_grid=count_grid)


@dataclass
class BatchedGemm(Gemm):
    """Fused multi-aggregate GEMM (fusion rewrite of a JOIN_AGG fan-out).

    Builds each side's indicator structure once — rows and group codes
    shared across every aggregate — stacks the per-aggregate fill values
    into an (n_agg, g, k) operand and issues a single stacked matmul.
    The cost model charges one operand fill plus ``n_agg`` MMA passes
    instead of ``n_agg`` full operand rebuilds.
    """

    n_grids: int = 1
    fused_from: list[str] = field(default_factory=list)

    kind = "batched_gemm"

    def describe(self) -> str:
        base = (f"{self.id}: BatchedGemm({self.label}, "
                f"grids={self.n_grids})")
        if self.fused_from:
            base += f" fused_from={self.fused_from}"
        return base

    def priced_geometry(self, operands) -> OperatorGeometry:
        # One shared fill regardless of the grid count.
        return operands.geometry

    def emission(self, ctx) -> OpEmission:
        emission = super().emission(ctx)
        return replace(emission, kind="batched_gemm",
                       label=f"{self.label} (batched x{self.n_grids})")

    def _run_grids(self, ctx, operands: AggOperandsValue, plan):
        return ctx.driver._grids_batched(
            operands.left, operands.right, operands.k, operands.specs, plan,
            left_structure=operands.left_structure,
            right_structure=operands.right_structure,
        )


@dataclass
class NonzeroExtract(TensorOp):
    """nonzero() extraction of matching pairs; extends the join chain.

    A fused residual epilogue (``epilogue_predicates``, installed by the
    fusion pass from a downstream ``MaskApply[residual-pairs]``) is
    evaluated inside this result hook — the extracted pairs are masked in
    the same pass instead of a separate grid traversal.
    """

    input: str
    epilogue_predicates: list[Predicate] = field(default_factory=list)
    fused_from: list[str] = field(default_factory=list)

    kind = "nonzero"

    def input_ids(self) -> list[str]:
        return [self.input]

    def describe(self) -> str:
        base = f"{self.id}: NonzeroExtract()"
        if self.epilogue_predicates:
            conds = " AND ".join(str(p) for p in self.epilogue_predicates)
            base += f" epilogue({conds}) fused_from={self.fused_from}"
        return base

    def emission(self, ctx) -> OpEmission:
        lines = ["  nonzero_kernel<<<grid, block>>>"
                 "(d_Ct, d_pairs, &n_pairs);"]
        label = "NonzeroExtract"
        if self.epilogue_predicates:
            label = "NonzeroExtract+MaskEpilogue"
            lines = [
                "  // fused epilogue: residual predicate evaluated inside "
                "the extraction kernel",
                "  nonzero_masked_kernel<<<grid, block>>>"
                f"(d_Ct, d_pairs, &n_pairs, epilogue_pred/*"
                f"{len(self.epilogue_predicates)} conjunct(s)*/);",
            ]
        return OpEmission(kind="nonzero", label=label, lines=lines)

    def execute(self, ctx) -> ChainValue:
        product: ProductValue = ctx.value(self.input)
        operands = product.operands
        chain = operands.chain
        if product.pair_indices is not None:
            left_idx, right_idx = product.pair_indices
        elif product.dense is not None:
            left_idx, right_idx = ctx.backend.nonzero(product.dense > 0)
        elif ctx.mode == ExecutionMode.REAL:
            left_idx, right_idx = ctx.driver._join_pairs_semantic(
                operands.prepared
            )
        else:
            # ANALYTIC: exact count, no materialization.  Equi steps also
            # compute the per-right-row multiplicity of the new
            # intermediate (a weighted histogram), so the next chain step
            # prices from exact cardinalities; the epilogue contributes
            # its estimated selectivity.
            prepared = operands.prepared
            right_mult = None
            if prepared.op == "=":
                weights = operands.left_weights
                if weights is None:
                    weights = np.ones(prepared.left_keys_mapped.size)
                per_key = np.bincount(
                    prepared.left_keys_mapped, weights=weights,
                    minlength=max(prepared.k, 1),
                )
                right_mult = per_key[prepared.right_keys_mapped]
                count = int(round(float(right_mult.sum())))
            else:
                count = ctx.driver._join_count(prepared)
            if self.epilogue_predicates:
                self._charge_epilogue(ctx, count)
                selectivity = conjunction_selectivity(
                    self.epilogue_predicates, bound_stats_lookup(ctx.bound)
                )
                count = int(count * selectivity)
                if right_mult is not None:
                    right_mult = right_mult * selectivity
            multiplicity = (
                {operands.right_binding: right_mult}
                if right_mult is not None else {}
            )
            return ChainValue(
                envs={**chain.envs, operands.right_binding: operands.right_env},
                indices={},
                n_rows=count,
                joined=chain.joined | {operands.right_binding},
                multiplicity=multiplicity,
            )
        left_idx = np.asarray(left_idx)
        indices = {
            binding: index[left_idx]
            for binding, index in chain.indices.items()
        }
        indices[operands.right_binding] = np.asarray(right_idx)
        extracted = ChainValue(
            envs={**chain.envs, operands.right_binding: operands.right_env},
            indices=indices,
            n_rows=int(np.asarray(left_idx).size),
            joined=chain.joined | {operands.right_binding},
        )
        if not self.epilogue_predicates:
            return extracted
        self._charge_epilogue(ctx, extracted.n_rows)
        env = extracted.merged_environment()
        mask = conjunction_mask(self.epilogue_predicates, env, ctx.bound)
        bindings = list(extracted.indices)
        masked = ctx.backend.apply_mask(
            [extracted.indices[b] for b in bindings], mask)
        return ChainValue(
            envs=extracted.envs,
            indices=dict(zip(bindings, masked)),
            n_rows=int(np.count_nonzero(mask)),
            joined=set(extracted.joined),
        )

    def _charge_epilogue(self, ctx, rows: int) -> None:
        ctx.charge(
            self, "tcu_mask_apply",
            estimate_mask_apply(ctx.device, rows,
                                len(self.epilogue_predicates), fused=True),
        )


@dataclass
class GridAggregate(TensorOp):
    """Harvest the non-empty cells of the aggregate grids.

    Extracts present (group-left, group-right) cells via the COUNT grid,
    applies AVG division, and decodes the composite group codes back
    into physical group-column values.  A fused HAVING epilogue
    (installed by the fusion pass from a downstream
    ``MaskApply[having]``) evaluates the HAVING conjuncts inside this
    result hook — masked groups never leave the extraction pass.
    """

    input: str
    epilogue_predicates: list[Predicate] = field(default_factory=list)
    epilogue_nodes: dict[Expr, OutputNode] = field(default_factory=dict)
    fused_from: list[str] = field(default_factory=list)

    kind = "grid_aggregate"

    def input_ids(self) -> list[str]:
        return [self.input]

    def describe(self) -> str:
        base = f"{self.id}: GridAggregate()"
        if self.epilogue_predicates:
            conds = " AND ".join(str(p) for p in self.epilogue_predicates)
            base += f" epilogue({conds}) fused_from={self.fused_from}"
        return base

    def emission(self, ctx) -> OpEmission:
        label = "GridAggregate"
        extract = ("  nonzero_kernel<<<grid, block>>>"
                   "(d_count_grid, d_groups, &n_groups);")
        if self.epilogue_predicates:
            label = "GridAggregate+HavingEpilogue"
            extract = (
                "  nonzero_masked_kernel<<<grid, block>>>"
                "(d_count_grid, d_groups, &n_groups, having_pred/*"
                f"{len(self.epilogue_predicates)} conjunct(s)*/);"
            )
        lines = [extract]
        if self.epilogue_predicates:
            lines.insert(0, "  // fused epilogue: HAVING predicate "
                            "evaluated inside the result hook")
        lines.extend([
            "  avg_divide_kernel<<<grid, block>>>"
            "(d_grids, d_count_grid, n_groups);",
            "  decode_groups_kernel<<<grid, block>>>"
            "(d_groups, d_group_labels);",
        ])
        return OpEmission(kind="grid_aggregate", label=label, lines=lines)

    def execute(self, ctx) -> GroupsValue:
        product: ProductValue = ctx.value(self.input)
        operands: AggOperandsValue = product.operands
        if product.empty:
            if operands.grouped:
                return GroupsValue(agg_values=[], group_columns={}, n_rows=0,
                                   empty=True)
            # Ungrouped aggregates over zero qualifying rows still return
            # one row: COUNT = 0 and (NULL-free model) SUM/AVG/MIN/MAX =
            # 0.0 — synthesize it rather than dropping the result row,
            # matching the conventional executors.
            groups = GroupsValue(
                agg_values=[np.zeros(1) for _ in operands.specs],
                group_columns={}, n_rows=1,
            )
            return self._apply_epilogue(ctx, groups)
        left, right = operands.left, operands.right
        if product.semantic and ctx.mode != ExecutionMode.REAL:
            estimate = min(
                left.g * right.g,
                max(int(left.keys_mapped.size),
                    int(right.keys_mapped.size), 1),
            )
            if self.epilogue_predicates:
                self._charge_epilogue(ctx, estimate)
                estimate = int(estimate * conjunction_selectivity(
                    self.epilogue_predicates, bound_stats_lookup(ctx.bound)
                ))
            return GroupsValue(agg_values=None, group_columns=None,
                               n_rows=estimate)
        grids, count_grid = product.grids, product.count_grid
        present = count_grid > 0
        rows, cols = ctx.backend.nonzero(present)
        if rows.size == 0 and not operands.grouped:
            # Non-empty operands but zero matching pairs: the ungrouped
            # result row still exists (COUNT = 0, sums 0.0).
            groups = GroupsValue(
                agg_values=[np.zeros(1) for _ in operands.specs],
                group_columns={}, n_rows=1,
            )
            return self._apply_epilogue(ctx, groups)
        agg_values: list[np.ndarray] = []
        for spec, grid in zip(operands.specs, grids):
            values = grid[rows, cols]
            if spec.func == "avg":
                values = values / np.maximum(count_grid[rows, cols], 1)
            agg_values.append(values)
        group_columns: dict[str, np.ndarray] = {}
        if left.group is not None:
            decoded = left.group.decode(rows)
            for column, values in zip(left.group_order, decoded):
                group_columns[column] = values
        if right.group is not None:
            decoded = right.group.decode(cols)
            for column, values in zip(right.group_order, decoded):
                group_columns[column] = values
        groups = GroupsValue(agg_values=agg_values,
                             group_columns=group_columns,
                             n_rows=int(rows.size))
        return self._apply_epilogue(ctx, groups)

    def _apply_epilogue(self, ctx, groups: GroupsValue) -> GroupsValue:
        if not self.epilogue_predicates:
            return groups
        self._charge_epilogue(ctx, groups.n_rows)
        mask = having_mask(ctx, self.epilogue_predicates,
                           self.epilogue_nodes, groups)
        keys = list(groups.group_columns)
        masked_groups = ctx.backend.apply_mask(
            [groups.group_columns[k] for k in keys], mask)
        return GroupsValue(
            agg_values=ctx.backend.apply_mask(groups.agg_values, mask),
            group_columns=dict(zip(keys, masked_groups)),
            n_rows=int(np.count_nonzero(mask)),
        )

    def _charge_epilogue(self, ctx, rows: int) -> None:
        ctx.charge(
            self, "tcu_mask_apply",
            estimate_mask_apply(ctx.device, rows,
                                len(self.epilogue_predicates), fused=True),
        )


@dataclass
class MaskApply(TensorOp):
    """Predicate masks over intermediate results.

    Roles:

    * ``residual-fact``  — cross-table residual conjuncts over the fact
      side after its dimensions folded (JOIN_AGG lowering);
    * ``residual-pairs`` — residual conjuncts over extracted join pairs
      (JOIN_2WAY / multiway lowering);
    * ``having``         — HAVING conjuncts over the aggregated grid,
      with aggregate sub-expressions compiled onto the grid's values.
    """

    input: str
    predicates: list[Predicate]
    role: str
    having_nodes: dict[Expr, OutputNode] = field(default_factory=dict)

    kind = "mask_apply"

    def input_ids(self) -> list[str]:
        return [self.input]

    def describe(self) -> str:
        conds = " AND ".join(str(p) for p in self.predicates)
        return f"{self.id}: MaskApply[{self.role}]({conds})"

    def emission(self, ctx) -> OpEmission:
        return OpEmission(
            kind="mask_apply", label=f"MaskApply[{self.role}]",
            lines=[
                f"  // {len(self.predicates)} predicate(s), role="
                f"{self.role}",
                "  mask_apply_kernel<<<grid, block>>>"
                "(d_rows, d_mask, n_rows);",
            ],
        )

    def execute(self, ctx):
        value = ctx.value(self.input)
        if isinstance(value, FactValue) or isinstance(value, RelationValue):
            return self._mask_fact(ctx, value)
        if isinstance(value, ChainValue):
            return self._mask_chain(ctx, value)
        if isinstance(value, GroupsValue):
            return self._mask_groups(ctx, value)
        raise ExecutionError(f"MaskApply cannot filter {type(value).__name__}")

    def _charge(self, ctx, rows: int) -> None:
        ctx.charge(
            self, "tcu_mask_apply",
            estimate_mask_apply(ctx.device, rows, len(self.predicates)),
        )

    def _mask_fact(self, ctx, value):
        if isinstance(value, RelationValue):
            value = FactValue(env=value.env,
                              weights=np.ones(value.env.n_rows), gathered={})
        self._charge(ctx, value.n_rows)
        env = value.eval_environment()
        mask = conjunction_mask(self.predicates, env, ctx.bound)
        return value.filtered(mask)

    def _mask_chain(self, ctx, chain: ChainValue) -> ChainValue:
        self._charge(ctx, chain.n_rows)
        if not chain.materialized:
            # ANALYTIC estimate: per-conjunct selectivities derived from
            # column statistics (0.5 only for conjuncts beyond them).
            selectivity = conjunction_selectivity(
                self.predicates, bound_stats_lookup(ctx.bound)
            )
            n = int(chain.n_rows * selectivity)
            return ChainValue(
                envs=chain.envs, indices={}, n_rows=n,
                joined=set(chain.joined),
                multiplicity={b: m * selectivity
                              for b, m in chain.multiplicity.items()},
            )
        env = chain.merged_environment()
        mask = conjunction_mask(self.predicates, env, ctx.bound)
        bindings = list(chain.indices)
        masked = ctx.backend.apply_mask(
            [chain.indices[b] for b in bindings], mask)
        return ChainValue(envs=chain.envs, indices=dict(zip(bindings, masked)),
                          n_rows=int(np.count_nonzero(mask)),
                          joined=set(chain.joined))

    def _mask_groups(self, ctx, groups: GroupsValue) -> GroupsValue:
        self._charge(ctx, groups.n_rows)
        if groups.empty:
            return groups
        if groups.agg_values is None:
            n = int(groups.n_rows * conjunction_selectivity(
                self.predicates, bound_stats_lookup(ctx.bound)
            ))
            return GroupsValue(agg_values=None, group_columns=None, n_rows=n)
        mask = having_mask(ctx, self.predicates, self.having_nodes, groups)
        keys = list(groups.group_columns)
        masked_groups = ctx.backend.apply_mask(
            [groups.group_columns[k] for k in keys], mask)
        return GroupsValue(
            agg_values=ctx.backend.apply_mask(groups.agg_values, mask),
            group_columns=dict(zip(keys, masked_groups)),
            n_rows=int(np.count_nonzero(mask)),
        )


def having_mask(ctx, predicates, having_nodes, groups: GroupsValue):
    """Boolean per-group mask of HAVING conjuncts compiled onto the grid
    (shared by ``MaskApply[having]`` and the fused HAVING epilogue)."""
    n = groups.n_rows

    def eval_expr(expr: Expr) -> np.ndarray:
        node = having_nodes.get(expr)
        if node is None:
            raise ExecutionError(
                f"HAVING expression {expr} was not lowered onto the grid"
            )
        return eval_output_node(node, groups.agg_values,
                                groups.group_columns, n)

    mask = np.ones(n, dtype=bool)
    for predicate in predicates:
        mask &= predicate_mask(
            predicate, n, eval_expr,
            lambda ref, value: encode_literal(ctx.bound, ref, value),
        )
    return mask


@dataclass
class PhysicalStage(TensorOp):
    """Conventional pre-stage of a hybrid program.

    Executes the non-TCU-expressible relational prefix (joins, filters,
    residual predicates) with the exact NumPy kernels of
    :class:`~repro.engine.physical.PhysicalExecutor`, charging
    host-executor time, and hands the materialized relation to the TCU
    core (grouped-reduce ValueFill/Gemm).

    With ``streaming`` on (the default since the chunked-storage
    refactor), the prefix executes morsel-driven — chunk batches pulled
    through Scan/Filter/Join — which bounds peak intermediates to the
    chunk size times the join fan-out and, crucially, lets hybrid
    lowering run in ANALYTIC mode: the pre-stage streams up to
    ``budget_rows`` output rows instead of refusing with a ``mode``
    fallback.
    """

    tree: LogicalNode
    streaming: bool = False
    budget_rows: int = 4_000_000

    kind = "physical_stage"

    def describe(self) -> str:
        roots = [n.describe() for n in self.tree.walk()]
        suffix = " [streaming]" if self.streaming else ""
        return f"{self.id}: PhysicalStage({' <- '.join(roots[:1])}...)"\
            + suffix

    def emission(self, ctx) -> OpEmission:
        label = "PhysicalStage (host pre-join"
        label += ", streamed)" if self.streaming else ")"
        return OpEmission(
            kind="physical_stage", label=label,
            lines=["  // host executor: joins/filters beyond matmul "
                   "expressiveness; streams the joined relation to the TCU "
                   "chunk by chunk"],
        )

    def execute(self, ctx) -> RelationValue:
        if ctx.mode != ExecutionMode.REAL and not self.streaming:
            raise FallbackRequired(
                "hybrid pre-stage requires REAL mode (materialized relation)",
                kind="mode",
            )
        executor = PhysicalExecutor(ctx.bound, chunk_rows=ctx.chunk_rows,
                                    workers=ctx.workers,
                                    cancel_token=ctx.cancel_token)
        try:
            if self.streaming:
                env = self._stream_prefix(ctx, executor)
            else:
                env = executor._run_relation(self.tree)
        except ExecutionError as error:
            raise FallbackRequired(
                f"hybrid pre-stage exceeded materialization budget: {error}",
                kind="cost",
            ) from error
        n_input = 0
        n_joins = 0
        for node in self.tree.walk():
            if isinstance(node, Scan):
                n_input += ctx.bound.binding(node.binding).table.num_rows
            if isinstance(node, JoinNode):
                n_joins += 1
        ctx.charge(
            self, "hybrid_prestage",
            estimate_physical_stage(ctx.host, n_input, env.n_rows, n_joins),
        )
        return RelationValue(env=env)

    def _stream_prefix(self, ctx, executor: PhysicalExecutor) -> Environment:
        """Pull the prefix through the streaming executor, bounded by the
        row budget in ANALYTIC mode (REAL keeps the pair-limit bound)."""
        chunks: list[Environment] = []
        total = 0
        budget = (self.budget_rows
                  if ctx.mode != ExecutionMode.REAL else None)
        for env in executor.stream_relation(self.tree):
            total += env.n_rows
            if budget is not None and total > budget:
                raise FallbackRequired(
                    f"streaming pre-stage exceeded {budget} rows in "
                    f"{ctx.mode.value} mode",
                    kind="cost",
                )
            chunks.append(env)
        if not chunks:
            return Environment({}, 0)
        arrays = {
            key: np.concatenate([chunk.arrays[key] for chunk in chunks])
            for key in chunks[0].arrays
        }
        return Environment(arrays, total)


@dataclass
class Decode(TensorOp):
    """Materialize output arrays from the final pairs/groups payload."""

    input: str
    role: str  # "project" | "aggregate"
    items: list = field(default_factory=list)  # SelectItems (project)
    projected: list = field(default_factory=list)  # BoundColumn | float
    outputs: list[OutputItem] = field(default_factory=list)  # aggregate

    kind = "decode"

    def input_ids(self) -> list[str]:
        return [self.input]

    def describe(self) -> str:
        if self.role == "project":
            cols = ", ".join(
                c.key if isinstance(c, BoundColumn) else repr(c)
                for c in self.projected
            )
        else:
            cols = ", ".join(item.name for item in self.outputs)
        return f"{self.id}: Decode[{self.role}]({cols})"

    def emission(self, ctx) -> OpEmission:
        return OpEmission(
            kind="decode", label=f"Decode[{self.role}]",
            lines=[
                "  cudaMemcpyAsync(h_result, d_result, n_rows * row_bytes, "
                "cudaMemcpyDeviceToHost, result_stream);",
            ],
        )

    def execute(self, ctx) -> OutputValue:
        value = ctx.value(self.input)
        if self.role == "project":
            return self._decode_chain(ctx, value)
        return self._decode_groups(ctx, value)

    def _decode_chain(self, ctx, chain: ChainValue) -> OutputValue:
        names = [item.output_name for item in self.items]
        if not chain.materialized:
            return OutputValue(arrays=None, names=names,
                               by_columns=list(self.projected),
                               n_rows=chain.n_rows)
        arrays: list[np.ndarray] = []
        for column in self.projected:
            if isinstance(column, float):
                arrays.append(np.full(chain.n_rows, column))
                continue
            env = chain.envs[column.binding]
            index = chain.indices.get(column.binding)
            data = env.lookup(column.key)
            arrays.append(data if index is None else data[index])
        return OutputValue(arrays=arrays, names=names,
                           by_columns=list(self.projected),
                           n_rows=chain.n_rows)

    def _decode_groups(self, ctx, groups: GroupsValue) -> OutputValue:
        names = [item.name for item in self.outputs]
        by_columns = [
            item.node.column if isinstance(item.node, GroupRef) else None
            for item in self.outputs
        ]
        if groups.empty:
            return OutputValue(
                arrays=[np.array([]) for _ in self.outputs],
                names=names, by_columns=by_columns, n_rows=0,
            )
        if groups.agg_values is None:
            return OutputValue(arrays=None, names=names,
                               by_columns=by_columns, n_rows=groups.n_rows)
        arrays = [
            eval_output_node(item.node, groups.agg_values,
                             groups.group_columns, groups.n_rows)
            for item in self.outputs
        ]
        return OutputValue(arrays=arrays, names=names, by_columns=by_columns,
                           n_rows=groups.n_rows)


# --------------------------------------------------------------------------- #
# Shared helpers (ported from the former engine monoliths)
# --------------------------------------------------------------------------- #


def _comparison_nnz(domain, op: str, n: int) -> int:
    if op == "=":
        return n
    left_values = domain.values[domain.left]
    sorted_domain = domain.values
    if op == "<":
        counts = domain.k - np.searchsorted(sorted_domain, left_values,
                                            side="right")
    elif op == "<=":
        counts = domain.k - np.searchsorted(sorted_domain, left_values,
                                            side="left")
    elif op == ">":
        counts = np.searchsorted(sorted_domain, left_values, side="left")
    elif op == ">=":
        counts = np.searchsorted(sorted_domain, left_values, side="right")
    else:  # <>, !=
        counts = np.full(n, domain.k - 1)
    return int(counts.sum())


def _pair_count(domain, op: str) -> int:
    from repro.engine.relational import nonequi_join_count

    if op == "=":
        return equi_join_count(domain.left, domain.right)
    return nonequi_join_count(
        domain.values[domain.left], domain.values[domain.right], op
    )


def _build_agg_side(specs, group_by, column_of, mapped_keys, side_bindings,
                    weights, b_side) -> PreparedAggSide:
    group_cols = [c for c in group_by if c.binding in side_bindings]
    group = None
    group_order = [c.key for c in group_cols]
    if group_cols:
        group = CompositeKey.build(
            [np.asarray(column_of(c.key)) for c in group_cols]
        )
    n = mapped_keys.size
    if b_side:
        # Streamed B-side fill: the per-aggregate factor products are
        # computed on demand (whole-side or one key-domain chunk's tuple
        # selection) instead of being materialized per aggregate up
        # front.  Slicing the factor columns before the elementwise
        # products is bit-identical to slicing the product, so the
        # chunked grid accumulation stays exact while only one slice is
        # ever live.
        def fill(index: int, selection=None) -> np.ndarray:
            spec = specs[index]
            if selection is None:
                values = np.full(n, 1.0)
            else:
                selection = np.asarray(selection)
                size = (int(np.count_nonzero(selection))
                        if selection.dtype == np.bool_
                        else selection.size)
                values = np.full(size, 1.0)
            for factor in spec.factors:
                if factor.column.binding not in side_bindings:
                    continue
                array = np.asarray(column_of(factor.column.key),
                                   dtype=np.float64)
                if selection is not None:
                    array = array[selection]
                values = values * (array if factor.power == 1
                                   else 1.0 / array)
            return values

        return PreparedAggSide(
            keys_mapped=np.asarray(mapped_keys),
            group=group,
            values_per_agg=[],
            count_values=np.ones(n),
            group_order=group_order,
            value_fill=fill,
        )
    values_per_agg: list[np.ndarray] = []
    for spec in specs:
        values = np.full(n, 1.0) * spec.constant * weights
        for factor in spec.factors:
            if factor.column.binding not in side_bindings:
                continue
            array = np.asarray(column_of(factor.column.key), dtype=np.float64)
            values = values * (array if factor.power == 1 else 1.0 / array)
        values_per_agg.append(values)
    return PreparedAggSide(
        keys_mapped=np.asarray(mapped_keys),
        group=group,
        values_per_agg=values_per_agg,
        count_values=np.asarray(weights, dtype=np.float64),
        group_order=group_order,
    )


def _agg_geometry(ctx, specs, left_side, right_side, k, pairs, fact,
                  b_side, left_structure=None,
                  right_structure=None) -> OperatorGeometry:
    if left_structure is not None and right_structure is not None:
        # Shared structure already canonicalized the coordinates.
        nnz_left = left_structure.nnz
        nnz_right = right_structure.nnz
    else:
        nnz_left = int(np.unique(
            left_side.row_codes() * k + left_side.keys_mapped
        ).size)
        nnz_right = int(np.unique(
            right_side.row_codes() * k + right_side.keys_mapped
        ).size)
    n = left_side.keys_mapped.size
    m = right_side.keys_mapped.size
    raw_bytes = 8.0 * (
        n * ctx.referenced_columns(fact)
        + m * ctx.referenced_columns(b_side)
    )
    value_specs = sum(1 for spec in specs if spec.func != "count")
    has_value_fill = any(spec.factors for spec in specs)
    return OperatorGeometry(
        g1=left_side.g, g2=right_side.g, k=k,
        nnz_left=nnz_left, nnz_right=nnz_right,
        n_tuples=n + m, raw_bytes=raw_bytes,
        result_rows=min(left_side.g * right_side.g, max(pairs, 1)),
        n_matmuls=value_specs + 1,  # +1 for the COUNT/indicator grid
        needs_nonzero=True,
        fill_scale=4.0 if has_value_fill else 1.0,
    )


def _agg_feasibility(specs, left_side, right_side, k, require_exact=False,
                     left_structure=None, right_structure=None):
    """Exact data-range test over the prepared operand matrices.

    Both sides are fully materialized by the time the optimizer decides,
    so the test computes the exact per-cell sums each matrix will hold.
    With shared operand structures (fusion on) every per-aggregate range
    reduces to one bincount over the already-canonicalized coordinates
    instead of re-deriving them per aggregate.
    """
    worst_left = _exact_cell_range(left_side, k, left_side.count_values,
                                   left_structure)
    worst_right = _exact_cell_range(right_side, k, right_side.count_values,
                                    right_structure)
    for i, spec in enumerate(specs):
        if spec.func == "count":
            continue
        left_range = _exact_cell_range(left_side, k,
                                       left_side.values_per_agg[i],
                                       left_structure)
        right_range = _exact_cell_range(right_side, k,
                                        right_side.values_for(i),
                                        right_structure)
        if left_range is None or right_range is None:
            return run_feasibility_test(None, None, k)
        worst_left = _wider(worst_left, left_range)
        worst_right = _wider(worst_right, right_range)
    return run_feasibility_test(
        worst_left or INDICATOR_RANGE, worst_right or INDICATOR_RANGE, k,
        require_exact=require_exact,
    )


def _exact_cell_range(side, k, values, structure=None):
    """Exact [min, max] of one operand matrix's cell sums (0 included for
    empty cells); None when a value is non-finite (e.g. division by a
    zero-valued column)."""
    from repro.tensor.precision import ValueRange

    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return INDICATOR_RANGE
    if not np.all(np.isfinite(values)):
        return None
    if structure is not None:
        sums = structure.cell_sums(values)
    else:
        cells = side.row_codes() * k + side.keys_mapped
        _, inverse = np.unique(cells, return_inverse=True)
        sums = np.bincount(inverse, weights=values)
    # The fill values (not just the accumulated endpoints) decide
    # integrality: fractional fills quantize to garbage at int4/int8.
    integral = bool(np.all(values == np.rint(values)))
    return ValueRange(float(min(sums.min(), 0.0)),
                      float(max(sums.max(), 0.0)),
                      integral=integral)


def _wider(a, b):
    from repro.tensor.precision import ValueRange

    if a is None:
        return b
    if b is None:
        return a
    return ValueRange(min(a.lo, b.lo), max(a.hi, b.hi),
                      integral=a.is_integral and b.is_integral)


def eval_output_node(node: OutputNode, agg_values, group_columns,
                     n_rows) -> np.ndarray:
    """Evaluate one output-expression tree over per-group arrays."""
    if isinstance(node, AggRef):
        return np.asarray(agg_values[node.index], dtype=np.float64)
    if isinstance(node, ConstRef):
        return np.full(n_rows, node.value)
    if isinstance(node, GroupRef):
        values = group_columns.get(node.column.key)
        if values is None:
            raise ExecutionError(
                f"group column {node.column.key} missing from grid"
            )
        return np.asarray(values)
    if isinstance(node, OutputOp):
        left = eval_output_node(node.left, agg_values, group_columns,
                                n_rows).astype(np.float64)
        right = eval_output_node(node.right, agg_values, group_columns,
                                 n_rows).astype(np.float64)
        ops = {"+": np.add, "-": np.subtract, "*": np.multiply,
               "/": np.divide, "%": np.mod}
        return ops[node.op](left, right)
    raise ExecutionError(f"bad output node {node!r}")


__all__ = [
    "CHAINED_JOIN_FILL_S",
    "AggOperandsValue",
    "BatchedGemm",
    "ChainStart",
    "ChainValue",
    "Decode",
    "FactValue",
    "FallbackRequired",
    "FoldJoin",
    "Gemm",
    "GridAggregate",
    "GroupsValue",
    "IndicatorBuild",
    "JoinOperandsValue",
    "MaskApply",
    "NonzeroExtract",
    "OutputValue",
    "PhysicalStage",
    "ProductValue",
    "RelationValue",
    "TableSource",
    "TensorOp",
    "ValueFill",
    "eval_output_node",
    "having_mask",
]

"""The TCUDB query optimizer — Figure 6's decision workflow.

For a matched subquery the optimizer runs, in order:

1. **Data-range test** (Section 4.2.1): pick the most compact TCU
   precision or bail out.
2. **Working-set test** (Section 4.2.3): dense matrices beyond device
   memory divert to the blocked MSplitGEMM plan.
3. **Matrix-density test** (Section 4.2.4): inputs sparser than the
   calibrated threshold divert to TCU-SpMM.
4. **Cost comparison** (Section 4.2.2): the winning TCU plan must beat
   the estimated conventional GPU/CPU plan, else TCUDB falls back.

The adaptive mixed-precision step evaluates every feasible precision and
keeps the cheapest end-to-end plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.tcudb.cost import (
    OperatorGeometry,
    PlanCost,
    Strategy,
    candidate_precisions,
    estimate_blocked,
    estimate_cpu_baseline,
    estimate_dense,
    estimate_gpu_baseline,
    estimate_sparse,
)
from repro.engine.tcudb.feasibility import FeasibilityReport
from repro.hardware.calibration import CalibrationReport
from repro.hardware.gpu import GPUDevice
from repro.hardware.profiles import HostProfile


@dataclass
class OptimizerDecision:
    """Outcome of the Figure-6 workflow for one operator."""

    use_tcu: bool
    plan: PlanCost | None
    feasibility: FeasibilityReport | None
    gpu_baseline_seconds: float
    cpu_baseline_seconds: float
    reason: str
    trace: list[str] = field(default_factory=list)

    @property
    def strategy(self) -> Strategy | None:
        return self.plan.strategy if self.plan else None

    def explain(self) -> str:
        lines = list(self.trace)
        lines.append(f"decision: {self.reason}")
        return "\n".join(lines)


class TCUOptimizer:
    """Prices TCU plans against baselines for one device/host pair."""

    def __init__(
        self,
        device: GPUDevice,
        host: HostProfile,
        calibration: CalibrationReport,
        allow_gpu_transform: bool = True,
        force_strategy: Strategy | None = None,
        force_precision=None,
    ):
        self.device = device
        self.host = host
        self.calibration = calibration
        self.allow_gpu_transform = allow_gpu_transform
        self.force_strategy = force_strategy
        self.force_precision = force_precision

    def decide(
        self,
        geometry: OperatorGeometry,
        feasibility: FeasibilityReport,
        pairs: int,
        grouped: bool,
        tile_pairs: float | None = None,
        op_label: str | None = None,
    ) -> OptimizerDecision:
        """Run the Figure-6 workflow for one operator's product.

        ``op_label`` names the TensorProgram operator being priced, so
        per-operator decisions stay attributable in the trace.
        """
        trace: list[str] = []
        if op_label:
            trace.append(f"operator: {op_label}")
        if geometry.n_matmuls > 1:
            trace.append(
                f"operand build: {geometry.fill_passes} fill pass(es) for "
                f"{geometry.n_matmuls} matmuls"
                + (" (fused: shared indicator structure)"
                   if geometry.fill_passes == 1 else " (unfused rebuilds)")
            )
        gpu_s = estimate_gpu_baseline(self.device, geometry, pairs, grouped)
        cpu_s = estimate_cpu_baseline(self.host, geometry, pairs, grouped)
        if not feasibility.feasible:
            return OptimizerDecision(
                use_tcu=False, plan=None, feasibility=feasibility,
                gpu_baseline_seconds=gpu_s, cpu_baseline_seconds=cpu_s,
                reason=f"range test failed: {feasibility.reason}",
                trace=trace,
            )
        assert feasibility.choice is not None
        base_precision = feasibility.choice.precision
        trace.append(
            f"range test: ranges {feasibility.left_range} x "
            f"{feasibility.right_range}, most compact type "
            f"{base_precision.value}"
        )
        best: PlanCost | None = None
        precisions = (
            [self.force_precision] if self.force_precision is not None
            else candidate_precisions(base_precision)
        )
        for precision in precisions:
            plan = self._plan_for_precision(geometry, precision, tile_pairs,
                                            trace)
            if best is None or plan.total < best.total:
                best = plan
        assert best is not None
        trace.append(
            f"best TCU plan: {best.strategy.value}/{best.precision.value} "
            f"= {best.total * 1e3:.3f} ms "
            f"(DT {best.transform.fill_seconds * 1e3:.3f}, "
            f"DM {best.transform.memcpy_seconds * 1e3:.3f}, "
            f"CT {best.compute_seconds * 1e3:.3f})"
        )
        baseline = min(gpu_s, cpu_s)
        trace.append(
            f"baselines: GPU {gpu_s * 1e3:.3f} ms, CPU {cpu_s * 1e3:.3f} ms"
        )
        if best.total >= baseline:
            return OptimizerDecision(
                use_tcu=False, plan=best, feasibility=feasibility,
                gpu_baseline_seconds=gpu_s, cpu_baseline_seconds=cpu_s,
                reason=(
                    f"TCU plan ({best.total * 1e3:.3f} ms) does not beat the "
                    f"conventional plan ({baseline * 1e3:.3f} ms)"
                ),
                trace=trace,
            )
        return OptimizerDecision(
            use_tcu=True, plan=best, feasibility=feasibility,
            gpu_baseline_seconds=gpu_s, cpu_baseline_seconds=cpu_s,
            reason=(
                f"TCU {best.strategy.value} plan at {best.precision.value} "
                f"wins ({best.total * 1e3:.3f} ms vs {baseline * 1e3:.3f} ms)"
            ),
            trace=trace,
        )

    # ------------------------------------------------------------------ #

    def _plan_for_precision(
        self,
        geometry: OperatorGeometry,
        precision,
        tile_pairs: float | None,
        trace: list[str],
    ) -> PlanCost:
        if self.force_strategy is not None:
            return self._forced_plan(geometry, precision, tile_pairs, trace)
        working_set = geometry.working_set_bytes(precision)
        budget = self.device.memory.available * 0.9
        if working_set + geometry.raw_bytes > budget:
            trace.append(
                f"working-set test [{precision.value}]: "
                f"{working_set / 1024**3:.2f} GiB exceeds device memory -> "
                "blocked MSplitGEMM"
            )
            return estimate_blocked(self.device, self.host, geometry, precision)
        threshold = self.calibration.density_threshold
        if geometry.min_density < threshold:
            trace.append(
                f"density test [{precision.value}]: min density "
                f"{geometry.min_density:.2e} below threshold "
                f"{threshold:.2e} -> TCU-SpMM"
            )
            return estimate_sparse(
                self.device, self.host, geometry, precision, tile_pairs,
                allow_gpu_transform=self.allow_gpu_transform,
            )
        if geometry.min_density < threshold * 2:
            # Near the threshold the heuristic is unreliable; Section
            # 4.2.4 says TCUDB estimates the TCU-SpMM plan's cost against
            # the dense plan, so price both and keep the cheaper.
            dense = estimate_dense(
                self.device, self.host, geometry, precision,
                allow_gpu_transform=self.allow_gpu_transform,
            )
            sparse = estimate_sparse(
                self.device, self.host, geometry, precision, tile_pairs,
                allow_gpu_transform=self.allow_gpu_transform,
            )
            winner = sparse if sparse.total < dense.total else dense
            trace.append(
                f"density test [{precision.value}]: density "
                f"{geometry.min_density:.2e} near threshold -> cost "
                f"comparison picks {winner.strategy.value}"
            )
            return winner
        trace.append(
            f"density test [{precision.value}]: density "
            f"{geometry.min_density:.2e} -> dense GEMM"
        )
        return estimate_dense(
            self.device, self.host, geometry, precision,
            allow_gpu_transform=self.allow_gpu_transform,
        )

    def _forced_plan(self, geometry, precision, tile_pairs, trace) -> PlanCost:
        """Bypass the working-set/density tests (ablation benchmarks)."""
        trace.append(f"strategy forced to {self.force_strategy.value}")
        if self.force_strategy == Strategy.BLOCKED:
            return estimate_blocked(self.device, self.host, geometry,
                                    precision)
        if self.force_strategy == Strategy.SPARSE:
            return estimate_sparse(
                self.device, self.host, geometry, precision, tile_pairs,
                allow_gpu_transform=self.allow_gpu_transform,
            )
        return estimate_dense(
            self.device, self.host, geometry, precision,
            allow_gpu_transform=self.allow_gpu_transform,
        )

"""Whole-query shape classification — one lowering strategy among several.

Historically this module was the gatekeeper of TCU execution: a query
either matched one of three shapes or abandoned the TCU entirely.  Since
the TensorProgram refactor it is the *pattern lowering strategy*: the
classifier below recognizes the matmul-encodable core shapes and
:mod:`repro.engine.tcudb.lower` translates them (plus HAVING masks,
residual-predicate masks and hybrid pre-stages) into a DAG of composable
TCU operators (:mod:`repro.engine.tcudb.ops`).

* ``JOIN_2WAY``  — Q1/Q5-style: two tables, one (equi or non-equi) join
  predicate, projection of plain columns, no aggregates.
* ``JOIN_MULTIWAY`` — Q2-style: a chain of equi joins, projection only.
* ``JOIN_AGG``  — Q3/Q4/Figure-5/SSB/PageRank-style: equi joins arranged
  as a star around a fact table, SUM/COUNT/AVG aggregates whose arguments
  decompose into per-table multiplicative factors, optional GROUP BY.

Constructs truly beyond matmul expressiveness (MIN/MAX, additive
aggregate arguments that do not split linearly, disconnected joins)
still reject with a :class:`MatchFailure`; HAVING and cross-table
residual predicates are *not* rejected here any more — the lowering pass
turns them into ``MaskApply`` operators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.sql.ast_nodes import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    Expr,
    Literal,
    Parameter,
)
from repro.sql.binder import BoundColumn, BoundQuery, JoinPredicate


class PatternKind(enum.Enum):
    JOIN_2WAY = "join_2way"
    JOIN_MULTIWAY = "join_multiway"
    JOIN_AGG = "join_agg"


@dataclass(frozen=True)
class Factor:
    """One multiplicative factor of an aggregate argument."""

    column: BoundColumn
    power: int  # +1 for multiply, -1 for divide


@dataclass
class AggregateSpec:
    """SUM/COUNT/AVG decomposed as constant * product of column factors."""

    func: str  # sum | count | avg
    constant: float
    factors: list[Factor]

    def factors_for(self, binding: str) -> list[Factor]:
        return [f for f in self.factors if f.column.binding == binding]

    @property
    def bindings(self) -> set[str]:
        return {f.column.binding for f in self.factors}


# Output expression tree over aggregate results -------------------------------- #


@dataclass(frozen=True)
class AggRef:
    """Leaf referring to the i-th AggregateSpec's per-group result."""

    index: int


@dataclass(frozen=True)
class GroupRef:
    """Leaf referring to a group-by column's value."""

    column: BoundColumn


@dataclass(frozen=True)
class ConstRef:
    value: float


@dataclass(frozen=True)
class OutputOp:
    op: str
    left: "OutputNode"
    right: "OutputNode"


OutputNode = AggRef | GroupRef | ConstRef | OutputOp


@dataclass
class OutputItem:
    name: str
    node: OutputNode


@dataclass
class TCUPattern:
    """A query recognized as TCU-executable."""

    kind: PatternKind
    bound: BoundQuery
    joins: list[JoinPredicate]
    fact: str | None = None  # star center binding (JOIN_AGG)
    aggregates: list[AggregateSpec] = field(default_factory=list)
    outputs: list[OutputItem] = field(default_factory=list)
    group_by: list[BoundColumn] = field(default_factory=list)
    projected: list[BoundColumn] = field(default_factory=list)


@dataclass
class MatchFailure:
    """Why a query was rejected for TCU execution.

    ``kind`` classifies the rejection for the fallback-rate surfaces:
    ``pattern`` (expressiveness), ``cost`` (optimizer preferred the
    conventional plan), ``feasibility`` (data-range test failed) or
    ``mode`` (execution mode cannot support the plan).
    """

    reason: str
    kind: str = "pattern"


def match_pattern(bound: BoundQuery) -> TCUPattern | MatchFailure:
    """Classify a bound query into a TCU pattern or explain the rejection.

    HAVING and residual predicates are deliberately *not* inspected: the
    lowering pass attaches them as ``MaskApply`` operators over the
    matched core shape.
    """
    if len(bound.tables) < 2:
        return MatchFailure("single-table query: nothing to encode as a join")
    if not bound.join_predicates:
        return MatchFailure("no join predicate between the tables")
    if bound.has_aggregates:
        return _match_join_agg(bound)
    return _match_join_project(bound)


def build_having_nodes(
    bound: BoundQuery, pattern: TCUPattern
) -> dict[Expr, OutputNode] | MatchFailure:
    """Lower HAVING expressions onto the aggregate grid.

    Every scalar expression appearing in a HAVING predicate is compiled
    to an :data:`OutputNode` over the pattern's aggregate results —
    appending additional :class:`AggregateSpec` entries for aggregates
    that are not in the select list (e.g. ``HAVING COUNT(*) > 1`` under a
    SUM-only projection).  Returns the expression -> node mapping the
    ``MaskApply`` operator evaluates per group, or a
    :class:`MatchFailure` when a HAVING aggregate is beyond matmul
    expressiveness (MIN/MAX, non-product arguments).
    """
    from repro.sql.ast_nodes import walk_predicate_exprs

    group_keys = {c.key for c in pattern.group_by}
    nodes: dict[Expr, OutputNode] = {}
    for predicate in bound.having:
        for expr in walk_predicate_exprs(predicate):
            if isinstance(expr, Literal) and isinstance(expr.value, str):
                # String literals are encoded against the compared
                # column's dictionary by the predicate interpreter.
                continue
            if is_parameter_constant(expr):
                # Parameter-only operands fold to literals at execution;
                # specialization installs the folded ConstRef.
                continue
            if expr in nodes:
                continue
            node = _build_output_node(expr, bound, pattern.aggregates,
                                      group_keys)
            if isinstance(node, MatchFailure):
                return MatchFailure(f"HAVING: {node.reason}")
            nodes[expr] = node
    return nodes


# -- join-only patterns ---------------------------------------------------------- #


def is_parameter_constant(expr: Expr) -> bool:
    """True for expressions that are constant *up to parameters*: every
    leaf is a literal or an unbound :class:`Parameter`, with at least one
    parameter present.  They fold to plain literals once values bind, so
    template lowering treats them like literal operands (HAVING skips
    them; specialization installs the folded constant)."""
    saw_parameter = False
    for node in expr.walk():
        if isinstance(node, Parameter):
            saw_parameter = True
        elif not isinstance(node, (Literal, BinaryOp)):
            return False
    return saw_parameter


def constant_value(expr: Expr) -> float | None:
    """Fold a literal-only expression to a constant (None if impossible)."""
    if isinstance(expr, Literal):
        if isinstance(expr.value, str):
            return None
        return float(expr.value)
    if isinstance(expr, BinaryOp):
        left = constant_value(expr.left)
        right = constant_value(expr.right)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right if right != 0 else None
        if expr.op == "%":
            return left % right if right != 0 else None
    return None


def _match_join_project(bound: BoundQuery) -> TCUPattern | MatchFailure:
    if bound.group_by:
        return MatchFailure("GROUP BY without aggregates is not supported")
    projected: list[BoundColumn | float] = []
    for item in bound.select_items:
        if isinstance(item.expr, ColumnRef):
            projected.append(bound.resolve(item.expr))
            continue
        constant = constant_value(item.expr)
        if constant is None:
            return MatchFailure(
                f"projection {item.expr} is not a plain column or constant; "
                "TCU join patterns project columns only"
            )
        projected.append(constant)
    joins = list(bound.join_predicates)
    if len(bound.tables) == 2:
        if len(joins) != 1:
            return MatchFailure(
                "two-way joins must have exactly one join predicate"
            )
        return TCUPattern(
            kind=PatternKind.JOIN_2WAY, bound=bound, joins=joins,
            projected=projected,
        )
    # Multi-way: the planner's left-deep order must chain all tables with
    # equi predicates (Section 3.2 assumes the conventional join order).
    non_equi = [j for j in joins if not j.is_equi]
    if non_equi:
        return MatchFailure("multi-way non-equi joins are not supported")
    if len(joins) != len(bound.tables) - 1:
        return MatchFailure(
            "multi-way join must form a tree (n-1 predicates for n tables)"
        )
    return TCUPattern(
        kind=PatternKind.JOIN_MULTIWAY, bound=bound, joins=joins,
        projected=projected,
    )


# -- aggregation patterns ----------------------------------------------------------- #


def _match_join_agg(bound: BoundQuery) -> TCUPattern | MatchFailure:
    if getattr(bound, "group_exprs", {}):
        # Computed GROUP BY keys live on no table side of the star; the
        # hybrid pipeline groups on the projected expression instead.
        return MatchFailure(
            "GROUP BY expressions are beyond the star pattern"
        )
    joins = list(bound.join_predicates)
    non_equi = [j for j in joins if not j.is_equi]
    if non_equi:
        return MatchFailure("aggregation over non-equi joins is not supported")
    fact = _find_star_center(bound, joins)
    if fact is None:
        return MatchFailure(
            "join graph is not a star/chain reducible to one fact table"
        )
    aggregates: list[AggregateSpec] = []
    outputs: list[OutputItem] = []
    group_keys = {c.key for c in bound.group_by}
    for item in bound.select_items:
        node = _build_output_node(item.expr, bound, aggregates, group_keys)
        if isinstance(node, MatchFailure):
            return node
        outputs.append(OutputItem(name=item.output_name, node=node))
    if not aggregates:
        return MatchFailure("no supported aggregate in the select list")
    return TCUPattern(
        kind=PatternKind.JOIN_AGG,
        bound=bound,
        joins=joins,
        fact=fact,
        aggregates=aggregates,
        outputs=outputs,
        group_by=list(bound.group_by),
    )


def _find_star_center(
    bound: BoundQuery, joins: list[JoinPredicate]
) -> str | None:
    """A binding that participates in every join predicate."""
    if len(joins) != len(bound.tables) - 1:
        return None
    candidates = {t.binding for t in bound.tables}
    for join in joins:
        candidates &= {join.left.binding, join.right.binding}
    if candidates:
        # Prefer the first FROM table if it qualifies (paper's join order).
        first = bound.tables[0].binding
        return first if first in candidates else sorted(candidates)[0]
    return None


def _build_output_node(
    expr: Expr,
    bound: BoundQuery,
    aggregates: list[AggregateSpec],
    group_keys: set[str],
) -> OutputNode | MatchFailure:
    if isinstance(expr, Literal):
        if isinstance(expr.value, str):
            return MatchFailure("string literals in aggregate outputs")
        return ConstRef(float(expr.value))
    if isinstance(expr, ColumnRef):
        column = bound.resolve(expr)
        if column.key not in group_keys:
            return MatchFailure(
                f"column {column.key} in SELECT is not a GROUP BY key"
            )
        return GroupRef(column)
    if isinstance(expr, AggregateCall):
        # SUM is linear: SUM(x +- y) rewrites to SUM(x) +- SUM(y), which
        # lets additive arguments (e.g. SSB's lo_revenue - lo_supplycost)
        # run as two matmuls instead of falling back.
        if (expr.func == "sum" and isinstance(expr.argument, BinaryOp)
                and expr.argument.op in ("+", "-")):
            left = _build_output_node(
                AggregateCall(func="sum", argument=expr.argument.left),
                bound, aggregates, group_keys,
            )
            if isinstance(left, MatchFailure):
                return left
            right = _build_output_node(
                AggregateCall(func="sum", argument=expr.argument.right),
                bound, aggregates, group_keys,
            )
            if isinstance(right, MatchFailure):
                return right
            return OutputOp(op=expr.argument.op, left=left, right=right)
        spec = _decompose_aggregate(expr, bound)
        if isinstance(spec, MatchFailure):
            return spec
        aggregates.append(spec)
        return AggRef(len(aggregates) - 1)
    if isinstance(expr, BinaryOp):
        left = _build_output_node(expr.left, bound, aggregates, group_keys)
        if isinstance(left, MatchFailure):
            return left
        right = _build_output_node(expr.right, bound, aggregates, group_keys)
        if isinstance(right, MatchFailure):
            return right
        return OutputOp(op=expr.op, left=left, right=right)
    return MatchFailure(f"unsupported select expression {expr}")


def _decompose_aggregate(
    call: AggregateCall, bound: BoundQuery
) -> AggregateSpec | MatchFailure:
    if call.func in ("min", "max"):
        # Matrix multiply-accumulate cannot express MIN/MAX (Section 3.4).
        return MatchFailure(f"{call.func.upper()} is beyond TCU expressiveness")
    if call.func not in ("sum", "count", "avg"):
        return MatchFailure(f"unsupported aggregate {call.func!r}")
    if call.argument is None:  # COUNT(*)
        return AggregateSpec(func="count", constant=1.0, factors=[])
    decomposed = _decompose_product(call.argument, bound)
    if decomposed is None:
        return MatchFailure(
            f"aggregate argument {call.argument} is not a product of "
            "column factors (additive arguments are beyond TCU patterns)"
        )
    constant, factors = decomposed
    if call.func == "count":
        return AggregateSpec(func="count", constant=1.0, factors=[])
    return AggregateSpec(func=call.func, constant=constant, factors=factors)


def _decompose_product(
    expr: Expr, bound: BoundQuery, power: int = 1
) -> tuple[float, list[Factor]] | None:
    """Flatten an expression into (constant, [column^power factors])."""
    if isinstance(expr, Literal):
        if isinstance(expr.value, str):
            return None
        value = float(expr.value)
        if value == 0 and power < 0:
            return None
        return (value**power if power > 0 else value**power), []
    if isinstance(expr, ColumnRef):
        return 1.0, [Factor(column=bound.resolve(expr), power=power)]
    if isinstance(expr, BinaryOp):
        if expr.op == "*":
            left = _decompose_product(expr.left, bound, power)
            right = _decompose_product(expr.right, bound, power)
        elif expr.op == "/":
            left = _decompose_product(expr.left, bound, power)
            right = _decompose_product(expr.right, bound, -power)
        else:
            return None
        if left is None or right is None:
            return None
        return left[0] * right[0], left[1] + right[1]
    return None

"""The TensorProgram IR: a DAG of composable TCU operators.

A :class:`TensorProgram` is what the lowering pass
(:mod:`repro.engine.tcudb.lower`) produces from a bound query and what
the engine executes: a topologically ordered list of operators from
:mod:`repro.engine.tcudb.ops`, each reading its inputs from the shared
:class:`ProgramContext` value store.  The program records, per operator,
the optimizer decision (for ``Gemm`` nodes) and the simulated seconds
charged, so an executed query remains fully inspectable:

* ``program.describe()``        — the operator DAG, one line per node;
* ``program.cost_table(ctx)``   — per-operator simulated seconds;
* ``emit_tensor_program(...)``  — the per-operator CUDA C source
  (:mod:`repro.engine.tcudb.codegen`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ExecutionError
from repro.common.timing import STAGE_FILL, STAGE_MEMCPY, TimingBreakdown
from repro.engine.base import ExecutionMode
from repro.engine.tcudb.codegen import GeneratedProgram, emit_tensor_program
from repro.engine.tcudb.ops import OutputValue, TensorOp


@dataclass
class OperatorCost:
    """Simulated seconds one operator charged, by stage."""

    op_id: str
    kind: str
    stage: str
    seconds: float


class ProgramContext:
    """Shared execution state of one TensorProgram run."""

    def __init__(self, bound, device, host, mode: ExecutionMode, options,
                 optimizer, driver, cancel_token=None):
        self.bound = bound
        self.device = device
        self.host = host
        self.mode = mode
        self.options = options
        self.optimizer = optimizer
        self.driver = driver
        self.cancel_token = cancel_token
        self.breakdown = TimingBreakdown()
        self.values: dict[str, object] = {}
        self.decisions: dict[str, object] = {}
        self.op_costs: list[OperatorCost] = []

    # -- value store ---------------------------------------------------- #

    def value(self, op_id: str):
        if op_id not in self.values:
            raise ExecutionError(f"operator input {op_id!r} not yet computed")
        return self.values[op_id]

    # -- charging ------------------------------------------------------- #

    def charge(self, op: TensorOp, stage: str, seconds: float) -> None:
        self.breakdown.add(stage, seconds)
        self.op_costs.append(
            OperatorCost(op_id=op.id, kind=op.kind, stage=stage,
                         seconds=seconds)
        )

    def charge_plan(self, op: TensorOp, plan, op_stage: str) -> None:
        """Charge one Gemm plan: transform fill/memcpy, compute, result."""
        self.charge(op, STAGE_FILL, plan.transform.fill_seconds)
        self.charge(op, STAGE_MEMCPY, plan.transform.memcpy_seconds)
        self.charge(op, op_stage, plan.compute_seconds)
        self.charge(op, STAGE_MEMCPY, plan.result_seconds)

    def record_decision(self, op_id: str, decision) -> None:
        self.decisions[op_id] = decision

    # -- helpers shared with the former engine monoliths ----------------- #

    @property
    def chunk_rows(self) -> int | None:
        """Effective chunk size for morsel-driven operators, or ``None``
        when chunked execution is off (the legacy contiguous path)."""
        if not getattr(self.options, "chunked_execution", True):
            return None
        from repro.storage.chunk import chunk_rows_policy

        return chunk_rows_policy(getattr(self.options, "chunk_rows", None))

    @property
    def workers(self) -> int:
        """Effective worker count for the morsel-parallel chunk loops."""
        from repro.engine.parallel import workers_policy

        return workers_policy(getattr(self.options, "workers", None))

    @property
    def backend(self):
        """The active :class:`~repro.tensor.backend.TensorBackend` —
        operators route gather/bincount/nonzero/mask primitives through
        it so one selection covers the whole program."""
        driver = self.driver
        if driver is not None and getattr(driver, "backend", None) is not None:
            return driver.backend
        from repro.tensor.backend import get_backend

        return get_backend(getattr(self.options, "backend", None))

    def referenced_columns(self, binding: str) -> int:
        return max(
            len({c.column for c in self.bound.resolution.values()
                 if c.binding == binding}),
            1,
        )


@dataclass
class TensorProgram:
    """A topologically ordered DAG of TCU operators."""

    ops: list[TensorOp]
    strategy: str  # lowering strategy, e.g. "pattern:join_agg"
    hybrid: bool = False
    notes: list[str] = field(default_factory=list)

    def run(self, ctx: ProgramContext) -> OutputValue:
        """Execute every operator in order; returns the final payload."""
        result = None
        for op in self.ops:
            if ctx.cancel_token is not None:
                ctx.cancel_token.raise_if_cancelled()
            result = op.execute(ctx)
            ctx.values[op.id] = result
        if not isinstance(result, OutputValue):
            raise ExecutionError(
                f"program did not end in a Decode operator "
                f"(got {type(result).__name__})"
            )
        return result

    # -- inspection ------------------------------------------------------ #

    def describe(self) -> str:
        lines = [f"TensorProgram[{self.strategy}]"
                 + (" (hybrid)" if self.hybrid else "")]
        for op in self.ops:
            inputs = ", ".join(op.input_ids())
            suffix = f"  <- {inputs}" if inputs else ""
            lines.append(f"  {op.describe()}{suffix}")
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)

    def cost_table(self, ctx: ProgramContext) -> list[OperatorCost]:
        """Per-operator simulated charges recorded during the run."""
        return list(ctx.op_costs)

    def generated_code(self, ctx: ProgramContext) -> GeneratedProgram:
        """Assemble the per-operator CUDA sections (post-run: plans known)."""
        emissions = []
        for op in self.ops:
            emission = op.emission(ctx)
            if emission is not None:
                emissions.append(emission)
        return emit_tensor_program(self.strategy, emissions, ctx.decisions)


__all__ = ["OperatorCost", "ProgramContext", "TensorProgram"]

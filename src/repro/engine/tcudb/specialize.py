"""Parameter specialization of cached TensorPrograms.

A program lowered from a *deferred-bound* template (see
:mod:`repro.sql.prepared`) is structurally complete — operator DAG,
join order, aggregate decomposition, fusion — but a handful of operator
payloads still carry :class:`~repro.sql.ast_nodes.Parameter` nodes
inside predicate or argument expressions.  This pass stamps a cached
template with one execution's parameter values by *copying* exactly the
operators that carry expressions, leaving everything else shared:

* ``MaskApply`` / ``NonzeroExtract`` / ``GridAggregate`` / ``ValueFill``
  — residual/HAVING predicates (and fused epilogues) substituted and
  re-folded; HAVING node maps re-keyed, with parameter-only operands
  (skipped at template lowering) installed as folded ``ConstRef``s.
* ``PhysicalStage`` — the hybrid pre-stage replans its logical tree
  from the execution bound (pure structural work, microseconds), so
  scan filters and residuals inside the tree are literal.

Everything literal-dependent that the *cost model* owns needs no work
here: ``Gemm.execute`` re-runs the Figure 6 strategy decision per
execution against the execution bound's statistics, so a cached
program's density/precision choices always reflect the current
parameter values (the "re-check cheaply" half of the compile-once
contract).

Thread-safety: the input program is never mutated — specialization
builds a fresh operator list (sharing parameter-free operators), so any
number of sessions may specialize one cached template concurrently.
"""

from __future__ import annotations

from dataclasses import replace

from repro.engine.tcudb import ops
from repro.engine.tcudb.patterns import ConstRef, OutputNode
from repro.engine.tcudb.program import TensorProgram
from repro.sql.ast_nodes import (
    Expr,
    Literal,
    Parameter,
    Predicate,
    fold_constants,
    walk_predicate_exprs,
)
from repro.sql.binder import BoundQuery, substitute_parameters
from repro.sql.planner import plan_relation


def _expr_has_parameter(expr: Expr) -> bool:
    return any(isinstance(node, Parameter) for node in expr.walk())


def _predicate_has_parameter(predicate: Predicate) -> bool:
    return any(
        _expr_has_parameter(expr)
        for expr in walk_predicate_exprs(predicate)
    )


def _substitute_expr(expr: Expr, values: dict[str, object]) -> Expr:
    return fold_constants(substitute_parameters(expr, values))


def _substitute_predicates(
    predicates: list[Predicate], values: dict[str, object]
) -> list[Predicate]:
    from repro.sql.binder import _substitute_predicate

    return [_substitute_predicate(p, values) for p in predicates]


def _specialize_having_nodes(
    nodes: dict[Expr, OutputNode],
    predicates: list[Predicate],
    values: dict[str, object],
) -> dict[Expr, OutputNode]:
    """Re-key a HAVING node map for substituted predicates.

    Template keys are mapped through the same substitute+fold the
    predicates went through (frozen AST nodes compare by value, so
    parameter-free keys land on themselves).  Operands that were
    parameter-only constants have no template entry — the substituted
    literal gets a ``ConstRef`` here; string literals stay absent (the
    predicate interpreter encodes them against the compared column's
    dictionary).
    """
    specialized: dict[Expr, OutputNode] = {
        _substitute_expr(key, values): node for key, node in nodes.items()
    }
    for predicate in predicates:
        for expr in walk_predicate_exprs(predicate):
            if expr in specialized:
                continue
            if isinstance(expr, Literal) and not isinstance(expr.value, str):
                specialized[expr] = ConstRef(value=float(expr.value))
    return specialized


def _replace(op: ops.TensorOp, **changes) -> ops.TensorOp:
    """dataclasses.replace that preserves the out-of-band consumer_id
    annotation (set after construction, dropped by replace())."""
    clone = replace(op, **changes)
    if hasattr(op, "consumer_id"):
        clone.consumer_id = op.consumer_id
    return clone


def _specialize_op(
    op: ops.TensorOp, exec_bound: BoundQuery, values: dict[str, object]
) -> ops.TensorOp:
    if isinstance(op, ops.PhysicalStage):
        return _replace(op, tree=plan_relation(exec_bound))
    if isinstance(op, ops.MaskApply):
        if not any(map(_predicate_has_parameter, op.predicates)):
            return op
        predicates = _substitute_predicates(op.predicates, values)
        having_nodes = op.having_nodes
        if having_nodes or op.role == "having":
            having_nodes = _specialize_having_nodes(
                op.having_nodes, predicates, values
            )
        return _replace(op, predicates=predicates,
                        having_nodes=having_nodes)
    if isinstance(op, ops.ValueFill):
        needs_args = any(
            argument is not None and _expr_has_parameter(argument)
            for argument in op.arguments
        )
        needs_epilogue = any(
            map(_predicate_has_parameter, op.epilogue_predicates)
        )
        if not (needs_args or needs_epilogue):
            return op
        return _replace(
            op,
            arguments=[
                None if argument is None
                else _substitute_expr(argument, values)
                for argument in op.arguments
            ],
            epilogue_predicates=_substitute_predicates(
                op.epilogue_predicates, values
            ),
        )
    if isinstance(op, ops.GridAggregate):
        if not any(map(_predicate_has_parameter, op.epilogue_predicates)):
            return op
        predicates = _substitute_predicates(op.epilogue_predicates, values)
        return _replace(
            op,
            epilogue_predicates=predicates,
            epilogue_nodes=_specialize_having_nodes(
                op.epilogue_nodes, predicates, values
            ),
        )
    if isinstance(op, ops.NonzeroExtract):
        if not any(map(_predicate_has_parameter, op.epilogue_predicates)):
            return op
        return _replace(
            op,
            epilogue_predicates=_substitute_predicates(
                op.epilogue_predicates, values
            ),
        )
    # TableSource reads its filters from the execution bound at run
    # time; Gemm/IndicatorBuild/FoldJoin/Decode carry only column
    # references and pre-resolved output nodes — nothing to substitute.
    return op


def specialize_program(
    program: TensorProgram,
    exec_bound: BoundQuery,
    values: dict[str, object],
) -> TensorProgram:
    """A copy of ``program`` with parameter values stamped in.

    With no parameter values the template *is* the execution program
    and is returned as-is (zero-copy fast path for literal-only cached
    statements).
    """
    if not values:
        return program
    specialized = [
        _specialize_op(op, exec_bound, values) for op in program.ops
    ]
    if all(new is old for new, old in zip(specialized, program.ops)):
        return program
    return TensorProgram(
        ops=specialized,
        strategy=program.strategy,
        hybrid=program.hybrid,
        notes=list(program.notes),
    )

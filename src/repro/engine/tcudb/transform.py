"""Table -> matrix transformation (Section 3 constructions, Section 4.2 costs).

Given join-key columns, the transformer derives the union key domain
dom(A.ID) | dom(B.ID), remaps tuples onto it, and produces the COO triples
of the paper's matrix encodings:

* indicator matrices  mat[i, j] = 1      (joins, COUNT)
* value matrices      mat[i, j] = value  (SUM/AVG over joins)
* grouped matrices    rows indexed by group keys, duplicates summed
  (the "adjacency" construction of Section 3.1 / Lemma 3.1)

Two cost paths mirror Equations (1) and (2):

* CPU transformation: the host fills matrices at ``alpha`` per element and
  ships the *matrices* over PCIe.
* GPU-assisted transformation: raw key/value columns ship over PCIe and
  the GPU's thousands of lanes scatter them into device-resident matrices
  (zero-init charged at memory bandwidth) — only feasible when raw data
  plus the working set fit device memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.timing import STAGE_FILL, STAGE_MEMCPY, TimingBreakdown
from repro.hardware.gpu import GPUDevice
from repro.hardware.profiles import HostProfile
from repro.tensor.precision import Precision


@dataclass(frozen=True)
class KeyDomain:
    """Union domain of two join-key columns with remapped tuple codes."""

    values: np.ndarray  # sorted distinct key values (codes for strings)
    left: np.ndarray  # left tuples' positions in `values`
    right: np.ndarray  # right tuples' positions in `values`

    @property
    def k(self) -> int:
        return int(self.values.size)


def union_key_domain(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> KeyDomain:
    """dom(A.ID) | dom(B.ID) with both columns remapped onto it.

    One ``np.unique(..., return_inverse=True)`` over the concatenation
    yields the domain and both remappings in a single sort — the
    historical unique-then-searchsorted-twice construction paid two
    extra binary-search passes over the same data.
    """
    n = int(np.asarray(left_keys).size)
    values, inverse = np.unique(
        np.concatenate([left_keys, right_keys]), return_inverse=True
    )
    inverse = inverse.reshape(-1)  # numpy < 2.1 keeps the concat shape
    return KeyDomain(
        values=values,
        left=inverse[:n],
        right=inverse[n:],
    )


def mapped_pair_count(left_codes: np.ndarray, right_codes: np.ndarray,
                      k: int) -> int:
    """Exact equi-join pair count for codes already mapped onto a domain
    of size ``k``: one histogram per side and a dot product — O(n + k),
    versus the sort-based count's O(n log n)."""
    left_hist = np.bincount(np.asarray(left_codes, dtype=np.int64),
                            minlength=max(k, 1))
    right_hist = np.bincount(np.asarray(right_codes, dtype=np.int64),
                             minlength=max(k, 1))
    return int(np.dot(left_hist, right_hist))


@dataclass(frozen=True)
class SideMatrix:
    """One operand of a TCU operator in COO form.

    ``rows``/``cols``/``vals`` follow the paper's constructions; ``shape``
    is (rows_dim, k).  ``row_labels`` carries the group-key values (or
    tuple indices) each matrix row stands for, used to assemble results.
    """

    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    shape: tuple[int, int]
    row_labels: np.ndarray | None = None

    @property
    def nnz(self) -> int:
        return int(self.rows.size)

    @property
    def density(self) -> float:
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def to_dense(self) -> np.ndarray:
        from repro.tensor.coo import dense_from_coo

        return dense_from_coo(self.rows, self.cols, self.vals, self.shape)


def tuple_matrix(mapped_keys: np.ndarray, k: int,
                 values: np.ndarray | None = None) -> SideMatrix:
    """Section 3.1: one row per tuple; mat[i, j] = 1 (or the tuple value)
    iff tuple i's key maps to domain position j."""
    n = int(mapped_keys.size)
    vals = np.ones(n) if values is None else np.asarray(values, dtype=np.float64)
    return SideMatrix(
        rows=np.arange(n, dtype=np.int64),
        cols=np.asarray(mapped_keys, dtype=np.int64),
        vals=vals,
        shape=(n, k),
        row_labels=None,
    )


def grouped_matrix(mapped_keys: np.ndarray, k: int,
                   group_codes: np.ndarray | None = None,
                   values: np.ndarray | None = None) -> SideMatrix:
    """Grouped/adjacency construction: one row per distinct group key.

    mat[i, j] = sum of tuple values with group key u_i and join key v_j
    (bag semantics — duplicates accumulate, which is what SUM over a join
    requires).  With ``group_codes`` None the side collapses to a single
    row: the paper's 1-vector reduction pre-applied.
    """
    n = int(mapped_keys.size)
    vals = np.ones(n) if values is None else np.asarray(values, dtype=np.float64)
    if group_codes is None:
        rows = np.zeros(n, dtype=np.int64)
        labels = np.array([0], dtype=np.int64)
        g = 1
    else:
        labels, rows = np.unique(group_codes, return_inverse=True)
        g = int(labels.size)
    return SideMatrix(
        rows=rows,
        cols=np.asarray(mapped_keys, dtype=np.int64),
        vals=vals,
        shape=(max(g, 1), k),
        row_labels=labels,
    )


def comparison_matrix(mapped_keys: np.ndarray, domain: np.ndarray,
                      op: str) -> SideMatrix:
    """Section 3.4 non-equi encoding: mat[i, j] = 1 iff key_i op v_j.

    Dense by construction (up to n*k nonzeros); returned in COO so the
    same downstream kernels apply.
    """
    keys = np.asarray(mapped_keys)
    n, k = keys.size, domain.size
    key_values = domain[keys]
    if op == "<":
        counts = k - np.searchsorted(domain, key_values, side="right")
        starts = np.searchsorted(domain, key_values, side="right")
    elif op == "<=":
        counts = k - np.searchsorted(domain, key_values, side="left")
        starts = np.searchsorted(domain, key_values, side="left")
    elif op == ">":
        counts = np.searchsorted(domain, key_values, side="left")
        starts = np.zeros(n, dtype=np.int64)
    elif op == ">=":
        counts = np.searchsorted(domain, key_values, side="right")
        starts = np.zeros(n, dtype=np.int64)
    elif op in ("<>", "!="):
        rows = np.repeat(np.arange(n), k - 1)
        grid = np.tile(np.arange(k), n).reshape(n, k)
        mask = grid != keys[:, None]
        cols = grid[mask]
        return SideMatrix(rows=rows, cols=cols, vals=np.ones(rows.size),
                          shape=(n, k))
    else:
        raise ValueError(f"unsupported comparison {op!r}")
    total = int(counts.sum())
    rows = np.repeat(np.arange(n), counts)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    cols = np.repeat(starts, counts) + offsets
    return SideMatrix(rows=rows, cols=cols, vals=np.ones(total), shape=(n, k))


# --------------------------------------------------------------------------- #
# Transformation cost paths (Equations 1 and 2)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class TransformCost:
    """DT_op and DM_op of getting one operator's matrices device-resident."""

    fill_seconds: float  # DT_op
    memcpy_seconds: float  # DM_op
    on_gpu: bool

    @property
    def total(self) -> float:
        return self.fill_seconds + self.memcpy_seconds


def cpu_transform_cost(
    host: HostProfile,
    device: GPUDevice,
    n_tuples: int,
    matrix_bytes: float,
) -> TransformCost:
    """Equation (1): fill on the host (alpha per qualifying record, plus a
    streaming pass over the matrix buffers), then move the matrices."""
    fill = n_tuples * host.fill_elem_s + matrix_bytes / 8e9
    memcpy = device.h2d_seconds(matrix_bytes)
    return TransformCost(fill_seconds=fill, memcpy_seconds=memcpy, on_gpu=False)


def gpu_transform_cost(
    host: HostProfile,
    device: GPUDevice,
    n_tuples: int,
    raw_bytes: float,
    matrix_bytes: float,
) -> TransformCost:
    """Equation (2): ship raw columns, zero-init + scatter on the GPU."""
    memcpy = device.h2d_seconds(raw_bytes)
    fill = (
        device.cuda.fill_matrix_seconds(n_tuples)
        + device.cuda.zero_init_seconds(matrix_bytes)
    )
    return TransformCost(fill_seconds=fill, memcpy_seconds=memcpy, on_gpu=True)


def best_transform_cost(
    host: HostProfile,
    device: GPUDevice,
    n_tuples: int,
    raw_bytes: float,
    matrix_bytes: float,
    gpu_feasible: bool,
) -> TransformCost:
    """Pick the cheaper of the CPU and GPU-assisted paths (Section 4.2.2:
    'TCUDB still needs to evaluate the summation of DM_op and DT_op to
    determine the most appropriate data transformation method')."""
    cpu = cpu_transform_cost(host, device, n_tuples, matrix_bytes)
    if not gpu_feasible:
        return cpu
    gpu = gpu_transform_cost(host, device, n_tuples, raw_bytes, matrix_bytes)
    return gpu if gpu.total < cpu.total else cpu


def charge_transform(breakdown: TimingBreakdown, cost: TransformCost) -> None:
    breakdown.add(STAGE_FILL, cost.fill_seconds)
    breakdown.add(STAGE_MEMCPY, cost.memcpy_seconds)


def matrix_device_bytes(shape: tuple[int, int], precision: Precision) -> float:
    return shape[0] * shape[1] * precision.bytes_per_element

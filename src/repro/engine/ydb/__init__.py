"""YDB: the baseline GPU warehouse engine (Yuan et al., VLDB'13 style).

Operators run as CUDA kernels on the simulated device — hash joins
materialize pairs in a vectorized, pairwise fashion and group-by
aggregation is a separate pass, exactly the structure whose cost TCUDB's
single fused matmul collapses (Section 2.3).
"""

from __future__ import annotations

from repro.engine.base import ExecutionMode
from repro.engine.cost_models import GPUCostModel
from repro.engine.relational import RelationalExecutor
from repro.hardware.gpu import GPUDevice
from repro.storage.catalog import Catalog


class YDBEngine(RelationalExecutor):
    """GPU-accelerated warehouse-style query engine."""

    def __init__(
        self,
        catalog: Catalog,
        device: GPUDevice | None = None,
        mode: ExecutionMode = ExecutionMode.REAL,
        materialize_limit: int = 4_000_000,
    ):
        self.device = device if device is not None else GPUDevice()
        super().__init__(
            catalog,
            GPUCostModel(self.device),
            mode=mode,
            materialize_limit=materialize_limit,
        )


__all__ = ["YDBEngine"]

"""Simulated GPU substrate: profiles, memory, PCIe, CUDA cores, TCUs."""

from repro.hardware.calibration import CalibrationReport, run_calibration
from repro.hardware.cuda_cores import CudaCores
from repro.hardware.gpu import GPUDevice
from repro.hardware.memory import Allocation, DeviceMemory
from repro.hardware.pcie import PCIeBus
from repro.hardware.profiles import (
    I7_7700K,
    PROFILES,
    RTX_2080,
    RTX_3090,
    DeviceProfile,
    HostProfile,
    get_device_profile,
)
from repro.hardware.tcu import WMMA_TILE, TensorCoreUnit

__all__ = [
    "Allocation",
    "CalibrationReport",
    "CudaCores",
    "DeviceMemory",
    "DeviceProfile",
    "GPUDevice",
    "HostProfile",
    "I7_7700K",
    "PCIeBus",
    "PROFILES",
    "RTX_2080",
    "RTX_3090",
    "TensorCoreUnit",
    "WMMA_TILE",
    "get_device_profile",
    "run_calibration",
]

"""One-time microbenchmark sampling (Section 5.2).

On installation (or a hardware change) TCUDB runs a sampling pass that
measures the rates its cost estimator needs: host<->device bandwidth, peak
TCU/CUDA throughput per precision, the table->matrix fill rates, and the
matrix-density threshold below which a sparse or hash-join plan beats the
dense TCU plan.  On the simulator the "measurement" probes the same
components the optimizer will later charge, so estimates and executions
agree — exactly the property the paper's sampling process establishes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.gpu import GPUDevice
from repro.hardware.profiles import I7_7700K, HostProfile
from repro.tensor.precision import Precision


@dataclass(frozen=True)
class CalibrationReport:
    """Rates measured by the sampling process, consumed by the optimizer."""

    pcie_bandwidth: float  # bytes/s
    memory_bandwidth: float  # bytes/s
    tcu_tflops: dict[Precision, float]
    cuda_tflops: float
    gpu_fill_rate: float  # elements/s (GPU-assisted transformation)
    cpu_fill_rate: float  # elements/s (CPU transformation)
    host_scan_rate: float  # elements/s (the paper's alpha)
    density_threshold: float  # dense GEMM loses below this input density
    blocked_gemm_efficiency: float  # measured MSplitGEMM fraction of peak
    spmm_efficiency: float  # measured TCU-SpMM fraction of peak

    def describe(self) -> str:
        tcu = ", ".join(
            f"{p.value}={t:.0f}T" for p, t in self.tcu_tflops.items()
        )
        return (
            f"pcie={self.pcie_bandwidth / 1e9:.1f} GB/s, "
            f"tcu=[{tcu}], cuda={self.cuda_tflops:.0f}T, "
            f"density_threshold={self.density_threshold:.2%}"
        )


def _probe_gemm_tflops(device: GPUDevice, precision: Precision) -> float:
    """Measure sustained TCU TFLOPS from a 4096^3 probe GEMM."""
    m = n = k = 4096
    seconds = device.tcu.matmul_seconds(m, n, k, precision)
    return 2.0 * m * n * k / seconds / 1e12


def _probe_cuda_tflops(device: GPUDevice) -> float:
    m = n = k = 4096
    seconds = device.cuda.matmul_seconds(m, n, k)
    return 2.0 * m * n * k / seconds / 1e12


def _probe_density_threshold(device: GPUDevice) -> float:
    """Find the input density where dense TCU GEMM stops beating the
    GPU hash-join / sparse alternatives.

    Mirrors the paper's observation (Section 5.2): on their RTX 3090
    testbed the crossover sits near 0.04% density.  We probe the Q1
    microbenchmark shape — n=4096 records joined on k distinct values —
    and binary-search the density 1/k where the dense plan's cost first
    exceeds the hash-join plan's cost.
    """
    n = 4096
    lo, hi = 1e-6, 1.0
    for _ in range(48):
        density = (lo * hi) ** 0.5
        k = max(int(round(1.0 / density)), 1)
        pairs = n * n / k
        dense = (
            device.tcu.matmul_seconds(n, n, k)
            + device.cuda.nonzero_seconds(n * n, int(pairs))
        )
        hash_join = (
            device.cuda.hash_build_seconds(n)
            + device.cuda.hash_probe_seconds(n)
            + device.cuda.join_materialize_seconds(int(pairs))
        )
        if dense > hash_join:
            lo = density  # dense loses: threshold is above this density
        else:
            hi = density
    return (lo * hi) ** 0.5


def run_calibration(
    device: GPUDevice, host: HostProfile | None = None
) -> CalibrationReport:
    """Run the one-time sampling pass and return the measured rates."""
    host = host if host is not None else I7_7700K
    probe_bytes = 64 * 1024**2
    pcie = probe_bytes / (device.h2d_seconds(probe_bytes) - device.pcie.latency_s)
    tcu_rates = {
        precision: _probe_gemm_tflops(device, precision)
        for precision in (Precision.FP16, Precision.INT8, Precision.INT4)
    }
    fill_probe = 1_000_000
    gpu_fill_rate = fill_probe / (
        device.cuda.fill_matrix_seconds(fill_probe) - device.profile.kernel_launch_s
    )
    return CalibrationReport(
        pcie_bandwidth=pcie,
        memory_bandwidth=device.profile.memory_bandwidth,
        tcu_tflops=tcu_rates,
        cuda_tflops=_probe_cuda_tflops(device),
        gpu_fill_rate=gpu_fill_rate,
        cpu_fill_rate=1.0 / host.fill_elem_s,
        host_scan_rate=1.0 / host.scan_elem_s,
        density_threshold=_probe_density_threshold(device),
        blocked_gemm_efficiency=0.7,
        spmm_efficiency=0.25,
    )

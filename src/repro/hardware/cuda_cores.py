"""Simulated conventional CUDA cores (vector units).

YDB-style operators (scan, hash build/probe, pair materialization,
group-by aggregation, gather/scatter) run here.  Each cost helper charges
the per-element constants from the device profile plus a kernel launch.
Dense GEMM on CUDA cores (for Figure 3's comparison and for the baseline
sparse-multiply plans) runs at the profile's vector-unit TFLOPS.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.precision import Precision


class CudaCores:
    """Timing model for the vector-processing units of a simulated GPU."""

    def __init__(self, profile):
        self._profile = profile

    def _launch(self) -> float:
        return self._profile.kernel_launch_s

    # -- GEMM on vector units (no tensor cores) ------------------------- #

    def matmul_seconds(
        self, m: int, n: int, k: int, precision: Precision = Precision.FP32,
        efficiency: float = 1.0,
    ) -> float:
        """Dense GEMM on CUDA cores at the mixed-precision peak."""
        flops = 2.0 * m * n * k
        peak = self._profile.cuda_tflops * 1e12
        return self._launch() + flops / (peak * max(efficiency, 1e-6))

    def spmm_seconds(self, flops: float, efficiency: float = 0.08) -> float:
        """Sparse matmul on CUDA cores: irregular access, low efficiency."""
        peak = self._profile.cuda_tflops * 1e12
        return self._launch() + flops / (peak * max(efficiency, 1e-6))

    # -- Relational operator kernels ------------------------------------ #

    def scan_seconds(self, nrows: int) -> float:
        """Columnar scan/filter pass over ``nrows``."""
        return self._launch() + nrows * self._profile.gather_elem_s

    def hash_build_seconds(self, nrows: int) -> float:
        return self._launch() + nrows * self._profile.hash_row_s * 0.5

    def hash_probe_seconds(self, nrows: int) -> float:
        return self._launch() + nrows * self._profile.hash_row_s * 0.5

    def join_materialize_seconds(self, npairs: int) -> float:
        """Write out ``npairs`` matching tuples from a hash join."""
        return self._launch() + npairs * self._profile.join_pair_s

    def groupby_seconds(self, npairs: int, ngroups: int) -> float:
        """Hash-based group-by aggregation over ``npairs`` inputs."""
        return (
            self._launch()
            + npairs * self._profile.agg_pair_s
            + ngroups * self._profile.gather_elem_s
        )

    def accumulate_join_seconds(self, nrows: int, npairs: int) -> float:
        """Fused probe+accumulate path used for matmul-shaped queries.

        YDB evaluates Figure 5's query by probing each fact row and
        accumulating ``val * val`` products directly into the result grid;
        per-pair work is a fused multiply-add rather than tuple
        materialization, hence the much smaller per-pair constant.
        """
        return (
            self._launch()
            + nrows * self._profile.hash_row_s
            + npairs * self._profile.accum_pair_s * 3.0
        )

    def gather_seconds(self, nelems: int) -> float:
        """Random-access gather/scatter of ``nelems`` elements."""
        return self._launch() + nelems * self._profile.gather_elem_s

    def fill_matrix_seconds(self, nelems: int) -> float:
        """Table->matrix scatter on the GPU (atomic conflicts included)."""
        return self._launch() + nelems * self._profile.fill_elem_s

    def zero_init_seconds(self, nbytes: float) -> float:
        """memset of a device buffer, bandwidth-bound."""
        return self._launch() + nbytes / self._profile.memory_bandwidth

    def nonzero_seconds(self, ncells: int, npairs: int) -> float:
        """CUDA nonzero(): classic three-pass stream compaction (mask,
        prefix-sum, compact) over fp16 cells, plus writing the hit
        coordinates — all device-memory-bandwidth bound."""
        scan = ncells * 2.0 * 3.0 / self._profile.memory_bandwidth
        compact = npairs * 8.0 / self._profile.memory_bandwidth
        return self._launch() + scan + compact

    def elementwise_seconds(self, nelems: int, passes: int = 1) -> float:
        """Map-style arithmetic kernel, bandwidth-bound at 4 B/element."""
        nbytes = nelems * 4.0 * passes
        return self._launch() + nbytes / self._profile.memory_bandwidth

    # -- Numerics -------------------------------------------------------- #

    @staticmethod
    def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """CUDA-core GEMM numerics: fp32 inputs, fp32 accumulate."""
        return (
            np.asarray(a, dtype=np.float32) @ np.asarray(b, dtype=np.float32)
        ).astype(np.float64)

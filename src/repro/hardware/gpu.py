"""The simulated GPU device: memory + PCIe + CUDA cores + tensor cores.

:class:`GPUDevice` is the single handle engines hold.  All timing helpers
return simulated seconds; callers accumulate them into
:class:`~repro.common.timing.TimingBreakdown` stages.
"""

from __future__ import annotations

from repro.hardware.cuda_cores import CudaCores
from repro.hardware.memory import DeviceMemory
from repro.hardware.pcie import PCIeBus
from repro.hardware.profiles import RTX_3090, DeviceProfile
from repro.hardware.tcu import TensorCoreUnit


class GPUDevice:
    """A simulated GPU assembled from a :class:`DeviceProfile`."""

    def __init__(self, profile: DeviceProfile | None = None):
        self.profile = profile if profile is not None else RTX_3090
        self.memory = DeviceMemory(capacity=self.profile.memory_bytes)
        self.pcie = PCIeBus(bandwidth=self.profile.pcie_bandwidth)
        self.tcu = TensorCoreUnit(self.profile)
        self.cuda = CudaCores(self.profile)

    @property
    def name(self) -> str:
        return self.profile.name

    # Convenience wrappers so operators read naturally. ------------------ #

    def h2d_seconds(self, nbytes: float, overlap: bool = False) -> float:
        factor = self.profile.transfer_overlap if overlap else 1.0
        return self.pcie.h2d_seconds(nbytes, overlap=factor)

    def d2h_seconds(self, nbytes: float, overlap: bool = False) -> float:
        factor = self.profile.transfer_overlap if overlap else 1.0
        return self.pcie.d2h_seconds(nbytes, overlap=factor)

    def reset(self) -> None:
        """Release all device memory and clear transfer counters."""
        self.memory.reset()
        self.pcie.reset_counters()

    def __repr__(self) -> str:
        return (
            f"GPUDevice({self.name}, {self.profile.tensor_cores} TCs, "
            f"{self.profile.memory_bytes / 1024**3:.0f} GB)"
        )

"""Simulated GPU device memory.

Tracks allocations against the profile's capacity so the optimizer's
working-set test (Section 4.2.3) has real consequences: exceeding capacity
raises :class:`DeviceMemoryError`, which forces the blocked MSplitGEMM
path exactly as on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import DeviceMemoryError


@dataclass
class Allocation:
    """A live region of simulated device memory."""

    nbytes: int
    label: str
    freed: bool = False


@dataclass
class DeviceMemory:
    """Bump-accounting allocator over a fixed capacity."""

    capacity: int
    _used: int = 0
    _peak: int = 0
    _live: list[Allocation] = field(default_factory=list)

    @property
    def used(self) -> int:
        return self._used

    @property
    def available(self) -> int:
        return self.capacity - self._used

    @property
    def peak(self) -> int:
        """High-water mark of usage since creation (or last reset)."""
        return self._peak

    def allocate(self, nbytes: int, label: str = "") -> Allocation:
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if nbytes > self.available:
            raise DeviceMemoryError(nbytes, self.available, self.capacity)
        allocation = Allocation(nbytes=nbytes, label=label)
        self._live.append(allocation)
        self._used += nbytes
        self._peak = max(self._peak, self._used)
        return allocation

    def free(self, allocation: Allocation) -> None:
        if allocation.freed:
            raise ValueError(f"double free of allocation {allocation.label!r}")
        allocation.freed = True
        self._live.remove(allocation)
        self._used -= allocation.nbytes

    def fits(self, nbytes: int) -> bool:
        """Whether an allocation of ``nbytes`` would currently succeed."""
        return int(nbytes) <= self.available

    def reset(self) -> None:
        """Free everything (end of query) and clear the high-water mark."""
        self._live.clear()
        self._used = 0
        self._peak = 0

    def live_allocations(self) -> list[Allocation]:
        return list(self._live)

"""Simulated PCIe interconnect between host and device.

All host<->device traffic in the paper's cost model goes through Equation
(1)/(2): latency = bytes / BandwidthGPU/host.  Large transfers driven by
multi-stream pipelines (MSplitGEMM, result write-back) overlap with
compute, which we model with the profile's ``transfer_overlap`` divisor.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PCIeBus:
    """Charges transfer time and keeps simple traffic counters."""

    bandwidth: float  # bytes/second
    latency_s: float = 5e-6  # fixed DMA setup latency per transfer
    bytes_h2d: int = field(default=0, init=False)
    bytes_d2h: int = field(default=0, init=False)

    def h2d_seconds(self, nbytes: float, overlap: float = 1.0) -> float:
        """Host-to-device transfer cost (``overlap`` > 1 for pipelining)."""
        nbytes = max(float(nbytes), 0.0)
        self.bytes_h2d += int(nbytes)
        return self.latency_s + nbytes / (self.bandwidth * max(overlap, 1.0))

    def d2h_seconds(self, nbytes: float, overlap: float = 1.0) -> float:
        """Device-to-host transfer cost."""
        nbytes = max(float(nbytes), 0.0)
        self.bytes_d2h += int(nbytes)
        return self.latency_s + nbytes / (self.bandwidth * max(overlap, 1.0))

    def reset_counters(self) -> None:
        self.bytes_h2d = 0
        self.bytes_d2h = 0

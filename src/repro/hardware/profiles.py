"""Simulated device and host profiles.

The paper evaluates TCUDB on an NVIDIA RTX 3090 (Ampere, 328 Tensor Cores,
24 GB, PCIe 3.0 x16) hosted by an Intel i7-7700K, and compares against an
RTX 2080 (Turing).  This module captures those machines as *profiles*: a
set of peak rates and per-element operator costs that the analytic timing
model charges.

Calibration: the per-element constants were fitted to the paper's own
normalized results (Figures 7, 8 and 10).  The paper's YDB baseline at the
(4096 records, 32 distinct) microbenchmark point takes roughly 5 ms on the
RTX 3090 under this model, which makes all the relative series line up
with the published figures.  ``EXPERIMENTS.md`` records the residuals.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigError
from repro.tensor.precision import Precision


@dataclass(frozen=True)
class DeviceProfile:
    """Peak rates and per-element costs of a simulated GPU."""

    name: str
    cuda_cores: int
    tensor_cores: int
    sm_count: int
    cuda_tflops: float  # peak vector-unit TFLOPS (mixed precision)
    tcu_tflops_fp16: float  # peak tensor-core TFLOPS at fp16
    memory_bytes: int
    memory_bandwidth: float  # device-memory bytes/second
    pcie_bandwidth: float  # host<->device bytes/second
    kernel_launch_s: float  # fixed overhead per kernel launch

    # Vector-processing (CUDA-core) per-element costs, in seconds.  These
    # aggregate all the passes a YDB-style operator makes over each element.
    hash_row_s: float  # per row, per hash pass (build or probe)
    join_pair_s: float  # per output pair materialized by HashJoin
    agg_pair_s: float  # per pair consumed by GroupBy/Aggregation
    accum_pair_s: float  # per pair in the fused vectorized-accumulate path
    gather_elem_s: float  # per element for gather/scatter kernels
    fill_elem_s: float  # per element for table->matrix scatter on GPU

    # Pipelining: result/readback transfers overlap with compute by this
    # factor (MSplitGEMM-style multi-stream DMA).
    transfer_overlap: float = 2.0

    def tcu_tflops(self, precision: Precision) -> float:
        """Peak TCU TFLOPS for a given input precision.

        Ampere/Turing tensor cores double throughput for int8 and double
        again for int4, relative to fp16.
        """
        multiplier = {
            Precision.FP16: 1.0,
            Precision.INT8: 2.0,
            Precision.INT4: 4.0,
        }.get(precision)
        if multiplier is None:
            raise ConfigError(f"TCUs do not support precision {precision}")
        return self.tcu_tflops_fp16 * multiplier

    def scaled_vector_costs(self, factor: float) -> "DeviceProfile":
        """A profile with all vector-unit costs multiplied by ``factor``."""
        return replace(
            self,
            hash_row_s=self.hash_row_s * factor,
            join_pair_s=self.join_pair_s * factor,
            agg_pair_s=self.agg_pair_s * factor,
            accum_pair_s=self.accum_pair_s * factor,
            gather_elem_s=self.gather_elem_s * factor,
            fill_elem_s=self.fill_elem_s * factor,
        )


@dataclass(frozen=True)
class HostProfile:
    """CPU-side profile: table scans, matrix fills, CPU query operators."""

    name: str
    cores: int
    cpu_gflops: float
    memory_bytes: int
    fill_elem_s: float  # per element table->matrix fill on the CPU
    scan_elem_s: float  # per element scanned by a CPU operator
    hash_row_s: float  # per row per hash pass (CPU engine)
    join_pair_s: float  # per output pair (CPU engine)
    agg_pair_s: float  # per pair in CPU aggregation


# NVIDIA GeForce RTX 3090: Ampere, 328 Tensor Cores, 10496 CUDA cores,
# 24 GB GDDR6X @ 936 GB/s, PCIe 3.0 x16 (~16 GB/s effective).  Peak rates
# follow the paper's measurements: 63 TFLOPS on TCUs, 19 TFLOPS on CUDA
# cores with mixed precision (Section 2.1).
RTX_3090 = DeviceProfile(
    name="RTX 3090",
    cuda_cores=10496,
    tensor_cores=328,
    sm_count=82,
    cuda_tflops=19.0,
    tcu_tflops_fp16=63.0,
    memory_bytes=24 * 1024**3,
    memory_bandwidth=936e9,
    pcie_bandwidth=16e9,
    kernel_launch_s=20e-6,
    hash_row_s=480e-9,
    join_pair_s=5.8e-9,
    agg_pair_s=0.9e-9,
    accum_pair_s=2.0e-12,
    gather_elem_s=2e-9,
    fill_elem_s=8e-9,
)

# NVIDIA GeForce RTX 2080: Turing, 368 Tensor Cores (earlier generation),
# 2944 CUDA cores, 8 GB GDDR6 @ 448 GB/s.  Tensor-core throughput per core
# is much lower than Ampere's, hence 34 TFLOPS despite more cores; vector
# costs scale with the CUDA-core deficit (~1.28x slower, matching the
# paper's YDB generation-over-generation speedups in Figure 14).
RTX_2080 = DeviceProfile(
    name="RTX 2080",
    cuda_cores=2944,
    tensor_cores=368,
    sm_count=46,
    cuda_tflops=10.0,
    tcu_tflops_fp16=34.0,
    memory_bytes=8 * 1024**3,
    memory_bandwidth=448e9,
    pcie_bandwidth=16e9,
    kernel_launch_s=22e-6,
    hash_row_s=480e-9 * 1.28,
    join_pair_s=5.8e-9 * 1.28,
    agg_pair_s=0.9e-9 * 1.28,
    accum_pair_s=2.0e-12 * 1.28,
    gather_elem_s=2e-9 * 1.28,
    fill_elem_s=8e-9 * 1.28,
)

# Intel Core i7-7700K: 4 cores @ 4.2 GHz, 32 GB DDR4.  The CPU engine
# (MonetDB-style) constants were fitted so that MonetDB lands ~5x above
# YDB on the microbenchmarks, as in Figure 7.
I7_7700K = HostProfile(
    name="Core i7-7700K",
    cores=4,
    cpu_gflops=250.0,
    memory_bytes=32 * 1024**3,
    fill_elem_s=10e-9,
    scan_elem_s=2e-9,
    hash_row_s=1.0e-6,
    join_pair_s=36e-9,
    agg_pair_s=6e-9,
)

PROFILES: dict[str, DeviceProfile] = {
    "rtx3090": RTX_3090,
    "rtx2080": RTX_2080,
}


def get_device_profile(name: str) -> DeviceProfile:
    """Look up a device profile by short name (``rtx3090``, ``rtx2080``)."""
    key = name.lower().replace(" ", "").replace("_", "").replace("-", "")
    if key not in PROFILES:
        raise ConfigError(
            f"unknown device profile {name!r}; available: {sorted(PROFILES)}"
        )
    return PROFILES[key]

"""Simulated Tensor Core Unit.

Two concerns live here:

* **Timing** — a WMMA/cuBLAS GEMM of an (m x k) by (k x n) product costs
  ``2 m n k`` flops at the profile's peak TCU rate for the chosen
  precision, plus a kernel launch (paper Equation 3).

* **Numerics** — tensor cores are low-precision: fp16 inputs with fp32
  accumulation, or int8/int4 inputs with int32 accumulation.  We emulate
  this bit-accurately with numpy: casting operands to IEEE binary16
  reproduces the exact rounding real TCUs see, and accumulating in
  float32 reproduces the accumulator rounding that appears once partial
  sums exceed 2**24.  This is what regenerates the paper's Table 1 MAPE
  behaviour (zeros for 0/1 matrices, tiny errors growing with the value
  range and reduction length).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import PrecisionError
from repro.tensor.precision import (
    FP16_MAX,
    Precision,
    fp16_scale_factor,
)

# WMMA fragment edge: tensor cores consume 16x16x16 tiles.
WMMA_TILE = 16


class TensorCoreUnit:
    """Timing + numeric emulation of a GPU's tensor cores."""

    def __init__(self, profile):
        self._profile = profile

    # ------------------------------------------------------------------ #
    # Timing
    # ------------------------------------------------------------------ #

    def matmul_seconds(
        self, m: int, n: int, k: int, precision: Precision = Precision.FP16,
        efficiency: float = 1.0,
    ) -> float:
        """Dense GEMM latency: 2mnk flops at the peak rate (Equation 3)."""
        if min(m, n, k) < 0:
            raise ValueError("matrix dimensions must be non-negative")
        flops = 2.0 * m * n * k
        peak = self._profile.tcu_tflops(precision) * 1e12
        return self._profile.kernel_launch_s + flops / (peak * max(efficiency, 1e-6))

    def spmm_seconds(
        self, tile_pairs: int, precision: Precision = Precision.FP16,
        efficiency: float = 0.25,
    ) -> float:
        """TCU-SpMM latency: only non-empty 16^3 tile products are issued.

        ``tile_pairs`` counts (A-tile, B-tile) MMA issues after skipping
        all-zero tiles (Section 4.2.4).  Sparse tile streams run at a
        fraction of peak because operand fetches are irregular.
        """
        flops = 2.0 * tile_pairs * WMMA_TILE**3
        peak = self._profile.tcu_tflops(precision) * 1e12
        return self._profile.kernel_launch_s + flops / (peak * max(efficiency, 1e-6))

    # ------------------------------------------------------------------ #
    # Numerics
    # ------------------------------------------------------------------ #

    def matmul(
        self,
        a: np.ndarray,
        b: np.ndarray,
        precision: Precision = Precision.FP16,
    ) -> np.ndarray:
        """Numerically emulated tensor-core product of ``a @ b``.

        Returns float64 for fp16 inputs (values carry fp16+fp32 rounding)
        and int64 for integer precisions (bit-exact while in range).
        Stacked (batched) 3-D operands run as one broadcast product —
        the fused ``BatchedGemm`` path — with per-slice fp16 scaling so
        every slice rounds exactly as its standalone 2-D product would.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        batched = a.ndim == 3 and b.ndim == 3
        if batched:
            if a.shape[0] != b.shape[0] or a.shape[2] != b.shape[1]:
                raise ValueError(
                    f"incompatible batched shapes {a.shape} @ {b.shape}"
                )
        elif a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"incompatible shapes {a.shape} @ {b.shape}")
        if precision == Precision.FP16:
            return self._matmul_fp16(a, b)
        if precision in (Precision.INT8, Precision.INT4):
            return self._matmul_int(a, b, precision)
        raise PrecisionError(f"TCUs cannot execute precision {precision}")

    @staticmethod
    def _fp16_scales(operand: np.ndarray) -> np.ndarray | float:
        """Power-of-two pre-scale(s): scalar for a 2-D operand, one per
        slice (broadcastable) for a stacked operand."""
        if operand.ndim == 3:
            magnitudes = (
                np.abs(operand).max(axis=(1, 2)) if operand.size
                else np.zeros(operand.shape[0])
            )
            return np.array(
                [fp16_scale_factor(float(m)) for m in magnitudes]
            ).reshape(-1, 1, 1)
        return fp16_scale_factor(
            float(np.max(np.abs(operand))) if operand.size else 0.0
        )

    def _matmul_fp16(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        # Values beyond fp16's finite range are scaled down by a lossless
        # power of two first (the optimizer's range-handling strategy);
        # the product is scaled back afterwards.
        scale_a = self._fp16_scales(a)
        scale_b = self._fp16_scales(b)
        a16 = (a / scale_a).astype(np.float16)
        b16 = (b / scale_b).astype(np.float16)
        if a16.size and not np.all(np.isfinite(a16)):
            raise PrecisionError("operand A overflows fp16 even after scaling")
        if b16.size and not np.all(np.isfinite(b16)):
            raise PrecisionError("operand B overflows fp16 even after scaling")
        # fp16 products are exact in fp32; accumulation rounds in fp32,
        # exactly as WMMA's fp32 accumulator does.
        product = np.matmul(a16.astype(np.float32), b16.astype(np.float32))
        return product.astype(np.float64) * (scale_a * scale_b)

    def _matmul_int(
        self, a: np.ndarray, b: np.ndarray, precision: Precision
    ) -> np.ndarray:
        lo, hi = (-8, 7) if precision == Precision.INT4 else (-128, 127)
        a_int = np.rint(a).astype(np.int64)
        b_int = np.rint(b).astype(np.int64)
        if a_int.size and (a_int.min() < lo or a_int.max() > hi):
            raise PrecisionError(
                f"operand A outside {precision.value} range [{lo}, {hi}]"
            )
        if b_int.size and (b_int.min() < lo or b_int.max() > hi):
            raise PrecisionError(
                f"operand B outside {precision.value} range [{lo}, {hi}]"
            )
        # int8/int4 MMA accumulates in int32; int64 matmul is exact for
        # every in-range input, so emulate and then check the accumulator.
        product = a_int @ b_int
        if product.size and np.max(np.abs(product)) > (1 << 31) - 1:
            raise PrecisionError("int32 accumulator overflow in TCU matmul")
        return product

    @staticmethod
    def representable_fp16(values: np.ndarray) -> bool:
        """Whether all values fit fp16's finite range without scaling."""
        if values.size == 0:
            return True
        return bool(np.max(np.abs(values)) <= FP16_MAX)

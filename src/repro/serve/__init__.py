"""Concurrent query serving front-end (see :mod:`repro.serve.server`)."""

from repro.serve.server import (
    CircuitBreaker,
    QueryBudget,
    QueryServer,
    QueryTicket,
    Session,
    TicketState,
)

__all__ = [
    "CircuitBreaker",
    "QueryBudget",
    "QueryServer",
    "QueryTicket",
    "Session",
    "TicketState",
]

"""Concurrent query serving front-end (see :mod:`repro.serve.server`)."""

from repro.serve.server import (
    QueryBudget,
    QueryServer,
    QueryTicket,
    Session,
    TicketState,
)

__all__ = [
    "QueryBudget",
    "QueryServer",
    "QueryTicket",
    "Session",
    "TicketState",
]

"""A concurrent query server over one shared catalog.

The morsel-parallel executors (PR: parallel morsel execution) make a
single query faster; this module makes *many* queries safe.  A
:class:`QueryServer` owns one immutable :class:`~repro.storage.catalog.Catalog`
and a pool of executor threads; any number of :class:`Session` handles
submit SQL concurrently.  The design mirrors the classic analytic-serving
shape:

* **shared catalog, per-session engines** — table arrays are read-only
  and shared zero-copy across every session; each session lazily builds
  its own engine instance (engines carry per-query scratch state such as
  optimizer decisions and cancellation tokens, so they are never shared
  between threads);
* **admission control** — at most ``max_concurrent`` queries execute at
  once and at most ``max_queued`` wait; a submit beyond both fails fast
  with :class:`~repro.common.errors.AdmissionError` instead of queueing
  unboundedly;
* **per-query budgets** — a :class:`QueryBudget` caps host wall-clock
  seconds (enforced cooperatively through the executor's
  :class:`~repro.engine.parallel.CancellationToken`, polled at chunk/op
  boundaries) and result rows (enforced on completion);
* **cooperative cancellation** — :meth:`QueryTicket.cancel` flips the
  query's token; a streaming query stops at its next chunk boundary and
  the ticket resolves with :class:`~repro.common.errors.QueryCancelled`;
* **compile-once serving** — the server owns one shared
  :class:`~repro.engine.cache.ProgramCache`; every TCUDB session engine
  attaches to it, so a statement is lowered/fused once and every
  session afterwards reuses the program (see
  :meth:`Session.prepare` and docs/serving.md).

Thread-safety contract: ``QueryServer`` internals (queue, counters,
lifecycle flags) are guarded by one lock; ``submit``/``execute``/
``prepare``/``stats``/``cache_stats`` may be called from any thread.
A ``Session`` itself is *not* a concurrency primitive — its lazily
built engine carries per-query state (cancellation token, optimizer
decisions), so one session's queries serialize on the server pool while
distinct sessions run concurrently.  Shared read-only structures — the
catalog, cached ``TensorProgram`` templates, ``PreparedStatement``
objects — are safe to share across all sessions; per-run state lives in
each execution's private ``ProgramContext``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from enum import Enum

from repro.common.errors import (
    AdmissionError,
    ExecutionError,
    InternalError,
    QueryCancelled,
    ReproError,
    ServerClosed,
)
from repro.common.faults import (
    SITE_SESSION_RUN,
    active_plan,
    fault_point,
    suppress,
)
from repro.engine import create_engine
from repro.engine.base import QueryResult
from repro.engine.cache import ProgramCache
from repro.engine.parallel import (
    CancellationToken,
    RetryPolicy,
    call_with_retries,
    is_retryable,
    workers_policy,
)
from repro.sql.prepared import PreparedStatement
from repro.storage.catalog import Catalog
from repro.storage.shard import ShardedCatalog, shards_policy


@dataclass(frozen=True)
class QueryBudget:
    """Per-query resource limits enforced by the server.

    ``max_seconds`` arms the cancellation token's deadline (host
    wall-clock; the query dies cooperatively at the first chunk/operator
    boundary past it).  ``max_rows`` bounds the *result* cardinality:
    checked when the result materializes, so an aggregate over billions
    of input rows with a three-row answer passes a small budget.
    ``max_retries`` is the server-level retry budget: how many times a
    *retryable* failure (transient shard error, unavailable backend) may
    be re-run before the query degrades to the reference fallback.
    """

    max_seconds: float | None = None
    max_rows: int | None = None
    max_retries: int = 2


class TicketState(Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


class QueryTicket:
    """Handle for one submitted query: await it, or cancel it."""

    def __init__(
        self,
        sql: str | PreparedStatement,
        token: CancellationToken,
        params: dict | list | tuple | None = None,
    ):
        self.sql = sql
        self.params = params
        self.token = token
        self._done = threading.Event()
        self._result: QueryResult | None = None
        self._error: BaseException | None = None
        self._state = TicketState.QUEUED
        self._lock = threading.Lock()

    # -- owner side ---------------------------------------------------- #

    @property
    def state(self) -> TicketState:
        return self._state

    def cancel(self, reason: str = "cancelled by client") -> None:
        """Request cooperative cancellation; the query stops at its next
        chunk/operator boundary (a no-op once the ticket resolved)."""
        self.token.cancel(reason)

    def result(self, timeout: float | None = None) -> QueryResult:
        """Block until the query resolves; raises what the query raised
        (:class:`QueryCancelled` for cancelled/expired queries)."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"query still {self._state.value} after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    # -- server side --------------------------------------------------- #

    def _start(self) -> None:
        with self._lock:
            self._state = TicketState.RUNNING

    def _resolve(self, result: QueryResult) -> None:
        with self._lock:
            self._result = result
            self._state = TicketState.DONE
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        with self._lock:
            self._error = error
            self._state = (
                TicketState.CANCELLED
                if isinstance(error, QueryCancelled)
                else TicketState.FAILED
            )
        self._done.set()


class CircuitBreaker:
    """Per-engine-path circuit breaker (CLOSED -> OPEN -> HALF_OPEN).

    ``record_failure`` counts *consecutive* infrastructure failures
    (retryable errors and :class:`InternalError`; user errors and
    cancellations never trip the breaker).  After ``threshold`` of
    them the breaker opens: :meth:`allow` returns False and the server
    routes queries to the reference fallback without touching the
    broken path.  Once ``cooldown_s`` host seconds pass, the next
    ``allow`` admits exactly one half-open probe; its success closes
    the breaker, its failure re-opens it for another cooldown.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, path: str, threshold: int = 5,
                 cooldown_s: float = 1.0):
        if threshold < 1:
            raise ExecutionError("breaker threshold must be >= 1")
        self.path = path
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._opens = 0

    def allow(self) -> bool:
        """May the primary path take this query?"""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if time.monotonic() - self._opened_at < self.cooldown_s:
                    return False
                self._state = self.HALF_OPEN
                self._probing = True
                return True
            # HALF_OPEN: exactly one probe in flight.
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            failed_probe = self._state == self.HALF_OPEN
            self._probing = False
            if failed_probe or self._failures >= self.threshold:
                if self._state != self.OPEN:
                    self._opens += 1
                self._state = self.OPEN
                self._opened_at = time.monotonic()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "path": self.path,
                "state": self._state,
                "consecutive_failures": self._failures,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
                "opens": self._opens,
            }


class QueryServer:
    """Admission-controlled concurrent execution over a shared catalog.

    ``max_concurrent`` executor threads drain a bounded FIFO of admitted
    tickets; ``workers`` is forwarded to every engine so each query's
    chunk loops fan out morsel-parallel (total thread pressure is then
    ``max_concurrent * workers`` — size accordingly).

    ``shards`` turns on scale-out serving: the catalog is partitioned
    ONCE at server construction (one :class:`ShardedCatalog` shared by
    every session) and TCUDB sessions execute through the distributed
    engine's allreduce merge instead of a single node.  The default
    (``None``) resolves through :func:`~repro.storage.shard.shards_policy`
    — an explicit count, else the ``REPRO_SHARDS`` environment knob,
    else 1 (single-node serving, unchanged).  The shared ProgramCache
    stays correct because distributed engines namespace their per-shard
    cache entries (see ``TCUDBOptions.cache_namespace``).
    """

    def __init__(
        self,
        catalog: Catalog,
        engine: str = "tcudb",
        max_concurrent: int = 2,
        max_queued: int = 8,
        workers: int | None = None,
        shards: int | None = None,
        default_budget: QueryBudget | None = None,
        engine_kwargs: dict | None = None,
        program_cache: ProgramCache | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 1.0,
        admission_timeout_s: float | None = None,
    ):
        if max_concurrent <= 0:
            raise ExecutionError("max_concurrent must be positive")
        if max_queued < 0:
            raise ExecutionError("max_queued must be >= 0")
        self.catalog = catalog
        self.engine_name = engine
        self.max_concurrent = max_concurrent
        self.max_queued = max_queued
        self.workers = workers_policy(workers)
        self.default_budget = default_budget or QueryBudget()
        self.engine_kwargs = dict(engine_kwargs or {})
        self.shards = shards_policy(shards)
        # Partition once, share with every session: shard tables are
        # immutable views over the base arrays, so this is one take()
        # per shard up front instead of one per session engine.
        self.sharded: ShardedCatalog | None = None
        if self.shards > 1 and engine.lower() in ("tcudb", "tcudb-dist"):
            self.sharded = ShardedCatalog.partition(
                catalog,
                shards=self.shards,
                fact=self.engine_kwargs.pop("fact", None),
                policy=self.engine_kwargs.pop("partition_policy", "hash"),
                key=self.engine_kwargs.pop("partition_key", None),
            )
        # One program cache for the whole server: lowering is memoized
        # across sessions (the cache is internally locked; cached
        # programs are stateless templates, so sharing is safe).
        self.program_cache = program_cache or ProgramCache()
        self._lock = threading.Lock()
        self._queue: list[tuple[QueryTicket, Session]] = []
        self._running = 0
        self._closed = False
        self._idle = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []
        self._work = threading.Semaphore(0)
        for i in range(max_concurrent):
            thread = threading.Thread(
                target=self._drain, name=f"query-server-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        # Served-query counters (under self._lock).
        self.stats = {"admitted": 0, "rejected": 0, "completed": 0,
                      "failed": 0, "cancelled": 0, "retried": 0,
                      "degraded": 0, "shed": 0, "internal_errors": 0}
        # Resilience machinery: server-level retry budget schedule, the
        # primary-path circuit breaker, and bounded admission waits.
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy())
        self.breaker = CircuitBreaker(
            path=self.engine_name, threshold=breaker_threshold,
            cooldown_s=breaker_cooldown_s,
        )
        self.admission_timeout_s = admission_timeout_s

    # -- session factory ------------------------------------------------ #

    def session(self) -> "Session":
        return Session(self)

    # -- admission ------------------------------------------------------ #

    def _submit(self, session: "Session", sql: str | PreparedStatement,
                budget: QueryBudget | None,
                params: dict | list | tuple | None = None) -> QueryTicket:
        budget = budget or self.default_budget
        token = CancellationToken(deadline_s=budget.max_seconds)
        ticket = QueryTicket(sql, token, params=params)
        ticket._budget = budget  # type: ignore[attr-defined]
        limit = self.max_concurrent + self.max_queued
        with self._lock:
            if self._closed:
                raise ServerClosed("server is closed")
            deadline = (time.monotonic() + self.admission_timeout_s
                        if self.admission_timeout_s is not None else None)
            while len(self._queue) + self._running >= limit:
                # Load shedding: with no admission timeout configured,
                # fail fast; with one, wait — bounded — for capacity and
                # shed the query with a typed error when it elapses,
                # never an unbounded block.
                if deadline is None:
                    self.stats["rejected"] += 1
                    backlog = len(self._queue) + self._running
                    raise AdmissionError(
                        f"admission queue full ({backlog} queries in "
                        f"flight, limit {self.max_concurrent}"
                        f"+{self.max_queued})"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.stats["rejected"] += 1
                    self.stats["shed"] += 1
                    raise AdmissionError(
                        f"admission timed out after "
                        f"{self.admission_timeout_s}s (queue full); "
                        f"query shed"
                    )
                self._idle.wait(remaining)
                if self._closed:
                    raise ServerClosed("server is closed")
            self.stats["admitted"] += 1
            self._queue.append((ticket, session))
        self._work.release()
        return ticket

    # -- executor loop --------------------------------------------------- #

    def _drain(self) -> None:
        while True:
            self._work.acquire()
            with self._lock:
                if self._closed and not self._queue:
                    return
                if not self._queue:
                    continue
                ticket, session = self._queue.pop(0)
                self._running += 1
            try:
                self._execute(ticket, session)
            finally:
                with self._idle:
                    self._running -= 1
                    self._idle.notify_all()

    @staticmethod
    def _as_library_error(error: Exception) -> ReproError:
        """Type every escaping failure: non-library exceptions wrap as
        :class:`InternalError` (cause chained) so no raw
        ``RuntimeError``/``ValueError`` crosses the server boundary."""
        if isinstance(error, ReproError):
            return error
        wrapped = InternalError(f"{type(error).__name__}: {error}")
        wrapped.__cause__ = error
        return wrapped

    def _run_on(self, ticket: QueryTicket, engine) -> QueryResult:
        """Run the ticket's statement on *engine* with the token armed."""
        # Engines poll the token at chunk/operator boundaries.
        engine.cancel_token = ticket.token
        try:
            if ticket.params is None:
                return engine.execute(ticket.sql)
            return engine.execute(ticket.sql, params=ticket.params)
        finally:
            engine.cancel_token = None

    def _run_primary(self, ticket: QueryTicket, session: "Session",
                     budget: QueryBudget, resilience: dict) -> QueryResult:
        """The primary engine path under the per-query retry budget."""
        engine = session._engine()
        log: list[dict] = []

        def attempt() -> QueryResult:
            fault_point(SITE_SESSION_RUN)
            return self._run_on(ticket, engine)

        policy = replace(self.retry_policy,
                         max_attempts=1 + max(budget.max_retries, 0))
        try:
            return call_with_retries(
                attempt, policy, token=ticket.token,
                key=session.session_id, attempts_log=log,
            )
        finally:
            if log:
                resilience["retries"] = log
                with self._lock:
                    self.stats["retried"] += 1

    def _execute(self, ticket: QueryTicket, session: "Session") -> None:
        ticket._start()
        budget: QueryBudget = ticket._budget  # type: ignore[attr-defined]
        started = time.perf_counter()
        resilience: dict = {}
        try:
            ticket.token.raise_if_cancelled()
            result = None
            if self.breaker.allow():
                try:
                    result = self._run_primary(ticket, session, budget,
                                               resilience)
                    self.breaker.record_success()
                except QueryCancelled:
                    raise
                except Exception as error:
                    wrapped = self._as_library_error(error)
                    infrastructure = (is_retryable(wrapped)
                                      or isinstance(wrapped, InternalError))
                    if not infrastructure:
                        raise wrapped
                    # Engine-path trouble: count it toward the breaker
                    # and fall through to the reference fallback below.
                    self.breaker.record_failure()
                    if isinstance(wrapped, InternalError):
                        with self._lock:
                            self.stats["internal_errors"] += 1
                    resilience["degraded_from"] = self.engine_name
                    resilience["cause"] = (
                        f"{type(wrapped).__name__}: {wrapped}")
            else:
                resilience["degraded_from"] = self.engine_name
                resilience["cause"] = "circuit breaker open"
            if result is None:
                # Degradation rung: the exact (if slower) reference
                # engine, with fault injection suppressed — a recovery
                # path that can itself be killed by the plan that broke
                # the primary would never converge.
                with self._lock:
                    self.stats["degraded"] += 1
                resilience["route"] = "reference-fallback"
                try:
                    with suppress():
                        result = self._run_on(
                            ticket, session._fallback_engine())
                except QueryCancelled:
                    raise
                except Exception as error:
                    raise self._as_library_error(error) from error
            if budget.max_rows is not None and result.n_rows > budget.max_rows:
                raise ExecutionError(
                    f"result exceeds row budget: {result.n_rows} rows "
                    f"(> {budget.max_rows})"
                )
            if resilience:
                resilience.setdefault("route", "primary")
                existing = result.extra.get("resilience")
                if existing is not None:
                    existing["server"] = resilience
                else:
                    result.extra["resilience"] = resilience
            result.extra["host_seconds"] = time.perf_counter() - started
            result.extra["session"] = session.session_id
        except BaseException as error:  # resolve, never kill the worker
            if isinstance(error, Exception):
                error = self._as_library_error(error)
            with self._lock:
                key = ("cancelled" if isinstance(error, QueryCancelled)
                       else "failed")
                self.stats[key] += 1
            ticket._fail(error)
            return
        with self._lock:
            self.stats["completed"] += 1
        ticket._resolve(result)

    # -- observability --------------------------------------------------- #

    def cache_stats(self) -> dict:
        """Snapshot of the shared program cache's counters."""
        return self.program_cache.stats()

    def health(self) -> dict:
        """Liveness snapshot: ``ok`` / ``degraded`` (breaker not
        closed: primary-path queries are routed to the reference
        fallback) / ``closed``."""
        breaker = self.breaker.snapshot()
        with self._lock:
            closed = self._closed
            queued = len(self._queue)
            running = self._running
        if closed:
            status = "closed"
        elif breaker["state"] != CircuitBreaker.CLOSED:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "queued": queued,
            "running": running,
            "max_concurrent": self.max_concurrent,
            "max_queued": self.max_queued,
            "breaker": breaker,
        }

    def resilience_stats(self) -> dict:
        """Recovery counters: retries, degradations, sheds, breaker
        opens, and — when a fault plan is active — its injection
        ledger."""
        with self._lock:
            queries = dict(self.stats)
        out = {
            "queries": queries,
            "breaker": self.breaker.snapshot(),
            "retry_policy": {
                "max_retries_default": self.default_budget.max_retries,
                "base_backoff_s": self.retry_policy.base_backoff_s,
                "multiplier": self.retry_policy.multiplier,
                "max_backoff_s": self.retry_policy.max_backoff_s,
            },
        }
        plan = active_plan()
        out["fault_plan"] = plan.stats() if plan is not None else None
        return out

    # -- lifecycle ------------------------------------------------------- #

    def drain(self, timeout: float | None = None) -> bool:
        """Block until no query is queued or running."""
        deadline = (time.monotonic() + timeout) if timeout is not None else None
        with self._idle:
            while self._queue or self._running:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    def close(self) -> None:
        """Stop accepting queries and shut the executor threads down.

        RUNNING queries complete; QUEUED tickets resolve immediately as
        CANCELLED with a typed :class:`ServerClosed` error — a caller
        blocked in :meth:`QueryTicket.result` is never left hanging on
        a ticket no worker will ever pick up.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            abandoned = self._queue[:]
            self._queue.clear()
            self.stats["cancelled"] += len(abandoned)
            self._idle.notify_all()  # wake admission waiters to reject
        for ticket, _session in abandoned:
            ticket._fail(ServerClosed(
                "server closed before the query started"))
        for _ in self._threads:
            self._work.release()  # wake every worker so it can exit
        for thread in self._threads:
            thread.join(timeout=30.0)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Session:
    """One client's handle on the server.

    Sessions are cheap: they share the server's catalog and lazily build
    one private engine (first use), so per-query state — optimizer
    decisions, fallback bookkeeping, the cancellation token — never
    crosses sessions.  A session submits from its owning thread; its
    queries execute on the server pool.
    """

    _counter = 0
    _counter_lock = threading.Lock()

    def __init__(self, server: QueryServer):
        self.server = server
        with Session._counter_lock:
            Session._counter += 1
            self.session_id = Session._counter
        self._engine_instance = None
        self._fallback_instance = None
        self._engine_lock = threading.Lock()

    def _engine(self):
        with self._engine_lock:
            if self._engine_instance is None:
                kwargs = dict(self.server.engine_kwargs)
                name = self.server.engine_name
                if name.lower() in ("tcudb", "tcudb-dist"):
                    from repro.engine.tcudb.engine import TCUDBOptions

                    options = kwargs.pop("options", None) or TCUDBOptions()
                    options.workers = self.server.workers
                    kwargs["options"] = options
                    kwargs.setdefault("program_cache",
                                      self.server.program_cache)
                    if self.server.sharded is not None:
                        # Scale-out serving: every session executes
                        # through the distributed engine over the one
                        # server-wide partition.
                        from repro.engine.tcudb.distributed import (
                            DistributedEngine,
                        )

                        self._engine_instance = DistributedEngine(
                            self.server.sharded, **kwargs
                        )
                        return self._engine_instance
                else:
                    import inspect

                    from repro.engine import ENGINE_REGISTRY

                    cls = ENGINE_REGISTRY[name.lower()]
                    accepts = inspect.signature(cls.__init__).parameters
                    if "workers" in accepts:
                        kwargs.setdefault("workers", self.server.workers)
                self._engine_instance = create_engine(
                    name, self.server.catalog, **kwargs
                )
                if not hasattr(self._engine_instance, "cancel_token"):
                    self._engine_instance.cancel_token = None
            return self._engine_instance

    def _fallback_engine(self):
        """The degradation target: a lazily built, session-private
        reference engine (exact row-by-row evaluator over the same
        shared catalog).  Session-private like the primary — engines
        carry a per-query cancellation token, so sharing one across
        sessions would race."""
        with self._engine_lock:
            if self._fallback_instance is None:
                self._fallback_instance = create_engine(
                    "reference", self.server.catalog
                )
            return self._fallback_instance

    def prepare(self, sql: str) -> PreparedStatement:
        """Compile a statement once for repeated execution.

        The returned template is immutable and may be executed with any
        parameter values, by this session or any other on the same
        server (its compiled program lives in the server-wide cache).
        """
        return self._engine().prepare(sql)

    def submit(self, sql: str | PreparedStatement,
               budget: QueryBudget | None = None,
               params: dict | list | tuple | None = None) -> QueryTicket:
        """Enqueue one query (SQL text or a prepared statement, with
        optional parameter values); raises AdmissionError when the
        server is saturated past its queue bound."""
        return self.server._submit(self, sql, budget, params=params)

    def execute(self, sql: str | PreparedStatement,
                budget: QueryBudget | None = None,
                timeout: float | None = None,
                params: dict | list | tuple | None = None) -> QueryResult:
        """Submit and block for the result."""
        return self.submit(sql, budget, params=params).result(timeout)


__all__ = [
    "CircuitBreaker",
    "QueryBudget",
    "QueryServer",
    "QueryTicket",
    "Session",
    "TicketState",
]

"""A concurrent query server over one shared catalog.

The morsel-parallel executors (PR: parallel morsel execution) make a
single query faster; this module makes *many* queries safe.  A
:class:`QueryServer` owns one immutable :class:`~repro.storage.catalog.Catalog`
and a pool of executor threads; any number of :class:`Session` handles
submit SQL concurrently.  The design mirrors the classic analytic-serving
shape:

* **shared catalog, per-session engines** — table arrays are read-only
  and shared zero-copy across every session; each session lazily builds
  its own engine instance (engines carry per-query scratch state such as
  optimizer decisions and cancellation tokens, so they are never shared
  between threads);
* **admission control** — at most ``max_concurrent`` queries execute at
  once and at most ``max_queued`` wait; a submit beyond both fails fast
  with :class:`~repro.common.errors.AdmissionError` instead of queueing
  unboundedly;
* **per-query budgets** — a :class:`QueryBudget` caps host wall-clock
  seconds (enforced cooperatively through the executor's
  :class:`~repro.engine.parallel.CancellationToken`, polled at chunk/op
  boundaries) and result rows (enforced on completion);
* **cooperative cancellation** — :meth:`QueryTicket.cancel` flips the
  query's token; a streaming query stops at its next chunk boundary and
  the ticket resolves with :class:`~repro.common.errors.QueryCancelled`;
* **compile-once serving** — the server owns one shared
  :class:`~repro.engine.cache.ProgramCache`; every TCUDB session engine
  attaches to it, so a statement is lowered/fused once and every
  session afterwards reuses the program (see
  :meth:`Session.prepare` and docs/serving.md).

Thread-safety contract: ``QueryServer`` internals (queue, counters,
lifecycle flags) are guarded by one lock; ``submit``/``execute``/
``prepare``/``stats``/``cache_stats`` may be called from any thread.
A ``Session`` itself is *not* a concurrency primitive — its lazily
built engine carries per-query state (cancellation token, optimizer
decisions), so one session's queries serialize on the server pool while
distinct sessions run concurrently.  Shared read-only structures — the
catalog, cached ``TensorProgram`` templates, ``PreparedStatement``
objects — are safe to share across all sessions; per-run state lives in
each execution's private ``ProgramContext``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from enum import Enum

from repro.common.errors import AdmissionError, ExecutionError, QueryCancelled
from repro.engine import create_engine
from repro.engine.base import QueryResult
from repro.engine.cache import ProgramCache
from repro.engine.parallel import CancellationToken, workers_policy
from repro.sql.prepared import PreparedStatement
from repro.storage.catalog import Catalog
from repro.storage.shard import ShardedCatalog, shards_policy


@dataclass(frozen=True)
class QueryBudget:
    """Per-query resource limits enforced by the server.

    ``max_seconds`` arms the cancellation token's deadline (host
    wall-clock; the query dies cooperatively at the first chunk/operator
    boundary past it).  ``max_rows`` bounds the *result* cardinality:
    checked when the result materializes, so an aggregate over billions
    of input rows with a three-row answer passes a small budget.
    """

    max_seconds: float | None = None
    max_rows: int | None = None


class TicketState(Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


class QueryTicket:
    """Handle for one submitted query: await it, or cancel it."""

    def __init__(
        self,
        sql: str | PreparedStatement,
        token: CancellationToken,
        params: dict | list | tuple | None = None,
    ):
        self.sql = sql
        self.params = params
        self.token = token
        self._done = threading.Event()
        self._result: QueryResult | None = None
        self._error: BaseException | None = None
        self._state = TicketState.QUEUED
        self._lock = threading.Lock()

    # -- owner side ---------------------------------------------------- #

    @property
    def state(self) -> TicketState:
        return self._state

    def cancel(self, reason: str = "cancelled by client") -> None:
        """Request cooperative cancellation; the query stops at its next
        chunk/operator boundary (a no-op once the ticket resolved)."""
        self.token.cancel(reason)

    def result(self, timeout: float | None = None) -> QueryResult:
        """Block until the query resolves; raises what the query raised
        (:class:`QueryCancelled` for cancelled/expired queries)."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"query still {self._state.value} after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    # -- server side --------------------------------------------------- #

    def _start(self) -> None:
        with self._lock:
            self._state = TicketState.RUNNING

    def _resolve(self, result: QueryResult) -> None:
        with self._lock:
            self._result = result
            self._state = TicketState.DONE
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        with self._lock:
            self._error = error
            self._state = (
                TicketState.CANCELLED
                if isinstance(error, QueryCancelled)
                else TicketState.FAILED
            )
        self._done.set()


class QueryServer:
    """Admission-controlled concurrent execution over a shared catalog.

    ``max_concurrent`` executor threads drain a bounded FIFO of admitted
    tickets; ``workers`` is forwarded to every engine so each query's
    chunk loops fan out morsel-parallel (total thread pressure is then
    ``max_concurrent * workers`` — size accordingly).

    ``shards`` turns on scale-out serving: the catalog is partitioned
    ONCE at server construction (one :class:`ShardedCatalog` shared by
    every session) and TCUDB sessions execute through the distributed
    engine's allreduce merge instead of a single node.  The default
    (``None``) resolves through :func:`~repro.storage.shard.shards_policy`
    — an explicit count, else the ``REPRO_SHARDS`` environment knob,
    else 1 (single-node serving, unchanged).  The shared ProgramCache
    stays correct because distributed engines namespace their per-shard
    cache entries (see ``TCUDBOptions.cache_namespace``).
    """

    def __init__(
        self,
        catalog: Catalog,
        engine: str = "tcudb",
        max_concurrent: int = 2,
        max_queued: int = 8,
        workers: int | None = None,
        shards: int | None = None,
        default_budget: QueryBudget | None = None,
        engine_kwargs: dict | None = None,
        program_cache: ProgramCache | None = None,
    ):
        if max_concurrent <= 0:
            raise ExecutionError("max_concurrent must be positive")
        if max_queued < 0:
            raise ExecutionError("max_queued must be >= 0")
        self.catalog = catalog
        self.engine_name = engine
        self.max_concurrent = max_concurrent
        self.max_queued = max_queued
        self.workers = workers_policy(workers)
        self.default_budget = default_budget or QueryBudget()
        self.engine_kwargs = dict(engine_kwargs or {})
        self.shards = shards_policy(shards)
        # Partition once, share with every session: shard tables are
        # immutable views over the base arrays, so this is one take()
        # per shard up front instead of one per session engine.
        self.sharded: ShardedCatalog | None = None
        if self.shards > 1 and engine.lower() in ("tcudb", "tcudb-dist"):
            self.sharded = ShardedCatalog.partition(
                catalog,
                shards=self.shards,
                fact=self.engine_kwargs.pop("fact", None),
                policy=self.engine_kwargs.pop("partition_policy", "hash"),
                key=self.engine_kwargs.pop("partition_key", None),
            )
        # One program cache for the whole server: lowering is memoized
        # across sessions (the cache is internally locked; cached
        # programs are stateless templates, so sharing is safe).
        self.program_cache = program_cache or ProgramCache()
        self._lock = threading.Lock()
        self._queue: list[tuple[QueryTicket, Session]] = []
        self._running = 0
        self._closed = False
        self._idle = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []
        self._work = threading.Semaphore(0)
        for i in range(max_concurrent):
            thread = threading.Thread(
                target=self._drain, name=f"query-server-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        # Served-query counters (under self._lock).
        self.stats = {"admitted": 0, "rejected": 0, "completed": 0,
                      "failed": 0, "cancelled": 0}

    # -- session factory ------------------------------------------------ #

    def session(self) -> "Session":
        return Session(self)

    # -- admission ------------------------------------------------------ #

    def _submit(self, session: "Session", sql: str | PreparedStatement,
                budget: QueryBudget | None,
                params: dict | list | tuple | None = None) -> QueryTicket:
        budget = budget or self.default_budget
        token = CancellationToken(deadline_s=budget.max_seconds)
        ticket = QueryTicket(sql, token, params=params)
        ticket._budget = budget  # type: ignore[attr-defined]
        with self._lock:
            if self._closed:
                raise ExecutionError("server is closed")
            backlog = len(self._queue) + self._running
            if backlog >= self.max_concurrent + self.max_queued:
                self.stats["rejected"] += 1
                raise AdmissionError(
                    f"admission queue full ({backlog} queries in flight, "
                    f"limit {self.max_concurrent}+{self.max_queued})"
                )
            self.stats["admitted"] += 1
            self._queue.append((ticket, session))
        self._work.release()
        return ticket

    # -- executor loop --------------------------------------------------- #

    def _drain(self) -> None:
        while True:
            self._work.acquire()
            with self._lock:
                if self._closed and not self._queue:
                    return
                if not self._queue:
                    continue
                ticket, session = self._queue.pop(0)
                self._running += 1
            try:
                self._execute(ticket, session)
            finally:
                with self._idle:
                    self._running -= 1
                    self._idle.notify_all()

    def _execute(self, ticket: QueryTicket, session: "Session") -> None:
        ticket._start()
        budget: QueryBudget = ticket._budget  # type: ignore[attr-defined]
        started = time.perf_counter()
        try:
            ticket.token.raise_if_cancelled()
            engine = session._engine()
            # Engines poll the token at chunk/operator boundaries.
            engine.cancel_token = ticket.token
            try:
                if ticket.params is None:
                    result = engine.execute(ticket.sql)
                else:
                    result = engine.execute(ticket.sql,
                                            params=ticket.params)
            finally:
                engine.cancel_token = None
            if budget.max_rows is not None and result.n_rows > budget.max_rows:
                raise ExecutionError(
                    f"result exceeds row budget: {result.n_rows} rows "
                    f"(> {budget.max_rows})"
                )
            result.extra["host_seconds"] = time.perf_counter() - started
            result.extra["session"] = session.session_id
        except BaseException as error:  # resolve, never kill the worker
            with self._lock:
                key = ("cancelled" if isinstance(error, QueryCancelled)
                       else "failed")
                self.stats[key] += 1
            ticket._fail(error)
            return
        with self._lock:
            self.stats["completed"] += 1
        ticket._resolve(result)

    # -- observability --------------------------------------------------- #

    def cache_stats(self) -> dict:
        """Snapshot of the shared program cache's counters."""
        return self.program_cache.stats()

    # -- lifecycle ------------------------------------------------------- #

    def drain(self, timeout: float | None = None) -> bool:
        """Block until no query is queued or running."""
        deadline = (time.monotonic() + timeout) if timeout is not None else None
        with self._idle:
            while self._queue or self._running:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    def close(self) -> None:
        """Stop accepting queries and shut the executor threads down
        (queued queries still run to completion)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._work.release()  # wake every worker so it can exit
        for thread in self._threads:
            thread.join(timeout=30.0)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Session:
    """One client's handle on the server.

    Sessions are cheap: they share the server's catalog and lazily build
    one private engine (first use), so per-query state — optimizer
    decisions, fallback bookkeeping, the cancellation token — never
    crosses sessions.  A session submits from its owning thread; its
    queries execute on the server pool.
    """

    _counter = 0
    _counter_lock = threading.Lock()

    def __init__(self, server: QueryServer):
        self.server = server
        with Session._counter_lock:
            Session._counter += 1
            self.session_id = Session._counter
        self._engine_instance = None
        self._engine_lock = threading.Lock()

    def _engine(self):
        with self._engine_lock:
            if self._engine_instance is None:
                kwargs = dict(self.server.engine_kwargs)
                name = self.server.engine_name
                if name.lower() in ("tcudb", "tcudb-dist"):
                    from repro.engine.tcudb.engine import TCUDBOptions

                    options = kwargs.pop("options", None) or TCUDBOptions()
                    options.workers = self.server.workers
                    kwargs["options"] = options
                    kwargs.setdefault("program_cache",
                                      self.server.program_cache)
                    if self.server.sharded is not None:
                        # Scale-out serving: every session executes
                        # through the distributed engine over the one
                        # server-wide partition.
                        from repro.engine.tcudb.distributed import (
                            DistributedEngine,
                        )

                        self._engine_instance = DistributedEngine(
                            self.server.sharded, **kwargs
                        )
                        return self._engine_instance
                else:
                    import inspect

                    from repro.engine import ENGINE_REGISTRY

                    cls = ENGINE_REGISTRY[name.lower()]
                    accepts = inspect.signature(cls.__init__).parameters
                    if "workers" in accepts:
                        kwargs.setdefault("workers", self.server.workers)
                self._engine_instance = create_engine(
                    name, self.server.catalog, **kwargs
                )
                if not hasattr(self._engine_instance, "cancel_token"):
                    self._engine_instance.cancel_token = None
            return self._engine_instance

    def prepare(self, sql: str) -> PreparedStatement:
        """Compile a statement once for repeated execution.

        The returned template is immutable and may be executed with any
        parameter values, by this session or any other on the same
        server (its compiled program lives in the server-wide cache).
        """
        return self._engine().prepare(sql)

    def submit(self, sql: str | PreparedStatement,
               budget: QueryBudget | None = None,
               params: dict | list | tuple | None = None) -> QueryTicket:
        """Enqueue one query (SQL text or a prepared statement, with
        optional parameter values); raises AdmissionError when the
        server is saturated past its queue bound."""
        return self.server._submit(self, sql, budget, params=params)

    def execute(self, sql: str | PreparedStatement,
                budget: QueryBudget | None = None,
                timeout: float | None = None,
                params: dict | list | tuple | None = None) -> QueryResult:
        """Submit and block for the result."""
        return self.submit(sql, budget, params=params).result(timeout)


__all__ = [
    "QueryBudget",
    "QueryServer",
    "QueryTicket",
    "Session",
    "TicketState",
]

"""Abstract syntax tree for the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass

AGGREGATE_FUNCS = ("sum", "count", "avg", "min", "max")
COMPARISON_OPS = ("=", "<", ">", "<=", ">=", "<>", "!=")
ARITHMETIC_OPS = ("+", "-", "*", "/", "%")


class Expr:
    """Base class for scalar expressions."""

    def walk(self):
        """Yield this node and all descendants."""
        yield self


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly-qualified column reference ``table.column``."""

    table: str | None
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal(Expr):
    """A number or string constant."""

    value: float | int | str

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Parameter(Expr):
    """A named ``@parameter`` substituted at execution time."""

    name: str

    def __str__(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic over two sub-expressions."""

    op: str
    left: Expr
    right: Expr

    def walk(self):
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class AggregateCall(Expr):
    """SUM/COUNT/AVG/MIN/MAX over an expression (or ``*`` for COUNT)."""

    func: str
    argument: Expr | None  # None encodes COUNT(*)

    def walk(self):
        yield self
        if self.argument is not None:
            yield from self.argument.walk()

    def __str__(self) -> str:
        inner = "*" if self.argument is None else str(self.argument)
        return f"{self.func.upper()}({inner})"


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        return str(self.expr)


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return (self.alias or self.name).lower()


class Predicate:
    """Base class for WHERE-clause conjuncts."""


@dataclass(frozen=True)
class Comparison(Predicate):
    """``left op right`` with op in =, <, >, <=, >=, <>, !=."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Between(Predicate):
    """``expr BETWEEN low AND high`` (inclusive)."""

    expr: Expr
    low: Expr
    high: Expr

    def __str__(self) -> str:
        return f"{self.expr} BETWEEN {self.low} AND {self.high}"


@dataclass(frozen=True)
class InList(Predicate):
    """``expr IN (v1, v2, ...)``."""

    expr: Expr
    values: tuple[Literal, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(v) for v in self.values)
        return f"{self.expr} IN ({inner})"


@dataclass(frozen=True)
class Negation(Predicate):
    """``NOT predicate`` (also encodes ``expr NOT IN (...)``)."""

    inner: Predicate

    def __str__(self) -> str:
        return f"NOT ({self.inner})"


@dataclass(frozen=True)
class Conjunction(Predicate):
    """AND of sub-predicates (appears inside OR arms and parentheses)."""

    parts: tuple[Predicate, ...]

    def __str__(self) -> str:
        return "(" + " AND ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Disjunction(Predicate):
    """OR of sub-predicates (each arm may itself be a conjunction)."""

    arms: tuple[Predicate, ...]

    def __str__(self) -> str:
        return "(" + " OR ".join(str(a) for a in self.arms) + ")"


def evaluate_literal_arithmetic(
    op: str, left: float, right: float
) -> float | None:
    """Literal arithmetic with the runtime's float64 semantics, or
    ``None`` when folding would change behaviour (zero divisors produce
    runtime-specific NaN/identity handling, so they stay unfolded)."""
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right if right != 0.0 else None
    if op == "%":
        return left % right if right != 0.0 else None
    return None


def fold_constants(expr: Expr) -> Expr:
    """Collapse literal-only arithmetic into a single :class:`Literal`.

    The parser has no unary minus node — ``-5`` parses as
    ``(0 - 5)`` — and parameter substitution can likewise leave
    all-literal arithmetic behind.  Statistics-based chunk pruning and
    selectivity estimation only see through plain literals, so an
    unfolded constant silently disables both (every chunk scanned).
    Folding produces a *float* literal because the runtime evaluates
    arithmetic in float64; string operands never fold.
    """
    if isinstance(expr, BinaryOp):
        left = fold_constants(expr.left)
        right = fold_constants(expr.right)
        if (
            isinstance(left, Literal)
            and isinstance(right, Literal)
            and not isinstance(left.value, str)
            and not isinstance(right.value, str)
        ):
            value = evaluate_literal_arithmetic(
                expr.op, float(left.value), float(right.value)
            )
            if value is not None:
                return Literal(value)
        if left is expr.left and right is expr.right:
            return expr
        return BinaryOp(op=expr.op, left=left, right=right)
    if isinstance(expr, AggregateCall) and expr.argument is not None:
        argument = fold_constants(expr.argument)
        if argument is expr.argument:
            return expr
        return AggregateCall(func=expr.func, argument=argument)
    return expr


def walk_predicate_exprs(predicate: Predicate):
    """Yield every scalar expression appearing inside a predicate tree."""
    if isinstance(predicate, Comparison):
        yield predicate.left
        yield predicate.right
    elif isinstance(predicate, Between):
        yield predicate.expr
        yield predicate.low
        yield predicate.high
    elif isinstance(predicate, InList):
        yield predicate.expr
    elif isinstance(predicate, Negation):
        yield from walk_predicate_exprs(predicate.inner)
    elif isinstance(predicate, Conjunction):
        for part in predicate.parts:
            yield from walk_predicate_exprs(part)
    elif isinstance(predicate, Disjunction):
        for arm in predicate.arms:
            yield from walk_predicate_exprs(arm)
    else:
        raise TypeError(f"unknown predicate {predicate!r}")


def map_predicate_exprs(predicate: Predicate, fn) -> Predicate:
    """Rebuild a predicate tree with ``fn`` applied to each expression."""
    if isinstance(predicate, Comparison):
        return Comparison(op=predicate.op, left=fn(predicate.left),
                          right=fn(predicate.right))
    if isinstance(predicate, Between):
        return Between(expr=fn(predicate.expr), low=fn(predicate.low),
                       high=fn(predicate.high))
    if isinstance(predicate, InList):
        return InList(expr=fn(predicate.expr), values=predicate.values)
    if isinstance(predicate, Negation):
        return Negation(inner=map_predicate_exprs(predicate.inner, fn))
    if isinstance(predicate, Conjunction):
        return Conjunction(parts=tuple(
            map_predicate_exprs(p, fn) for p in predicate.parts
        ))
    if isinstance(predicate, Disjunction):
        return Disjunction(arms=tuple(
            map_predicate_exprs(a, fn) for a in predicate.arms
        ))
    raise TypeError(f"unknown predicate {predicate!r}")


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT with conjunctive WHERE predicates."""

    select_items: tuple[SelectItem, ...]
    tables: tuple[TableRef, ...]
    where: tuple[Predicate, ...] = ()
    group_by: tuple[Expr, ...] = ()
    having: tuple[Predicate, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    select_star: bool = False

    def aggregates(self) -> list[AggregateCall]:
        """All aggregate calls appearing in the select list."""
        found: list[AggregateCall] = []
        for item in self.select_items:
            found.extend(
                node for node in item.expr.walk()
                if isinstance(node, AggregateCall)
            )
        return found

    @property
    def has_aggregates(self) -> bool:
        return bool(self.aggregates())

"""Name/type resolution of parsed queries against a catalog.

The binder resolves every :class:`ColumnRef` to a unique (table binding,
column, type), substitutes ``@parameters``, classifies WHERE conjuncts
into per-table filters vs join predicates, and validates the aggregate
structure.  Both the baseline engines' planner and TCUDB's pattern
matcher consume the resulting :class:`BoundQuery`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import BindError
from repro.sql.ast_nodes import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    Comparison,
    Expr,
    Literal,
    OrderItem,
    Parameter,
    Predicate,
    SelectItem,
    SelectStatement,
    fold_constants,
    map_predicate_exprs,
    walk_predicate_exprs,
)
from repro.storage.catalog import Catalog
from repro.storage.statistics import ColumnStats
from repro.storage.table import Table
from repro.storage.types import DataType


#: Pseudo-binding of computed GROUP BY keys (``GROUP BY d_year % 10``).
#: ``#`` cannot appear in a SQL identifier, so the binding never collides
#: with a FROM-clause table; the planner's ``Compute`` node materializes
#: the expression under ``#group.gN`` before aggregation.
COMPUTED_GROUP_BINDING = "#group"


@dataclass(frozen=True)
class BoundColumn:
    """A column reference resolved to a unique table binding."""

    binding: str  # FROM-clause alias (lowercase)
    column: str  # column name (lowercase)
    dtype: DataType

    @property
    def key(self) -> str:
        return f"{self.binding}.{self.column}"

    def __str__(self) -> str:
        return self.key


@dataclass(frozen=True)
class BoundTable:
    binding: str
    table: Table


@dataclass(frozen=True)
class JoinPredicate:
    """A comparison between columns of two different tables."""

    op: str
    left: BoundColumn
    right: BoundColumn

    @property
    def is_equi(self) -> bool:
        return self.op == "="


@dataclass
class BoundQuery:
    """A fully resolved SELECT."""

    statement: SelectStatement
    tables: list[BoundTable]
    resolution: dict[ColumnRef, BoundColumn]
    join_predicates: list[JoinPredicate]
    filters: dict[str, list[Predicate]]  # binding -> local conjuncts
    select_items: list[SelectItem]
    group_by: list[BoundColumn]
    order_by: list[OrderItem]
    limit: int | None = None
    # Conjuncts spanning several tables without being join conditions
    # (e.g. cross-table ORs); applied after the joins.
    residuals: list[Predicate] = field(default_factory=list)
    having: list[Predicate] = field(default_factory=list)
    # Computed GROUP BY keys: ``#group.gN`` key -> bound expression.  The
    # matching BoundColumn (binding COMPUTED_GROUP_BINDING) appears in
    # ``group_by``; the planner projects the expression before Aggregate.
    group_exprs: dict[str, Expr] = field(default_factory=dict)

    def binding(self, name: str) -> BoundTable:
        for bound in self.tables:
            if bound.binding == name:
                return bound
        raise BindError(f"no table bound as {name!r}")

    def resolve(self, ref: ColumnRef) -> BoundColumn:
        bound = self.resolution.get(ref)
        if bound is None:
            raise BindError(f"unresolved column reference {ref}")
        return bound

    def column_stats(self, column: BoundColumn) -> ColumnStats:
        return self.binding(column.binding).table.stats(column.column)

    def aggregates(self) -> list[AggregateCall]:
        return self.statement.aggregates()

    @property
    def has_aggregates(self) -> bool:
        return bool(self.aggregates())


def substitute_parameters(
    expr: Expr,
    params: dict[str, object],
    defer: bool = False,
) -> Expr:
    """Replace @parameters with literals, recursively.

    With ``defer=True`` a parameter without a supplied value is left in
    place instead of raising — the deferred-binding mode ``prepare``
    uses to build a reusable parameter-typed template.  Statistics
    treat the surviving :class:`Parameter` nodes as unknown values
    (default selectivity, no pruning), so the template's structure is
    valid for *every* later parameter binding.
    """
    if isinstance(expr, Parameter):
        if expr.name not in params:
            if defer:
                return expr
            raise BindError(f"missing value for parameter @{expr.name}")
        value = params[expr.name]
        if not isinstance(value, (int, float, str)):
            raise BindError(f"parameter @{expr.name} must be a scalar")
        return Literal(value)
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            op=expr.op,
            left=substitute_parameters(expr.left, params, defer),
            right=substitute_parameters(expr.right, params, defer),
        )
    if isinstance(expr, AggregateCall) and expr.argument is not None:
        return AggregateCall(
            func=expr.func,
            argument=substitute_parameters(expr.argument, params, defer),
        )
    return expr


def _substitute_predicate(
    pred: Predicate,
    params: dict[str, object],
    defer: bool = False,
) -> Predicate:
    # Constant-fold after substitution: unary minus parses as (0 - x)
    # and @parameters may complete literal arithmetic — unfolded
    # constants blind statistics-based pruning and selectivity.
    return map_predicate_exprs(
        pred,
        lambda expr: fold_constants(
            substitute_parameters(expr, params, defer)
        ),
    )


class _Binder:
    def __init__(self, statement: SelectStatement, catalog: Catalog,
                 params: dict[str, object], defer: bool = False):
        self._statement = statement
        self._catalog = catalog
        self._params = params
        self._defer = defer
        self._tables: list[BoundTable] = []
        self._resolution: dict[ColumnRef, BoundColumn] = {}

    def bind(self) -> BoundQuery:
        self._bind_tables()
        statement = self._statement
        select_items = self._bind_select_items(statement)
        join_predicates, filters, residuals = self._classify_predicates(
            statement
        )
        group_by, group_exprs = self._bind_group_by(statement)
        having = [self._bind_having(p) for p in statement.having]
        order_by = [
            OrderItem(
                expr=fold_constants(
                    substitute_parameters(item.expr, self._params,
                                          self._defer)
                ),
                descending=item.descending,
            )
            for item in statement.order_by
        ]
        for item in order_by:
            for node in item.expr.walk():
                if isinstance(node, ColumnRef):
                    self._resolve_or_alias(node, select_items)
        return BoundQuery(
            statement=statement,
            tables=self._tables,
            resolution=self._resolution,
            join_predicates=join_predicates,
            filters=filters,
            select_items=select_items,
            group_by=group_by,
            order_by=order_by,
            limit=statement.limit,
            residuals=residuals,
            having=having,
            group_exprs=group_exprs,
        )

    # -- tables ------------------------------------------------------------ #

    def _bind_tables(self) -> None:
        seen: set[str] = set()
        for ref in self._statement.tables:
            binding = ref.binding_name
            if binding in seen:
                raise BindError(f"duplicate table binding {binding!r}")
            seen.add(binding)
            self._tables.append(
                BoundTable(binding=binding, table=self._catalog.get(ref.name))
            )

    # -- column resolution ---------------------------------------------------- #

    def _resolve_column(self, ref: ColumnRef) -> BoundColumn:
        cached = self._resolution.get(ref)
        if cached is not None:
            return cached
        candidates: list[BoundColumn] = []
        for bound in self._tables:
            if ref.table is not None and ref.table != bound.binding:
                # Also accept the real table name as qualifier.
                if ref.table != bound.table.name.lower():
                    continue
            if bound.table.has_column(ref.column):
                candidates.append(
                    BoundColumn(
                        binding=bound.binding,
                        column=ref.column,
                        dtype=bound.table.dtype(ref.column),
                    )
                )
        if not candidates:
            raise BindError(f"unknown column {ref}")
        if len(candidates) > 1:
            raise BindError(f"ambiguous column {ref}")
        self._resolution[ref] = candidates[0]
        return candidates[0]

    def _resolve_or_alias(
        self, ref: ColumnRef, select_items: list[SelectItem]
    ) -> None:
        """ORDER BY may name a select-list alias instead of a column."""
        if ref.table is None:
            aliases = {
                (item.alias or "").lower() for item in select_items if item.alias
            }
            if ref.column in aliases:
                return
        self._resolve_column(ref)

    def _bind_expr(self, expr: Expr) -> Expr:
        expr = fold_constants(
            substitute_parameters(expr, self._params, self._defer)
        )
        for node in expr.walk():
            if isinstance(node, ColumnRef):
                self._resolve_column(node)
        return expr

    def _bind_group_by(
        self, statement: SelectStatement
    ) -> tuple[list[BoundColumn], dict[str, Expr]]:
        """Bind GROUP BY keys: plain columns resolve directly, computed
        expressions become ``#group.gN`` columns the planner projects
        before aggregation (the expression-GROUP-BY rewrite)."""
        group_by: list[BoundColumn] = []
        group_exprs: dict[str, Expr] = {}
        for expr in statement.group_by:
            expr = fold_constants(
                substitute_parameters(expr, self._params, self._defer)
            )
            if isinstance(expr, ColumnRef):
                group_by.append(self._resolve_column(expr))
                continue
            for node in expr.walk():
                if isinstance(node, AggregateCall):
                    raise BindError(
                        "aggregate calls cannot appear in GROUP BY"
                    )
                if isinstance(node, Literal) and isinstance(node.value, str):
                    raise BindError(
                        "string literals in GROUP BY expressions are not "
                        "supported"
                    )
                if isinstance(node, ColumnRef):
                    self._resolve_column(node)
            column = BoundColumn(
                binding=COMPUTED_GROUP_BINDING,
                column=f"g{len(group_exprs)}",
                dtype=DataType.FLOAT64,
            )
            group_by.append(column)
            group_exprs[column.key] = expr
        return group_by, group_exprs

    # -- select list ------------------------------------------------------------ #

    def _bind_select_items(self, statement: SelectStatement) -> list[SelectItem]:
        items: list[SelectItem] = []
        if statement.select_star:
            for bound in self._tables:
                for column in bound.table.column_names:
                    ref = ColumnRef(table=bound.binding, column=column.lower())
                    self._resolve_column(ref)
                    items.append(SelectItem(expr=ref, alias=column))
            return items
        for item in statement.select_items:
            bound_expr = self._bind_expr(item.expr)
            self._validate_aggregate_nesting(bound_expr)
            items.append(SelectItem(expr=bound_expr, alias=item.alias))
        return items

    @staticmethod
    def _validate_aggregate_nesting(expr: Expr) -> None:
        for node in expr.walk():
            if isinstance(node, AggregateCall) and node.argument is not None:
                inner = [
                    n for n in node.argument.walk()
                    if isinstance(n, AggregateCall)
                ]
                if inner:
                    raise BindError("nested aggregate calls are not allowed")

    # -- predicate classification -------------------------------------------------- #

    def _classify_predicates(
        self, statement: SelectStatement
    ) -> tuple[
        list[JoinPredicate], dict[str, list[Predicate]], list[Predicate]
    ]:
        joins: list[JoinPredicate] = []
        filters: dict[str, list[Predicate]] = {
            bound.binding: [] for bound in self._tables
        }
        residuals: list[Predicate] = []
        for predicate in statement.where:
            predicate = _substitute_predicate(predicate, self._params,
                                          self._defer)
            join = self._try_join_predicate(predicate)
            if join is not None:
                joins.append(join)
                continue
            bindings = self._predicate_bindings(predicate)
            if len(bindings) == 1:
                filters[next(iter(bindings))].append(predicate)
            else:
                # Multi-table (or table-free) conjuncts that are not join
                # conditions are applied after the joins complete.
                residuals.append(predicate)
        return joins, filters, residuals

    def _bind_having(self, predicate: Predicate) -> Predicate:
        predicate = _substitute_predicate(predicate, self._params,
                                          self._defer)
        for expr in walk_predicate_exprs(predicate):
            self._validate_aggregate_nesting(expr)
            for node in expr.walk():
                if isinstance(node, ColumnRef):
                    self._resolve_column(node)
        return predicate

    def _try_join_predicate(self, predicate: Predicate) -> JoinPredicate | None:
        if not isinstance(predicate, Comparison):
            return None
        if not isinstance(predicate.left, ColumnRef):
            return None
        if not isinstance(predicate.right, ColumnRef):
            return None
        left = self._resolve_column(predicate.left)
        right = self._resolve_column(predicate.right)
        if left.binding == right.binding:
            return None
        return JoinPredicate(op=predicate.op, left=left, right=right)

    def _predicate_bindings(self, predicate: Predicate) -> set[str]:
        bindings: set[str] = set()
        for expr in walk_predicate_exprs(predicate):
            for node in expr.walk():
                if isinstance(node, ColumnRef):
                    bindings.add(self._resolve_column(node).binding)
        return bindings


def bind(
    statement: SelectStatement,
    catalog: Catalog,
    params: dict[str, object] | list | tuple | None = None,
    defer: bool = False,
) -> BoundQuery:
    """Resolve a parsed statement against the catalog.

    ``params`` supplies parameter values: a dict keyed by ``@name`` (or
    by ordinal string for ``?`` markers), or a positional list/tuple
    that binds ``?`` markers left to right.  With ``defer=True``,
    parameters without values survive as :class:`Parameter` nodes — the
    template-binding mode behind :func:`repro.sql.prepared.prepare_statement`.
    """
    return _Binder(statement, catalog, param_map(params), defer).bind()


def param_map(params: dict[str, object] | list | tuple | None) -> dict:
    """Normalize a parameter collection to the dict the binder consumes.

    Positional sequences map to the ordinal names the parser assigned
    to ``?`` markers ("0", "1", ... in lexical order).
    """
    if params is None:
        return {}
    if isinstance(params, dict):
        return params
    if isinstance(params, (list, tuple)):
        return {str(index): value for index, value in enumerate(params)}
    raise BindError(
        f"parameters must be a dict, list or tuple, not "
        f"{type(params).__name__}"
    )

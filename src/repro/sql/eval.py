"""Vectorized expression and predicate evaluation.

Engines evaluate scalar expressions over an *environment*: a mapping from
``binding.column`` keys to numpy arrays of equal length (a scan's columns,
or the stitched columns of a join result).  String columns appear as
dictionary codes; literals compared against them are translated through
the owning column's dictionary by the engine before evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ExecutionError
from repro.sql.ast_nodes import (
    AggregateCall,
    Between,
    BinaryOp,
    ColumnRef,
    Comparison,
    Conjunction,
    Disjunction,
    Expr,
    InList,
    Literal,
    Negation,
    Predicate,
)
from repro.sql.binder import BoundQuery


class Environment:
    """Column arrays for one operator's input, keyed by binding.column."""

    def __init__(self, arrays: dict[str, np.ndarray], n_rows: int):
        self.arrays = arrays
        self.n_rows = n_rows

    @staticmethod
    def from_table(bound_query: BoundQuery, binding: str) -> "Environment":
        table = bound_query.binding(binding).table
        arrays = {
            f"{binding}.{name.lower()}": table.column(name).data
            for name in table.column_names
        }
        return Environment(arrays, table.num_rows)

    def lookup(self, key: str) -> np.ndarray:
        array = self.arrays.get(key)
        if array is None:
            raise ExecutionError(f"column {key!r} missing from environment")
        return array

    def filtered(self, mask: np.ndarray) -> "Environment":
        return Environment(
            {k: v[mask] for k, v in self.arrays.items()},
            int(np.count_nonzero(mask)),
        )

    def taken(self, indices: np.ndarray) -> "Environment":
        return Environment(
            {k: v[indices] for k, v in self.arrays.items()}, int(indices.size)
        )


def encode_literal(bound_query: BoundQuery, ref: ColumnRef, value):
    """Map a literal to the physical domain of the referenced column."""
    bound = bound_query.resolve(ref)
    column = bound_query.binding(bound.binding).table.column(bound.column)
    return column.encode_literal(value)


def evaluate_expr(
    expr: Expr, env: Environment, bound_query: BoundQuery
) -> np.ndarray:
    """Evaluate a scalar expression to an array of ``env.n_rows`` values."""
    if isinstance(expr, Literal):
        return np.full(env.n_rows, expr.value if not isinstance(expr.value, str)
                       else np.nan)
    if isinstance(expr, ColumnRef):
        bound = bound_query.resolve(expr)
        return env.lookup(bound.key)
    if isinstance(expr, BinaryOp):
        left = evaluate_expr(expr.left, env, bound_query).astype(np.float64)
        right = evaluate_expr(expr.right, env, bound_query).astype(np.float64)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.where(right != 0, left / np.where(right == 0, 1, right),
                                np.nan)
        if expr.op == "%":
            return np.mod(left, np.where(right == 0, 1, right))
        raise ExecutionError(f"unsupported arithmetic operator {expr.op!r}")
    if isinstance(expr, AggregateCall):
        raise ExecutionError(
            "aggregate calls must be handled by the Aggregate operator"
        )
    raise ExecutionError(f"cannot evaluate expression {expr!r}")


_COMPARATORS = {
    "=": np.equal,
    "<": np.less,
    ">": np.greater,
    "<=": np.less_equal,
    ">=": np.greater_equal,
    "<>": np.not_equal,
    "!=": np.not_equal,
}


def predicate_mask(
    predicate: Predicate,
    n_rows: int,
    eval_expr,
    encode,
) -> np.ndarray:
    """Generic predicate interpreter shared by row- and group-level
    evaluation.

    ``eval_expr(expr)`` evaluates a scalar expression to an array of
    ``n_rows`` values; ``encode(ref, value)`` maps a string literal into
    the physical domain of the referenced column's dictionary.
    """

    def operand(expr: Expr, other: Expr) -> np.ndarray:
        if isinstance(expr, Literal) and isinstance(expr.value, str):
            if isinstance(other, ColumnRef):
                return np.full(n_rows, encode(other, expr.value))
            raise ExecutionError(
                f"string literal {expr.value!r} compared against non-column"
            )
        return eval_expr(expr)

    if isinstance(predicate, Comparison):
        left = operand(predicate.left, predicate.right)
        right = operand(predicate.right, predicate.left)
        return _COMPARATORS[predicate.op](left, right)
    if isinstance(predicate, Between):
        value = eval_expr(predicate.expr)
        low = operand(predicate.low, predicate.expr)
        high = operand(predicate.high, predicate.expr)
        return (value >= low) & (value <= high)
    if isinstance(predicate, InList):
        if isinstance(predicate.expr, ColumnRef):
            ref = predicate.expr
            values = [
                encode(ref, literal.value)
                if isinstance(literal.value, str) else literal.value
                for literal in predicate.values
            ]
        else:
            values = [literal.value for literal in predicate.values]
        column = eval_expr(predicate.expr)
        return np.isin(column, np.asarray(values))
    if isinstance(predicate, Negation):
        # No NULLs in the storage layer, so two-valued logic applies and
        # NOT is plain complement.
        return ~predicate_mask(predicate.inner, n_rows, eval_expr, encode)
    if isinstance(predicate, Conjunction):
        mask = np.ones(n_rows, dtype=bool)
        for part in predicate.parts:
            mask &= predicate_mask(part, n_rows, eval_expr, encode)
        return mask
    if isinstance(predicate, Disjunction):
        mask = np.zeros(n_rows, dtype=bool)
        for arm in predicate.arms:
            mask |= predicate_mask(arm, n_rows, eval_expr, encode)
        return mask
    raise ExecutionError(f"unsupported predicate {predicate!r}")


def evaluate_predicate(
    predicate: Predicate, env: Environment, bound_query: BoundQuery
) -> np.ndarray:
    """Evaluate a WHERE conjunct to a boolean mask."""
    return predicate_mask(
        predicate,
        env.n_rows,
        lambda expr: evaluate_expr(expr, env, bound_query),
        lambda ref, value: encode_literal(bound_query, ref, value),
    )


def conjunction_mask(
    predicates: list[Predicate], env: Environment, bound_query: BoundQuery
) -> np.ndarray:
    """AND of all predicates (all-true for an empty list)."""
    mask = np.ones(env.n_rows, dtype=bool)
    for predicate in predicates:
        mask &= evaluate_predicate(predicate, env, bound_query)
    return mask

"""SQL tokenizer.

Produces a flat token stream for the recursive-descent parser.  The
accepted lexicon covers the paper's entire workload: SELECT/FROM/WHERE
joins, GROUP BY, ORDER BY, aggregates, BETWEEN, IN, arithmetic and
comparison operators, string/number literals, qualified identifiers and
``--`` line comments, and the two parameter-placeholder spellings
(``@name`` named markers and positional ``?`` markers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import LexError

KEYWORDS = {
    "select", "from", "where", "group", "by", "order", "asc", "desc",
    "and", "or", "as", "between", "in", "limit", "not", "distinct",
    "having", "sum", "count", "avg", "min", "max",
}


class TokenType(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"  # = < > <= >= <> != + - * / %
    PUNCT = "punct"  # ( ) , . ; * ?
    END = "end"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type == TokenType.KEYWORD and self.value == word.lower()


_TWO_CHAR_OPS = ("<=", ">=", "<>", "!=")
_ONE_CHAR_OPS = "=<>+-/%"
_PUNCT = "(),.;*?"


def tokenize(text: str) -> list[Token]:
    """Convert SQL text into a token list terminated by an END token."""
    tokens: list[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            newline = text.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch.isalpha() or ch == "_" or ch == "@":
            start = i
            i += 1
            while i < n and (text[i].isalnum() or text[i] in "_#"):
                i += 1
            word = text[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < n and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
                if text[i] == ".":
                    # "1." followed by an identifier is a qualified ref typo;
                    # only consume the dot when a digit follows.
                    if i + 1 >= n or not text[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            if i < n and text[i] in "eE":
                j = i + 1
                if j < n and text[j] in "+-":
                    j += 1
                if j < n and text[j].isdigit():
                    i = j + 1
                    while i < n and text[i].isdigit():
                        i += 1
            tokens.append(Token(TokenType.NUMBER, text[start:i], start))
            continue
        if ch in ("'", '"'):
            quote = ch
            start = i
            i += 1
            parts: list[str] = []
            while True:
                if i >= n:
                    raise LexError("unterminated string literal", start)
                if text[i] == quote:
                    if i + 1 < n and text[i + 1] == quote:  # doubled quote
                        parts.append(quote)
                        i += 2
                        continue
                    i += 1
                    break
                parts.append(text[i])
                i += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), start))
            continue
        two = text[i:i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token(TokenType.OPERATOR, two, i))
            i += 2
            continue
        if ch == "*":
            # '*' is multiplication in expressions and the star in
            # SELECT * / COUNT(*); the parser disambiguates.
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(TokenType.OPERATOR, ch, i))
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.END, "", n))
    return tokens

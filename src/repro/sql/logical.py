"""Logical query plans.

A small algebra — Scan, Join, Aggregate, Project, Sort, Limit — produced
by the planner from a bound query and interpreted by the baseline engines
(YDB on the simulated GPU, MonetDB on the CPU).  TCUDB's optimizer
instead pattern-matches the bound query directly (Section 3), but falls
back to this plan when its tests fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.ast_nodes import OrderItem, Predicate, SelectItem
from repro.sql.binder import BoundColumn, JoinPredicate


class LogicalNode:
    """Base class of logical plan nodes."""

    def children(self) -> list["LogicalNode"]:
        return []

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass
class Scan(LogicalNode):
    """Read one table binding, applying its local filter conjuncts."""

    binding: str
    table_name: str
    filters: list[Predicate] = field(default_factory=list)

    def describe(self) -> str:
        if self.filters:
            conds = " AND ".join(str(p) for p in self.filters)
            return f"Scan({self.binding} [{conds}])"
        return f"Scan({self.binding})"


@dataclass
class Join(LogicalNode):
    """Binary join on one predicate (equi or non-equi)."""

    left: LogicalNode
    right: LogicalNode
    predicate: JoinPredicate

    def children(self) -> list[LogicalNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        return f"Join({self.predicate.left} {self.predicate.op} {self.predicate.right})"


@dataclass
class Filter(LogicalNode):
    """Residual conjuncts (e.g. cross-table ORs) applied after joins."""

    input: LogicalNode
    predicates: list[Predicate] = field(default_factory=list)

    def children(self) -> list[LogicalNode]:
        return [self.input]

    def describe(self) -> str:
        conds = " AND ".join(str(p) for p in self.predicates)
        return f"Filter({conds})"


@dataclass
class Compute(LogicalNode):
    """Extend the relation with computed columns (expression GROUP BY).

    Each ``(key, expr)`` pair evaluates a scalar expression over the
    input rows and exposes it under ``key`` (a ``#group.gN`` binding),
    so the Aggregate above can group on arbitrary expressions while the
    grouping kernels keep seeing plain environment columns.
    """

    input: LogicalNode
    computed: list[tuple[str, "object"]] = field(default_factory=list)

    def children(self) -> list[LogicalNode]:
        return [self.input]

    def describe(self) -> str:
        cols = ", ".join(f"{key} := {expr}" for key, expr in self.computed)
        return f"Compute({cols})"


@dataclass
class Aggregate(LogicalNode):
    """Group-by + aggregate evaluation, with optional HAVING conjuncts."""

    input: LogicalNode
    group_by: list[BoundColumn]
    items: list[SelectItem]  # full select list (aggregates + group cols)
    having: list[Predicate] = field(default_factory=list)

    def children(self) -> list[LogicalNode]:
        return [self.input]

    def describe(self) -> str:
        keys = ", ".join(str(c) for c in self.group_by) or "<global>"
        if self.having:
            conds = " AND ".join(str(p) for p in self.having)
            return f"Aggregate(by {keys} having {conds})"
        return f"Aggregate(by {keys})"


@dataclass
class Project(LogicalNode):
    """Final expression projection for non-aggregate queries."""

    input: LogicalNode
    items: list[SelectItem]

    def children(self) -> list[LogicalNode]:
        return [self.input]

    def describe(self) -> str:
        return f"Project({', '.join(i.output_name for i in self.items)})"


@dataclass
class Sort(LogicalNode):
    input: LogicalNode
    keys: list[OrderItem]

    def children(self) -> list[LogicalNode]:
        return [self.input]

    def describe(self) -> str:
        return f"Sort({len(self.keys)} keys)"


@dataclass
class Limit(LogicalNode):
    input: LogicalNode
    count: int

    def children(self) -> list[LogicalNode]:
        return [self.input]

    def describe(self) -> str:
        return f"Limit({self.count})"


def explain(node: LogicalNode, indent: int = 0) -> str:
    """Readable plan tree, one node per line."""
    lines = ["  " * indent + node.describe()]
    for child in node.children():
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)

"""Recursive-descent SQL parser.

Grammar (conjunctive WHERE, comma joins — the dialect the paper's example
queries and the SSB queries use):

    select    := SELECT item (',' item)* FROM table (',' table)*
                 [WHERE bool]
                 [GROUP BY expr (',' expr)*]
                 [HAVING bool]
                 [ORDER BY expr [ASC|DESC] (',' ...)*]
                 [LIMIT number] [';']
    item      := '*' | expr [AS ident | ident]
    table     := ident [AS ident | ident]
    bool      := andpred (OR andpred)*           -- AND binds tighter
    andpred   := boolprim (AND boolprim)*
    boolprim  := NOT boolprim | '(' bool ')' | pred
                                                 -- disambiguated by backtrack
    pred      := expr cmp expr | expr BETWEEN expr AND expr
               | expr [NOT] IN '(' literal (',' literal)* ')'
    expr      := term (('+'|'-') term)*
    term      := factor (('*'|'/'|'%') factor)*
    factor    := ['-'] (number | string | '@'ident | qualified
               | agg '(' (expr|'*'|DISTINCT expr) ')' | '(' expr ')')
    qualified := ident ['.' ident]
"""

from __future__ import annotations

from repro.common.errors import ParseError
from repro.sql.ast_nodes import (
    AGGREGATE_FUNCS,
    AggregateCall,
    Between,
    BinaryOp,
    ColumnRef,
    Comparison,
    Conjunction,
    Disjunction,
    Expr,
    InList,
    Literal,
    Negation,
    OrderItem,
    Parameter,
    Predicate,
    SelectItem,
    SelectStatement,
    TableRef,
)
from repro.sql.lexer import Token, TokenType, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0
        # Positional ``?`` placeholders are numbered left to right in
        # lexical order ("0", "1", ...), the order a parameter list
        # passed to ``execute_prepared`` binds them in.
        self._param_ordinal = 0

    # -- token helpers ---------------------------------------------------- #

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type != TokenType.END:
            self._pos += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise ParseError(
                f"expected {word.upper()}, found {token.value!r} "
                f"at offset {token.position}"
            )
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _expect_punct(self, symbol: str) -> Token:
        token = self._peek()
        if token.type != TokenType.PUNCT or token.value != symbol:
            raise ParseError(
                f"expected {symbol!r}, found {token.value!r} "
                f"at offset {token.position}"
            )
        return self._advance()

    def _accept_punct(self, symbol: str) -> bool:
        token = self._peek()
        if token.type == TokenType.PUNCT and token.value == symbol:
            self._advance()
            return True
        return False

    # -- statement --------------------------------------------------------- #

    def parse_select(self) -> SelectStatement:
        self._expect_keyword("select")
        select_star = False
        items: list[SelectItem] = []
        if self._accept_punct("*"):
            select_star = True
        else:
            items.append(self._parse_select_item())
            while self._accept_punct(","):
                items.append(self._parse_select_item())
        self._expect_keyword("from")
        tables = [self._parse_table_ref()]
        while self._accept_punct(","):
            tables.append(self._parse_table_ref())
        predicates: list[Predicate] = []
        if self._accept_keyword("where"):
            predicates = self._parse_bool_conjuncts()
        group_by: list[Expr] = []
        having: list[Predicate] = []
        order_by: list[OrderItem] = []
        limit: int | None = None
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._parse_expr())
            while self._accept_punct(","):
                group_by.append(self._parse_expr())
        if self._accept_keyword("having"):
            having = self._parse_bool_conjuncts()
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())
        if self._accept_keyword("limit"):
            token = self._advance()
            if token.type != TokenType.NUMBER:
                raise ParseError(f"LIMIT needs a number, got {token.value!r}")
            limit = int(float(token.value))
        self._accept_punct(";")
        trailing = self._peek()
        if trailing.type != TokenType.END:
            raise ParseError(
                f"unexpected trailing token {trailing.value!r} "
                f"at offset {trailing.position}"
            )
        return SelectStatement(
            select_items=tuple(items),
            tables=tuple(tables),
            where=tuple(predicates),
            group_by=tuple(group_by),
            having=tuple(having),
            order_by=tuple(order_by),
            limit=limit,
            select_star=select_star,
        )

    def _parse_select_item(self) -> SelectItem:
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("as"):
            token = self._advance()
            if token.type != TokenType.IDENT:
                raise ParseError(f"expected alias after AS, got {token.value!r}")
            alias = token.value
        elif self._peek().type == TokenType.IDENT:
            alias = self._advance().value
        return SelectItem(expr=expr, alias=alias)

    def _parse_table_ref(self) -> TableRef:
        token = self._advance()
        if token.type != TokenType.IDENT:
            raise ParseError(f"expected table name, got {token.value!r}")
        alias = None
        if self._accept_keyword("as"):
            alias_token = self._advance()
            if alias_token.type != TokenType.IDENT:
                raise ParseError("expected alias after AS")
            alias = alias_token.value
        elif self._peek().type == TokenType.IDENT:
            alias = self._advance().value
        return TableRef(name=token.value, alias=alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_expr()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return OrderItem(expr=expr, descending=descending)

    # -- predicates ----------------------------------------------------------- #

    def _parse_bool_conjuncts(self) -> list[Predicate]:
        """Parse a boolean expression, flattened to top-level conjuncts."""
        predicate = self._parse_or()
        if isinstance(predicate, Conjunction):
            return list(predicate.parts)
        return [predicate]

    def _parse_or(self) -> Predicate:
        arms = [self._parse_and()]
        while self._accept_keyword("or"):
            arms.append(self._parse_and())
        if len(arms) == 1:
            return arms[0]
        return Disjunction(arms=tuple(arms))

    def _parse_and(self) -> Predicate:
        parts = [self._parse_bool_primary()]
        while self._accept_keyword("and"):
            parts.append(self._parse_bool_primary())
        if len(parts) == 1:
            return parts[0]
        return Conjunction(parts=tuple(parts))

    def _parse_bool_primary(self) -> Predicate:
        if self._accept_keyword("not"):
            return Negation(inner=self._parse_bool_primary())
        # '(' opens either a boolean group or an arithmetic sub-expression;
        # try the boolean reading first and backtrack on failure.
        token = self._peek()
        if token.type == TokenType.PUNCT and token.value == "(":
            saved = self._pos
            self._advance()
            try:
                inner = self._parse_or()
                self._expect_punct(")")
                return inner
            except ParseError:
                self._pos = saved
        return self._parse_predicate()

    def _parse_predicate(self) -> Predicate:
        left = self._parse_expr()
        if self._accept_keyword("between"):
            low = self._parse_expr()
            self._expect_keyword("and")
            high = self._parse_expr()
            return Between(expr=left, low=low, high=high)
        if self._peek().is_keyword("in") or self._peek().is_keyword("not"):
            negated = self._accept_keyword("not")
            self._expect_keyword("in")
            self._expect_punct("(")
            values = [self._parse_literal()]
            while self._accept_punct(","):
                values.append(self._parse_literal())
            self._expect_punct(")")
            in_list = InList(expr=left, values=tuple(values))
            return Negation(inner=in_list) if negated else in_list
        token = self._peek()
        if token.type != TokenType.OPERATOR or token.value not in (
            "=", "<", ">", "<=", ">=", "<>", "!=",
        ):
            raise ParseError(
                f"expected comparison operator, got {token.value!r} "
                f"at offset {token.position}"
            )
        op = self._advance().value
        right = self._parse_expr()
        return Comparison(op=op, left=left, right=right)

    def _parse_literal(self) -> Literal:
        token = self._advance()
        if token.type == TokenType.NUMBER:
            value = float(token.value)
            return Literal(int(value) if value.is_integer() else value)
        if token.type == TokenType.STRING:
            return Literal(token.value)
        raise ParseError(f"expected literal, got {token.value!r}")

    # -- expressions -------------------------------------------------------------- #

    def _parse_expr(self) -> Expr:
        expr = self._parse_term()
        while True:
            token = self._peek()
            if token.type == TokenType.OPERATOR and token.value in ("+", "-"):
                op = self._advance().value
                expr = BinaryOp(op=op, left=expr, right=self._parse_term())
            else:
                return expr

    def _parse_term(self) -> Expr:
        expr = self._parse_factor()
        while True:
            token = self._peek()
            if token.type == TokenType.OPERATOR and token.value in ("/", "%"):
                op = self._advance().value
                expr = BinaryOp(op=op, left=expr, right=self._parse_factor())
            elif token.type == TokenType.PUNCT and token.value == "*":
                self._advance()
                expr = BinaryOp(op="*", left=expr, right=self._parse_factor())
            else:
                return expr

    def _parse_factor(self) -> Expr:
        token = self._peek()
        if token.type == TokenType.OPERATOR and token.value == "-":
            self._advance()
            inner = self._parse_factor()
            return BinaryOp(op="-", left=Literal(0), right=inner)
        token = self._advance()
        if token.type == TokenType.NUMBER:
            value = float(token.value)
            return Literal(int(value) if value.is_integer() else value)
        if token.type == TokenType.STRING:
            return Literal(token.value)
        if token.type == TokenType.PUNCT and token.value == "?":
            name = str(self._param_ordinal)
            self._param_ordinal += 1
            return Parameter(name=name)
        if token.type == TokenType.PUNCT and token.value == "(":
            inner = self._parse_expr()
            self._expect_punct(")")
            return inner
        if token.type == TokenType.KEYWORD and token.value in AGGREGATE_FUNCS:
            return self._parse_aggregate(token.value)
        if token.type == TokenType.IDENT:
            if token.value.startswith("@"):
                return Parameter(name=token.value[1:])
            if self._accept_punct("."):
                column = self._advance()
                if column.type not in (TokenType.IDENT, TokenType.KEYWORD):
                    raise ParseError(
                        f"expected column name after '.', got {column.value!r}"
                    )
                return ColumnRef(table=token.value.lower(), column=column.value.lower())
            return ColumnRef(table=None, column=token.value.lower())
        raise ParseError(
            f"unexpected token {token.value!r} at offset {token.position}"
        )

    def _parse_aggregate(self, func: str) -> AggregateCall:
        self._expect_punct("(")
        if self._accept_punct("*"):
            if func != "count":
                raise ParseError(f"{func.upper()}(*) is not valid SQL")
            self._expect_punct(")")
            return AggregateCall(func=func, argument=None)
        self._accept_keyword("distinct")  # parsed, treated as plain agg
        argument = self._parse_expr()
        self._expect_punct(")")
        return AggregateCall(func=func, argument=argument)


def parse(sql: str) -> SelectStatement:
    """Parse SQL text into a :class:`SelectStatement`."""
    return _Parser(tokenize(sql)).parse_select()

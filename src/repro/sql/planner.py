"""Logical planner: bound query -> left-deep logical plan.

Join order follows the FROM-clause order (the paper assumes the
conventional join order A -> B -> C in Section 3.2); each joined table
must be connected to the already-joined set by at least one predicate —
cross products are rejected.  Filters are pushed down to their scans.
"""

from __future__ import annotations

from repro.common.errors import PlanError
from repro.sql.binder import BoundQuery, JoinPredicate
from repro.sql.logical import (
    Aggregate,
    Compute,
    Filter,
    Join,
    Limit,
    LogicalNode,
    Project,
    Scan,
    Sort,
)


def plan_relation(bound: BoundQuery) -> LogicalNode:
    """The relational prefix of the plan: joins + pushed-down filters +
    residual Filter, before any aggregation/projection.

    Shared by the baseline planner below and by TCUDB's hybrid lowering,
    whose ``PhysicalStage`` operator executes exactly this prefix before
    handing the materialized relation to the tensor core.
    """
    node = _plan_joins(bound)
    if bound.residuals:
        node = Filter(input=node, predicates=list(bound.residuals))
    if bound.group_exprs:
        # Expression GROUP BY: project the computed group keys before
        # the Aggregate so grouping kernels see plain columns.
        node = Compute(input=node, computed=list(bound.group_exprs.items()))
    return node


def plan(bound: BoundQuery) -> LogicalNode:
    """Build the logical plan for a bound query."""
    node = plan_relation(bound)
    if bound.has_aggregates or bound.group_by:
        _validate_group_select(bound)
        node = Aggregate(
            input=node, group_by=list(bound.group_by),
            items=list(bound.select_items), having=list(bound.having),
        )
    elif bound.having:
        raise PlanError(
            "HAVING requires aggregation (aggregates or GROUP BY)"
        )
    else:
        node = Project(input=node, items=list(bound.select_items))
    if bound.order_by:
        node = Sort(input=node, keys=list(bound.order_by))
    if bound.limit is not None:
        node = Limit(input=node, count=bound.limit)
    return node


def _plan_joins(bound: BoundQuery) -> LogicalNode:
    remaining = list(bound.join_predicates)
    scans = {
        table.binding: Scan(
            binding=table.binding,
            table_name=table.table.name,
            filters=list(bound.filters.get(table.binding, ())),
        )
        for table in bound.tables
    }
    order = [table.binding for table in bound.tables]
    node: LogicalNode = scans[order[0]]
    joined = {order[0]}
    for binding in order[1:]:
        predicate = _pick_predicate(remaining, joined, binding)
        if predicate is None:
            raise PlanError(
                f"table {binding!r} is not connected to the join tree; "
                "cross products are not supported"
            )
        remaining.remove(predicate)
        # Keep the new table on the right-hand side of the join node.
        if predicate.right.binding != binding:
            predicate = JoinPredicate(
                op=_flip_op(predicate.op),
                left=predicate.right,
                right=predicate.left,
            )
        node = Join(left=node, right=scans[binding], predicate=predicate)
        joined.add(binding)
    leftover = [
        p for p in remaining
        if p.left.binding in joined and p.right.binding in joined
    ]
    if leftover:
        raise PlanError(
            "multiple join predicates between the same table pair are not "
            f"supported: {leftover[0].left} {leftover[0].op} {leftover[0].right}"
        )
    return node


def _pick_predicate(
    predicates: list[JoinPredicate], joined: set[str], new_binding: str
) -> JoinPredicate | None:
    equi = [
        p for p in predicates
        if _connects(p, joined, new_binding) and p.is_equi
    ]
    if equi:
        return equi[0]
    non_equi = [p for p in predicates if _connects(p, joined, new_binding)]
    return non_equi[0] if non_equi else None


def _connects(
    predicate: JoinPredicate, joined: set[str], new_binding: str
) -> bool:
    left, right = predicate.left.binding, predicate.right.binding
    return (left in joined and right == new_binding) or (
        right in joined and left == new_binding
    )


def _flip_op(op: str) -> str:
    return {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)


def _validate_group_select(bound: BoundQuery) -> None:
    """Non-aggregate columns in SELECT/HAVING must appear in GROUP BY."""
    from repro.sql.ast_nodes import (
        AggregateCall,
        ColumnRef,
        walk_predicate_exprs,
    )

    from repro.sql.ast_nodes import BinaryOp

    group_keys = {column.key for column in bound.group_by}
    group_exprs = set(bound.group_exprs.values())

    def check(expr, where: str) -> None:
        if any(isinstance(n, AggregateCall) for n in expr.walk()):
            return
        if expr in group_exprs:
            # The select expression *is* a computed GROUP BY key.
            return
        if isinstance(expr, BinaryOp):
            check(expr.left, where)
            check(expr.right, where)
            return
        for node in expr.walk():
            if isinstance(node, ColumnRef):
                key = bound.resolve(node).key
                if key not in group_keys:
                    raise PlanError(
                        f"column {key} in {where} is neither aggregated "
                        "nor in GROUP BY"
                    )

    for item in bound.select_items:
        check(item.expr, "SELECT")
    for predicate in bound.having:
        for expr in walk_predicate_exprs(predicate):
            check(expr, "HAVING")

"""Prepared statements: parse/bind once, execute many times.

Follows the "parse once, process once" single-pass statement design:
:func:`prepare_statement` runs the front end exactly once — tokenize,
parse, then *deferred* binding (``bind(..., defer=True)``), which
resolves every column and classifies every predicate while leaving
:class:`~repro.sql.ast_nodes.Parameter` placeholders in place.  The
result is an immutable :class:`PreparedStatement`: normalized SQL text
(the program-cache key), typed parameter slots, and the bound template
query.  Executing it later only substitutes literals into the already
classified predicate lists (:meth:`PreparedStatement.bind_execution`) —
no re-parsing, no re-resolution, and (with a
:class:`~repro.engine.cache.ProgramCache`) no re-lowering.

Placeholder spellings: ``@name`` binds by name, ``?`` binds by position
(the parser numbers them "0", "1", ... left to right).  Parameters can
appear anywhere a scalar expression can — filters, residual predicates,
HAVING, select arithmetic, ORDER BY — but not inside ``IN (...)``
lists, which the grammar restricts to literals.

Thread-safety: :class:`PreparedStatement` is immutable after
construction and ``bind_execution`` builds a fresh
:class:`~repro.sql.binder.BoundQuery` per call, so one prepared
statement may be shared and executed by any number of threads
concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import BindError
from repro.sql.ast_nodes import (
    Between,
    ColumnRef,
    Comparison,
    Expr,
    OrderItem,
    Parameter,
    Predicate,
    SelectItem,
    SelectStatement,
    fold_constants,
    walk_predicate_exprs,
)
from repro.sql.binder import (
    BoundQuery,
    _substitute_predicate,
    bind,
    param_map,
    substitute_parameters,
)
from repro.storage.catalog import Catalog
from repro.storage.types import DataType


@dataclass(frozen=True)
class ParameterSlot:
    """One placeholder of a prepared statement.

    ``positional`` marks slots spelled ``?`` (bound by list position);
    ``dtype`` is the column type the placeholder is compared against
    when that is derivable from a filter/HAVING comparison, else None.
    """

    name: str
    positional: bool
    dtype: DataType | None = None

    def __str__(self) -> str:
        label = "?" if self.positional else f"@{self.name}"
        return f"{label}:{self.dtype.name if self.dtype else 'any'}"


@dataclass(frozen=True)
class PreparedStatement:
    """An immutable compile-once query template.

    ``bound`` is the deferred-bound template: columns resolved,
    predicates classified, parameters still symbolic.  ``normalized_sql``
    is the deterministic rendering of the parsed AST — two textual
    spellings of the same statement normalize identically, and parameter
    markers render as markers, so it is the cache key that lets every
    parameter binding share one compiled program.
    """

    sql: str
    normalized_sql: str
    statement: SelectStatement
    bound: BoundQuery
    slots: tuple[ParameterSlot, ...]

    @property
    def parameter_names(self) -> tuple[str, ...]:
        return tuple(slot.name for slot in self.slots)

    def bind_execution(
        self, params: dict[str, object] | list | tuple | None = None
    ) -> tuple[BoundQuery, dict[str, object]]:
        """Substitute parameter values into the template.

        Returns ``(exec_bound, values)``: a fresh, fully literal
        :class:`BoundQuery` sharing the template's resolution work, and
        the normalized name->value dict (for program specialization).
        Raises :class:`BindError` on missing, unknown, or non-scalar
        values.
        """
        values = param_map(params)
        known = {slot.name for slot in self.slots}
        unknown = sorted(set(values) - known)
        if unknown:
            raise BindError(
                f"unknown parameter(s) {unknown} for prepared statement "
                f"expecting [{', '.join(self.parameter_names)}]"
            )
        missing = [name for name in self.parameter_names
                   if name not in values]
        if missing:
            raise BindError(
                f"missing value(s) for parameter(s) {missing}"
            )
        if not self.slots:
            return self.bound, {}
        return _substitute_bound(self.bound, values), values


def _substitute_expr(expr: Expr, values: dict[str, object]) -> Expr:
    return fold_constants(substitute_parameters(expr, values))


def _substitute_bound(
    template: BoundQuery, values: dict[str, object]
) -> BoundQuery:
    """A literal execution bound from a parameter-typed template.

    Resolution artifacts (tables, column resolution, join predicates,
    group keys) are value-independent and shared; everything that can
    carry an expression is substituted and re-folded.
    """
    return BoundQuery(
        statement=template.statement,
        tables=template.tables,
        resolution=template.resolution,
        join_predicates=template.join_predicates,
        filters={
            binding: [_substitute_predicate(p, values) for p in conjuncts]
            for binding, conjuncts in template.filters.items()
        },
        select_items=[
            SelectItem(expr=_substitute_expr(item.expr, values),
                       alias=item.alias)
            for item in template.select_items
        ],
        group_by=template.group_by,
        order_by=[
            OrderItem(expr=_substitute_expr(item.expr, values),
                      descending=item.descending)
            for item in template.order_by
        ],
        limit=template.limit,
        residuals=[_substitute_predicate(p, values)
                   for p in template.residuals],
        having=[_substitute_predicate(p, values) for p in template.having],
        group_exprs={
            key: _substitute_expr(expr, values)
            for key, expr in template.group_exprs.items()
        },
    )


def _iter_statement_exprs(statement: SelectStatement):
    """Every expression of the statement, in clause order — the order
    the parser numbered positional markers in."""
    for item in statement.select_items:
        yield item.expr
    for predicate in statement.where:
        yield from walk_predicate_exprs(predicate)
    yield from statement.group_by
    for predicate in statement.having:
        yield from walk_predicate_exprs(predicate)
    for item in statement.order_by:
        yield item.expr


def _collect_parameters(statement: SelectStatement) -> list[Parameter]:
    """Distinct parameters in first-appearance (clause) order."""
    seen: dict[str, Parameter] = {}
    for expr in _iter_statement_exprs(statement):
        for node in expr.walk():
            if isinstance(node, Parameter) and node.name not in seen:
                seen[node.name] = node
    return list(seen.values())


def _infer_slot_types(
    statement: SelectStatement, bound: BoundQuery
) -> dict[str, DataType]:
    """Parameter name -> column dtype, where a filter/HAVING comparison
    pins the placeholder against a resolvable column."""

    def column_dtype(expr: Expr) -> DataType | None:
        if isinstance(expr, ColumnRef):
            resolved = bound.resolution.get(expr)
            return resolved.dtype if resolved else None
        return None

    inferred: dict[str, DataType] = {}

    def note(param: Expr, other: Expr) -> None:
        if isinstance(param, Parameter) and param.name not in inferred:
            dtype = column_dtype(other)
            if dtype is not None:
                inferred[param.name] = dtype

    def visit(predicate: Predicate) -> None:
        if isinstance(predicate, Comparison):
            note(predicate.left, predicate.right)
            note(predicate.right, predicate.left)
        elif isinstance(predicate, Between):
            note(predicate.low, predicate.expr)
            note(predicate.high, predicate.expr)

    for predicate in statement.where:
        visit(predicate)
    for predicate in statement.having:
        visit(predicate)
    return inferred


def render_statement(statement: SelectStatement) -> str:
    """Deterministic one-line rendering of a parsed statement.

    Normalizes whitespace, keyword case, and literal spelling (via the
    AST nodes' canonical ``__str__``); parameter markers render as
    ``@name`` markers, so every binding of the same template renders to
    the same text.  This is the program-cache key.
    """
    if statement.select_star:
        select = "*"
    else:
        select = ", ".join(
            f"{item.expr} AS {item.alias}" if item.alias else str(item.expr)
            for item in statement.select_items
        )
    tables = ", ".join(
        f"{ref.name} AS {ref.alias}" if ref.alias else ref.name
        for ref in statement.tables
    )
    parts = [f"SELECT {select}", f"FROM {tables}"]
    if statement.where:
        parts.append(
            "WHERE " + " AND ".join(str(p) for p in statement.where)
        )
    if statement.group_by:
        parts.append(
            "GROUP BY " + ", ".join(str(e) for e in statement.group_by)
        )
    if statement.having:
        parts.append(
            "HAVING " + " AND ".join(str(p) for p in statement.having)
        )
    if statement.order_by:
        parts.append("ORDER BY " + ", ".join(
            f"{item.expr} DESC" if item.descending else str(item.expr)
            for item in statement.order_by
        ))
    if statement.limit is not None:
        parts.append(f"LIMIT {statement.limit}")
    return " ".join(parts)


def prepare_statement(
    statement: SelectStatement, catalog: Catalog, sql: str = ""
) -> PreparedStatement:
    """Build the compile-once template for a parsed statement."""
    bound = bind(statement, catalog, defer=True)
    parameters = _collect_parameters(statement)
    types = _infer_slot_types(statement, bound)
    slots = tuple(
        ParameterSlot(
            name=param.name,
            positional=param.name.isdigit(),
            dtype=types.get(param.name),
        )
        for param in parameters
    )
    return PreparedStatement(
        sql=sql,
        normalized_sql=render_statement(statement),
        statement=statement,
        bound=bound,
        slots=slots,
    )

"""Columnar storage: typed columns, tables, statistics, catalog, CSV."""

from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.csv_io import read_csv, write_csv
from repro.storage.dictionary import StringDictionary
from repro.storage.statistics import (
    ColumnStats,
    compute_stats,
    join_output_estimate,
)
from repro.storage.table import Table
from repro.storage.types import DataType, common_numeric_type, infer_type

__all__ = [
    "Catalog",
    "Column",
    "ColumnStats",
    "DataType",
    "StringDictionary",
    "Table",
    "common_numeric_type",
    "compute_stats",
    "infer_type",
    "join_output_estimate",
    "read_csv",
    "write_csv",
]

"""Columnar storage: typed columns, tables, statistics, catalog, CSV."""

from repro.storage.catalog import Catalog
from repro.storage.chunk import (
    DEFAULT_CHUNK_ROWS,
    Chunk,
    ChunkedTable,
    chunk_rows_policy,
)
from repro.storage.column import Column
from repro.storage.csv_io import read_csv, write_csv
from repro.storage.dictionary import StringDictionary
from repro.storage.shard import (
    MAX_SHARDS,
    PARTITION_POLICIES,
    ShardedCatalog,
    shards_policy,
)
from repro.storage.statistics import (
    ColumnStats,
    compute_stats,
    conjunction_can_match,
    join_output_estimate,
    predicate_can_match,
)
from repro.storage.table import Table
from repro.storage.types import DataType, common_numeric_type, infer_type

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "Catalog",
    "Chunk",
    "ChunkedTable",
    "Column",
    "ColumnStats",
    "DataType",
    "MAX_SHARDS",
    "PARTITION_POLICIES",
    "ShardedCatalog",
    "StringDictionary",
    "Table",
    "shards_policy",
    "chunk_rows_policy",
    "common_numeric_type",
    "compute_stats",
    "conjunction_can_match",
    "infer_type",
    "join_output_estimate",
    "predicate_can_match",
    "read_csv",
    "write_csv",
]

"""Database catalog: name -> table registry with statistics access."""

from __future__ import annotations

from repro.common.errors import SchemaError, UnknownTableError
from repro.storage.statistics import ColumnStats
from repro.storage.table import Table


class Catalog:
    """Holds the registered tables of one database instance."""

    def __init__(self):
        self._tables: dict[str, Table] = {}

    def register(self, table: Table, replace: bool = False) -> None:
        key = table.name.lower()
        if key in self._tables and not replace:
            raise SchemaError(f"table {table.name!r} already registered")
        self._tables[key] = table

    def drop(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise UnknownTableError(name)
        del self._tables[key]

    def get(self, name: str) -> Table:
        table = self._tables.get(name.lower())
        if table is None:
            raise UnknownTableError(name)
        return table

    def has(self, name: str) -> bool:
        return name.lower() in self._tables

    def stats(self, table_name: str, column_name: str) -> ColumnStats:
        return self.get(table_name).stats(column_name)

    def chunked(self, name: str, chunk_rows: int | None = None):
        """A table's chunked partition (cached on the table itself)."""
        return self.get(name).chunked(chunk_rows)

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def fingerprint(self) -> tuple:
        """Identity of the catalog *contents* at this instant.

        A sorted tuple of (name, table uid) pairs: registering,
        replacing, or dropping any table changes it.  Table objects are
        immutable (statistics are derived lazily from fixed columns), so
        equal fingerprints imply identical data and statistics — the
        invalidation contract the program cache keys on.
        """
        return tuple(
            (name, table.uid) for name, table in sorted(self._tables.items())
        )

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:
        return f"Catalog(tables={self.table_names()})"

"""Fixed-size row chunks: the engine's native unit of storage.

TQP ("Query Processing on Tensor Computation Runtimes") maps relational
operators onto partitioned tensor kernels, and the TCU computational
model (Chowdhury et al.) analyzes matmul in terms of bounded-size tiles
streamed through the unit — both argue the engine should process
*chunks*, not whole tables.  A :class:`ChunkedTable` partitions a
:class:`~repro.storage.table.Table` into fixed-size row chunks of
zero-copy column slices, each carrying its own lazily computed
min/max/n_distinct statistics so scans can prune chunks a predicate
provably cannot match (see
:func:`repro.storage.statistics.predicate_can_match`).

The partitioning is purely a view: ``to_contiguous()`` hands legacy
callers the original table, and concatenating every chunk reproduces it
row for row (chunking never reorders).
"""

from __future__ import annotations

import os
import threading
from collections.abc import Iterator

import numpy as np

from repro.common.errors import StorageError
from repro.storage.column import Column
from repro.storage.statistics import ColumnStats, compute_stats
from repro.storage.table import Table

#: Default rows per chunk.  4096 keeps a chunk's operand slice inside a
#: few hundred 16x16 TCU tiles while amortizing per-chunk dispatch; it is
#: deliberately much smaller than device memory so stat pruning has
#: granularity to work with.
DEFAULT_CHUNK_ROWS = 4096


def chunk_rows_policy(override: int | None = None) -> int:
    """The effective chunk size: an explicit override, the
    ``REPRO_CHUNK_ROWS`` environment knob, or the default."""
    if override is not None:
        if override <= 0:
            raise StorageError(f"chunk size must be positive, got {override}")
        return int(override)
    env = os.environ.get("REPRO_CHUNK_ROWS")
    if env:
        try:
            return chunk_rows_policy(int(env))
        except ValueError:
            raise StorageError(
                f"REPRO_CHUNK_ROWS must be a positive integer, got {env!r}"
            ) from None
    return DEFAULT_CHUNK_ROWS


class Chunk:
    """One fixed-size row range of a table: zero-copy column slices plus
    per-chunk statistics."""

    def __init__(self, table: Table, index: int, start: int, stop: int):
        self.table_name = table.name
        self.index = index
        self.start = start
        self.stop = stop
        #: Column this chunk is sorted by (inherited from
        #: ``Table.cluster_by``), or None.
        self.sort_key = table.sort_key
        self._columns: dict[str, Column] = {
            name: table.column(name).slice(start, stop)
            for name in table.column_names
        }
        self._stats: dict[str, ColumnStats] = {}
        self._stats_lock = threading.Lock()

    @property
    def num_rows(self) -> int:
        return self.stop - self.start

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def column(self, name: str) -> Column:
        return self._columns[name]

    def stats(self, name: str) -> ColumnStats:
        """min/max/n_distinct of one column *within this chunk*.

        Computed lazily and memoized under a lock: worker-pool scans hit
        the same chunk from several threads, and an unsynchronized dict
        write can tear or double-compute.
        """
        cached = self._stats.get(name)
        if cached is not None:
            return cached
        with self._stats_lock:
            cached = self._stats.get(name)
            if cached is None:
                cached = self._compute_stats(name)
                self._stats[name] = cached
            return cached

    def _compute_stats(self, name: str) -> ColumnStats:
        if name == self.sort_key and self.num_rows:
            # Clustered fast path: the chunk is sorted on this column,
            # so min/max are the endpoints and distinct values are value
            # boundaries — no sort, no hash.
            data = self._columns[name].data
            return ColumnStats(
                min_value=data[0].item(),
                max_value=data[-1].item(),
                n_distinct=1 + int(np.count_nonzero(data[1:] != data[:-1])),
                n_rows=data.size,
            )
        return compute_stats(self._columns[name])

    def arrays(self) -> dict[str, "object"]:
        """Physical arrays per column (codes for strings)."""
        return {name: col.data for name, col in self._columns.items()}

    def __repr__(self) -> str:
        return (f"Chunk({self.table_name!r}#{self.index}, "
                f"rows=[{self.start}:{self.stop}])")


class ChunkedTable:
    """A table partitioned into fixed-size row chunks.

    Chunks are zero-copy views in row order; statistics are computed per
    chunk on first use.  ``to_contiguous()`` returns the backing table
    for legacy callers that need one contiguous array per column.
    """

    def __init__(self, table: Table, chunk_rows: int | None = None):
        self._table = table
        self.chunk_rows = chunk_rows_policy(chunk_rows)
        n = table.num_rows
        # An empty table has *zero* chunks: a fabricated zero-row chunk
        # would carry made-up min=max=0.0 statistics and still be
        # scanned, filtered and charged by every consumer.
        bounds = list(range(0, n, self.chunk_rows))
        self.chunks: list[Chunk] = [
            Chunk(table, i, start, min(start + self.chunk_rows, n))
            for i, start in enumerate(bounds)
        ]

    @property
    def name(self) -> str:
        return self._table.name

    @property
    def num_rows(self) -> int:
        return self._table.num_rows

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    @property
    def column_names(self) -> list[str]:
        return self._table.column_names

    def to_contiguous(self) -> Table:
        """The backing contiguous table (chunking is a pure view)."""
        return self._table

    def __iter__(self) -> Iterator[Chunk]:
        return iter(self.chunks)

    def __len__(self) -> int:
        return len(self.chunks)

    def pruned(self, can_match) -> Iterator[Chunk]:
        """Chunks surviving a stat-pruning test.

        ``can_match(chunk)`` returns False only when the chunk's
        statistics *prove* no row can satisfy the scan's predicates;
        pruned chunks are skipped without touching their rows.
        """
        for chunk in self.chunks:
            if can_match(chunk):
                yield chunk

    def __repr__(self) -> str:
        return (f"ChunkedTable({self.name!r}, rows={self.num_rows}, "
                f"chunks={self.num_chunks} x {self.chunk_rows})")


__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "Chunk",
    "ChunkedTable",
    "chunk_rows_policy",
]

"""Typed columns.

A :class:`Column` owns a contiguous numpy array of values (or dictionary
codes for strings) plus the optional :class:`StringDictionary`.  Columns
are immutable from the caller's perspective: all operations return new
columns sharing the dictionary.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import SchemaError, StorageError
from repro.storage.dictionary import StringDictionary
from repro.storage.types import DataType, infer_type


class Column:
    """An immutable typed column of values."""

    def __init__(
        self,
        data: np.ndarray,
        dtype: DataType,
        dictionary: StringDictionary | None = None,
    ):
        data = np.asarray(data)
        if data.ndim != 1:
            raise SchemaError("column data must be one-dimensional")
        if dtype == DataType.STRING and dictionary is None:
            raise SchemaError("string columns require a dictionary")
        if dtype != DataType.STRING and dictionary is not None:
            raise SchemaError("only string columns carry a dictionary")
        self._data = np.ascontiguousarray(data, dtype=dtype.numpy_dtype)
        self._data.flags.writeable = False
        self.dtype = dtype
        self.dictionary = dictionary

    # -- constructors ----------------------------------------------------- #

    @staticmethod
    def from_values(values) -> "Column":
        """Build a column from raw Python/numpy values, inferring the type."""
        dtype = infer_type(values)
        if dtype == DataType.STRING:
            dictionary = StringDictionary()
            codes = dictionary.encode([str(v) for v in values])
            return Column(codes, dtype, dictionary)
        return Column(np.asarray(values), dtype)

    # -- accessors --------------------------------------------------------- #

    def __len__(self) -> int:
        return int(self._data.size)

    @property
    def data(self) -> np.ndarray:
        """Physical array: values for numerics, codes for strings."""
        return self._data

    @property
    def nbytes(self) -> int:
        return int(self._data.nbytes)

    def values(self) -> np.ndarray:
        """Logical values (strings decoded)."""
        if self.dtype == DataType.STRING:
            assert self.dictionary is not None
            return self.dictionary.decode(self._data)
        return self._data

    def encode_literal(self, value) -> float:
        """Translate a literal into this column's physical domain."""
        if self.dtype == DataType.STRING:
            assert self.dictionary is not None
            if not self.dictionary.contains(str(value)):
                return -1  # matches nothing; codes are non-negative
            return self.dictionary.lookup(str(value))
        return value

    # -- transformations ---------------------------------------------------- #

    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by position."""
        return Column(self._data[indices], self.dtype, self.dictionary)

    def slice(self, start: int, stop: int) -> "Column":
        """Zero-copy contiguous row range (chunked storage's view unit)."""
        return Column(self._data[start:stop], self.dtype, self.dictionary)

    def filter(self, mask: np.ndarray) -> "Column":
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self._data.shape:
            raise StorageError("filter mask length mismatch")
        return Column(self._data[mask], self.dtype, self.dictionary)

    def concat(self, other: "Column") -> "Column":
        """Append another column of the same logical type."""
        if other.dtype != self.dtype:
            raise SchemaError(
                f"cannot concat {other.dtype.value} onto {self.dtype.value}"
            )
        if self.dtype != DataType.STRING:
            return Column(np.concatenate([self._data, other._data]), self.dtype)
        assert self.dictionary is not None and other.dictionary is not None
        merged = self.dictionary.merged_with(other.dictionary)
        remap = merged.remap_codes(other.dictionary)
        other_codes = remap[other._data] if len(other) else other._data
        return Column(
            np.concatenate([self._data, other_codes]), self.dtype, merged
        )

    def __repr__(self) -> str:
        return f"Column({self.dtype.value}, n={len(self)})"

"""CSV import/export for tables.

Minimal but correct: quoting via the standard :mod:`csv` module, type
inference per column (int -> float -> string), round-trip fidelity for the
dataset files the examples ship.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.common.errors import StorageError
from repro.storage.table import Table


def _parse_column(raw: list[str]):
    """Try int, then float, else keep strings."""
    try:
        return [int(v) for v in raw]
    except ValueError:
        pass
    try:
        return [float(v) for v in raw]
    except ValueError:
        return raw


def read_csv(path: str | Path, table_name: str | None = None) -> Table:
    """Load a CSV with a header row into a typed table."""
    path = Path(path)
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise StorageError(f"{path}: empty CSV") from None
        rows = list(reader)
    if not header:
        raise StorageError(f"{path}: missing header row")
    bad = [i for i, row in enumerate(rows) if len(row) != len(header)]
    if bad:
        raise StorageError(f"{path}: row {bad[0] + 2} has wrong arity")
    name = table_name if table_name is not None else path.stem
    columns = {
        column_name: _parse_column([row[i] for row in rows])
        for i, column_name in enumerate(header)
    }
    return Table.from_dict(name, columns)


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table (decoded values) as CSV with a header row."""
    path = Path(path)
    decoded = table.to_dict()
    names = table.column_names
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for row in zip(*(decoded[n] for n in names)):
            writer.writerow(row)

"""Dictionary encoding for string columns.

Join keys in the entity-matching workloads are strings (artist names,
copyright lines, ...).  The column store maps each distinct string to a
dense integer code; all engine operators — including the table->matrix
transformation — work on codes, which is what makes string joins
matrix-encodable.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import StorageError


class StringDictionary:
    """Bidirectional mapping between strings and dense int64 codes."""

    def __init__(self, values: list[str] | None = None):
        self._values: list[str] = []
        self._codes: dict[str, int] = {}
        if values:
            for value in values:
                self.encode_one(value)

    def __len__(self) -> int:
        return len(self._values)

    def encode_one(self, value: str) -> int:
        """Code for ``value``, inserting it if unseen."""
        value = str(value)
        code = self._codes.get(value)
        if code is None:
            code = len(self._values)
            self._codes[value] = code
            self._values.append(value)
        return code

    def encode(self, values) -> np.ndarray:
        """Encode a sequence of strings into an int64 code array."""
        return np.fromiter(
            (self.encode_one(v) for v in values), dtype=np.int64,
            count=len(values),
        )

    def lookup(self, value: str) -> int:
        """Code for an existing value; raises if absent."""
        code = self._codes.get(str(value))
        if code is None:
            raise StorageError(f"string {value!r} not in dictionary")
        return code

    def contains(self, value: str) -> bool:
        return str(value) in self._codes

    def decode_one(self, code: int) -> str:
        if not 0 <= code < len(self._values):
            raise StorageError(f"dictionary code {code} out of range")
        return self._values[code]

    def decode(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (codes.min() < 0 or codes.max() >= len(self._values)):
            raise StorageError("dictionary code out of range")
        values = np.array(self._values, dtype=object)
        return values[codes]

    def merged_with(self, other: "StringDictionary") -> "StringDictionary":
        """A new dictionary containing both value sets (self's codes first)."""
        merged = StringDictionary(list(self._values))
        for value in other._values:
            merged.encode_one(value)
        return merged

    def remap_codes(self, other: "StringDictionary") -> np.ndarray:
        """Array mapping ``other``'s codes into this dictionary's codes."""
        return np.fromiter(
            (self.encode_one(v) for v in other._values), dtype=np.int64,
            count=len(other._values),
        )

"""Sharded catalogs: row partitions of the fact table across N shards.

TQP ("Query Processing on Tensor Computation Runtimes") scales a tensor
query processor across devices by *data parallelism*: the fact table is
row-partitioned per device, dimension tables are replicated, every
device runs the same program on its partition, and aggregation grids
merge with an allreduce.  A :class:`ShardedCatalog` is that layout for
our engine: one shard-local :class:`~repro.storage.catalog.Catalog` per
shard, each registering

* its **fact partition** — a new :class:`~repro.storage.table.Table`
  built by ``take`` over the base fact (its own uid, its own lazily
  chunked views, so per-chunk min/max statistics and chunk pruning stay
  shard-local), and
* the **same dimension Table objects** as every other shard — broadcast
  is zero-copy sharing, which also guarantees identical string
  dictionaries (and therefore identical physical codes) on every shard.

Partitioning policies:

* ``hash``        — a splitmix64-style integer mix of the partition key
  column's physical values, mod N.  Deterministic across runs and
  independent of row order; co-locates equal keys.
* ``round_robin`` — row index mod N.  Key-oblivious, perfectly
  balanced.

Both policies preserve the *relative* row order of the base table
inside every shard (partition indices are ascending), so a
``cluster_by`` sort order survives sharding and shard-local chunk
pruning keeps paying.

:func:`shards_policy` mirrors :func:`repro.engine.parallel.workers_policy`:
an explicit override wins, then the ``REPRO_SHARDS`` environment knob,
then 1 (single shard).  CI pins ``REPRO_SHARDS`` to run the ordinary
suites through the distributed engine.

Both policies are *pure functions of the base table*: re-partitioning
the same catalog always yields bit-identical shard assignments.  The
distributed engine's fault tolerance leans on this (docs/operations.md)
— a failed or straggling shard can be retried or speculatively
re-executed from the shared catalog alone, with no partition state to
reconcile, and whole-query degradation to the unsharded base catalog is
always exact because the shards partition it losslessly.
"""

from __future__ import annotations

import os

import numpy as np

from repro.common.errors import ConfigError, SchemaError, UnknownTableError
from repro.storage.catalog import Catalog
from repro.storage.types import DataType

#: Hard ceiling on the shard count: the simulated cluster fans out on
#: one host, so beyond this the per-shard dispatch overhead dominates.
MAX_SHARDS = 64

PARTITION_POLICIES = ("hash", "round_robin")


def shards_policy(override: int | None = None) -> int:
    """The effective shard count: an explicit override, the
    ``REPRO_SHARDS`` environment knob, or 1 (single shard)."""
    if override is not None:
        if override <= 0:
            raise ConfigError(f"shard count must be positive, got {override}")
        return min(int(override), MAX_SHARDS)
    env = os.environ.get("REPRO_SHARDS")
    if env:
        try:
            return shards_policy(int(env))
        except ValueError:
            raise ConfigError(
                f"REPRO_SHARDS must be a positive integer, got {env!r}"
            ) from None
    return 1


def _hash_mix(data: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a column's physical values.

    Operates on the integer *bits* so float key columns shard
    deterministically too; equal values always land on equal shards.
    """
    if data.dtype.kind == "f":
        bits = np.ascontiguousarray(data, dtype=np.float64).view(np.uint64)
    else:
        bits = np.asarray(data).astype(np.uint64)
    with np.errstate(over="ignore"):
        z = (bits + np.uint64(0x9E3779B97F4A7C15))
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
    return z


class ShardedCatalog:
    """N shard-local catalogs over one base catalog.

    Built once (e.g. at server start) and shared read-only by every
    distributed engine: the shard tables are immutable and the base
    catalog stays usable as the single-node / merge-stage view.
    """

    def __init__(
        self,
        base: Catalog,
        fact: str,
        policy: str,
        key: str | None,
        n_shards: int,
        shard_catalogs: list[Catalog],
        assignment: np.ndarray,
    ):
        self.base = base
        self.fact = fact
        self.policy = policy
        self.key = key
        self.n_shards = n_shards
        self.shard_catalogs = shard_catalogs
        #: shard index per base-fact row (tests and rebalancing tools).
        self.assignment = assignment

    # -- construction ---------------------------------------------------- #

    @staticmethod
    def partition(
        catalog: Catalog,
        shards: int | None = None,
        fact: str | None = None,
        policy: str = "hash",
        key: str | None = None,
    ) -> "ShardedCatalog":
        """Row-partition ``fact`` (default: the largest table) across
        ``shards`` shard catalogs; all other tables replicate."""
        n = shards_policy(shards)
        if policy not in PARTITION_POLICIES:
            raise ConfigError(
                f"unknown partition policy {policy!r}; "
                f"available: {PARTITION_POLICIES}"
            )
        names = catalog.table_names()
        if not names:
            raise SchemaError("cannot shard an empty catalog")
        if fact is None:
            fact = max(names, key=lambda name: catalog.get(name).num_rows)
        elif not catalog.has(fact):
            raise UnknownTableError(fact)
        fact_table = catalog.get(fact)
        if policy == "hash":
            if key is None:
                key = fact_table.column_names[0]
            elif not fact_table.has_column(key):
                raise SchemaError(
                    f"partition key {key!r} not in fact table {fact!r}"
                )
            mixed = _hash_mix(fact_table.column(key).data)
            assignment = (mixed % np.uint64(max(n, 1))).astype(np.int64)
        else:
            key = None
            assignment = np.arange(fact_table.num_rows, dtype=np.int64) % n

        shard_catalogs: list[Catalog] = []
        for s in range(n):
            shard = Catalog()
            # Ascending indices: base row order is preserved inside the
            # shard, so chunk-level clustering survives partitioning.
            indices = np.flatnonzero(assignment == s)
            partitioned = fact_table.take(indices)
            if fact_table.sort_key is not None:
                partitioned.sort_key = fact_table.sort_key
            shard.register(partitioned)
            for name in names:
                if name != fact.lower():
                    # Dimension broadcast = zero-copy sharing of the base
                    # Table object (same uid, same dictionaries).
                    shard.register(catalog.get(name))
            shard_catalogs.append(shard)
        return ShardedCatalog(
            base=catalog, fact=fact.lower(), policy=policy, key=key,
            n_shards=n, shard_catalogs=shard_catalogs,
            assignment=assignment,
        )

    # -- accessors -------------------------------------------------------- #

    def shard(self, index: int) -> Catalog:
        return self.shard_catalogs[index]

    def shard_rows(self) -> list[int]:
        """Fact rows per shard (monitoring / balance tests)."""
        return [
            catalog.get(self.fact).num_rows for catalog in self.shard_catalogs
        ]

    def is_partitioned(self, binding_tables: list[str]) -> bool:
        """Whether a query touching these tables sees the partition.

        A query that never reads the fact table sees identical rows on
        every shard — running it per shard would *duplicate* results, so
        the distributed engine must route it to a single node.
        """
        return any(name.lower() == self.fact for name in binding_tables)

    def fact_dtype(self, column: str) -> DataType:
        return self.base.get(self.fact).dtype(column)

    def __repr__(self) -> str:
        rows = self.shard_rows()
        return (
            f"ShardedCatalog(fact={self.fact!r}, policy={self.policy!r}, "
            f"key={self.key!r}, shards={self.n_shards}, rows={rows})"
        )


__all__ = [
    "MAX_SHARDS",
    "PARTITION_POLICIES",
    "ShardedCatalog",
    "shards_policy",
]

"""Per-column statistics: the feasibility test's table metadata.

Section 4.2.1: "TCUDB adds metadata to each database table to contain
three values for each column, including (1) the minimum value, (2) the
maximum value, and (3) the number of distinct values."  The optimizer uses
these to pick precisions, bound result magnitudes (m1 * m2 * n), estimate
matrix dimensions/densities and join output cardinalities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.column import Column
from repro.storage.types import DataType
from repro.tensor.precision import ValueRange


@dataclass(frozen=True)
class ColumnStats:
    """min / max / #distinct for one column, plus the row count."""

    min_value: float
    max_value: float
    n_distinct: int
    n_rows: int

    @property
    def value_range(self) -> ValueRange:
        return ValueRange(self.min_value, self.max_value)

    @property
    def density_as_key(self) -> float:
        """Density of the indicator matrix keyed on this column: each row
        contributes one nonzero across ``n_distinct`` key columns."""
        return 1.0 / self.n_distinct if self.n_distinct else 0.0


def compute_stats(column: Column) -> ColumnStats:
    """Scan a column and produce its statistics triple."""
    data = column.data
    if data.size == 0:
        return ColumnStats(0.0, 0.0, 0, 0)
    if column.dtype == DataType.STRING:
        # Statistics for strings are over dictionary codes: join planning
        # only needs cardinalities and the code domain bounds.
        distinct = int(np.unique(data).size)
        return ColumnStats(
            float(data.min()), float(data.max()), distinct, int(data.size)
        )
    distinct = int(np.unique(data).size)
    return ColumnStats(
        float(data.min()), float(data.max()), distinct, int(data.size)
    )


def join_output_estimate(
    left: ColumnStats, right: ColumnStats
) -> float:
    """Estimated matching-pair count of an equi-join on two columns.

    Classic uniform-frequency estimate: |L| * |R| / max(d_L, d_R), with the
    key domain overlap assumed total (our generators ensure it).
    """
    d = max(left.n_distinct, right.n_distinct, 1)
    return left.n_rows * right.n_rows / d

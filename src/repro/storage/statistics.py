"""Per-column statistics: the feasibility test's table metadata.

Section 4.2.1: "TCUDB adds metadata to each database table to contain
three values for each column, including (1) the minimum value, (2) the
maximum value, and (3) the number of distinct values."  The optimizer uses
these to pick precisions, bound result magnitudes (m1 * m2 * n), estimate
matrix dimensions/densities and join output cardinalities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.column import Column
from repro.storage.types import DataType
from repro.tensor.precision import ValueRange


@dataclass(frozen=True)
class ColumnStats:
    """min / max / #distinct for one column, plus the row count."""

    min_value: float
    max_value: float
    n_distinct: int
    n_rows: int

    @property
    def value_range(self) -> ValueRange:
        return ValueRange(self.min_value, self.max_value)

    @property
    def density_as_key(self) -> float:
        """Density of the indicator matrix keyed on this column: each row
        contributes one nonzero across ``n_distinct`` key columns."""
        return 1.0 / self.n_distinct if self.n_distinct else 0.0


def compute_stats(column: Column) -> ColumnStats:
    """Scan a column and produce its statistics triple."""
    data = column.data
    if data.size == 0:
        return ColumnStats(0.0, 0.0, 0, 0)
    if column.dtype == DataType.STRING:
        # Statistics for strings are over dictionary codes: join planning
        # only needs cardinalities and the code domain bounds.
        distinct = int(np.unique(data).size)
        return ColumnStats(
            float(data.min()), float(data.max()), distinct, int(data.size)
        )
    distinct = int(np.unique(data).size)
    return ColumnStats(
        float(data.min()), float(data.max()), distinct, int(data.size)
    )


#: Selectivity assumed for predicates the statistics cannot price
#: (aggregate comparisons, column-vs-column, arithmetic arguments) —
#: the historical per-conjunct constant.
DEFAULT_SELECTIVITY = 0.5

#: Floor below which a conjunction estimate is not driven (one row may
#: always survive; downstream estimators dislike hard zeros).
MIN_SELECTIVITY = 1e-4


def _literal_value(expr) -> float | None:
    """Numeric value of a constant expression: a plain literal, or
    literal-only arithmetic (``0 - 5`` from unary minus) const-evaluated
    through :func:`~repro.sql.ast_nodes.fold_constants` — belt and
    braces for predicates built without the binder's folding pass."""
    from repro.sql.ast_nodes import BinaryOp, Literal, fold_constants

    if isinstance(expr, BinaryOp):
        expr = fold_constants(expr)
    if isinstance(expr, Literal) and not isinstance(expr.value, str):
        return float(expr.value)
    return None


def _range_fraction(stats: ColumnStats, op: str, value: float) -> float:
    """Fraction of a column's [min, max] span satisfying ``col op value``
    under the classic uniform-distribution assumption."""
    lo, hi = stats.min_value, stats.max_value
    if hi <= lo:
        return 1.0 if _point_satisfies(lo, op, value) else 0.0
    fraction_below = (value - lo) / (hi - lo)
    if op in ("<", "<="):
        s = fraction_below
    else:  # >, >=
        s = 1.0 - fraction_below
    return float(min(max(s, 0.0), 1.0))


def _point_satisfies(point: float, op: str, value: float) -> bool:
    return {
        "<": point < value, "<=": point <= value,
        ">": point > value, ">=": point >= value,
    }[op]


def predicate_selectivity(predicate, stats_of) -> float:
    """Estimated selectivity of one predicate from column statistics.

    ``stats_of(expr)`` returns the :class:`ColumnStats` of a plain
    column-reference expression, or ``None`` when the expression is not a
    column (aggregates, arithmetic) — those conjuncts fall back to the
    historical :data:`DEFAULT_SELECTIVITY`.  Handles the full predicate
    algebra: comparisons, BETWEEN, IN lists, NOT, AND / OR trees.
    """
    from repro.sql.ast_nodes import (
        Between,
        Comparison,
        Conjunction,
        Disjunction,
        InList,
        Negation,
    )

    if isinstance(predicate, Comparison):
        left_stats = stats_of(predicate.left)
        right_stats = stats_of(predicate.right)
        stats, literal = (
            (left_stats, _literal_value(predicate.right))
            if left_stats is not None
            else (right_stats, _literal_value(predicate.left))
        )
        if stats is None or stats.n_rows == 0:
            # Zero-row stats are fabricated (min=max=0.0 over no rows);
            # never drive an estimate from them.
            return DEFAULT_SELECTIVITY
        if predicate.op == "=":
            return 1.0 / max(stats.n_distinct, 1)
        if predicate.op in ("<>", "!="):
            return 1.0 - 1.0 / max(stats.n_distinct, 1)
        if literal is None:  # string / column-vs-column range comparison
            return DEFAULT_SELECTIVITY
        op = predicate.op
        if left_stats is None:  # literal op column: mirror the operator
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
        return _range_fraction(stats, op, literal)
    if isinstance(predicate, Between):
        stats = stats_of(predicate.expr)
        low = _literal_value(predicate.low)
        high = _literal_value(predicate.high)
        if stats is None or stats.n_rows == 0 or low is None or high is None:
            return DEFAULT_SELECTIVITY
        below = _range_fraction(stats, "<=", high)
        above = _range_fraction(stats, ">=", low)
        return float(min(max(below + above - 1.0, 0.0), 1.0))
    if isinstance(predicate, InList):
        stats = stats_of(predicate.expr)
        if stats is None or stats.n_rows == 0:
            return DEFAULT_SELECTIVITY
        return float(min(len(predicate.values) / max(stats.n_distinct, 1),
                         1.0))
    if isinstance(predicate, Negation):
        return 1.0 - predicate_selectivity(predicate.inner, stats_of)
    if isinstance(predicate, Conjunction):
        s = 1.0
        for part in predicate.parts:
            s *= predicate_selectivity(part, stats_of)
        return s
    if isinstance(predicate, Disjunction):
        miss = 1.0
        for arm in predicate.arms:
            miss *= 1.0 - predicate_selectivity(arm, stats_of)
        return 1.0 - miss
    return DEFAULT_SELECTIVITY


def _bound_literal(expr, ref, encode) -> float | None:
    """Literal value translated into the compared column's physical
    domain (dictionary codes for strings) when an encoder is supplied.
    Literal-only arithmetic const-evaluates first (see
    :func:`_literal_value`)."""
    from repro.sql.ast_nodes import BinaryOp, Literal, fold_constants

    if isinstance(expr, BinaryOp):
        expr = fold_constants(expr)
    if not isinstance(expr, Literal):
        return None
    if isinstance(expr.value, str):
        if encode is None or ref is None:
            return None
        return float(encode(ref, expr.value))
    return float(expr.value)


def predicate_can_match(predicate, stats_of, encode=None) -> bool:
    """Chunk-level stat pruning: can any row with these min/max
    statistics satisfy the predicate?

    Returns ``False`` only when the statistics *prove* the predicate
    empty over the chunk — the conservative direction, so pruning never
    drops a qualifying row.  ``stats_of(expr)`` resolves a plain
    column-reference expression to the chunk's :class:`ColumnStats`
    (``None`` for anything else); ``encode(ref, value)`` translates
    string literals through the column's dictionary.
    """
    from repro.sql.ast_nodes import (
        Between,
        Comparison,
        Conjunction,
        Disjunction,
        InList,
        Negation,
    )

    if isinstance(predicate, Comparison):
        left_stats = stats_of(predicate.left)
        right_stats = stats_of(predicate.right)
        if left_stats is not None and right_stats is None:
            stats = left_stats
            ref = predicate.left
            value = _bound_literal(predicate.right, ref, encode)
            op = predicate.op
        elif right_stats is not None and left_stats is None:
            stats = right_stats
            ref = predicate.right
            value = _bound_literal(predicate.left, ref, encode)
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(
                predicate.op, predicate.op
            )
        else:  # column-vs-column or literal-vs-literal: no pruning
            return True
        if stats.n_rows == 0:
            # A zero-row chunk satisfies no predicate; its min/max are
            # fabricated (0.0/0.0), so prune unconditionally.
            return False
        if value is None:
            return True
        lo, hi = stats.min_value, stats.max_value
        if op == "=":
            return lo <= value <= hi
        if op == "<":
            return lo < value
        if op == "<=":
            return lo <= value
        if op == ">":
            return hi > value
        if op == ">=":
            return hi >= value
        return True  # <> / != prunes nothing from min/max alone
    if isinstance(predicate, Between):
        stats = stats_of(predicate.expr)
        if stats is None:
            return True
        if stats.n_rows == 0:
            return False
        low = _bound_literal(predicate.low, predicate.expr, encode)
        high = _bound_literal(predicate.high, predicate.expr, encode)
        if low is not None and stats.max_value < low:
            return False
        if high is not None and stats.min_value > high:
            return False
        return True
    if isinstance(predicate, InList):
        stats = stats_of(predicate.expr)
        if stats is None:
            return True
        if stats.n_rows == 0:
            return False
        values = [
            _bound_literal(literal, predicate.expr, encode)
            for literal in predicate.values
        ]
        if any(v is None for v in values):
            return True
        return any(
            stats.min_value <= v <= stats.max_value for v in values
        )
    if isinstance(predicate, Negation):
        # Proving the complement empty needs an "always true" analysis;
        # min/max statistics cannot provide it conservatively.
        return True
    if isinstance(predicate, Conjunction):
        return all(
            predicate_can_match(part, stats_of, encode)
            for part in predicate.parts
        )
    if isinstance(predicate, Disjunction):
        return any(
            predicate_can_match(arm, stats_of, encode)
            for arm in predicate.arms
        )
    return True


def conjunction_can_match(predicates, stats_of, encode=None) -> bool:
    """AND of :func:`predicate_can_match` over a conjunct list."""
    return all(
        predicate_can_match(predicate, stats_of, encode)
        for predicate in predicates
    )


def conjunction_selectivity(predicates, stats_of) -> float:
    """Combined selectivity of a conjunct list (independence assumed),
    floored at :data:`MIN_SELECTIVITY` so estimates never hard-zero."""
    s = 1.0
    for predicate in predicates:
        s *= predicate_selectivity(predicate, stats_of)
    return max(float(s), MIN_SELECTIVITY)


def bound_stats_lookup(bound):
    """A ``stats_of`` callback over a bound query: resolves plain column
    references to their table statistics, ``None`` for anything else."""
    from repro.sql.ast_nodes import ColumnRef

    def stats_of(expr):
        if not isinstance(expr, ColumnRef):
            return None
        try:
            return bound.column_stats(bound.resolve(expr))
        except Exception:
            return None

    return stats_of


def join_output_estimate(
    left: ColumnStats, right: ColumnStats
) -> float:
    """Estimated matching-pair count of an equi-join on two columns.

    Classic uniform-frequency estimate: |L| * |R| / max(d_L, d_R), with the
    key domain overlap assumed total (our generators ensure it).
    """
    d = max(left.n_distinct, right.n_distinct, 1)
    return left.n_rows * right.n_rows / d

"""In-memory columnar tables.

A :class:`Table` is an ordered mapping of column names to
:class:`~repro.storage.column.Column` objects of equal length, with lazily
computed per-column statistics.  All relational operations return new
tables; columns are shared where possible (copy-on-write semantics come
free from column immutability).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Mapping

import numpy as np

from repro.common.errors import SchemaError, UnknownColumnError
from repro.storage.column import Column
from repro.storage.statistics import ColumnStats, compute_stats
from repro.storage.types import DataType


class Table:
    """A named collection of equal-length columns."""

    #: Process-wide monotonic identity counter.  ``uid`` identifies a
    #: *table version*: re-registering a table with new contents means a
    #: new Table object and thus a new uid, which is what makes
    #: ``Catalog.fingerprint`` (and the program cache keyed on it)
    #: observe data changes.  A plain ``id()`` would not work — CPython
    #: recycles addresses, so a dropped table could alias a new one.
    _uid_counter = itertools.count(1)

    def __init__(self, name: str, columns: Mapping[str, Column]):
        if not columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        lengths = {len(col) for col in columns.values()}
        if len(lengths) != 1:
            raise SchemaError(
                f"table {name!r} has ragged columns: lengths {sorted(lengths)}"
            )
        self.name = name
        self.uid = next(Table._uid_counter)
        self._columns: dict[str, Column] = dict(columns)
        self._stats: dict[str, ColumnStats] = {}
        self._chunked: dict[int, object] = {}  # chunk_rows -> ChunkedTable
        #: Column this table is physically sorted by (``cluster_by``), or
        #: None.  Chunk statistics use it as a cheap-stats fast path and
        #: pruning on a clustered column skips disjoint chunk ranges.
        self.sort_key: str | None = None

    # -- constructors ------------------------------------------------------ #

    @staticmethod
    def from_dict(name: str, data: Mapping[str, Iterable]) -> "Table":
        """Build a table from {column name: values}, inferring types."""
        return Table(
            name, {col: Column.from_values(list(vals)) for col, vals in data.items()}
        )

    # -- schema -------------------------------------------------------------- #

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    @property
    def num_rows(self) -> int:
        return len(next(iter(self._columns.values())))

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    @property
    def nbytes(self) -> int:
        return sum(col.nbytes for col in self._columns.values())

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def column(self, name: str) -> Column:
        column = self._columns.get(name)
        if column is None:
            raise UnknownColumnError(name, f"table {self.name!r}")
        return column

    def dtype(self, name: str) -> DataType:
        return self.column(name).dtype

    def stats(self, name: str) -> ColumnStats:
        """Statistics triple for a column (computed once, cached)."""
        if name not in self._stats:
            self._stats[name] = compute_stats(self.column(name))
        return self._stats[name]

    def chunked(self, chunk_rows: int | None = None):
        """This table partitioned into fixed-size row chunks.

        Chunks are zero-copy views, so the partitioning is cached per
        chunk size (tables are immutable); per-chunk statistics build
        lazily inside the returned
        :class:`~repro.storage.chunk.ChunkedTable`.
        """
        from repro.storage.chunk import ChunkedTable, chunk_rows_policy

        rows = chunk_rows_policy(chunk_rows)
        if rows not in self._chunked:
            self._chunked[rows] = ChunkedTable(self, rows)
        return self._chunked[rows]

    # -- relational operations ------------------------------------------------ #

    def project(self, names: list[str]) -> "Table":
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise UnknownColumnError(missing[0], f"table {self.name!r}")
        return Table(self.name, {n: self._columns[n] for n in names})

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        columns = {
            mapping.get(name, name): column
            for name, column in self._columns.items()
        }
        if len(columns) != len(self._columns):
            raise SchemaError("rename would collapse columns")
        return Table(self.name, columns)

    def with_name(self, name: str) -> "Table":
        return Table(name, self._columns)

    def filter(self, mask: np.ndarray) -> "Table":
        return Table(
            self.name,
            {n: col.filter(mask) for n, col in self._columns.items()},
        )

    def take(self, indices: np.ndarray) -> "Table":
        return Table(
            self.name,
            {n: col.take(indices) for n, col in self._columns.items()},
        )

    def head(self, n: int = 10) -> "Table":
        return self.take(np.arange(min(n, self.num_rows)))

    def with_column(self, name: str, column: Column) -> "Table":
        if len(column) != self.num_rows:
            raise SchemaError(
                f"column {name!r} length {len(column)} != {self.num_rows} rows"
            )
        columns = dict(self._columns)
        columns[name] = column
        return Table(self.name, columns)

    def sort_by(self, name: str, descending: bool = False) -> "Table":
        order = np.argsort(self.column(name).data, kind="stable")
        if descending:
            order = order[::-1]
        return self.take(order)

    def cluster_by(self, name: str) -> "Table":
        """This table physically sorted by ``name``, marked clustered.

        The returned table carries ``sort_key = name``: chunk statistics
        for that column come from the chunk's first/last element instead
        of a scan, and min/max pruning on the clustered column skips
        whole chunks because chunk value ranges are disjoint.
        """
        clustered = self.sort_by(name)
        clustered.sort_key = name
        return clustered

    # -- interop ---------------------------------------------------------------- #

    def to_dict(self) -> dict[str, np.ndarray]:
        """Logical values per column (strings decoded)."""
        return {n: col.values() for n, col in self._columns.items()}

    def rows(self) -> list[tuple]:
        """Materialize rows as tuples (small tables / tests only)."""
        decoded = [col.values() for col in self._columns.values()]
        return list(zip(*decoded)) if self.num_rows else []

    def pretty(self, limit: int = 10) -> str:
        """Readable fixed-width rendering of the first ``limit`` rows."""
        names = self.column_names
        shown = self.head(limit).rows()
        widths = [
            max(len(str(name)), *(len(str(r[i])) for r in shown)) if shown
            else len(str(name))
            for i, name in enumerate(names)
        ]
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        rule = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(str(v).ljust(w) for v, w in zip(row, widths))
            for row in shown
        ]
        footer = [] if self.num_rows <= limit else [f"... ({self.num_rows} rows)"]
        return "\n".join([header, rule, *body, *footer])

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, rows={self.num_rows}, "
            f"columns={self.column_names})"
        )

"""Logical column types of the storage layer.

TCUDB is a column store (Section 2.2): every column is a contiguous typed
array, strings are dictionary-encoded into dense integer codes, and each
column carries the metadata triple the feasibility test needs — minimum,
maximum, number of distinct values (Section 4.2.1).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.common.errors import SchemaError


class DataType(enum.Enum):
    """Logical types supported by the engine."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"

    @property
    def numpy_dtype(self) -> np.dtype:
        """Physical dtype of the column's value/code array."""
        if self == DataType.FLOAT64:
            return np.dtype(np.float64)
        # STRING columns store dictionary codes as int64.
        return np.dtype(np.int64)

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT64, DataType.FLOAT64)

    @property
    def bytes_per_value(self) -> int:
        return 8


def infer_type(values) -> DataType:
    """Infer a logical type from a Python/numpy sequence."""
    array = np.asarray(values)
    if array.dtype.kind in ("U", "S", "O"):
        return DataType.STRING
    if array.dtype.kind == "f":
        return DataType.FLOAT64
    if array.dtype.kind in ("i", "u", "b"):
        return DataType.INT64
    raise SchemaError(f"cannot infer column type from dtype {array.dtype}")


def common_numeric_type(left: DataType, right: DataType) -> DataType:
    """Result type of an arithmetic expression over two columns."""
    if not (left.is_numeric and right.is_numeric):
        raise SchemaError(
            f"arithmetic requires numeric types, got {left.value}/{right.value}"
        )
    if DataType.FLOAT64 in (left, right):
        return DataType.FLOAT64
    return DataType.INT64

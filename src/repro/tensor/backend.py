"""Pluggable tensor backends: the kernel-primitive layer of the driver.

TQP ("Query Processing on Tensor Computation Runtimes", He et al., VLDB
2022) shows the whole relational operator set runs on pure tensor APIs,
and the TCU computational model of Chowdhury, Silvestri & Vella (2019)
motivates treating matmul/gather/reduction as the swappable primitive
layer.  Our operator catalog is already exactly that granularity, so a
:class:`TensorBackend` exposes the primitives the driver actually uses —
``matmul`` (2-D and 3-D stacked, with the fp16 scaling semantics of the
simulated unit), ``gather``, ``bincount``/segmented-sum, ``nonzero``,
dense-from-COO construction and the masked-epilogue apply — with three
implementations:

* :class:`SimBackend` — the NumPy tensor-core simulator, extracted
  verbatim: bit-identical to the historical driver and the reference
  oracle every other backend is differentially tested against.
  Simulated cycles are charged by the cost model, never by a backend, so
  backend choice cannot move the perf-regression gate.
* :class:`FastBackend` — an optimized NumPy/BLAS execution backend that
  is measurably faster on *host* wall-clock: float32 contiguous operand
  fills feeding sgemm directly, preallocated grid-accumulation buffers
  reused across key-domain chunks (``matmul_into``), and single-pass
  bincount epilogues.  fp16-strategy products skip the simulator's
  cast-to-binary16 rounding (float32 inputs, fp32 accumulation), which
  keeps results within the documented ``rel=2e-3`` equivalence envelope;
  integer-precision products stay exact.
* :class:`TorchBackend` — the same interface on PyTorch tensors
  (import-guarded; absent torch makes selection a
  :class:`~repro.common.errors.ConfigError` and tests auto-skip),
  proving the TQP claim that the operator set runs on a real tensor
  computation runtime.

Selection mirrors ``workers_policy``/``shards_policy``: an explicit
``TCUDBOptions.backend`` wins, then the ``REPRO_BACKEND`` environment
knob, then ``"sim"``.  Unknown names raise :class:`ConfigError`.

Equivalence contract (differentially tested in ``tests/test_backends.py``):

* integer-precision products and indicator/count grids are **exact**
  across backends;
* fp16-strategy value grids agree with the simulator within relative
  ``2e-3`` (the simulator's own fp16 rounding is ~1e-3; the fast/torch
  float32 paths sit well inside it);
* ``gather``/``bincount``/``nonzero``/``dense_from_coo``/``apply_mask``
  are bit-identical everywhere (same integer/boolean arithmetic).
"""

from __future__ import annotations

import os
import threading

import numpy as np

from repro.common.errors import ConfigError
from repro.tensor.coo import dense_from_coo as _sim_dense_from_coo
from repro.tensor.precision import Precision


class TensorBackend:
    """The kernel primitives a TensorProgram execution actually needs.

    ``device`` is the simulated :class:`~repro.hardware.gpu.GPUDevice`;
    only :class:`SimBackend` uses its numeric emulation — execution
    backends implement the same contract with their own kernels.  All
    methods accept/return NumPy arrays at the interface boundary so the
    driver stays backend-agnostic.
    """

    #: registry key; also what the ProgramCache options key records.
    name = "abstract"
    #: dtype of dense operand fills (execution backends may fill a
    #: narrower type when their matmul consumes it directly).
    fill_dtype = np.float64

    # -- products ------------------------------------------------------- #

    def matmul(self, device, a: np.ndarray, b: np.ndarray,
               precision: Precision) -> np.ndarray:
        """``a @ b`` (2-D, or 3-D stacked batch) at a TCU precision.

        Returns float64 for fp16-strategy products and int64 for integer
        precisions, matching the simulated unit's output contract.
        """
        raise NotImplementedError

    def matmul_into(self, acc: np.ndarray, device, a: np.ndarray,
                    b: np.ndarray, precision: Precision) -> np.ndarray:
        """Accumulate ``a @ b`` into ``acc`` (the grid-accumulation hot
        loop).  Backends may reuse scratch buffers across calls; the
        default materializes the product and adds."""
        acc += self.matmul(device, a, b, precision)
        return acc

    # -- movement / reduction primitives -------------------------------- #

    def gather(self, array: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """``array[indices]`` — the fold/extraction gather."""
        return np.asarray(array)[indices]

    def bincount(self, codes: np.ndarray, weights: np.ndarray | None = None,
                 minlength: int = 0) -> np.ndarray:
        """Segmented sum by integer code (epilogues, multiplicities)."""
        return np.bincount(codes, weights=weights, minlength=minlength)

    def nonzero(self, matrix: np.ndarray):
        """Coordinates of non-zero (or True) cells — pair/group harvest."""
        return np.nonzero(matrix)

    def dense_from_coo(self, rows: np.ndarray, cols: np.ndarray,
                       vals: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
        """Dense operand from COO triples, duplicates summed."""
        raise NotImplementedError

    def apply_mask(self, arrays: list[np.ndarray],
                   mask: np.ndarray) -> list[np.ndarray]:
        """Masked-epilogue apply: filter each array by a boolean mask."""
        return [np.asarray(a)[mask] for a in arrays]


class SimBackend(TensorBackend):
    """The simulated tensor cores — the reference oracle.

    Delegates every product to
    :meth:`repro.hardware.tcu.TensorCoreUnit.matmul` (bit-accurate
    fp16/int8/int4 emulation) and every fill to the historical
    float64 :func:`repro.tensor.coo.dense_from_coo`, so the default
    execution path is byte-for-byte the pre-backend driver.
    """

    name = "sim"
    fill_dtype = np.float64

    def matmul(self, device, a, b, precision):
        return device.tcu.matmul(a, b, precision)

    def dense_from_coo(self, rows, cols, vals, shape):
        return _sim_dense_from_coo(rows, cols, vals, shape)


class FastBackend(TensorBackend):
    """Optimized NumPy/BLAS execution backend.

    fp16-strategy products run as one contiguous float32 sgemm (fp32
    accumulation, no binary16 input rounding, no scale/finite-check
    passes): numerically *tighter* than the simulator and several array
    passes cheaper.  Integer precisions run as one float64 dgemm — exact
    for every product the int32-accumulator feasibility gate admits
    (|result| < 2**31 « 2**53).  Operand fills are float32 and
    C-contiguous so sgemm consumes them without conversion; the
    grid-accumulation loop reuses one thread-local scratch buffer per
    output shape instead of allocating a partial per chunk.
    """

    name = "fast"
    fill_dtype = np.float32

    def __init__(self):
        self._scratch = threading.local()

    @staticmethod
    def _as_f32(operand: np.ndarray) -> np.ndarray:
        operand = np.asarray(operand)
        if operand.dtype == np.float32 and operand.flags.c_contiguous:
            return operand
        return np.ascontiguousarray(operand, dtype=np.float32)

    def matmul(self, device, a, b, precision):
        if not precision.is_integer:
            product = np.matmul(self._as_f32(a), self._as_f32(b))
            return product.astype(np.float64)
        # int8/int4: float64 matmul is exact below 2**53, far beyond the
        # int32 accumulator bound the upstream feasibility test enforces.
        product = np.matmul(
            np.rint(np.asarray(a, dtype=np.float64)),
            np.rint(np.asarray(b, dtype=np.float64)),
        )
        return np.rint(product).astype(np.int64)

    def matmul_into(self, acc, device, a, b, precision):
        if precision.is_integer:
            acc += self.matmul(device, a, b, precision)
            return acc
        a32, b32 = self._as_f32(a), self._as_f32(b)
        out_shape = tuple(acc.shape)
        buffers = getattr(self._scratch, "buffers", None)
        if buffers is None:
            buffers = self._scratch.buffers = {}
        out = buffers.get(out_shape)
        if out is None:
            out = buffers[out_shape] = np.empty(out_shape, dtype=np.float32)
        np.matmul(a32, b32, out=out)
        acc += out
        return acc

    def gather(self, array, indices):
        return np.take(np.asarray(array), indices, axis=0)

    def dense_from_coo(self, rows, cols, vals, shape):
        n_rows, n_cols = shape
        if len(rows) == 0:
            return np.zeros(shape, dtype=np.float32)
        flat = np.asarray(rows, dtype=np.int64) * n_cols + np.asarray(
            cols, dtype=np.int64
        )
        dense = np.bincount(
            flat, weights=np.asarray(vals, dtype=np.float64),
            minlength=n_rows * n_cols,
        )
        return np.ascontiguousarray(
            dense.reshape(n_rows, n_cols), dtype=np.float32
        )


class TorchBackend(TensorBackend):
    """The same primitives on PyTorch tensors (a real TCR API).

    Import-guarded: constructing it without torch installed raises
    :class:`ConfigError`, and the selection policy reports torch as
    unavailable so tests auto-skip.  Products run in torch float32 (fp32
    accumulation — the same equivalence envelope as the fast backend)
    or float64 for integer precisions (exact).
    """

    name = "torch"
    fill_dtype = np.float64

    def __init__(self):
        try:
            import torch
        except ImportError as error:  # pragma: no cover - env-dependent
            raise ConfigError(
                "backend 'torch' requested but PyTorch is not installed "
                "(pip install torch, or pick backend 'sim'/'fast')"
            ) from error
        self._torch = torch

    @staticmethod
    def available() -> bool:
        try:
            import torch  # noqa: F401
        except ImportError:
            return False
        return True

    def matmul(self, device, a, b, precision):
        torch = self._torch
        if not precision.is_integer:
            product = torch.matmul(
                torch.as_tensor(np.ascontiguousarray(a, dtype=np.float32)),
                torch.as_tensor(np.ascontiguousarray(b, dtype=np.float32)),
            )
            return product.numpy().astype(np.float64)
        product = torch.matmul(
            torch.round(torch.as_tensor(
                np.ascontiguousarray(a, dtype=np.float64))),
            torch.round(torch.as_tensor(
                np.ascontiguousarray(b, dtype=np.float64))),
        )
        return np.rint(product.numpy()).astype(np.int64)

    def gather(self, array, indices):
        torch = self._torch
        source = torch.as_tensor(np.ascontiguousarray(array))
        index = torch.as_tensor(np.asarray(indices, dtype=np.int64))
        return source.index_select(0, index).numpy()

    def bincount(self, codes, weights=None, minlength=0):
        torch = self._torch
        codes_t = torch.as_tensor(np.asarray(codes, dtype=np.int64))
        weights_t = (
            torch.as_tensor(np.asarray(weights, dtype=np.float64))
            if weights is not None else None
        )
        return torch.bincount(codes_t, weights=weights_t,
                              minlength=int(minlength)).numpy()

    def nonzero(self, matrix):
        torch = self._torch
        coords = torch.nonzero(torch.as_tensor(np.ascontiguousarray(matrix)),
                               as_tuple=True)
        return tuple(c.numpy() for c in coords)

    def dense_from_coo(self, rows, cols, vals, shape):
        torch = self._torch
        n_rows, n_cols = shape
        dense = torch.zeros(n_rows * n_cols, dtype=torch.float64)
        if len(rows):
            flat = torch.as_tensor(
                np.asarray(rows, dtype=np.int64) * n_cols
                + np.asarray(cols, dtype=np.int64)
            )
            dense.index_add_(
                0, flat,
                torch.as_tensor(np.asarray(vals, dtype=np.float64)),
            )
        return dense.reshape(n_rows, n_cols).numpy()


#: Backend registry — the names ``backend_policy`` accepts.
BACKENDS: dict[str, type[TensorBackend]] = {
    "sim": SimBackend,
    "fast": FastBackend,
    "torch": TorchBackend,
}

DEFAULT_BACKEND = "sim"


def backend_policy(override: str | None = None) -> str:
    """The effective backend name: an explicit override, the
    ``REPRO_BACKEND`` environment knob, or ``"sim"``.

    Mirrors :func:`repro.engine.parallel.workers_policy`: unknown names
    raise :class:`ConfigError` (a typo must not silently run the
    default backend).
    """
    if override is not None:
        name = str(override).strip().lower()
        if name not in BACKENDS:
            raise ConfigError(
                f"unknown tensor backend {override!r}; "
                f"available: {sorted(BACKENDS)}"
            )
        return name
    env = os.environ.get("REPRO_BACKEND")
    if env:
        return backend_policy(env)
    return DEFAULT_BACKEND


def get_backend(name: str | None = None) -> TensorBackend:
    """Resolve and instantiate the active backend.

    ``name=None`` defers to :func:`backend_policy` (env, then default).
    Each driver owns its instance — fast-backend scratch buffers are
    thread-local per instance, never shared across engines.
    """
    return BACKENDS[backend_policy(name)]()


__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "FastBackend",
    "SimBackend",
    "TensorBackend",
    "TorchBackend",
    "backend_policy",
    "get_backend",
]

"""Coordinate-format sparse matrices.

COO is the natural output of the table->matrix transformation: each
qualifying record contributes one (row, col, value) triple.  Duplicate
coordinates sum, which is exactly the multiply-accumulate semantics the
join/aggregation encodings of Section 3 rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ReproError


def dense_from_coo(rows: np.ndarray, cols: np.ndarray, vals: np.ndarray,
                   shape: tuple[int, int]) -> np.ndarray:
    """Dense float64 matrix from COO triples, duplicates summed.

    One ``np.bincount`` over linearized coordinates — the scatter
    (``np.add.at``) construction this replaces is an order of magnitude
    slower on large triple lists because it cannot vectorize the
    accumulation.
    """
    n_rows, n_cols = shape
    if len(rows) == 0:
        return np.zeros(shape, dtype=np.float64)
    flat = np.asarray(rows, dtype=np.int64) * n_cols + np.asarray(
        cols, dtype=np.int64
    )
    return np.bincount(
        flat, weights=np.asarray(vals, dtype=np.float64),
        minlength=n_rows * n_cols,
    ).reshape(n_rows, n_cols)


@dataclass(frozen=True)
class COOMatrix:
    """Immutable (rows, cols, vals) triple list with an explicit shape."""

    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self):
        rows = np.asarray(self.rows, dtype=np.int64)
        cols = np.asarray(self.cols, dtype=np.int64)
        vals = np.asarray(self.vals, dtype=np.float64)
        if not (rows.shape == cols.shape == vals.shape) or rows.ndim != 1:
            raise ReproError("COO arrays must be 1-D and equal length")
        n_rows, n_cols = self.shape
        if rows.size:
            if rows.min() < 0 or rows.max() >= n_rows:
                raise ReproError("COO row index out of bounds")
            if cols.min() < 0 or cols.max() >= n_cols:
                raise ReproError("COO col index out of bounds")
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "vals", vals)

    @property
    def nnz(self) -> int:
        """Stored triples (duplicates counted separately)."""
        return int(self.rows.size)

    @property
    def density(self) -> float:
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def sum_duplicates(self) -> "COOMatrix":
        """Collapse duplicate coordinates by summing their values."""
        if self.nnz == 0:
            return self
        keys = self.rows * self.shape[1] + self.cols
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        unique_keys, start = np.unique(keys_sorted, return_index=True)
        sums = np.add.reduceat(self.vals[order], start)
        return COOMatrix(
            rows=unique_keys // self.shape[1],
            cols=unique_keys % self.shape[1],
            vals=sums,
            shape=self.shape,
        )

    def to_dense(self) -> np.ndarray:
        return dense_from_coo(self.rows, self.cols, self.vals, self.shape)

    def transpose(self) -> "COOMatrix":
        return COOMatrix(
            rows=self.cols, cols=self.rows, vals=self.vals,
            shape=(self.shape[1], self.shape[0]),
        )

    @staticmethod
    def from_dense(dense: np.ndarray) -> "COOMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        rows, cols = np.nonzero(dense)
        return COOMatrix(
            rows=rows, cols=cols, vals=dense[rows, cols],
            shape=(dense.shape[0], dense.shape[1]),
        )

"""Compressed Sparse Row matrices, built from scratch.

TCU-SpMM's first step (Section 4.2.4) transforms an input into CSR before
tiling it.  This implementation keeps the canonical (indptr, indices,
data) layout, supports conversion to/from COO/dense, transposition,
sparse x dense products and a Gustavson-style sparse x sparse product used
as the CUDA-core reference algorithm (what YDB/MAGiQ effectively run).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ReproError
from repro.tensor.coo import COOMatrix


class CSRMatrix:
    """Compressed sparse row matrix over float64 values."""

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 data: np.ndarray, shape: tuple[int, int]):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.indptr.ndim != 1 or self.indptr.size != self.shape[0] + 1:
            raise ReproError("indptr must have n_rows + 1 entries")
        if self.indices.shape != self.data.shape or self.indices.ndim != 1:
            raise ReproError("indices/data must be 1-D and equal length")
        if int(self.indptr[-1]) != self.indices.size:
            raise ReproError("indptr[-1] must equal nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ReproError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[1]
        ):
            raise ReproError("column index out of bounds")

    # -- constructors ----------------------------------------------------- #

    @staticmethod
    def from_coo(coo: COOMatrix) -> "CSRMatrix":
        """Build CSR from COO, summing duplicate coordinates."""
        coo = coo.sum_duplicates()
        order = np.lexsort((coo.cols, coo.rows))
        rows = coo.rows[order]
        counts = np.bincount(rows, minlength=coo.shape[0])
        indptr = np.concatenate(([0], np.cumsum(counts)))
        return CSRMatrix(indptr, coo.cols[order], coo.vals[order], coo.shape)

    @staticmethod
    def from_dense(dense: np.ndarray) -> "CSRMatrix":
        return CSRMatrix.from_coo(COOMatrix.from_dense(dense))

    # -- properties ------------------------------------------------------- #

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def density(self) -> float:
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def row_nnz(self) -> np.ndarray:
        return np.diff(self.indptr)

    # -- conversions ------------------------------------------------------ #

    def to_coo(self) -> COOMatrix:
        rows = np.repeat(np.arange(self.shape[0]), self.row_nnz())
        return COOMatrix(rows, self.indices.copy(), self.data.copy(), self.shape)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(np.arange(self.shape[0]), self.row_nnz())
        dense[rows, self.indices] = self.data
        return dense

    def transpose(self) -> "CSRMatrix":
        return CSRMatrix.from_coo(self.to_coo().transpose())

    # -- arithmetic -------------------------------------------------------- #

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix x dense vector."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ReproError(f"vector shape {x.shape} != ({self.shape[1]},)")
        products = self.data * x[self.indices]
        out = np.zeros(self.shape[0], dtype=np.float64)
        rows = np.repeat(np.arange(self.shape[0]), self.row_nnz())
        np.add.at(out, rows, products)
        return out

    def matmul_dense(self, other: np.ndarray) -> np.ndarray:
        """Sparse x dense matrix product."""
        other = np.asarray(other, dtype=np.float64)
        if other.ndim != 2 or other.shape[0] != self.shape[1]:
            raise ReproError(
                f"incompatible shapes {self.shape} @ {other.shape}"
            )
        out = np.zeros((self.shape[0], other.shape[1]), dtype=np.float64)
        rows = np.repeat(np.arange(self.shape[0]), self.row_nnz())
        np.add.at(out, rows, self.data[:, None] * other[self.indices])
        return out

    def spgemm(self, other: "CSRMatrix") -> "CSRMatrix":
        """Gustavson sparse x sparse product (row-by-row accumulate)."""
        if self.shape[1] != other.shape[0]:
            raise ReproError(
                f"incompatible shapes {self.shape} @ {other.shape}"
            )
        out_rows: list[np.ndarray] = []
        out_cols: list[np.ndarray] = []
        out_vals: list[np.ndarray] = []
        for i in range(self.shape[0]):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            if lo == hi:
                continue
            accumulator: dict[int, float] = {}
            for idx in range(lo, hi):
                k = int(self.indices[idx])
                a_val = float(self.data[idx])
                b_lo, b_hi = other.indptr[k], other.indptr[k + 1]
                b_cols = other.indices[b_lo:b_hi]
                b_vals = other.data[b_lo:b_hi]
                for j, v in zip(b_cols, b_vals):
                    accumulator[int(j)] = accumulator.get(int(j), 0.0) + a_val * v
            if accumulator:
                cols = np.fromiter(accumulator.keys(), dtype=np.int64)
                vals = np.fromiter(accumulator.values(), dtype=np.float64)
                out_rows.append(np.full(cols.size, i, dtype=np.int64))
                out_cols.append(cols)
                out_vals.append(vals)
        shape = (self.shape[0], other.shape[1])
        if not out_rows:
            return CSRMatrix.from_coo(
                COOMatrix(np.array([], dtype=np.int64),
                          np.array([], dtype=np.int64),
                          np.array([], dtype=np.float64), shape)
            )
        return CSRMatrix.from_coo(COOMatrix(
            np.concatenate(out_rows), np.concatenate(out_cols),
            np.concatenate(out_vals), shape,
        ))

    def spgemm_flops(self, other: "CSRMatrix") -> int:
        """Multiply-accumulate count of the Gustavson product (x2 flops)."""
        if self.shape[1] != other.shape[0]:
            raise ReproError("incompatible shapes for spgemm_flops")
        other_row_nnz = other.row_nnz()
        return int(2 * np.sum(other_row_nnz[self.indices]))

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"

"""Device-level matrix-multiplication kernels.

Three TCU execution strategies from Section 4.2 plus the CUDA-core
reference used by baseline plans:

* :func:`dense_gemm` — single cuBLAS/WMMA call when everything fits in
  device memory.
* :func:`msplit_gemm` — the blocked, pipelined MSplitGEMM extension for
  working sets beyond device memory (Section 4.2.3).  Submatrices stream
  over PCIe while previous blocks compute; the timing model overlaps
  transfer and compute and charges the slower of the two per stage.
* :func:`tcu_spmm` — the tiled sparse kernel (Section 4.2.4).

Each kernel returns ``(result, seconds)``; analytic variants
(``*_seconds``) cost a product from its dimensions without numerics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ReproError
from repro.tensor.precision import Precision
from repro.tensor.tiled import TILE, TiledMatrix, tile_pair_count

# Fraction of peak a well-tuned blocked pipeline sustains (paper 4.2.3:
# TCUDB tunes submatrix sizes to balance pipeline stages).
BLOCKED_EFFICIENCY = 0.7


def dense_gemm(
    device: GPUDevice,
    a: np.ndarray,
    b: np.ndarray,
    precision: Precision = Precision.FP16,
) -> tuple[np.ndarray, float]:
    """One in-memory TCU GEMM: numerics + Equation-3 timing."""
    result = device.tcu.matmul(a, b, precision)
    m, k = a.shape
    n = b.shape[1]
    return result, device.tcu.matmul_seconds(m, n, k, precision)


def dense_gemm_seconds(
    device: GPUDevice, m: int, n: int, k: int,
    precision: Precision = Precision.FP16,
) -> float:
    return device.tcu.matmul_seconds(m, n, k, precision)


@dataclass(frozen=True)
class BlockedPlan:
    """Chosen submatrix geometry for an out-of-memory GEMM."""

    block_m: int
    block_n: int
    block_k: int
    n_stages: int
    bytes_per_stage: float


def plan_blocked_gemm(
    device: GPUDevice, m: int, n: int, k: int,
    precision: Precision = Precision.FP16,
    memory_budget: float | None = None,
) -> BlockedPlan:
    """Pick submatrix sizes whose working set fits the memory budget.

    MSplitGEMM double-buffers one A-block, one B-block and one C-block;
    we choose the largest square-ish block split that fits in a third of
    the budget (triple buffering for the pipeline).
    """
    if memory_budget is None:
        memory_budget = device.memory.available * 0.9
    elem = precision.bytes_per_element
    splits = 1
    while True:
        block_m = -(-m // splits)
        block_n = -(-n // splits)
        block_k = -(-k // splits)
        stage_bytes = (
            block_m * block_k * elem
            + block_k * block_n * elem
            + block_m * block_n * 4.0  # fp32/int32 accumulator tile
        )
        if stage_bytes * 3 <= memory_budget or splits >= 4096:
            n_stages = splits ** 3
            return BlockedPlan(block_m, block_n, block_k, n_stages, stage_bytes)
        splits *= 2


def msplit_gemm_seconds(
    device: GPUDevice, m: int, n: int, k: int,
    precision: Precision = Precision.FP16,
    memory_budget: float | None = None,
) -> tuple[float, BlockedPlan]:
    """Pipelined blocked-GEMM latency: per stage, the slower of DMA and
    MMA (streams overlap them), plus one pipeline fill."""
    plan = plan_blocked_gemm(device, m, n, k, precision, memory_budget)
    compute_per_stage = (
        2.0 * plan.block_m * plan.block_n * plan.block_k
        / (device.profile.tcu_tflops(precision) * 1e12 * BLOCKED_EFFICIENCY)
    )
    transfer_per_stage = plan.bytes_per_stage / device.profile.pcie_bandwidth
    stage = max(compute_per_stage, transfer_per_stage)
    fill = compute_per_stage + transfer_per_stage - stage
    return (
        device.profile.kernel_launch_s + fill + stage * plan.n_stages,
        plan,
    )


def msplit_gemm(
    device: GPUDevice,
    a: np.ndarray,
    b: np.ndarray,
    precision: Precision = Precision.FP16,
    memory_budget: float | None = None,
    backend=None,
) -> tuple[np.ndarray, float]:
    """Blocked GEMM with real numerics: block-by-block TCU products
    accumulated in fp32/int32, exactly as the streaming kernel would.

    ``backend`` (a :class:`repro.tensor.backend.TensorBackend`) supplies
    the per-block product kernel; ``None`` uses the simulated unit
    directly, which is bit-identical to passing ``SimBackend``."""
    if a.shape[1] != b.shape[0]:
        raise ReproError(f"incompatible shapes {a.shape} @ {b.shape}")
    m, k = a.shape
    n = b.shape[1]
    seconds, plan = msplit_gemm_seconds(device, m, n, k, precision, memory_budget)
    out_dtype = np.int64 if precision.is_integer else np.float64
    # The streaming kernel casts whole operands to fp16 once (with a single
    # power-of-two pre-scale); blocks must share that scale or block
    # boundaries would change the numerics relative to the dense kernel.
    rescale = 1.0
    if precision == Precision.FP16:
        from repro.tensor.precision import fp16_scale_factor

        scale_a = fp16_scale_factor(float(np.max(np.abs(a))) if a.size else 0.0)
        scale_b = fp16_scale_factor(float(np.max(np.abs(b))) if b.size else 0.0)
        a = np.asarray(a, dtype=np.float64) / scale_a
        b = np.asarray(b, dtype=np.float64) / scale_b
        rescale = scale_a * scale_b
    result = np.zeros((m, n), dtype=out_dtype)
    for i0 in range(0, m, plan.block_m):
        for j0 in range(0, n, plan.block_n):
            accumulator = np.zeros(
                (min(plan.block_m, m - i0), min(plan.block_n, n - j0)),
                dtype=out_dtype,
            )
            for k0 in range(0, k, plan.block_k):
                a_block = a[i0:i0 + plan.block_m, k0:k0 + plan.block_k]
                b_block = b[k0:k0 + plan.block_k, j0:j0 + plan.block_n]
                if backend is None:
                    accumulator += device.tcu.matmul(a_block, b_block,
                                                     precision)
                else:
                    accumulator += backend.matmul(device, a_block, b_block,
                                                  precision)
            result[i0:i0 + plan.block_m, j0:j0 + plan.block_n] = accumulator
    if rescale != 1.0:
        result = result * rescale
    return result, seconds


def tcu_spmm(
    device: GPUDevice,
    a: TiledMatrix,
    b: TiledMatrix,
    precision: Precision = Precision.FP16,
) -> tuple[TiledMatrix, float]:
    """Tiled sparse product: numerics via tile pairing, time per MMA issue.

    The construct/partition/filter scan cost (linear in the inputs, per
    Section 4.2.4) is charged by the caller as part of data
    transformation; this kernel charges only the MMA stream.
    """
    result, tile_pairs = a.spmm(b)
    return result, device.tcu.spmm_seconds(tile_pairs, precision)


def tcu_spmm_seconds(
    device: GPUDevice,
    a: TiledMatrix,
    b: TiledMatrix,
    precision: Precision = Precision.FP16,
) -> float:
    """Analytic TCU-SpMM latency from exact tile-pair counts."""
    return device.tcu.spmm_seconds(tile_pair_count(a, b), precision)


def cuda_gemm(
    device: GPUDevice, a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, float]:
    """Reference dense GEMM on the CUDA cores (Figure 3's baseline)."""
    result = device.cuda.matmul(a, b)
    m, k = a.shape
    n = b.shape[1]
    return result, device.cuda.matmul_seconds(m, n, k)


def pad_to_tiles(matrix: np.ndarray) -> np.ndarray:
    """Zero-pad a dense matrix so both dimensions are multiples of 16.

    WMMA fragments operate on 16x16 tiles; cuBLAS pads internally, and we
    do the same before handing matrices to the tiled kernels.
    """
    rows, cols = matrix.shape
    pad_r = (-rows) % TILE
    pad_c = (-cols) % TILE
    if pad_r == 0 and pad_c == 0:
        return matrix
    return np.pad(matrix, ((0, pad_r), (0, pad_c)))


def matrix_bytes(m: int, n: int, precision: Precision) -> float:
    """Device bytes of an m x n matrix at a precision (int4 packs 2/byte)."""
    return m * n * precision.bytes_per_element


def gemm_flops(m: int, n: int, k: int) -> float:
    return 2.0 * m * n * k


def required_tile_grid(m: int, n: int) -> int:
    """Number of 16x16 tiles covering an m x n matrix."""
    return math.ceil(m / TILE) * math.ceil(n / TILE)

"""TCU-compatible precisions and their numeric properties.

NVIDIA's tensor cores accept at most 16-bit inputs: half floats (fp16),
8-bit integers (int8) and 4-bit integers (int4), accumulating into fp32 or
int32 (Section 2.1 of the paper).  TCUDB's feasibility test (Section 4.2.1)
uses per-column min/max/distinct statistics to pick the most compact type
that still represents the data — or rejects TCU execution entirely.

This module defines the precision lattice and the exact-representability
rules the feasibility test relies on:

* fp16 represents every integer with magnitude <= 2**11 exactly (11-bit
  significand); beyond that, casting rounds.
* int8/int4 represent integers within their two's-complement range exactly.
* Products of two fp16 values are exact in fp32; int8/int4 products
  accumulate exactly in int32 until the accumulator itself overflows.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.common.errors import PrecisionError

# Largest integer n such that all integers in [-n, n] round-trip
# exactly through IEEE binary16 (2**11).
FP16_EXACT_INT = 2048
# Largest finite fp16 magnitude.
FP16_MAX = 65504.0
# fp32 represents integers exactly up to 2**24; beyond that, accumulation
# rounds, which is the error source in Table 1's small-range rows.
FP32_EXACT_INT = 1 << 24
INT32_MAX = (1 << 31) - 1


class Precision(enum.Enum):
    """Input precisions the simulated hardware supports."""

    FP64 = "fp64"  # CPU reference only
    FP32 = "fp32"  # CUDA cores only
    FP16 = "fp16"  # TCU
    INT8 = "int8"  # TCU
    INT4 = "int4"  # TCU

    @property
    def bytes_per_element(self) -> float:
        return {
            Precision.FP64: 8.0,
            Precision.FP32: 4.0,
            Precision.FP16: 2.0,
            Precision.INT8: 1.0,
            Precision.INT4: 0.5,
        }[self]

    @property
    def is_tcu_compatible(self) -> bool:
        return self in (Precision.FP16, Precision.INT8, Precision.INT4)

    @property
    def is_integer(self) -> bool:
        return self in (Precision.INT8, Precision.INT4)


# Precision order from most compact upward; the feasibility test walks
# this list and picks the first precision that fits (Figure 6, steps
# "4bit? / 8bit? / 16bit? / 32bit?").
TCU_PRECISIONS_COMPACT_FIRST = (Precision.INT4, Precision.INT8, Precision.FP16)


@dataclass(frozen=True)
class ValueRange:
    """Closed interval of values observed in a column (from statistics).

    ``integral`` records whether every value in the interval is known to
    be an integer.  ``None`` (the default) falls back to inferring from
    the endpoints — correct for per-column statistics, but callers that
    observe actual values (e.g. exact per-cell matrix sums) must pass the
    flag explicitly: fractional values can have integral endpoints.
    """

    lo: float
    hi: float
    integral: bool | None = None

    def __post_init__(self):
        if self.lo > self.hi:
            raise PrecisionError(f"empty value range [{self.lo}, {self.hi}]")

    @property
    def magnitude(self) -> float:
        """m = max(|lo|, |hi|), the paper's conservative bound."""
        return max(abs(self.lo), abs(self.hi))

    @property
    def is_integral(self) -> bool:
        if self.integral is not None:
            return self.integral
        return float(self.lo).is_integer() and float(self.hi).is_integer()


def fits_exactly(values: ValueRange, precision: Precision) -> bool:
    """Whether every value in the range is exactly representable."""
    if precision == Precision.INT4:
        return values.is_integral and -8 <= values.lo and values.hi <= 7
    if precision == Precision.INT8:
        return values.is_integral and -128 <= values.lo and values.hi <= 127
    if precision == Precision.FP16:
        # Exact only for integers within the fp16 significand window; real
        # values are never exact, so the caller must accept rounding.
        return values.is_integral and values.magnitude <= FP16_EXACT_INT
    if precision == Precision.FP32:
        return values.is_integral and values.magnitude <= FP32_EXACT_INT
    return precision == Precision.FP64


def fits_representable(values: ValueRange, precision: Precision) -> bool:
    """Whether the range fits the precision at all (allowing rounding)."""
    if precision in (Precision.INT4, Precision.INT8):
        return fits_exactly(values, precision)
    if precision == Precision.FP16:
        return values.magnitude <= FP16_MAX
    return True


def product_magnitude_bound(a: ValueRange, b: ValueRange, k: int) -> float:
    """Paper's conservative result bound m1 * m2 * n for a K-length dot.

    Section 4.2.1: with m1/m2 the max magnitudes of the two operand columns
    and n the reduction length, the largest possible result magnitude is
    ``m1 * m2 * n``.
    """
    if k < 0:
        raise PrecisionError("reduction length must be non-negative")
    return a.magnitude * b.magnitude * max(k, 1)


def accumulator_exact(a: ValueRange, b: ValueRange, k: int,
                      precision: Precision) -> bool:
    """Whether the matmul accumulator stays exact for integral inputs.

    int8/int4 accumulate in int32 (exact until overflow); fp16 inputs
    accumulate in fp32 (exact while partial sums stay below 2**24).
    """
    bound = product_magnitude_bound(a, b, k)
    if precision.is_integer:
        return bound <= INT32_MAX
    if precision == Precision.FP16:
        return bound <= FP32_EXACT_INT
    return False


def fp16_scale_factor(magnitude: float) -> float:
    """Power-of-two scale that maps ``magnitude`` into fp16's exact window.

    TCUDB handles ranges beyond 16-bit (e.g. Table 1's +-2**31 row) by
    scaling inputs down by a power of two before casting to fp16 and
    scaling the product back up afterwards.  Powers of two are lossless to
    apply, so the only error left is the fp16 significand rounding.
    """
    if magnitude <= 0:
        return 1.0
    if magnitude <= FP16_EXACT_INT:
        return 1.0
    return 2.0 ** math.ceil(math.log2(magnitude / FP16_EXACT_INT))

"""Quantization helpers for TCU execution.

The feasibility test (Section 4.2.1) picks the most compact TCU precision
that represents a column's value range.  When values exceed a precision's
range, TCUDB either scales them (power-of-two scaling is lossless for the
fp16 path) or rejects the precision.  This module implements the range ->
precision decision and the (de)quantization used around a TCU matmul.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import PrecisionError
from repro.tensor.precision import (
    TCU_PRECISIONS_COMPACT_FIRST,
    Precision,
    ValueRange,
    accumulator_exact,
    fits_exactly,
    fits_representable,
    fp16_scale_factor,
)


@dataclass(frozen=True)
class PrecisionChoice:
    """Outcome of the range feasibility test for one operand pair."""

    precision: Precision | None  # None => TCUs rejected, fall back
    exact: bool  # result guaranteed bit-exact
    scale: float  # power-of-two pre-scale applied to the fp16 path

    @property
    def feasible(self) -> bool:
        return self.precision is not None


def choose_precision(
    a: ValueRange,
    b: ValueRange,
    k: int,
    require_exact: bool = False,
) -> PrecisionChoice:
    """Pick the most compact TCU precision for a (m x k) @ (k x n) product.

    Walks int4 -> int8 -> fp16 (Figure 6's data-range test).  A precision
    qualifies if both operand ranges are representable and — for integer
    precisions — the int32 accumulator cannot overflow under the paper's
    conservative bound m1 * m2 * k.  With ``require_exact`` the fp16 path
    additionally demands exact integer representation; otherwise fp16 is
    accepted with (bounded) rounding error, using power-of-two scaling for
    out-of-range magnitudes.
    """
    for precision in TCU_PRECISIONS_COMPACT_FIRST:
        if precision.is_integer:
            if (fits_exactly(a, precision) and fits_exactly(b, precision)
                    and accumulator_exact(a, b, k, precision)):
                return PrecisionChoice(precision, exact=True, scale=1.0)
            continue
        # fp16: exact only inside the significand window with an exact
        # fp32 accumulator; otherwise representable-with-rounding.
        exact = (
            fits_exactly(a, precision)
            and fits_exactly(b, precision)
            and accumulator_exact(a, b, k, precision)
        )
        if exact:
            return PrecisionChoice(precision, exact=True, scale=1.0)
        if require_exact:
            return PrecisionChoice(None, exact=False, scale=1.0)
        scale = fp16_scale_factor(max(a.magnitude, b.magnitude))
        scaled_a = ValueRange(a.lo / scale, a.hi / scale)
        scaled_b = ValueRange(b.lo / scale, b.hi / scale)
        if (fits_representable(scaled_a, precision)
                and fits_representable(scaled_b, precision)):
            return PrecisionChoice(precision, exact=False, scale=scale)
    return PrecisionChoice(None, exact=False, scale=1.0)


def quantize(values: np.ndarray, precision: Precision) -> np.ndarray:
    """Cast values into the simulated storage type for ``precision``."""
    values = np.asarray(values, dtype=np.float64)
    if precision == Precision.FP16:
        out = values.astype(np.float16)
        if out.size and not np.all(np.isfinite(out)):
            raise PrecisionError("values overflow fp16; scale first")
        return out
    if precision in (Precision.INT8, Precision.INT4):
        lo, hi = (-8, 7) if precision == Precision.INT4 else (-128, 127)
        out = np.rint(values)
        if out.size and (out.min() < lo or out.max() > hi):
            raise PrecisionError(f"values outside {precision.value} range")
        return out.astype(np.int8)
    if precision == Precision.FP32:
        return values.astype(np.float32)
    return values


def dequantize(values: np.ndarray, scale: float = 1.0) -> np.ndarray:
    """Back to float64 logical values (undoing any pre-scale)."""
    return np.asarray(values, dtype=np.float64) * scale


def observed_range(values: np.ndarray) -> ValueRange:
    """ValueRange of an array (0-width range for empty input)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return ValueRange(0.0, 0.0)
    return ValueRange(float(values.min()), float(values.max()))
